"""Tests for Lemma 11 (solve given coloring) and the full BM21 baseline."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.bm21 import (
    baseline_duration,
    schedule_solve_duration,
    solve_given_coloring,
    solve_with_baseline,
)
from repro.core.linial import final_palette
from repro.graphs import (
    complete_graph,
    cycle,
    gnp,
    path,
    star,
)
from repro.model import SleepingSimulator
from repro.olocal import (
    PROBLEMS,
    DeltaPlusOneColoring,
    MaximalIndependentSet,
    sequential_greedy,
)
from repro.util.idspace import polynomial_ids
from repro.util.mathx import ceil_log2, iterated_log, next_pow2


def greedy_proper_coloring(graph):
    """Centralized proper coloring used as the 'given k-coloring' input."""
    colors = {}
    for v in graph.nodes:
        used = {colors[u] for u in graph.neighbors(v) if u in colors}
        c = 1
        while c in used:
            c += 1
        colors[v] = c
    return colors, max(colors.values())


def run_lemma11(graph, problem, inputs=None):
    colors, palette = greedy_proper_coloring(graph)
    node_inputs = inputs if inputs is not None else problem.make_inputs(graph)

    def program(info):
        out = yield from solve_given_coloring(
            me=info.id,
            peers=info.neighbors,
            color=colors[info.id],
            palette=palette,
            problem=problem,
            t0=1,
            my_input=info.input,
        )
        return out

    res = SleepingSimulator(graph, program, inputs=node_inputs).run()
    return res, palette, colors


class TestLemma11:
    @pytest.mark.parametrize("problem_name", sorted(PROBLEMS))
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: path(12),
            lambda: cycle(9),
            lambda: star(8),
            lambda: gnp(30, 0.12, seed=1),
            lambda: complete_graph(8),
        ],
    )
    def test_valid_outputs(self, problem_name, factory):
        problem = PROBLEMS[problem_name]
        g = factory()
        inputs = problem.make_inputs(g)
        res, palette, _ = run_lemma11(g, problem, inputs)
        problem.check(g, res.outputs, inputs)

    def test_awake_is_log_palette(self):
        g = gnp(40, 0.1, seed=2)
        res, palette, _ = run_lemma11(g, DeltaPlusOneColoring())
        q = next_pow2(palette)
        assert res.awake_complexity <= 1 + ceil_log2(q)
        assert res.round_complexity <= schedule_solve_duration(palette)

    def test_matches_sequential_greedy_with_color_priority(self):
        """Lemma 11's output IS a sequential greedy run for the orientation
        'higher color → lower color' (ties broken by ID)."""
        g = gnp(25, 0.15, seed=3)
        problem = DeltaPlusOneColoring()
        res, palette, colors = run_lemma11(g, problem)
        expected = sequential_greedy(
            g, problem, priority=lambda v: (colors[v], v)
        )
        assert res.outputs == expected

    def test_mis_on_star_with_hub_low_color(self):
        g = star(7)
        hub = max(g.nodes, key=g.degree)
        colors = {v: 1 if v == hub else 2 for v in g.nodes}

        def program(info):
            out = yield from solve_given_coloring(
                info.id, info.neighbors, colors[info.id], 2,
                MaximalIndependentSet(), t0=1,
            )
            return out

        res = SleepingSimulator(g, program).run()
        assert res.outputs[hub] is True
        assert sum(res.outputs.values()) == 1


class TestBaseline:
    @pytest.mark.parametrize("problem_name", sorted(PROBLEMS))
    def test_end_to_end_valid(self, problem_name):
        problem = PROBLEMS[problem_name]
        g = gnp(30, 0.12, seed=5)
        result = solve_with_baseline(g, problem)
        # solve_with_baseline already validates; double-check palette too.
        assert result.palette == final_palette(g.id_space, g.max_degree)

    def test_awake_bound_log_delta_log_star_n(self):
        """The BM21 bound: awake <= log*-term + log Δ term with explicit
        constants (steps + 1 + log2 next_pow2(palette))."""
        for n, p, seed in [(40, 0.1, 1), (60, 0.08, 2), (50, 0.3, 3)]:
            g = gnp(n, p, seed=seed)
            result = solve_with_baseline(g, DeltaPlusOneColoring())
            delta = g.max_degree
            palette = final_palette(g.id_space, delta)
            bound = (
                3 * max(iterated_log(g.id_space), 1)
                + 1
                + ceil_log2(next_pow2(palette))
            )
            assert result.awake_complexity <= bound

    def test_round_complexity_within_duration(self):
        g = gnp(30, 0.1, seed=7)
        result = solve_with_baseline(g, MaximalIndependentSet())
        assert result.round_complexity <= baseline_duration(
            g.id_space, g.max_degree
        )

    def test_large_id_space(self):
        g = gnp(25, 0.15, seed=9, ids=polynomial_ids(25, 3, seed=4))
        result = solve_with_baseline(g, DeltaPlusOneColoring())
        assert result.awake_complexity <= 40

    def test_high_degree_graph_awake_grows_with_delta(self):
        """On K_n the baseline pays ~log n awake — the regime Theorem 1
        improves; recorded here as the motivating contrast."""
        res_small = solve_with_baseline(complete_graph(8), MaximalIndependentSet())
        res_big = solve_with_baseline(complete_graph(64), MaximalIndependentSet())
        assert res_big.awake_complexity > res_small.awake_complexity

    @settings(max_examples=15, deadline=None)
    @given(st.integers(5, 35), st.integers(0, 10**6))
    def test_property_random_graphs(self, n, seed):
        g = gnp(n, 2.5 / n, seed=seed)
        result = solve_with_baseline(g, MaximalIndependentSet())
        assert set(result.outputs) == set(g.nodes)
