"""Tests for the content-addressed trial cache (repro.runner.cache)
and the sharded report path (repro.analysis.report).

Covers the promises the cache subsystem makes:

- **identity keying** — kind, key, kwargs, and seed determine the
  cache key; index and label do not; the code-version salt shifts
  every key;
- **hit/miss/invalidation** — cold runs miss and store, warm runs hit,
  changed specs or seeds miss again;
- **corruption tolerance** — a truncated, garbage, or wrong-format
  cache file is a miss (recompute), never a crash;
- **report byte-identity** — EXPERIMENTS.md bytes are the same for
  workers 1/2 and for cache disabled/cold/warm.
"""

from __future__ import annotations

import pickle

import pytest

from repro.analysis.report import generate, main as report_main
from repro.runner import (
    TrialCache,
    TrialSpec,
    run_sweep,
    sweep_artifact_payload,
    sweep_from_experiments,
    sweep_from_grid,
)
from repro.runner.artifacts import deterministic_view
from repro.runner.cache import (
    CACHE_FORMAT,
    code_version_salt,
    is_cacheable,
    trial_cache_key,
)
from repro.runner.executor import pool_start_method

HAS_FORK = pool_start_method() == "fork"

#: Cheap experiments (sub-second combined) for multi-run tests.
CHEAP = ("E2", "E4", "E5", "E10")


def _spec(**overrides) -> TrialSpec:
    base = dict(
        index=0,
        kind="experiment",
        key="E5",
        label="E5[path-32]",
        kwargs=(("tree", "path-32"),),
        seed=None,
    )
    base.update(overrides)
    return TrialSpec(**base)


# -- identity keying ---------------------------------------------------------


class TestKeying:
    def test_same_identity_same_key(self):
        assert trial_cache_key(_spec(), "s") == trial_cache_key(_spec(), "s")

    def test_kwargs_change_key(self):
        a = trial_cache_key(_spec(), "s")
        b = trial_cache_key(_spec(kwargs=(("tree", "star-32"),)), "s")
        assert a != b

    def test_seed_changes_key(self):
        assert trial_cache_key(_spec(seed=1), "s") != trial_cache_key(
            _spec(seed=2), "s"
        )

    def test_kind_and_key_change_key(self):
        keys = {
            trial_cache_key(_spec(), "s"),
            trial_cache_key(_spec(kind="solve"), "s"),
            trial_cache_key(_spec(key="E6"), "s"),
        }
        assert len(keys) == 3

    def test_index_and_label_do_not_change_key(self):
        # Reordering a sweep, or sharing trials between sweep and
        # report, must still hit.
        a = trial_cache_key(_spec(index=0, label="E5[a]"), "s")
        b = trial_cache_key(_spec(index=7, label="other"), "s")
        assert a == b

    def test_salt_changes_key(self):
        assert trial_cache_key(_spec(), "v1") != trial_cache_key(_spec(), "v2")

    def test_object_kwargs_uncacheable(self):
        spec = _spec(kwargs=(("problem", object()),))
        assert not is_cacheable(spec)
        assert trial_cache_key(spec, "s") is None

    def test_primitive_and_nested_kwargs_cacheable(self):
        spec = _spec(kwargs=(("sizes", (8, 16)), ("p", 0.5), ("x", None)))
        assert is_cacheable(spec)
        assert trial_cache_key(spec, "s") is not None

    def test_code_version_salt_stable_hex(self):
        salt = code_version_salt()
        assert salt == code_version_salt()
        int(salt, 16)  # hex digest prefix


# -- store / load ------------------------------------------------------------


class TestStoreLoad:
    def test_miss_on_empty_cache(self, tmp_path):
        cache = TrialCache(tmp_path, salt="t")
        assert cache.load(_spec()) is None

    def test_roundtrip(self, tmp_path):
        cache = TrialCache(tmp_path, salt="t")
        payload = {"rows": [(1, "a", 2.5), (3, "b", None)]}
        assert cache.store(_spec(), payload, seconds=1.25)
        found = cache.load(_spec())
        assert found is not None
        assert found.payload == payload
        assert found.seconds == 1.25

    def test_uncacheable_store_refused(self, tmp_path):
        cache = TrialCache(tmp_path, salt="t")
        spec = _spec(kwargs=(("problem", object()),))
        assert not cache.store(spec, {"rows": []}, seconds=0.0)
        assert cache.load(spec) is None
        assert list(tmp_path.rglob("*.pkl")) == []

    def test_garbage_file_is_a_miss_and_dropped(self, tmp_path):
        cache = TrialCache(tmp_path, salt="t")
        cache.store(_spec(), {"rows": []}, seconds=0.0)
        (path,) = tmp_path.rglob("*.pkl")
        path.write_bytes(b"not a pickle at all")
        assert cache.load(_spec()) is None
        assert not path.exists()
        # Recompute + store works again afterwards.
        assert cache.store(_spec(), {"rows": [(1,)]}, seconds=0.0)
        assert cache.load(_spec()).payload == {"rows": [(1,)]}

    def test_truncated_pickle_is_a_miss(self, tmp_path):
        cache = TrialCache(tmp_path, salt="t")
        cache.store(_spec(), {"rows": [(1, 2, 3)]}, seconds=0.0)
        (path,) = tmp_path.rglob("*.pkl")
        path.write_bytes(path.read_bytes()[:10])
        assert cache.load(_spec()) is None

    def test_wrong_format_version_is_a_miss(self, tmp_path):
        cache = TrialCache(tmp_path, salt="t")
        cache.store(_spec(), {"rows": []}, seconds=0.0)
        (path,) = tmp_path.rglob("*.pkl")
        record = {"format": CACHE_FORMAT + 1, "payload": {"rows": []}}
        path.write_bytes(pickle.dumps(record))
        assert cache.load(_spec()) is None

    def test_non_dict_record_is_a_miss(self, tmp_path):
        cache = TrialCache(tmp_path, salt="t")
        cache.store(_spec(), {"rows": []}, seconds=0.0)
        (path,) = tmp_path.rglob("*.pkl")
        path.write_bytes(pickle.dumps(["not", "a", "record"]))
        assert cache.load(_spec()) is None

    def test_non_numeric_seconds_is_a_miss(self, tmp_path):
        cache = TrialCache(tmp_path, salt="t")
        cache.store(_spec(), {"rows": []}, seconds=0.0)
        (path,) = tmp_path.rglob("*.pkl")
        record = {"format": CACHE_FORMAT, "payload": {"rows": []}, "seconds": "3.4s"}
        path.write_bytes(pickle.dumps(record))
        assert cache.load(_spec()) is None

    def test_transient_read_error_is_a_miss_without_discard(self, tmp_path):
        cache = TrialCache(tmp_path, salt="t")
        path = cache.path_for(_spec())
        path.parent.mkdir(parents=True)
        path.mkdir()  # open() raises IsADirectoryError, an OSError
        assert cache.load(_spec()) is None
        # Transient I/O errors must not destroy the entry.
        assert path.exists()

    def test_unwritable_cache_degrades_to_no_cache(self, tmp_path):
        blocked = tmp_path / "blocked"
        blocked.write_text("a file where the cache dir should go")
        cache = TrialCache(blocked / "cache", salt="t")
        assert not cache.store(_spec(), {"rows": []}, seconds=0.0)
        assert cache.load(_spec()) is None


# -- sweeps with a cache -----------------------------------------------------


class TestSweepCaching:
    def test_cold_then_warm(self, tmp_path):
        spec = sweep_from_experiments(CHEAP)
        cache = TrialCache(tmp_path)
        cold = run_sweep(spec, workers=1, cache=cache)
        assert cold.cache_stats.hits == 0
        assert cold.cache_stats.misses == len(spec.trials)
        assert not any(o.cached for o in cold.outcomes)

        warm = run_sweep(spec, workers=1, cache=cache)
        assert warm.cache_stats.hits == len(spec.trials)
        assert warm.cache_stats.misses == 0
        assert all(o.cached for o in warm.outcomes)
        assert warm.render() == cold.render()

    def test_cache_does_not_change_the_aggregate(self, tmp_path):
        spec = sweep_from_experiments(CHEAP)
        reference = run_sweep(spec, workers=1)
        cache = TrialCache(tmp_path)
        run_sweep(spec, workers=1, cache=cache)
        warm = run_sweep(spec, workers=1, cache=cache)
        assert warm.render() == reference.render()
        det_ref = deterministic_view(sweep_artifact_payload(reference))
        det_warm = deterministic_view(sweep_artifact_payload(warm))
        assert det_ref == det_warm

    def test_no_cache_has_no_stats(self):
        spec = sweep_from_experiments(["E2"])
        result = run_sweep(spec, workers=1)
        assert result.cache_stats is None
        assert sweep_artifact_payload(result)["timing"]["cache"] is None

    def test_artifact_records_cache_stats(self, tmp_path):
        spec = sweep_from_experiments(["E2", "E4"])
        cache = TrialCache(tmp_path)
        run_sweep(spec, workers=1, cache=cache)
        warm = run_sweep(spec, workers=1, cache=cache)
        timing = sweep_artifact_payload(warm)["timing"]
        assert timing["cache"]["hits"] == 2
        assert timing["cache"]["misses"] == 0
        assert all(t["cached"] for t in timing["trials"])
        # trial_seconds_total counts compute done by *this* run only.
        assert timing["trial_seconds_total"] == 0.0
        assert timing["cache"]["seconds_saved"] > 0.0

    def test_partial_overlap_hits_shared_trials_only(self, tmp_path):
        cache = TrialCache(tmp_path)
        first = sweep_from_grid(
            families=["path"], sizes=[8, 12], problems=["mis"], master_seed=3
        )
        run_sweep(first, workers=1, cache=cache)
        second = sweep_from_grid(
            families=["path"], sizes=[8, 16], problems=["mis"], master_seed=3
        )
        result = run_sweep(second, workers=1, cache=cache)
        # n=8 derives the same content-addressed seed in both sweeps,
        # so only it hits; n=16 is new.
        assert result.cache_stats.hits == 1
        assert result.cache_stats.misses == 1
        assert [o.cached for o in result.outcomes] == [True, False]

    def test_master_seed_change_invalidates(self, tmp_path):
        cache = TrialCache(tmp_path)
        grid = dict(families=["path"], sizes=[8], problems=["mis"])
        run_sweep(sweep_from_grid(**grid, master_seed=3), workers=1, cache=cache)
        reseeded = run_sweep(
            sweep_from_grid(**grid, master_seed=4), workers=1, cache=cache
        )
        assert reseeded.cache_stats.hits == 0

    def test_salt_change_invalidates(self, tmp_path):
        spec = sweep_from_experiments(["E2"])
        run_sweep(spec, workers=1, cache=TrialCache(tmp_path, salt="v1"))
        result = run_sweep(spec, workers=1, cache=TrialCache(tmp_path, salt="v2"))
        assert result.cache_stats.hits == 0

    def test_corrupt_entry_recomputed_not_crashed(self, tmp_path):
        spec = sweep_from_experiments(CHEAP)
        cache = TrialCache(tmp_path)
        reference = run_sweep(spec, workers=1, cache=cache)
        victim = sorted(tmp_path.rglob("*.pkl"))[0]
        victim.write_bytes(b"\x80corrupt")
        result = run_sweep(spec, workers=1, cache=cache)
        assert result.cache_stats.hits == len(spec.trials) - 1
        assert result.cache_stats.misses == 1
        assert result.render() == reference.render()

    @pytest.mark.skipif(not HAS_FORK, reason="needs fork start method")
    def test_pool_warm_from_serial_and_vice_versa(self, tmp_path):
        spec = sweep_from_experiments(CHEAP)
        reference = run_sweep(spec, workers=1)

        serial_cache = TrialCache(tmp_path / "a")
        run_sweep(spec, workers=1, cache=serial_cache)
        pooled = run_sweep(spec, workers=2, cache=serial_cache)
        assert pooled.cache_stats.hits == len(spec.trials)
        assert pooled.render() == reference.render()

        pool_cache = TrialCache(tmp_path / "b")
        cold = run_sweep(spec, workers=2, cache=pool_cache)
        assert cold.cache_stats.misses == len(spec.trials)
        warm = run_sweep(spec, workers=1, cache=pool_cache)
        assert warm.cache_stats.hits == len(spec.trials)
        assert warm.render() == reference.render()

    @pytest.mark.skipif(not HAS_FORK, reason="needs fork start method")
    def test_pool_partial_warm_runs_only_misses(self, tmp_path):
        cache = TrialCache(tmp_path)
        run_sweep(sweep_from_experiments(["E2", "E4"]), workers=1, cache=cache)
        spec = sweep_from_experiments(["E2", "E4", "E10"])
        result = run_sweep(spec, workers=2, cache=cache)
        assert result.cache_stats.hits == 2
        assert result.cache_stats.misses == len(spec.trials) - 2
        reference = run_sweep(spec, workers=1)
        assert result.render() == reference.render()


# -- the sharded report ------------------------------------------------------


REPORT_SUBSET = ["E1", "E5"]


class TestReport:
    def test_byte_identity_across_cache_states(self, tmp_path):
        reference = generate(REPORT_SUBSET, verbose=False)
        cache = TrialCache(tmp_path)
        cold = generate(REPORT_SUBSET, verbose=False, cache=cache)
        warm = generate(REPORT_SUBSET, verbose=False, cache=cache)
        assert cold == reference
        assert warm == reference

    @pytest.mark.skipif(not HAS_FORK, reason="needs fork start method")
    def test_byte_identity_across_worker_counts(self, tmp_path):
        reference = generate(REPORT_SUBSET, verbose=False)
        cache = TrialCache(tmp_path)
        sharded_cold = generate(REPORT_SUBSET, verbose=False, workers=2, cache=cache)
        sharded_warm = generate(REPORT_SUBSET, verbose=False, workers=2, cache=cache)
        assert sharded_cold == reference
        assert sharded_warm == reference

    def test_subset_omits_epilogue(self):
        subset = generate(REPORT_SUBSET, verbose=False)
        assert subset.startswith("# EXPERIMENTS")
        assert "Summary — paper vs measured" not in subset

    def test_unknown_id_lists_valid_ids(self):
        with pytest.raises(KeyError, match=r"E99.*E1"):
            generate(["E1", "E99"], verbose=False)

    def test_duplicate_id_rejected(self):
        # A duplicated id would fold twice the payloads into one table.
        with pytest.raises(KeyError, match="duplicate experiment"):
            generate(["E1", "E5", "E1"], verbose=False)

    def test_empty_selection_means_full_suite(self):
        # `--only` with no ids (nargs='*') must not silently produce an
        # empty report — it means "everything", like the serial report.
        from repro.analysis.experiments import TRIAL_PLANS
        from repro.analysis.report import _selected_names

        assert _selected_names(None) == list(TRIAL_PLANS)
        assert _selected_names([]) == list(TRIAL_PLANS)
        assert _selected_names(["E5"]) == ["E5"]

    def test_main_writes_identical_bytes_cold_and_warm(self, tmp_path, capsys):
        out_cold = tmp_path / "cold.md"
        out_warm = tmp_path / "warm.md"
        cache_dir = str(tmp_path / "cache")
        common = ["--only", "E5", "--cache-dir", cache_dir]
        assert report_main(["--output", str(out_cold), *common]) == 0
        cold_err = capsys.readouterr().err
        assert "0 hit(s)" in cold_err
        assert report_main(["--output", str(out_warm), *common]) == 0
        warm_err = capsys.readouterr().err
        assert "3 hit(s), 0 miss(es)" in warm_err
        assert out_cold.read_bytes() == out_warm.read_bytes()

    def test_main_no_cache_reports_no_stats(self, tmp_path, capsys):
        out = tmp_path / "exp.md"
        assert report_main(["--output", str(out), "--only", "E2", "--no-cache"]) == 0
        err = capsys.readouterr().err
        assert "cache:" not in err
        assert "E2 — Lemma 14" in out.read_text()

    def test_main_unknown_id_fails_with_valid_ids(self, tmp_path):
        with pytest.raises(SystemExit, match="unknown experiment"):
            report_main(
                ["--output", str(tmp_path / "x.md"), "--only", "E99", "--no-cache"]
            )
