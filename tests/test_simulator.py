"""Tests for the Sleeping-LOCAL simulator: semantics, accounting, failures."""

import pytest

from repro.errors import SimulationError
from repro.graphs import complete_graph, cycle, path, star
from repro.model import AwakeAt, Broadcast, SleepingSimulator


class TestBasicExecution:
    def test_immediate_termination(self):
        def program(info):
            return info.id * 10
            yield  # pragma: no cover

        res = SleepingSimulator(path(3), program).run()
        assert res.outputs == {1: 10, 2: 20, 3: 30}
        assert res.awake_complexity == 0

    def test_single_round_exchange(self):
        def program(info):
            inbox = yield AwakeAt(1, Broadcast(info.id))
            return sorted(inbox.values())

        res = SleepingSimulator(cycle(4), program).run()
        assert res.outputs[1] == [2, 4]
        assert res.outputs[3] == [2, 4]
        assert res.awake_complexity == 1
        assert res.round_complexity == 1

    def test_directed_messages(self):
        def program(info):
            smaller = [u for u in info.neighbors if u < info.id]
            inbox = yield AwakeAt(1, {u: f"hi {u}" for u in smaller})
            return dict(inbox)

        res = SleepingSimulator(path(3), program).run()
        assert res.outputs[1] == {2: "hi 1"}
        assert res.outputs[3] == {}


class TestSleepingSemantics:
    def test_message_to_sleeping_node_is_lost(self):
        """Node 1 sends at round 1; node 2 sleeps until round 2 -> loss."""

        def program(info):
            if info.id == 1:
                yield AwakeAt(1, Broadcast("early"))
                return "sent"
            inbox = yield AwakeAt(2)
            return dict(inbox)

        res = SleepingSimulator(path(2), program).run()
        assert res.outputs[2] == {}  # the early message was lost

    def test_co_awake_delivery(self):
        def program(info):
            if info.id == 1:
                inbox = yield AwakeAt(5, Broadcast("ping"))
                return dict(inbox)
            inbox = yield AwakeAt(5, Broadcast("pong"))
            return dict(inbox)

        res = SleepingSimulator(path(2), program).run()
        assert res.outputs[1] == {2: "pong"}
        assert res.outputs[2] == {1: "ping"}

    def test_time_skipping_is_exact(self):
        """A node sleeping 10^9 rounds must terminate instantly at the
        exact round, without iterating the gap."""

        def program(info):
            yield AwakeAt(10**9)
            return "done"

        res = SleepingSimulator(path(2), program).run()
        assert res.round_complexity == 10**9
        assert res.metrics.active_rounds == 1

    def test_awake_accounting_per_node(self):
        def program(info):
            if info.id == 1:
                yield AwakeAt(1)
                yield AwakeAt(2)
                yield AwakeAt(3)
                return None
            yield AwakeAt(2)
            return None

        res = SleepingSimulator(path(2), program).run()
        assert res.metrics.awake_rounds == {1: 3, 2: 1}
        assert res.awake_complexity == 3
        assert res.metrics.average_awake == 2.0


class TestRuntimeEnforcement:
    def test_rejects_time_travel(self):
        def program(info):
            yield AwakeAt(5)
            yield AwakeAt(5)  # not strictly increasing
            return None

        with pytest.raises(SimulationError, match="time must advance"):
            SleepingSimulator(path(2), program).run()

    def test_rejects_non_neighbor_send(self):
        def program(info):
            yield AwakeAt(1, {99: "boo"})
            return None

        with pytest.raises(SimulationError, match="non-neighbor"):
            SleepingSimulator(path(3), program).run()

    def test_rejects_wrong_action_type(self):
        def program(info):
            yield "not an action"

        with pytest.raises(SimulationError, match="AwakeAt"):
            SleepingSimulator(path(2), program).run()

    def test_runaway_protocol_detected(self):
        def program(info):
            r = 1
            while True:
                yield AwakeAt(r)
                r += 1

        sim = SleepingSimulator(path(2), program, max_awake_each=50)
        with pytest.raises(SimulationError, match="exceeded"):
            sim.run()

    def test_rounds_one_indexed(self):
        with pytest.raises(ValueError):
            AwakeAt(0)


class TestInputsAndInfo:
    def test_inputs_delivered(self):
        def program(info):
            return info.input
            yield  # pragma: no cover

        res = SleepingSimulator(
            path(3), program, inputs={1: "a", 2: "b", 3: "c"}
        ).run()
        assert res.outputs == {1: "a", 2: "b", 3: "c"}

    def test_info_fields(self):
        def program(info):
            return (info.n, info.id_space, info.degree, info.neighbors)
            yield  # pragma: no cover

        g = star(5)
        res = SleepingSimulator(g, program).run()
        hub = max(g.nodes, key=g.degree)
        assert res.outputs[hub] == (5, 5, 4, g.neighbors(hub))

    def test_broadcast_on_complete_graph(self):
        def program(info):
            inbox = yield AwakeAt(1, Broadcast(info.id))
            return len(inbox)

        res = SleepingSimulator(complete_graph(7), program).run()
        assert all(count == 6 for count in res.outputs.values())
        assert res.metrics.messages_sent == 42
