"""Tests for the graph substrate: StaticGraph, generators, operations."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import GraphError
from repro.graphs import (
    StaticGraph,
    barbell,
    caterpillar,
    clustered_graph,
    complete_graph,
    cycle,
    gnp,
    graph_square,
    grid,
    hypercube,
    induced_subgraph,
    path,
    preferential_attachment,
    random_regular,
    random_tree,
    star,
)
from repro.util.idspace import (
    adversarial_path_ids,
    identity_ids,
    permuted_ids,
    polynomial_ids,
)


class TestStaticGraph:
    def test_from_edges_basic(self):
        g = StaticGraph.from_edges([(1, 2), (2, 3)])
        assert g.n == 3
        assert g.neighbors(2) == (1, 3)
        assert g.degree(1) == 1
        assert g.max_degree == 2
        assert g.num_edges == 2

    def test_rejects_self_loop(self):
        with pytest.raises(GraphError):
            StaticGraph.from_edges([(1, 1)])

    def test_rejects_asymmetric_adjacency(self):
        with pytest.raises(GraphError):
            StaticGraph({1: (2,), 2: ()}, id_space=2)

    def test_rejects_dangling_edge(self):
        with pytest.raises(GraphError):
            StaticGraph({1: (5,)}, id_space=5)

    def test_rejects_out_of_range_ids(self):
        with pytest.raises(GraphError):
            StaticGraph.from_edges([(1, 2)], id_space=1)

    def test_edges_iteration_sorted_unique(self):
        g = StaticGraph.from_edges([(3, 1), (2, 3), (1, 2)])
        assert list(g.edges()) == [(1, 2), (1, 3), (2, 3)]

    def test_connectivity(self):
        g = StaticGraph.from_edges([(1, 2)], nodes=[3])
        assert not g.is_connected()
        assert sorted(len(c) for c in g.connected_components()) == [1, 2]

    def test_bfs_distances(self):
        g = path(5)
        assert g.bfs_distances(1) == {1: 0, 2: 1, 3: 2, 4: 3, 5: 4}

    def test_distance2_neighbors(self):
        g = path(5)
        assert g.distance_2_neighbors(3) == (1, 5)
        assert g.distance_2_neighbors(1) == (3,)

    def test_networkx_roundtrip(self):
        g = grid(3, 4)
        g2 = StaticGraph.from_networkx(g.to_networkx())
        assert g.adjacency == g2.adjacency


class TestGenerators:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: path(17),
            lambda: cycle(12),
            lambda: complete_graph(9),
            lambda: star(10),
            lambda: grid(4, 5),
            lambda: hypercube(4),
            lambda: random_tree(30, seed=3),
            lambda: caterpillar(6, 3),
            lambda: barbell(5, 4),
            lambda: gnp(40, 0.08, seed=1),
            lambda: random_regular(20, 4, seed=2),
            lambda: preferential_attachment(40, 3, seed=5),
            lambda: clustered_graph(4, 6, seed=7),
        ],
    )
    def test_connected_and_valid(self, factory):
        g = factory()
        assert g.is_connected()
        assert g.n >= 1
        assert min(g.nodes) >= 1

    def test_expected_shapes(self):
        assert path(10).num_edges == 9
        assert cycle(10).num_edges == 10
        assert complete_graph(6).num_edges == 15
        assert star(8).max_degree == 7
        assert hypercube(5).max_degree == 5
        assert random_regular(12, 3, seed=0).n == 12

    def test_caterpillar_degrees(self):
        g = caterpillar(5, 4)
        assert g.n == 5 + 20
        assert g.max_degree == 4 + 2  # inner spine node: 2 spine + 4 legs

    def test_invalid_parameters(self):
        with pytest.raises(GraphError):
            cycle(2)
        with pytest.raises(GraphError):
            preferential_attachment(5, 5)
        with pytest.raises(GraphError):
            random_regular(5, 3)  # odd n*d

    def test_determinism(self):
        a = gnp(30, 0.1, seed=42)
        b = gnp(30, 0.1, seed=42)
        assert a.adjacency == b.adjacency


class TestIdAssignments:
    def test_identity(self):
        ids = identity_ids(5)
        assert ids.ids == (1, 2, 3, 4, 5) and ids.space == 5

    def test_permuted_is_permutation(self):
        ids = permuted_ids(100, seed=1)
        assert sorted(ids.ids) == list(range(1, 101))

    def test_polynomial_range(self):
        ids = polynomial_ids(50, exponent=2, seed=0)
        assert len(set(ids.ids)) == 50
        assert ids.space == 2500
        assert all(1 <= i <= 2500 for i in ids.ids)

    def test_adversarial_decreasing(self):
        ids = adversarial_path_ids(5)
        assert ids.ids == (5, 4, 3, 2, 1)

    def test_graph_uses_assignment(self):
        g = path(4, ids=adversarial_path_ids(4))
        # path order 1-2-3-4 becomes IDs 4-3-2-1
        assert g.has_edge(4, 3) and g.has_edge(2, 1)
        assert not g.has_edge(4, 1)


class TestOps:
    def test_square_of_path(self):
        g2 = graph_square(path(5))
        assert g2.has_edge(1, 3) and g2.has_edge(2, 4)
        assert not g2.has_edge(1, 4)
        assert g2.max_degree == 4

    def test_square_of_star_is_complete(self):
        g2 = graph_square(star(6))
        assert g2.num_edges == 15

    def test_induced_subgraph(self):
        g = cycle(6)
        sub = induced_subgraph(g, {1, 2, 3})
        assert list(sub.edges()) == [(1, 2), (2, 3)]

    def test_induced_missing_node_rejected(self):
        with pytest.raises(KeyError):
            induced_subgraph(path(3), {1, 9})

    @settings(max_examples=25, deadline=None)
    @given(st.integers(5, 40), st.integers(0, 10**6))
    def test_square_distance_semantics(self, n, seed):
        g = gnp(n, 3.0 / n, seed=seed)
        g2 = graph_square(g)
        for v in list(g.nodes)[:5]:
            dist = g.bfs_distances(v)
            expected = {u for u, d in dist.items() if 1 <= d <= 2}
            assert set(g2.neighbors(v)) == expected
