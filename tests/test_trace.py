"""Tests for execution tracing and energy diagrams."""

from repro.core.cast import broadcast_bfs
from repro.model.trace import ExecutionTrace, traced_simulation
from repro.graphs import path, star
from repro.model import AwakeAt


class TestExecutionTrace:
    def test_record_and_count(self):
        trace = ExecutionTrace()
        trace.record(1, 5)
        trace.record(1, 9)
        trace.record(2, 5)
        assert trace.awake_count(1) == 2
        assert trace.awake_count(2) == 1
        assert trace.awake_count(99) == 0
        assert trace.last_round() == 9

    def test_active_rounds_merged(self):
        trace = ExecutionTrace()
        trace.record(1, 3)
        trace.record(2, 3)
        trace.record(2, 7)
        assert trace.active_rounds() == [3, 7]

    def test_co_awake(self):
        trace = ExecutionTrace()
        for r in (1, 4, 9):
            trace.record(1, r)
        for r in (4, 9, 12):
            trace.record(2, r)
        assert trace.co_awake(1, 2) == [4, 9]

    def test_energy_histogram(self):
        trace = ExecutionTrace()
        trace.record(1, 1)
        trace.record(2, 1)
        trace.record(2, 2)
        assert trace.energy_histogram() == {1: 1, 2: 1}

    def test_render_empty(self):
        assert "no awake rounds" in ExecutionTrace().render_timeline()


class TestTracedSimulation:
    def test_trace_matches_metrics(self):
        g = path(6)

        def program(info):
            yield AwakeAt(info.id)
            yield AwakeAt(info.id + 10)
            return None

        result, trace = traced_simulation(g, program)
        for v in g.nodes:
            assert trace.awake_rounds[v] == [v, v + 10]
            assert trace.awake_count(v) == result.metrics.awake_rounds[v]

    def test_broadcast_trace_shows_wave(self):
        """The broadcast wave: node at depth d wakes after its parent."""
        g = path(8)
        depth = g.bfs_distances(1)
        parent = {
            v: (None if v == 1 else v - 1) for v in g.nodes
        }

        def program(info):
            value = yield from broadcast_bfs(
                info.id, info.neighbors, parent[info.id], depth[info.id],
                info.n, 1, "w" if info.id == 1 else None,
            )
            return value

        result, trace = traced_simulation(g, program)
        for v in g.nodes:
            if v > 1:
                # each node's last awake round trails its parent's by one
                assert trace.awake_rounds[v][-1] == trace.awake_rounds[v - 1][-1] + 1

    def test_timeline_rendering(self):
        g = star(5)

        def program(info):
            yield AwakeAt(1 + (info.id % 3))
            return None

        _, trace = traced_simulation(g, program)
        art = trace.render_timeline()
        lines = art.splitlines()
        assert len(lines) == g.n + 1  # header + one row per node
        assert all("#" in line for line in lines[1:])

    def test_energy_summary_rendering(self):
        trace = ExecutionTrace()
        for v in range(10):
            for r in range(1, v % 3 + 2):
                trace.record(v, r)
        art = trace.render_energy_summary()
        assert "awake-rounds" in art
        assert "█" in art

    def test_co_awake_is_necessary_for_delivery(self):
        """Cross-check the model: a message was delivered only at rounds
        where sender and receiver were co-awake."""
        g = path(2)
        received_at = {}

        def program(info):
            inbox = yield AwakeAt(2 if info.id == 1 else 3, {
                (2 if info.id == 1 else 1): "x"
            })
            if inbox:
                received_at[info.id] = True
            inbox = yield AwakeAt(5, {(2 if info.id == 1 else 1): "y"})
            if inbox:
                received_at[info.id] = True
            return None

        result, trace = traced_simulation(g, program)
        assert trace.co_awake(1, 2) == [5]
        assert received_at == {1: True, 2: True}  # only the round-5 exchange
