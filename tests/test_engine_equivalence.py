"""Differential tests: the rewritten event loops are *bit-identical* to
the seed implementation.

Four engines exist after the fast-path rewrite:

- :class:`SleepingSimulator` — bucketed wake queue, lockstep carry,
  zero-copy broadcasts, lazy inboxes;
- :class:`ReferenceSleepingSimulator` — the seed loop, kept verbatim;
- ``run_local(engine="native")`` — the dedicated lockstep loop, vs the
  generator route (``engine="simulator"``);
- the ``vectorized`` engine — whole-frontier numpy kernels
  (:func:`greedy_by_id_vectorized`, :func:`solve_with_baseline_vectorized`)
  vs their per-node counterparts.

Every test runs the same programs on both sides of a pair and asserts
equal outputs and equal metrics (awake/round complexity, messages_sent,
per-node awake and termination accounting).
"""

import pytest

from repro.graphs import (
    complete_graph,
    cycle,
    gnp,
    path,
    preferential_attachment,
    random_tree,
    star,
)
from repro.model import AwakeAt, Broadcast, SleepingSimulator
from repro.model.lockstep import greedy_by_id_local, run_local
from repro.model.reference import ReferenceSleepingSimulator
from repro.olocal import DeltaPlusOneColoring, MaximalIndependentSet

GRAPHS = [
    ("path-17", lambda: path(17)),
    ("star-12", lambda: star(12)),
    ("complete-9", lambda: complete_graph(9)),
    ("gnp-40", lambda: gnp(40, 0.15, seed=5)),
    ("ba-48", lambda: preferential_attachment(48, 3, seed=7)),
]


def assert_equivalent(graph, program, inputs=None, measure=False):
    new = SleepingSimulator(
        graph, program, inputs=inputs, measure_message_sizes=measure
    ).run()
    old = ReferenceSleepingSimulator(
        graph, program, inputs=inputs, measure_message_sizes=measure
    ).run()
    assert new.outputs == old.outputs
    assert new.metrics.awake_rounds == old.metrics.awake_rounds
    assert new.metrics.termination_round == old.metrics.termination_round
    assert new.metrics.summary() == old.metrics.summary()
    assert new.metrics.max_message_weight == old.metrics.max_message_weight
    assert new.metrics.total_message_weight == old.metrics.total_message_weight
    return new


# -- sleeping programs covering every delivery path --------------------------


def staggered_broadcaster(info):
    """Wake at id-dependent staggered rounds; broadcast id; some messages
    land on sleeping targets and must be lost identically."""
    inbox = yield AwakeAt(1 + info.id % 3, Broadcast(info.id))
    heard = sorted(inbox)
    inbox = yield AwakeAt(10, Broadcast(tuple(heard)))
    return (heard, sorted(inbox))


def directed_sender(info):
    """Explicit per-neighbor dicts, including empty dicts."""
    smaller = {u: ("to", u) for u in info.neighbors if u < info.id}
    inbox = yield AwakeAt(2, smaller)
    inbox2 = yield AwakeAt(4, {})
    return (sorted(inbox), sorted(inbox2))


def early_terminator(info):
    """Half the nodes terminate immediately (round 0 accounting)."""
    if info.id % 2 == 0:
        return "early"
        yield  # pragma: no cover
    inbox = yield AwakeAt(3, Broadcast("late"))
    return sorted(inbox)


def lockstep_quiet(info):
    """Every node awake every round, no messages — the carry fast path."""
    for r in range(1, 12):
        yield AwakeAt(r)
    return info.id


def lockstep_breaker(info):
    """Lockstep for a while, then one node skips ahead — forces the carry
    fast path to fall back to the bucketed queue mid-run."""
    for r in range(1, 5):
        inbox = yield AwakeAt(r, Broadcast(r))
    if info.id == 1:
        inbox = yield AwakeAt(100, Broadcast("skip"))
    else:
        inbox = yield AwakeAt(5 + info.id % 2)
    return sorted(inbox)


def lockstep_broadcaster(info):
    """Every node awake and broadcasting every round — the fully batched
    receiver-centric delivery path (no co-awake filter)."""
    heard = ()
    for r in range(1, 8):
        inbox = yield AwakeAt(r, Broadcast((info.id, r)))
        heard = tuple(sorted(inbox))
    return heard


def sparse_broadcaster(info):
    """All nodes awake but only a few broadcast — below the batching
    threshold, so delivery falls back to the sender-centric path."""
    total = 0
    for r in range(1, 6):
        if info.id <= 2:
            inbox = yield AwakeAt(r, Broadcast(info.id * r))
        else:
            inbox = yield AwakeAt(r)
        total += sum(inbox.values())
    return total


def mixed_sender(info):
    """Broadcasts and dict-addressed sends in the *same* round — the
    batched classifier must bail out to the per-edge path."""
    if info.id % 2 == 0:
        inbox = yield AwakeAt(1, Broadcast(("b", info.id)))
    else:
        inbox = yield AwakeAt(1, {u: ("d", info.id) for u in info.neighbors})
    return sorted(inbox.items())


def order_observer(info):
    """Returns the *raw* inbox key order (no sorting): the batched
    receiver-centric path must insert senders in the same ascending
    order as the reference's sorted-awake sender scan."""
    first = yield AwakeAt(1, Broadcast(info.id))
    second = yield AwakeAt(2 + info.id % 2, Broadcast(-info.id))
    return (list(first), list(second))


PROGRAMS = [
    staggered_broadcaster,
    directed_sender,
    early_terminator,
    lockstep_quiet,
    lockstep_breaker,
    lockstep_broadcaster,
    sparse_broadcaster,
    mixed_sender,
    order_observer,
]


@pytest.mark.parametrize("gname,factory", GRAPHS)
@pytest.mark.parametrize("program", PROGRAMS)
def test_sleeping_engines_bit_identical(gname, factory, program):
    assert_equivalent(factory(), program)


@pytest.mark.parametrize("gname,factory", GRAPHS[:3])
@pytest.mark.parametrize(
    "program", [staggered_broadcaster, lockstep_broadcaster, mixed_sender]
)
def test_message_size_accounting_identical(gname, factory, program):
    assert_equivalent(factory(), program, measure=True)


def test_batched_delivery_with_sparse_ids():
    """Polynomial IDs exceed 2n, so the full-lockstep batched path must
    use the dict route rather than the flat payload list."""
    from repro.util.idspace import polynomial_ids

    n = 24
    g = gnp(n, 0.3, seed=4, ids=polynomial_ids(n, 2, seed=4))
    assert g.nodes[-1] > 2 * n
    assert_equivalent(g, lockstep_broadcaster)
    assert_equivalent(g, lockstep_broadcaster, measure=True)


def test_inputs_pass_through_identically():
    g = gnp(20, 0.2, seed=9)
    inputs = {v: v * v for v in g.nodes}

    def program(info):
        inbox = yield AwakeAt(1, Broadcast(info.input))
        return (info.input, sorted(inbox.values()))

    assert_equivalent(g, program, inputs=inputs)


# -- run_local: native engine vs the generator route -------------------------


def flood_callbacks():
    def first_messages(state):
        state.memory["best"] = state.info.id
        return {u: state.info.id for u in state.info.neighbors}

    def on_round(state, r, inbox):
        best = max([state.memory["best"], *inbox.values()])
        state.memory["best"] = best
        if r >= state.info.n:
            state.finish(best)
        return {u: best for u in state.info.neighbors}

    return first_messages, on_round


def quiet_callbacks(rounds):
    def first_messages(state):
        return None

    def on_round(state, r, inbox):
        assert inbox == {}
        if r >= rounds:
            state.finish(r)
        return None

    return first_messages, on_round


def instant_callbacks():
    def first_messages(state):
        state.finish(("instant", state.info.id))
        return None

    def on_round(state, r, inbox):  # pragma: no cover
        raise AssertionError("never awake")

    return first_messages, on_round


@pytest.mark.parametrize("gname,factory", GRAPHS)
@pytest.mark.parametrize(
    "callbacks", [flood_callbacks, lambda: quiet_callbacks(7), instant_callbacks]
)
def test_run_local_engines_bit_identical(gname, factory, callbacks):
    g = factory()
    first, on_round = callbacks()
    native = run_local(g, first, on_round)
    via_sim = run_local(g, first, on_round, engine="simulator")
    assert native.outputs == via_sim.outputs
    assert native.metrics.awake_rounds == via_sim.metrics.awake_rounds
    assert native.metrics.termination_round == via_sim.metrics.termination_round
    assert native.metrics.summary() == via_sim.metrics.summary()


@pytest.mark.parametrize("gname,factory", GRAPHS)
def test_greedy_strawman_unchanged_by_native_engine(gname, factory):
    """greedy_by_id_local rides the native engine; its outputs must equal
    the sequential greedy oracle and its metrics the generator route."""
    g = factory()
    for problem in (DeltaPlusOneColoring(), MaximalIndependentSet()):
        res = greedy_by_id_local(g, problem)
        assert res.metrics.awake_complexity == res.metrics.round_complexity


def test_native_engine_rejects_non_neighbor_targets():
    from repro.errors import SimulationError

    def first_messages(state):
        return {999: "boo"}

    def on_round(state, r, inbox):  # pragma: no cover
        return None

    with pytest.raises(SimulationError, match="non-neighbor"):
        run_local(path(3), first_messages, on_round)


def test_native_engine_runaway_detected():
    with pytest.raises(RuntimeError, match="exceeded"):
        run_local(path(2), lambda s: None, lambda s, r, i: None, max_rounds=15)


def test_unknown_engine_rejected():
    with pytest.raises(ValueError, match="unknown engine"):
        run_local(path(2), lambda s: None, lambda s, r, i: None, engine="turbo")


# -- vectorized engine vs the per-node engines --------------------------------

# Beyond the shared GRAPHS corpus: structures that stress the wave
# kernels differently — long dependency chains (cycle), non-contiguous
# and non-monotone id spaces (permuted / polynomial), and the n ∈ {1, 2}
# degenerate shapes.
VEC_GRAPHS = GRAPHS + [
    ("cycle-15", lambda: cycle(15)),
    ("tree-33", lambda: random_tree(33, seed=11)),
    ("single", lambda: path(1)),
    ("pair", lambda: path(2)),
    ("gnp-40-permuted", lambda: _permuted_gnp()),
    ("gnp-40-poly", lambda: _poly_gnp()),
]


def _permuted_gnp():
    from repro.util.idspace import permuted_ids

    return gnp(40, 0.15, seed=5, ids=permuted_ids(40, seed=3))


def _poly_gnp():
    from repro.util.idspace import polynomial_ids

    return gnp(40, 0.15, seed=5, ids=polynomial_ids(40, 2, seed=3))


def all_problems():
    from repro.olocal import PROBLEMS

    return [(name, PROBLEMS.get(name)) for name in sorted(PROBLEMS)]


def assert_results_identical(vec, ref):
    assert vec.outputs == ref.outputs
    assert vec.metrics.awake_rounds == ref.metrics.awake_rounds
    assert vec.metrics.termination_round == ref.metrics.termination_round
    assert vec.metrics.summary() == ref.metrics.summary()


@pytest.mark.parametrize("gname,factory", VEC_GRAPHS)
@pytest.mark.parametrize("pname,problem", all_problems())
def test_vectorized_greedy_bit_identical(gname, factory, pname, problem):
    from repro.model.vectorized import greedy_by_id_vectorized

    g = factory()
    inputs = problem.make_inputs(g)
    vec = greedy_by_id_vectorized(g, problem, inputs=inputs)
    ref = greedy_by_id_local(g, problem, inputs=inputs)
    assert_results_identical(vec, ref)
    problem.check(g, vec.outputs, inputs)


@pytest.mark.parametrize("gname,factory", VEC_GRAPHS)
@pytest.mark.parametrize("pname,problem", all_problems())
def test_vectorized_baseline_bit_identical(gname, factory, pname, problem):
    from repro.core.bm21 import solve_with_baseline
    from repro.core.bm21_vectorized import solve_with_baseline_vectorized

    g = factory()
    vec = solve_with_baseline_vectorized(g, problem)
    ref = solve_with_baseline(g, problem)
    assert vec.palette == ref.palette
    assert_results_identical(vec.simulation, ref.simulation)


# -- the clustered pipeline: Theorem 13 / Theorem 9 / Theorem 1 ---------------
#
# The headline-pipeline kernels replay a *composition* of protocols
# (Linial reductions, BFS casts, the virtual-graph calendar), so beyond
# outputs the per-node schedules — awake_rounds, termination_round and
# the full summary() including active_rounds and messages_sent — must be
# bit-identical to the per-node simulator.


def test_vectorized_clustering_bit_identical():
    from repro.core.clustering_vectorized import compute_clustering_vectorized
    from repro.core.theorem13 import compute_clustering

    for gname, factory in VEC_GRAPHS:
        g = factory()
        vec = compute_clustering_vectorized(g)
        ref = compute_clustering(g)
        assert vec.clustering.color == ref.clustering.color, gname
        assert vec.clustering.dist == ref.clustering.dist, gname
        assert vec.assignments == ref.assignments, gname
        assert_results_identical(vec.simulation, ref.simulation)


@pytest.mark.parametrize("b", [1, 2, 8])
def test_vectorized_clustering_b_ablations_bit_identical(b):
    """b = 1 forces heavy multi-phase residual merging; b = 8 makes every
    cluster a singleton in phase one — both ends of Lemma 14/15."""
    from repro.core.clustering_vectorized import compute_clustering_vectorized
    from repro.core.theorem13 import compute_clustering

    g = gnp(60, 0.1, seed=2)
    vec = compute_clustering_vectorized(g, b=b)
    ref = compute_clustering(g, b=b)
    assert vec.assignments == ref.assignments
    assert_results_identical(vec.simulation, ref.simulation)


@pytest.mark.parametrize("gname,factory", VEC_GRAPHS)
@pytest.mark.parametrize("pname", ["mis", "coloring"])
def test_vectorized_theorem1_bit_identical(gname, factory, pname):
    from repro.core import theorem1
    from repro.core.theorem1_vectorized import solve_vectorized
    from repro.olocal import PROBLEMS

    problem = PROBLEMS.get(pname)
    g = factory()
    vec = solve_vectorized(g, problem)
    ref = theorem1.solve(g, problem)
    assert vec.outputs == ref.outputs
    assert vec.clustering.color == ref.clustering.color
    assert vec.clustering.dist == ref.clustering.dist
    assert_results_identical(vec.simulation, ref.simulation)


@pytest.mark.parametrize("pname,problem", all_problems())
def test_vectorized_theorem1_all_problems_bit_identical(pname, problem):
    from repro.core import theorem1
    from repro.core.theorem1_vectorized import solve_vectorized

    g = gnp(40, 0.15, seed=5)
    vec = solve_vectorized(g, problem)
    ref = theorem1.solve(g, problem)
    assert vec.outputs == ref.outputs
    assert_results_identical(vec.simulation, ref.simulation)


@pytest.mark.parametrize("seed", [5, 11])
def test_vectorized_theorem1_across_seeds(seed):
    from repro.core import theorem1
    from repro.core.theorem1_vectorized import solve_vectorized
    from repro.olocal import PROBLEMS

    g = gnp(44, 0.12, seed=seed)
    problem = PROBLEMS.get("mis")
    vec = solve_vectorized(g, problem)
    ref = theorem1.solve(g, problem)
    assert vec.outputs == ref.outputs
    assert_results_identical(vec.simulation, ref.simulation)


@pytest.mark.parametrize("gname,factory", VEC_GRAPHS)
@pytest.mark.parametrize("pname,problem", all_problems())
def test_vectorized_theorem9_bit_identical(gname, factory, pname, problem):
    """Theorem 9 alone, both engines fed the same precomputed
    clustering — isolates the solver-stage kernel from Theorem 13."""
    from repro.core.theorem9 import solve_with_clustering
    from repro.core.theorem1_vectorized import solve_with_clustering_vectorized
    from repro.core.theorem13 import compute_clustering

    g = factory()
    clustering = compute_clustering(g).clustering
    vec = solve_with_clustering_vectorized(g, problem, clustering)
    ref = solve_with_clustering(g, problem, clustering)
    assert vec.palette == ref.palette
    assert vec.outputs == ref.outputs
    assert_results_identical(vec.simulation, ref.simulation)


def test_vectorized_theorem9_singleton_clusters_bit_identical():
    """All-singleton clustering (every node its own cluster, δ = 0) —
    the degenerate calendar where every node is a root."""
    from repro.core.clustering import ColoredBFSClustering
    from repro.core.theorem9 import solve_with_clustering
    from repro.core.theorem1_vectorized import solve_with_clustering_vectorized
    from repro.olocal import MaximalIndependentSet

    g = gnp(30, 0.2, seed=8)
    clustering = ColoredBFSClustering(
        color={v: i + 1 for i, v in enumerate(g.nodes)},
        dist={v: 0 for v in g.nodes},
    )
    problem = MaximalIndependentSet()
    vec = solve_with_clustering_vectorized(g, problem, clustering)
    ref = solve_with_clustering(g, problem, clustering)
    assert vec.outputs == ref.outputs
    assert_results_identical(vec.simulation, ref.simulation)
