"""Tests for Lemma 14: flattening two-level clusterings (Figure 2)."""

import pytest

from repro.core.clustering import UniquelyLabeledBFSClustering
from repro.core.lemma14 import (
    lemma14_duration,
    lemma14_protocol,
    lemma14_reference,
)
from repro.errors import ProtocolError, SimulationError
from repro.graphs import path
from repro.graphs.examples import figure2_instance
from repro.model import SleepingSimulator


def run_distributed(instance):
    g = instance.graph
    l1, d1 = instance.level1_label, instance.level1_dist
    l2, d2 = instance.level2_label, instance.level2_dist
    space = max(l2.values()) + 1

    def program(info):
        lab = l1[info.id]
        out = yield from lemma14_protocol(
            me=info.id, peers=info.neighbors,
            label=lab, delta=d1[info.id],
            label2=l2[lab], dist2=d2[lab],
            n=info.n, t0=1, label_space=space,
        )
        return out

    return SleepingSimulator(g, program).run()


class TestFigure2:
    def test_distributed_equals_reference(self):
        inst = figure2_instance()
        res = run_distributed(inst)
        ref = lemma14_reference(
            inst.graph, inst.level1_label, inst.level1_dist,
            inst.level2_label, inst.level2_dist,
        )
        assert res.outputs == ref

    def test_result_is_valid_uniquely_labeled_clustering(self):
        """The output (ℓ'', δ'') satisfies Definition 2 — the theorem's
        whole point."""
        inst = figure2_instance()
        ref = lemma14_reference(
            inst.graph, inst.level1_label, inst.level1_dist,
            inst.level2_label, inst.level2_dist,
        )
        flattened = UniquelyLabeledBFSClustering(
            label={v: out.label for v, out in ref.items()},
            dist={v: out.dist for v, out in ref.items()},
        )
        flattened.validate(inst.graph)

    def test_virtual_graph_is_k(self):
        """The virtual graph of (ℓ'', δ'') equals K: here the two
        super-clusters are adjacent, so K is a single edge."""
        inst = figure2_instance()
        ref = lemma14_reference(
            inst.graph, inst.level1_label, inst.level1_dist,
            inst.level2_label, inst.level2_dist,
        )
        flattened = UniquelyLabeledBFSClustering(
            label={v: out.label for v, out in ref.items()},
            dist={v: out.dist for v, out in ref.items()},
        )
        k = flattened.virtual_graph(inst.graph)
        assert set(k.nodes) == {101, 102}
        assert list(k.edges()) == [(101, 102)]

    def test_new_root_rule(self):
        """δ''(v)=0 iff δ(v)=0 and δ'(ℓ(v))=0 — the paper's root rule."""
        inst = figure2_instance()
        ref = lemma14_reference(
            inst.graph, inst.level1_label, inst.level1_dist,
            inst.level2_label, inst.level2_dist,
        )
        for v, out in ref.items():
            is_root = (
                inst.level1_dist[v] == 0
                and inst.level2_dist[inst.level1_label[v]] == 0
            )
            assert (out.dist == 0) == is_root

    def test_distance_uses_induced_graph_not_tree(self):
        """Node 8 (cluster C, δ=2) can reach root 4 via 8-9-10-... or the
        inter-cluster shortcut; δ'' must be the induced-graph distance."""
        inst = figure2_instance()
        ref = lemma14_reference(
            inst.graph, inst.level1_label, inst.level1_dist,
            inst.level2_label, inst.level2_dist,
        )
        g = inst.graph
        for v, out in ref.items():
            members = {u for u, o in ref.items() if o.label == out.label}
            dist = _induced_distance(g, members, out.root, v)
            assert out.dist == dist


class TestConstantAwake:
    def test_awake_constant_rounds_quadratic(self):
        inst = figure2_instance()
        res = run_distributed(inst)
        # constant, independent of n: setup (≤5) + 5 awake virtual rounds
        # (1 exchange + ≤4 gather) × ≤5 concrete rounds each = 30
        assert res.awake_complexity <= 30
        assert res.round_complexity <= lemma14_duration(inst.graph.n)


class TestErrorPaths:
    def test_members_disagreeing_on_l2_detected(self):
        inst = figure2_instance()
        bad_l2 = dict(inst.level2_label)

        g = inst.graph
        l1, d1 = inst.level1_label, inst.level1_dist
        d2 = inst.level2_dist
        space = 200

        def program(info):
            lab = l1[info.id]
            # node 2 lies about its super-cluster
            l2v = 999 if info.id == 2 else bad_l2[lab]
            out = yield from lemma14_protocol(
                me=info.id, peers=info.neighbors, label=lab,
                delta=d1[info.id], label2=l2v, dist2=d2[lab],
                n=info.n, t0=1, label_space=space,
            )
            return out

        with pytest.raises((ProtocolError, SimulationError), match="disagree"):
            SleepingSimulator(g, program).run()

    def test_reference_rejects_disconnected_merge(self):
        g = path(5)
        # clusters {1},{3},{5} merged into one super-cluster but 2,4 absent
        with pytest.raises(ProtocolError):
            lemma14_reference(
                g,
                level1_label={1: 11, 2: 12, 3: 13, 4: 14, 5: 15},
                level1_dist={v: 0 for v in g.nodes},
                level2_label={11: 7, 12: 8, 13: 7, 14: 8, 15: 7},
                level2_dist={11: 0, 12: 0, 13: 1, 14: 1, 15: 2},
            )


def _induced_distance(graph, members, source, target):
    from collections import deque

    dist = {source: 0}
    queue = deque([source])
    while queue:
        v = queue.popleft()
        for u in graph.neighbors(v):
            if u in members and u not in dist:
                dist[u] = dist[v] + 1
                queue.append(u)
    return dist[target]
