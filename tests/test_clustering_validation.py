"""Differential tests: array clustering validation vs the per-node walk.

`validate_clustering_arrays` / `validate_clustering_vectorized`
(clustering_vectorized.py) must accept exactly the clusterings
`ColoredBFSClustering.validate` accepts and reject exactly the ones it
rejects — same Definition 4, same error vocabulary — while running as
whole-graph kernels instead of a per-node Python walk.
"""

import pytest

np = pytest.importorskip("numpy")

from repro.core.clustering import ClusteringError, ColoredBFSClustering
from repro.core.clustering_vectorized import (
    compute_clustering_vectorized,
    validate_clustering_arrays,
    validate_clustering_vectorized,
)
from repro.core.theorem13 import compute_clustering
from repro.graphs.families import build_family_graph

FAMILIES = [
    ("path", 24), ("cycle", 20), ("grid", 36), ("gnp", 48),
    ("complete", 12), ("star", 16),
]


def both_validate(graph, clustering):
    """Run both validators; return (per-node error, array error)."""
    per_node = array = None
    try:
        clustering.validate(graph)
    except ClusteringError as exc:
        per_node = str(exc)
    try:
        validate_clustering_vectorized(graph, clustering)
    except ClusteringError as exc:
        array = str(exc)
    return per_node, array


class TestAcceptsValidClusterings:
    @pytest.mark.parametrize("family,n", FAMILIES)
    def test_pipeline_output_accepted_by_both(self, family, n):
        graph = build_family_graph(family, n, seed=3)
        clustering = compute_clustering(graph, b=4).clustering.canonical()
        per_node, array = both_validate(graph, clustering)
        assert per_node is None
        assert array is None

    def test_singleton_clusters(self):
        graph = build_family_graph("path", 8, seed=0)
        clustering = ColoredBFSClustering(
            color={v: i + 1 for i, v in enumerate(sorted(graph.nodes))},
            dist={v: 0 for v in graph.nodes},
        )
        assert both_validate(graph, clustering) == (None, None)

    def test_disconnected_color_class_is_legal(self):
        """Two far-apart clusters may share a color (Definition 4: each
        *connected component* is a cluster)."""
        graph = build_family_graph("path", 7, seed=0)
        a, b, c, d, e, f, g = sorted(graph.nodes)
        clustering = ColoredBFSClustering(
            color={a: 1, b: 1, c: 2, d: 2, e: 2, f: 1, g: 1},
            dist={a: 0, b: 1, c: 1, d: 0, e: 1, f: 0, g: 1},
        )
        assert both_validate(graph, clustering) == (None, None)


class TestRejectsCorruptedClusterings:
    @pytest.fixture()
    def valid(self):
        graph = build_family_graph("gnp", 40, seed=7)
        clustering = compute_clustering(graph, b=4).clustering.canonical()
        return graph, clustering

    def corrupt(self, clustering, **overrides):
        color = dict(clustering.color)
        dist = dict(clustering.dist)
        color.update(overrides.get("color", {}))
        dist.update(overrides.get("dist", {}))
        return ColoredBFSClustering(color=color, dist=dist)

    def test_shifted_dist_rejected_by_both(self, valid):
        graph, clustering = valid
        victim = min(graph.nodes)
        bad = self.corrupt(
            clustering, dist={victim: clustering.dist[victim] + 1}
        )
        per_node, array = both_validate(graph, bad)
        assert per_node is not None
        assert array is not None

    def test_two_roots_rejected_by_both(self, valid):
        graph, clustering = valid
        # Make every member of some multi-node cluster a root.
        cluster = next(
            c for c in clustering.clusters(graph) if len(c.members) > 1
        )
        bad = self.corrupt(
            clustering, dist={v: 0 for v in cluster.members}
        )
        per_node, array = both_validate(graph, bad)
        assert per_node is not None and "roots" in per_node
        assert array is not None and "roots" in array

    def test_zero_roots_rejected_by_both(self, valid):
        graph, clustering = valid
        cluster = clustering.clusters(graph)[0]
        bad = self.corrupt(
            clustering,
            dist={v: clustering.dist[v] + 1 for v in cluster.members},
        )
        per_node, array = both_validate(graph, bad)
        assert per_node is not None and "0 roots" in per_node
        assert array is not None and "0 roots" in array

    def test_wrong_depth_message_matches_per_node(self, valid):
        """Deep-node corruption: both validators name the same δ
        violation (root and expected distance)."""
        graph, clustering = valid
        deep = max(clustering.dist, key=lambda v: clustering.dist[v])
        if clustering.dist[deep] == 0:
            pytest.skip("clustering has only singleton clusters")
        bad = self.corrupt(
            clustering, dist={deep: clustering.dist[deep] + 5}
        )
        per_node, array = both_validate(graph, bad)
        assert per_node is not None
        assert array is not None
        assert "induced BFS distance" in per_node
        assert "induced BFS distance" in array

    def test_missing_node_rejected_by_both(self, valid):
        graph, clustering = valid
        victim = min(graph.nodes)
        color = dict(clustering.color)
        dist = dict(clustering.dist)
        del color[victim], dist[victim]
        bad = ColoredBFSClustering(color=color, dist=dist)
        per_node, array = both_validate(graph, bad)
        assert per_node == "coloring does not cover exactly the node set"
        assert array == "coloring does not cover exactly the node set"


class TestArrayPathDetails:
    def test_non_integer_palette_falls_back(self):
        graph = build_family_graph("path", 6, seed=0)
        nodes = sorted(graph.nodes)
        clustering = ColoredBFSClustering(
            color={v: ("phase", 1) for v in nodes},
            dist={v: i for i, v in enumerate(nodes)},
        )
        # Falls back to the per-node validator (and still rejects:
        # the single path-cluster has its root at one end, so this
        # dist is actually valid — build an invalid variant).
        validate_clustering_vectorized(graph, clustering)
        bad = ColoredBFSClustering(
            color={v: ("phase", 1) for v in nodes},
            dist={v: 1 for v in nodes},
        )
        with pytest.raises(ClusteringError):
            validate_clustering_vectorized(graph, bad)

    def test_raw_array_entry_point(self):
        graph = build_family_graph("cycle", 10, seed=0)
        ids = graph.arrays.ids.tolist()
        clustering = compute_clustering(graph, b=4).clustering.canonical()
        color = np.array([clustering.color[v] for v in ids], dtype=np.int64)
        dist = np.array([clustering.dist[v] for v in ids], dtype=np.int64)
        validate_clustering_arrays(graph, color, dist)
        with pytest.raises(ClusteringError, match="roots"):
            validate_clustering_arrays(graph, color, dist + 1)

    def test_wrong_length_rejected(self):
        graph = build_family_graph("path", 5, seed=0)
        with pytest.raises(ClusteringError, match="cover"):
            validate_clustering_arrays(
                graph,
                np.zeros(3, dtype=np.int64),
                np.zeros(5, dtype=np.int64),
            )

    def test_empty_graph(self):
        graph = build_family_graph("path", 1, seed=0)
        validate_clustering_arrays(
            graph,
            np.ones(1, dtype=np.int64),
            np.zeros(1, dtype=np.int64),
        )


class TestPipelineIntegration:
    @pytest.mark.parametrize("family,n", [("path", 20), ("gnp", 40)])
    def test_vectorized_pipeline_validates_with_arrays(self, family, n):
        """compute_clustering_vectorized(validate=True) output equals
        the simulator pipeline's, with validation on the array path."""
        graph = build_family_graph(family, n, seed=1)
        ref = compute_clustering(graph, b=4, validate=True)
        vec = compute_clustering_vectorized(graph, b=4, validate=True)
        assert vec.clustering.color == ref.clustering.color
        assert vec.clustering.dist == ref.clustering.dist

    def test_solve_vectorized_validates_with_arrays(self):
        from repro.core.theorem1 import solve
        from repro.core.theorem1_vectorized import solve_vectorized
        from repro.olocal import PROBLEMS

        graph = build_family_graph("gnp", 36, seed=2)
        problem = PROBLEMS.get("mis")
        ref = solve(graph, problem, validate=True)
        vec = solve_vectorized(graph, problem, validate=True)
        assert vec.outputs == ref.outputs
        assert (
            vec.simulation.metrics.messages_sent
            == ref.simulation.metrics.messages_sent
        )

    def test_palette_bound_still_enforced(self):
        """The vectorized validate path keeps the Theorem 13 color
        bound check (ProtocolError, not ClusteringError)."""
        from repro.core.theorem13 import color_palette_bound

        graph = build_family_graph("gnp", 40, seed=0)
        result = compute_clustering_vectorized(graph, b=4, validate=True)
        assert result.clustering.max_color() <= color_palette_bound(
            graph.n, 4
        )
