"""The observability layer: spans, counters, progress, CLI surfaces.

The load-bearing guarantees, in test form:

- the disabled path is free — ``span()`` hands back one shared no-op
  singleton and the instrumented hot loops retain zero allocations
  attributable to the tracing module;
- tracing never changes results — tables, deterministic artifact views
  and trial cache keys are byte-identical with tracing on or off, at
  one worker and at two;
- the span tree is sound across processes — fork-pool trial spans
  parent to the sweep span emitted by the parent process;
- the trace reconciles with the artifact — one ``trial.result`` event
  per artifact trial, cache-hit flags matching;
- ``repro trace`` / ``repro stats`` round-trip the files the sweep
  writes.
"""

from __future__ import annotations

import json
import re
import tracemalloc
from dataclasses import replace
from pathlib import Path

import pytest

from repro.cli import main
from repro.graphs import gnp, path
from repro.obs import spans
from repro.obs.progress import SweepProgress
from repro.obs.render import check_trace, load_trace, trial_records
from repro.olocal import MaximalIndependentSet
from repro.runner import TrialCache, run_sweep
from repro.runner.artifacts import (
    deterministic_view,
    sweep_artifact_payload,
)
from repro.runner.executor import pool_start_method
from repro.runner.trials import sweep_from_grid

HAS_FORK = pool_start_method() == "fork"


@pytest.fixture(autouse=True)
def _tracing_off_after():
    """Every test leaves the process untraced (and the env var clear)."""
    yield
    spans.disable()


def _grid(trials=1, sizes=(8, 12), name="obs"):
    return sweep_from_grid(
        families=["path"],
        sizes=list(sizes),
        problems=["mis"],
        algorithms=["theorem1"],
        trials_per_config=trials,
        name=name,
    )


# -- span mechanics -----------------------------------------------------------


class TestSpans:
    def test_disabled_span_is_the_shared_singleton(self):
        assert not spans.enabled()
        assert spans.span("anything", n=3) is spans.NOOP_SPAN
        assert spans.span("other") is spans.NOOP_SPAN
        spans.event("ignored", n=1)  # no emitter, no error

    def test_spans_nest_and_parent(self, tmp_path):
        trace = tmp_path / "t.jsonl"
        spans.configure(trace)
        with spans.span("outer", n=1):
            with spans.span("inner") as inner:
                inner.event("tick", x=2)
        spans.disable()
        records, bad = load_trace(trace)
        assert bad == 0
        by_name = {r["name"]: r for r in records}
        assert by_name["inner"]["parent"] == by_name["outer"]["id"]
        assert by_name["outer"]["parent"] is None
        assert by_name["tick"]["parent"] == by_name["inner"]["id"]
        assert by_name["tick"]["kind"] == "event"
        assert all(r["dur"] >= 0 for r in records)
        assert check_trace(records, bad) == []

    def test_exception_is_recorded_and_reraised(self, tmp_path):
        trace = tmp_path / "t.jsonl"
        spans.configure(trace)
        with pytest.raises(ValueError):
            with spans.span("doomed"):
                raise ValueError("boom")
        spans.disable()
        (record,), bad = load_trace(trace)
        assert record["error"] == "ValueError"

    def test_configure_truncates_and_disable_clears_env(self, tmp_path):
        import os

        trace = tmp_path / "t.jsonl"
        trace.write_text("stale line\n")
        spans.configure(trace)
        assert os.environ[spans.TRACE_ENV] == str(trace)
        spans.disable()
        assert spans.TRACE_ENV not in os.environ
        assert trace.read_text() == ""  # stale content gone

    @pytest.mark.skipif(not HAS_FORK, reason="needs fork start method")
    def test_fork_worker_spans_parent_to_the_sweep_span(self, tmp_path):
        spans.configure(tmp_path / "t.jsonl")
        run_sweep(_grid(trials=2), workers=2)
        spans.disable()
        records, bad = load_trace(tmp_path / "t.jsonl")
        assert check_trace(records, bad) == []
        assert len({r["pid"] for r in records}) >= 2
        (sweep_span,) = [r for r in records if r["name"] == "sweep"]
        trial_spans = [r for r in records if r["name"] == "trial.run"]
        assert len(trial_spans) == 4
        worker_spans = [
            r for r in trial_spans if r["pid"] != sweep_span["pid"]
        ]
        assert worker_spans, "no trial ran in a worker process"
        for record in worker_spans:
            # The contextvar crossed the fork: worker-side trial spans
            # hang off the parent process's sweep span.
            assert record["parent"] == sweep_span["id"]


# -- the zero-overhead contract ----------------------------------------------


class TestNoopOverhead:
    @staticmethod
    def _retained_by_spans_module(run):
        run()  # warm caches and imports outside the measured window
        tracemalloc.start()
        run()
        snapshot = tracemalloc.take_snapshot()
        tracemalloc.stop()
        spans_file = spans.__file__
        return sum(
            stat.size
            for stat in snapshot.statistics("filename")
            if stat.traceback[0].filename == spans_file
        )

    def test_lockstep_hot_loop_retains_no_tracing_allocations(self):
        """With tracing off, a full engine run must leave zero live
        allocations attributable to the spans module — the no-op path
        hands out one pre-built singleton and touches nothing else."""
        from repro.model.lockstep import greedy_by_id_callbacks, run_local

        assert not spans.enabled()
        g = path(64)
        first, on_round, _ = greedy_by_id_callbacks(
            g, MaximalIndependentSet()
        )
        assert self._retained_by_spans_module(
            lambda: run_local(g, first, on_round)
        ) == 0

    def test_simulator_loop_also_clean(self):
        from repro.model.actions import AwakeAt
        from repro.model.simulator import SleepingSimulator

        assert not spans.enabled()
        g = gnp(48, 0.15, seed=3)

        def program(info):
            yield AwakeAt(1 + info.id % 3)
            return None

        assert self._retained_by_spans_module(
            lambda: SleepingSimulator(g, program).run()
        ) == 0


# -- tracing never changes results -------------------------------------------


class TestByteIdentity:
    @pytest.mark.parametrize(
        "workers", [1, pytest.param(2, marks=pytest.mark.skipif(
            not HAS_FORK, reason="needs fork start method"))]
    )
    def test_tables_views_and_cache_keys_identical(self, tmp_path, workers):
        spec = _grid(trials=1)
        plain_cache = TrialCache(tmp_path / "c1")
        plain = run_sweep(spec, workers=workers, cache=plain_cache)
        plain_keys = [plain_cache.key(t) for t in spec.trials]

        spans.configure(tmp_path / "t.jsonl")
        traced_cache = TrialCache(tmp_path / "c2")
        traced = run_sweep(spec, workers=workers, cache=traced_cache)
        traced_keys = [traced_cache.key(t) for t in spec.trials]
        spans.disable()

        assert plain.render() == traced.render()
        assert plain_keys == traced_keys
        assert deterministic_view(
            sweep_artifact_payload(plain)
        ) == deterministic_view(sweep_artifact_payload(traced))

    def test_trace_reconciles_with_artifact_trials(self, tmp_path):
        """Acceptance: per-trial trace events match the artifact's trial
        list — same count, same cache-hit flags — on a warm-cache run
        that mixes hits and executions."""
        spec = _grid(trials=1)
        cache = TrialCache(tmp_path / "cache")
        run_sweep(spec, workers=1, cache=cache)  # warm the cache

        spans.configure(tmp_path / "t.jsonl")
        result = run_sweep(spec, workers=1, cache=cache)
        spans.disable()
        payload = sweep_artifact_payload(result)

        records, bad = load_trace(tmp_path / "t.jsonl")
        assert check_trace(records, bad) == []
        events = trial_records(records)
        artifact_trials = payload["timing"]["trials"]
        assert len(events) == len(artifact_trials)
        assert all(e["attrs"]["cached"] for e in events)
        assert sorted(
            (e["attrs"]["label"], e["attrs"]["cached"]) for e in events
        ) == sorted(
            (t["label"], t["cached"]) for t in artifact_trials
        )


# -- counters, observability block, resilience footer ------------------------


class TestCountersAndFooter:
    def test_clean_sweep_counters_and_no_footer(self):
        result = run_sweep(_grid(trials=1), workers=1)
        obs = result.observability
        assert obs["counters"]["trial.run"] == len(result.outcomes)
        assert obs["counters"]["sim.run"] >= len(result.outcomes)
        assert obs["peak_rss_kib"] > 0
        assert obs["retries"]["trials_retried"] == 0
        assert result.resilience_summary() is None
        assert "resilience:" not in result.render()

    def test_footer_renders_from_observability(self):
        result = run_sweep(_grid(trials=1), workers=1)
        doctored = replace(
            result,
            observability={
                **result.observability,
                "retries": {
                    "trials_retried": 2,
                    "attempts": 3,
                    "timeouts": 1,
                    "worker_deaths": 0,
                },
            },
        )
        assert doctored.resilience_summary() == (
            "2 trial(s) retried (1 timeout(s), 0 worker death(s))"
        )
        assert doctored.render().endswith(
            "resilience: 2 trial(s) retried (1 timeout(s), 0 worker "
            "death(s))"
        )

    def test_artifact_carries_observability_outside_deterministic_view(self):
        result = run_sweep(_grid(trials=1), workers=1)
        payload = sweep_artifact_payload(result)
        assert payload["observability"]["counters"]["trial.run"] == len(
            result.outcomes
        )
        assert "observability" not in deterministic_view(payload)


# -- consolidated progress line ----------------------------------------------


class TestSweepProgress:
    class _Outcome:
        def __init__(self, index, cached=False, resumed=False):
            from repro.runner.trials import TrialSpec

            self.spec = TrialSpec(
                index=index, seed=1, kind="solve", key="mis",
                label=f"t{index}", kwargs=(),
            )
            self.cached = cached
            self.resumed = resumed
            self.seconds = 0.25
            self.worker = 1234

    def test_consolidated_line_and_hit_rate(self):
        import io

        stream = io.StringIO()
        progress = SweepProgress(4, workers=2, stream=stream)
        for i in range(3):
            progress(self._Outcome(i, cached=i > 0))
        progress(self._Outcome(3, resumed=True))
        progress.finish()
        text = stream.getvalue()
        assert "4/4 trials" in text
        assert "2 cache hit(s)" in text
        assert "1 resumed from journal" in text

    def test_verbose_keeps_per_trial_lines(self):
        import io

        stream = io.StringIO()
        progress = SweepProgress(2, stream=stream, verbose=True)
        progress(self._Outcome(0))
        progress(self._Outcome(1, cached=True))
        progress.finish()
        lines = stream.getvalue().splitlines()
        assert lines[0].startswith("  [1/2] t0 (0.25s, pid 1234)")
        assert "cache hit" in lines[1]


# -- CLI round-trips ----------------------------------------------------------


class TestCliRoundTrips:
    def _traced_sweep(self, tmp_path, capsys):
        argv = [
            "sweep", "--grid", "--families", "path", "--sizes", "8", "12",
            "--problems", "mis", "--algorithms", "theorem1",
            "--no-cache", "--output-dir", str(tmp_path), "--tag", "cli",
            "--trace",
        ]
        assert main(argv) == 0
        captured = capsys.readouterr()
        assert f"wrote {tmp_path}/SWEEP_cli.trace.jsonl" in captured.err
        return tmp_path / "SWEEP_cli.trace.jsonl", tmp_path / "SWEEP_cli.json"

    def test_sweep_trace_then_trace_and_stats(self, tmp_path, capsys):
        trace_file, artifact = self._traced_sweep(tmp_path, capsys)
        assert trace_file.exists() and artifact.exists()

        assert main(["trace", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "trial timeline (2 trial(s))" in out
        assert "slowest spans" in out
        assert "trial.run" in out

        assert main(["trace", str(trace_file), "--check"]) == 0
        assert "spans balance" in capsys.readouterr().out

        assert main(["stats", str(artifact)]) == 0
        out = capsys.readouterr().out
        assert "2 trial(s) (2 executed)" in out
        assert "counters:" in out

    def test_trace_check_flags_unbalanced_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text(
            json.dumps(
                {
                    "kind": "span", "name": "x", "id": "1-1",
                    "parent": "1-99", "pid": 1, "t0": 0.0, "dur": 0.1,
                }
            )
            + "\nnot json\n"
        )
        assert main(["trace", str(bad), "--check"]) == 1
        err = capsys.readouterr().err
        assert "trace problem" in err

    def test_stats_bench_history(self, tmp_path, capsys):
        history = tmp_path / "hist.jsonl"
        history.write_text(
            json.dumps(
                {
                    "date": "2026-08-08T00:00:00", "mode": "quick",
                    "cases": 2, "speedups": {"a": 4.0, "b": 1.0},
                }
            )
            + "\n"
        )
        assert main(
            ["stats", "--bench", "--bench-history", str(history)]
        ) == 0
        out = capsys.readouterr().out
        assert "benchmark history" in out
        assert "2.0x" in out  # geomean of 4.0 and 1.0

    def test_stats_without_inputs_errors(self):
        with pytest.raises(SystemExit, match="pass SWEEP_"):
            main(["stats"])

    def test_report_trace_flag_exists(self):
        # --trace/--profile are registered once in add_report_args and
        # shared by `repro report` and `python -m repro.analysis.report`.
        import argparse

        from repro.analysis.report import add_report_args

        parser = argparse.ArgumentParser()
        add_report_args(parser)
        args = parser.parse_args(["--trace"])
        assert args.trace and not args.profile

    def test_solve_profile_writes_run_trace(
        self, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        argv = [
            "solve", "--family", "path", "--n", "12", "--problem", "mis",
            "--algorithm", "theorem1", "--profile",
        ]
        assert main(argv) == 0
        captured = capsys.readouterr()
        assert "wrote RUN.trace.jsonl" in captured.err
        assert "slowest spans" in captured.err
        records, bad = load_trace(tmp_path / "RUN.trace.jsonl")
        assert check_trace(records, bad) == []
        names = {r["name"] for r in records}
        assert {"scenario.run", "scenario.build_graph",
                "scenario.solve"} <= names


# -- docs stay in sync with the instrumentation ------------------------------


class TestDocsSync:
    REPO = Path(__file__).resolve().parent.parent
    OBS_DOC = REPO / "docs" / "OBSERVABILITY.md"

    SPAN_RE = re.compile(
        r"(?:\b(?:obs_)?span|\b(?:obs_)?event|\.event)"
        r"\(\s*[\"']([a-z0-9_.]+)[\"']"
    )
    COUNTER_RE = re.compile(
        r"(?:obs_)?counters\.add\(\s*[\"']([a-z0-9_.]+)[\"']"
    )

    def _source_names(self, pattern):
        names = set()
        src = self.REPO / "src" / "repro"
        for path in src.rglob("*.py"):
            if (src / "obs") in path.parents:
                continue  # the emitter itself, not an instrumented site
            names.update(pattern.findall(path.read_text(encoding="utf-8")))
        return names

    def test_every_span_and_event_name_is_documented(self):
        doc = self.OBS_DOC.read_text(encoding="utf-8")
        names = self._source_names(self.SPAN_RE)
        assert names, "no instrumented spans found in src/"
        missing = {n for n in names if f"`{n}`" not in doc}
        assert not missing, (
            f"span/event names used in src/ but absent from the "
            f"docs/OBSERVABILITY.md taxonomy: {sorted(missing)}"
        )

    def test_every_counter_name_is_documented(self):
        doc = self.OBS_DOC.read_text(encoding="utf-8")
        names = self._source_names(self.COUNTER_RE)
        assert names, "no counter increments found in src/"
        missing = {n for n in names if f"`{n}`" not in doc}
        assert not missing, (
            f"counter names used in src/ but absent from "
            f"docs/OBSERVABILITY.md: {sorted(missing)}"
        )

    def test_readme_quickstart_mentions_tracing(self):
        readme = (self.REPO / "README.md").read_text(encoding="utf-8")
        assert "--trace" in readme
        assert "repro trace" in readme
        assert "docs/OBSERVABILITY.md" in readme

    def test_architecture_layer_map_mentions_obs(self):
        arch = (self.REPO / "docs" / "ARCHITECTURE.md").read_text(
            encoding="utf-8"
        )
        assert "`obs/`" in arch
        assert "docs/OBSERVABILITY.md" in arch
