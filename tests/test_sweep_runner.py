"""Tests for the sweep-runner subsystem (repro.runner).

Covers the three properties the runner promises:

- **determinism** — same spec ⇒ identical aggregated tables and
  deterministic artifact layer, regardless of the worker count;
- **failure surfacing** — a raising trial and a hard worker death both
  surface as ``SweepError`` naming what failed;
- **CLI** — ``python -m repro sweep`` argument parsing and artifact
  output.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.analysis import experiments as exp_mod
from repro.analysis.experiments import ExperimentPlan, TRIAL_PLANS
from repro.cli import main, make_parser
from repro.runner import (
    SweepError,
    SweepSpec,
    TrialSpec,
    derive_seed,
    execute_trial,
    run_sweep,
    sweep_artifact_payload,
    sweep_from_experiments,
    sweep_from_grid,
    write_sweep_artifact,
)
from repro.runner.artifacts import deterministic_view
from repro.runner.executor import pool_start_method

#: The monkeypatch-based failure-injection tests need workers that
#: inherit the patched registry, i.e. the executor must fork.
HAS_FORK = pool_start_method() == "fork"

#: Cheap experiments (sub-second combined) for multi-run tests.
CHEAP = ("E2", "E4", "E5", "E10")


# -- seed derivation ---------------------------------------------------------


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(0, "gnp", 64) == derive_seed(0, "gnp", 64)

    def test_coordinates_matter(self):
        seeds = {
            derive_seed(0, "gnp", 64),
            derive_seed(0, "gnp", 65),
            derive_seed(0, "path", 64),
            derive_seed(1, "gnp", 64),
        }
        assert len(seeds) == 4

    def test_fits_in_63_bits(self):
        for coords in [(), ("x",), (10**9, "y", 3.5)]:
            seed = derive_seed(7, *coords)
            assert 0 <= seed < 2**63

    def test_known_value_stable_across_processes(self):
        # sha256-based, not hash()-based: must not change run to run.
        assert derive_seed(0) == derive_seed(0)
        assert derive_seed(0) != derive_seed(1)


# -- spec construction -------------------------------------------------------


class TestSpecs:
    def test_contiguous_index_enforced(self):
        trial = TrialSpec(index=1, kind="experiment", key="E2", label="E2")
        with pytest.raises(ValueError, match="contiguously indexed"):
            SweepSpec(name="bad", trials=(trial,))

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError, match="E99"):
            sweep_from_experiments(["E2", "E99"])

    def test_duplicate_experiment_rejected(self):
        with pytest.raises(KeyError, match="duplicate experiment"):
            sweep_from_experiments(["E2", "E4", "E2"])

    def test_experiment_sharding(self):
        spec = sweep_from_experiments(["E9"])
        # E9 shards into one trial per (n, family): 5 sizes x 3 families.
        assert len(spec.trials) == 15
        assert spec.trials[0].label == "E9[path/n=16]"
        assert [t.index for t in spec.trials] == list(range(15))
        assert spec.experiment_ids == ("E9",)

    def test_quick_subset(self):
        spec = sweep_from_experiments(quick=True)
        assert set(spec.experiment_ids) == {"E1", "E2", "E4", "E5", "E6", "E10"}

    def test_grid_enumeration_and_seeds(self):
        spec = sweep_from_grid(
            families=["path", "gnp"],
            sizes=[8, 12],
            problems=["mis"],
            algorithms=["theorem1"],
            trials_per_config=2,
            master_seed=5,
        )
        assert len(spec.trials) == 8
        assert len({t.seed for t in spec.trials}) == 8
        # Content-addressed: adding trials elsewhere must not shift seeds.
        again = sweep_from_grid(
            families=["path"],
            sizes=[8],
            problems=["mis"],
            algorithms=["theorem1"],
            trials_per_config=1,
            master_seed=5,
        )
        assert again.trials[0].seed == spec.trials[0].seed

    def test_unknown_trial_kind_rejected(self):
        bad = TrialSpec(index=0, kind="nope", key="x", label="x")
        with pytest.raises(KeyError, match="unknown trial kind"):
            execute_trial(bad)

    def test_grid_rejects_unknown_family_at_spec_time(self):
        with pytest.raises(KeyError, match="unknown family"):
            sweep_from_grid(families=["typo"], sizes=[8], problems=["mis"])

    def test_grid_rejects_unknown_problem_at_spec_time(self):
        with pytest.raises(KeyError, match="unknown problem"):
            sweep_from_grid(families=["path"], sizes=[8], problems=["msi"])

    def test_grid_canonicalizes_algorithm_aliases(self):
        # "bm21" and "baseline" are the same sweep: same derived seeds,
        # same kwargs (and therefore the same cache keys and rows).
        by_alias = sweep_from_grid(
            families=["path"], sizes=[8], problems=["mis"],
            algorithms=["bm21"],
        )
        by_name = sweep_from_grid(
            families=["path"], sizes=[8], problems=["mis"],
            algorithms=["baseline"],
        )
        assert [t.kwargs for t in by_alias.trials] == [
            t.kwargs for t in by_name.trials
        ]
        assert [t.seed for t in by_alias.trials] == [
            t.seed for t in by_name.trials
        ]

    def test_grid_family_registry_matches_builder(self):
        from repro.cli import GRAPH_FAMILIES, build_family_graph

        for family in GRAPH_FAMILIES:
            assert build_family_graph(family, 12, seed=1).n >= 4


# -- determinism across worker counts ----------------------------------------


class TestDeterminism:
    def test_serial_sweep_matches_direct_experiments(self):
        spec = sweep_from_experiments(CHEAP)
        result = run_sweep(spec, workers=1)
        tables = result.experiments()
        for exp_id in CHEAP:
            direct = exp_mod.ALL_EXPERIMENTS[exp_id]()
            assert tables[exp_id].render() == direct.render()

    @pytest.mark.skipif(not HAS_FORK, reason="needs fork start method")
    def test_workers_do_not_change_the_aggregate(self):
        spec = sweep_from_experiments(CHEAP)
        serial = run_sweep(spec, workers=1)
        parallel = run_sweep(spec, workers=2)
        assert serial.render() == parallel.render()
        det_serial = deterministic_view(sweep_artifact_payload(serial))
        det_parallel = deterministic_view(sweep_artifact_payload(parallel))
        assert det_serial == det_parallel
        # The timing layer records real workers either way.
        assert serial.workers == 1
        assert parallel.workers == 2

    @pytest.mark.skipif(not HAS_FORK, reason="needs fork start method")
    def test_grid_sweep_deterministic_across_workers(self):
        spec = sweep_from_grid(
            families=["path"],
            sizes=[8, 12],
            problems=["mis"],
            algorithms=["theorem1", "baseline"],
            trials_per_config=2,
            master_seed=3,
        )
        serial = run_sweep(spec, workers=1)
        parallel = run_sweep(spec, workers=2)
        assert serial.render() == parallel.render()
        rows = serial.experiments()["GRID"].rows
        assert len(rows) == len(spec.trials)

    def test_outcomes_are_in_spec_order(self):
        spec = sweep_from_experiments(["E5", "E2"])
        result = run_sweep(spec, workers=1)
        assert [o.spec.index for o in result.outcomes] == list(range(len(spec.trials)))


# -- failure surfacing -------------------------------------------------------


def _raise_trial() -> None:
    raise ValueError("intentional trial failure")


def _hard_exit_trial() -> None:
    os._exit(3)


def _broken_plan(run) -> ExperimentPlan:
    return ExperimentPlan(
        exp_id="EBAD",
        trials=lambda: [("boom", {})],
        run=run,
        aggregate=lambda payloads: payloads[0],
    )


class TestFailureSurfacing:
    def test_serial_trial_exception_wrapped(self, monkeypatch):
        monkeypatch.setitem(TRIAL_PLANS, "EBAD", _broken_plan(_raise_trial))
        spec = sweep_from_experiments(["E2", "EBAD"])
        with pytest.raises(SweepError, match=r"EBAD\[boom\].*ValueError"):
            run_sweep(spec, workers=1)

    @pytest.mark.skipif(not HAS_FORK, reason="needs fork start method")
    def test_worker_trial_exception_wrapped(self, monkeypatch):
        monkeypatch.setitem(TRIAL_PLANS, "EBAD", _broken_plan(_raise_trial))
        spec = sweep_from_experiments(["E2", "EBAD"])
        with pytest.raises(SweepError, match="failed in a worker"):
            run_sweep(spec, workers=2)

    @pytest.mark.skipif(not HAS_FORK, reason="needs fork start method")
    def test_worker_hard_death_surfaced(self, monkeypatch):
        monkeypatch.setitem(TRIAL_PLANS, "EBAD", _broken_plan(_hard_exit_trial))
        spec = sweep_from_experiments(["EBAD"])
        with pytest.raises(SweepError, match="worker process died"):
            run_sweep(spec, workers=2)


# -- CLI ---------------------------------------------------------------------


class TestSweepCli:
    def test_parser_defaults(self):
        args = make_parser().parse_args(["sweep"])
        assert args.workers == 1
        assert args.experiments is None
        assert not args.quick
        assert not args.grid
        assert not args.list
        assert args.cache is True
        assert args.cache_dir == ".repro-cache"

    def test_parser_no_cache(self):
        args = make_parser().parse_args(["sweep", "--no-cache"])
        assert args.cache is False
        args = make_parser().parse_args(["sweep", "--cache-dir", "/tmp/c"])
        assert args.cache_dir == "/tmp/c"

    def test_list_prints_catalog_without_running(self, capsys):
        assert main(["sweep", "--list"]) == 0
        out = capsys.readouterr().out
        # Every plan id with its title and trial count, plus grid axes.
        assert "E1   11 trials  Lemma 10 mappings" in out
        assert "E2     1 trial  Lemma 14 flattening" in out
        assert "E9   15 trials" in out
        assert "families:" in out
        assert "algorithms: theorem1 baseline theorem9 greedy" in out

    def test_parser_experiment_selection(self):
        argv = ["sweep", "--experiments", "E1", "E9", "--workers", "4"]
        args = make_parser().parse_args(argv + ["--tag", "mytag"])
        assert args.experiments == ["E1", "E9"]
        assert args.workers == 4
        assert args.tag == "mytag"

    def test_parser_grid_arguments(self):
        argv = ["sweep", "--grid", "--families", "path", "--sizes", "8", "16"]
        argv += ["--problems", "mis", "--algorithms", "baseline"]
        argv += ["--trials", "2", "--seed", "9"]
        args = make_parser().parse_args(argv)
        assert args.grid
        assert args.sizes == [8, 16]
        assert args.algorithms == ["baseline"]
        assert args.trials == 2
        assert args.seed == 9

    def test_parser_rejects_bare_experiments_flag(self):
        with pytest.raises(SystemExit):
            make_parser().parse_args(["sweep", "--experiments"])

    def test_unknown_algorithm_rejected_listing_names(self):
        # Validated against the ALGORITHMS registry at spec time (not by
        # argparse choices), so plugin registrations keep working.
        with pytest.raises(SystemExit, match="unknown algorithm"):
            main(["sweep", "--grid", "--algorithms", "turbo"])

    def test_sweep_command_writes_artifact(self, tmp_path, capsys):
        argv = ["sweep", "--experiments", "E2", "E4", "--tag", "clitest"]
        argv += ["--cache-dir", str(tmp_path / "cache")]
        code = main(argv + ["--output-dir", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "E2 — Lemma 14 flattening" in out
        artifact = tmp_path / "SWEEP_clitest.json"
        payload = json.loads(artifact.read_text())
        assert set(payload["tables"]) == {"E2", "E4"}
        assert payload["timing"]["workers"] == 1
        assert payload["timing"]["cache"]["misses"] == 2
        assert len(payload["sweep"]["trials"]) == 2

    def test_sweep_command_warm_cache_hits(self, tmp_path, capsys):
        argv = ["sweep", "--experiments", "E2", "E4", "--no-artifact"]
        argv += ["--cache-dir", str(tmp_path / "cache")]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv) == 0
        captured = capsys.readouterr()
        assert "cache hit" in captured.err
        assert "cache: 2 hit(s), 0 miss(es)" in captured.err

    def test_sweep_command_unknown_experiment_fails(self, tmp_path):
        with pytest.raises(SystemExit, match="unknown experiment"):
            main(["sweep", "--experiments", "E99", "--output-dir", str(tmp_path)])

    def test_sweep_command_unknown_family_fails(self):
        with pytest.raises(SystemExit, match="unknown family"):
            main(["sweep", "--grid", "--families", "typo", "--no-artifact"])

    def test_sweep_command_no_artifact(self, tmp_path, capsys):
        argv = ["sweep", "--experiments", "E4", "--no-artifact", "--no-cache"]
        code = main(argv + ["--output-dir", str(tmp_path)])
        assert code == 0
        assert list(tmp_path.glob("SWEEP_*.json")) == []

    def test_sweep_command_surfaces_failures(self, monkeypatch, capsys):
        monkeypatch.setitem(TRIAL_PLANS, "EBAD", _broken_plan(_raise_trial))
        code = main(
            ["sweep", "--experiments", "EBAD", "--no-artifact", "--no-cache"]
        )
        assert code == 1
        assert "sweep failed" in capsys.readouterr().err

    def test_grid_sweep_cli(self, tmp_path, capsys):
        argv = ["sweep", "--grid", "--families", "path", "--sizes", "8"]
        argv += ["--problems", "mis", "--trials", "1", "--tag", "grid"]
        argv += ["--cache-dir", str(tmp_path / "cache")]
        code = main(argv + ["--output-dir", str(tmp_path)])
        assert code == 0
        payload = json.loads((tmp_path / "SWEEP_grid.json").read_text())
        assert "GRID" in payload["tables"]
        assert payload["tables"]["GRID"]["rows"][0][0] == "path"


# -- artifacts ---------------------------------------------------------------


class TestArtifacts:
    def test_artifact_roundtrip(self, tmp_path):
        spec = sweep_from_experiments(["E4"])
        result = run_sweep(spec, workers=1)
        path = write_sweep_artifact(result, tmp_path, tag="rt")
        assert path.name == "SWEEP_rt.json"
        payload = json.loads(path.read_text())
        rendered = result.experiments()["E4"].render()
        assert payload["tables"]["E4"]["render"] == rendered
        assert payload["sweep"]["num_trials"] == 1
