"""Cross-stack integration tests: the full pipeline, stage interchange,
energy sparsity, and the public API surface."""

import pytest

from repro import (
    PROBLEMS,
    MaximalIndependentSet,
    compute_clustering,
    gnp,
    solve,
    solve_with_baseline,
    solve_with_clustering,
)
from repro.core.theorem13 import color_palette_bound
from repro.graphs import cycle, grid, path, random_tree, star
from repro.model.trace import traced_simulation
from repro.core.theorem1 import theorem1_program


class TestStageInterchange:
    def test_solve_equals_cluster_then_theorem9(self):
        """solve() == compute_clustering() followed by
        solve_with_clustering() with the same palette: the stages are
        independently usable and compose to the same outputs."""
        g = gnp(16, 0.25, seed=31)
        problem = MaximalIndependentSet()
        end_to_end = solve(g, problem)
        clustering_result = compute_clustering(g)
        staged = solve_with_clustering(
            g, problem, clustering_result.clustering,
            palette=color_palette_bound(g.n, clustering_result.b),
        )
        assert end_to_end.outputs == staged.outputs

    def test_palette_widening_preserves_outputs(self):
        """The palette parameter changes the calendar length, never the
        orientation — outputs are invariant."""
        g = gnp(14, 0.25, seed=32)
        problem = MaximalIndependentSet()
        clustering = compute_clustering(g).clustering
        narrow = solve_with_clustering(g, problem, clustering)
        wide = solve_with_clustering(g, problem, clustering, palette=4096)
        assert narrow.outputs == wide.outputs


class TestAllProblemsAllFamilies:
    @pytest.mark.parametrize("problem_name", sorted(PROBLEMS))
    @pytest.mark.parametrize(
        "factory",
        [lambda: path(8), lambda: cycle(7), lambda: star(6),
         lambda: grid(3, 3), lambda: random_tree(9, seed=1)],
    )
    def test_solve_and_baseline_agree_on_validity(self, problem_name, factory):
        problem = PROBLEMS[problem_name]
        g = factory()
        inputs = problem.make_inputs(g)
        a = solve(g, problem, inputs=inputs)  # validates internally
        b = solve_with_baseline(g, problem, inputs=inputs)
        assert set(a.outputs) == set(b.outputs) == set(g.nodes)


class TestEnergySparsity:
    def test_theorem1_sleeps_almost_always(self):
        """The point of the model: awake rounds are a vanishing fraction
        of the round horizon."""
        g = gnp(16, 0.25, seed=33)
        result = solve(g, MaximalIndependentSet())
        ratio = result.awake_complexity / result.round_complexity
        assert ratio < 1e-3

    def test_trace_of_full_pipeline(self):
        """The awake timeline of the full pipeline is recordable and
        matches the metrics exactly."""
        g = gnp(10, 0.3, seed=34)
        problem = MaximalIndependentSet()
        result, trace = traced_simulation(
            g, theorem1_program(problem), inputs=problem.make_inputs(g)
        )
        for v in g.nodes:
            assert trace.awake_count(v) == result.metrics.awake_rounds[v]
        art = trace.render_timeline(width=60)
        assert len(art.splitlines()) == g.n + 1


class TestDeterminismAcrossRuns:
    def test_full_pipeline_reproducible(self):
        g = gnp(12, 0.25, seed=35)
        a = solve(g, MaximalIndependentSet())
        b = solve(g, MaximalIndependentSet())
        assert a.outputs == b.outputs
        assert a.simulation.metrics.summary() == b.simulation.metrics.summary()
