"""Fault-injection tests: protocols must fail loudly, never silently wrong.

A dropped or corrupted message in a deterministic wake calendar leaves a
hole exactly where a protocol expects data; production-quality protocols
detect this (ProtocolError) instead of producing plausible garbage.
"""

import pytest

from repro.core.cast import broadcast_bfs, gather_bfs
from repro.core.lemma15 import lemma15_protocol, lemma15_reference
from repro.errors import ProtocolError, SimulationError, ValidationError
from repro.graphs import gnp, path, random_tree
from repro.model.faults import FaultPlan, FaultySimulator


def bfs_tree(graph, root):
    depth = graph.bfs_distances(root)
    parent = {
        v: (None if v == root else min(
            u for u in graph.neighbors(v) if depth[u] == depth[v] - 1))
        for v in graph.nodes
    }
    return parent, depth


class TestFaultPlanMechanics:
    def test_no_faults_is_identity(self):
        g = random_tree(12, seed=1)
        parent, depth = bfs_tree(g, 1)

        def program(info):
            value = yield from broadcast_bfs(
                info.id, info.neighbors, parent[info.id], depth[info.id],
                info.n, 1, "m" if info.id == 1 else None,
            )
            return value

        sim = FaultySimulator(g, program, FaultPlan())
        res = sim.run()
        assert all(v == "m" for v in res.outputs.values())
        assert sim.dropped == 0 and sim.corrupted == 0

    def test_drops_are_counted_and_reproducible(self):
        g = path(6)

        def program(info):
            from repro.model import AwakeAt, Broadcast

            inbox = yield AwakeAt(1, Broadcast("x"))
            return len(inbox)

        plan = FaultPlan(drop_probability=0.5, seed=7)
        sim1 = FaultySimulator(g, program, plan)
        out1 = sim1.run().outputs
        sim2 = FaultySimulator(g, program, plan)
        out2 = sim2.run().outputs
        assert out1 == out2
        assert sim1.dropped == sim2.dropped > 0


class TestProtocolsFailLoudly:
    def test_broadcast_detects_missing_parent_message(self):
        g = random_tree(20, seed=3)
        parent, depth = bfs_tree(g, 1)

        def program(info):
            value = yield from broadcast_bfs(
                info.id, info.neighbors, parent[info.id], depth[info.id],
                info.n, 1, "m" if info.id == 1 else None,
            )
            return value

        plan = FaultPlan(drop_probability=0.7, seed=1)
        with pytest.raises((ProtocolError, SimulationError)):
            FaultySimulator(g, program, plan).run()

    def test_lemma15_detects_dropped_tree_messages(self):
        g = gnp(16, 0.25, seed=2)

        def program(info):
            out = yield from lemma15_protocol(
                me=info.id, peers=info.neighbors, n=info.n,
                id_space=info.id_space, b=3, t0=1,
            )
            return out

        plan = FaultPlan(drop_probability=0.5, seed=3)
        with pytest.raises((ProtocolError, SimulationError, ValidationError)):
            FaultySimulator(g, program, plan).run()
            # if the run survived the drops, the result must still differ
            # loudly from the reference — unreachable in practice
            raise ProtocolError("fault run unexpectedly silent")

    def test_corruption_detected_or_crashes(self):
        """Corrupted payloads must not produce a 'valid-looking' Lemma 15
        output identical to the clean run (silent corruption)."""
        g = gnp(14, 0.3, seed=5)

        def program(info):
            out = yield from lemma15_protocol(
                me=info.id, peers=info.neighbors, n=info.n,
                id_space=info.id_space, b=3, t0=1,
            )
            return out

        plan = FaultPlan(corrupt_probability=0.4, seed=9)
        try:
            res = FaultySimulator(g, program, plan).run()
        except (ProtocolError, SimulationError, ValidationError, TypeError,
                KeyError, AttributeError, IndexError):
            return  # crashed loudly — acceptable
        ref = lemma15_reference(g, 3)
        assert res.outputs != ref.outputs, (
            "corrupted run silently reproduced the clean output"
        )

    def test_gather_partial_drop_changes_fold_loudly(self):
        """gather is a fold: dropping convergecast messages must never
        yield the complete fold."""
        g = random_tree(24, seed=7)
        parent, depth = bfs_tree(g, 1)

        def program(info):
            merged = yield from gather_bfs(
                info.id, info.neighbors, parent[info.id], depth[info.id],
                info.n, 1, frozenset([info.id]), lambda a, b: a | b,
            )
            return merged

        plan = FaultPlan(drop_probability=0.3, seed=11)
        try:
            res = FaultySimulator(g, program, plan).run()
        except (ProtocolError, SimulationError):
            return
        full = frozenset(g.nodes)
        assert any(out != full for out in res.outputs.values())
