"""Fault-injection tests: protocols must fail loudly, never silently wrong.

A dropped or corrupted message in a deterministic wake calendar leaves a
hole exactly where a protocol expects data; production-quality protocols
detect this (ProtocolError) instead of producing plausible garbage.
"""

import pytest

from repro.core.cast import broadcast_bfs, gather_bfs
from repro.core.lemma15 import lemma15_protocol, lemma15_reference
from repro.errors import ProtocolError, SimulationError, ValidationError
from repro.graphs import gnp, path, random_tree
from repro.model.faults import FaultPlan, FaultySimulator


def bfs_tree(graph, root):
    depth = graph.bfs_distances(root)
    parent = {
        v: (None if v == root else min(
            u for u in graph.neighbors(v) if depth[u] == depth[v] - 1))
        for v in graph.nodes
    }
    return parent, depth


class TestFaultPlanMechanics:
    def test_no_faults_is_identity(self):
        g = random_tree(12, seed=1)
        parent, depth = bfs_tree(g, 1)

        def program(info):
            value = yield from broadcast_bfs(
                info.id, info.neighbors, parent[info.id], depth[info.id],
                info.n, 1, "m" if info.id == 1 else None,
            )
            return value

        sim = FaultySimulator(g, program, FaultPlan())
        res = sim.run()
        assert all(v == "m" for v in res.outputs.values())
        assert sim.dropped == 0 and sim.corrupted == 0

    def test_drops_are_counted_and_reproducible(self):
        g = path(6)

        def program(info):
            from repro.model import AwakeAt, Broadcast

            inbox = yield AwakeAt(1, Broadcast("x"))
            return len(inbox)

        plan = FaultPlan(drop_probability=0.5, seed=7)
        sim1 = FaultySimulator(g, program, plan)
        out1 = sim1.run().outputs
        sim2 = FaultySimulator(g, program, plan)
        out2 = sim2.run().outputs
        assert out1 == out2
        assert sim1.dropped == sim2.dropped > 0

    def test_probabilities_validated(self):
        with pytest.raises(ValueError, match="drop_probability"):
            FaultPlan(drop_probability=1.5)
        with pytest.raises(ValueError, match="corrupt_probability"):
            FaultPlan(corrupt_probability=-0.1)

    def test_clean_broadcast_action_preserved(self):
        """When no fault fires on a round, the original action object —
        in particular a ``Broadcast`` — must pass through unchanged, so
        the simulator's batched zero-copy delivery path stays engaged
        (it must not be silently materialized into a per-neighbor
        dict)."""
        from repro.model import AwakeAt, Broadcast
        from repro.types import NodeId

        g = path(5)
        seen: list[object] = []

        class Spy(FaultySimulator):
            def _filter(self, action, info):
                filtered = super()._filter(action, info)
                seen.append(filtered.messages)
                return filtered

        def program(info):
            inbox = yield AwakeAt(1, Broadcast("x"))
            return len(inbox)

        # immune round 1: the plan is active but must not touch round 1.
        plan = FaultPlan(
            drop_probability=1.0, seed=1, immune_rounds=frozenset([1])
        )
        Spy(g, program, plan).run()
        assert seen and all(isinstance(m, Broadcast) for m in seen)

        # Inactive plan: same invariant via the is_active early return.
        seen.clear()
        Spy(g, program, FaultPlan()).run()
        assert seen and all(isinstance(m, Broadcast) for m in seen)

    def test_drop_and_corruption_draws_are_independent(self):
        """Dropping and corrupting are separate coins: with
        drop=corrupt=0.5 some messages must still arrive intact —
        under the old single-draw scheme drop=0.5 + corrupt=0.5
        consumed the whole unit interval and no message survived."""
        from repro.model import AwakeAt, Broadcast

        g = path(40)

        def program(info):
            inbox = yield AwakeAt(1, Broadcast("x"))
            return list(inbox.values())

        plan = FaultPlan(drop_probability=0.5, corrupt_probability=0.5, seed=3)
        sim = FaultySimulator(g, program, plan)
        res = sim.run()
        assert sim.dropped > 0 and sim.corrupted > 0
        intact = sum(
            1 for values in res.outputs.values() for v in values if v == "x"
        )
        # 78 directed messages, P(intact) = 0.25: all-faulty is ~1e-10.
        assert intact > 0

    def test_corruption_fires_even_behind_certain_drop_of_others(self):
        """The corruption coin is drawn for every message regardless of
        the drop outcome, keeping the fault stream aligned per message."""
        from repro.model import AwakeAt, Broadcast

        g = path(30)

        def program(info):
            inbox = yield AwakeAt(1, Broadcast("x"))
            return len(inbox)

        plan = FaultPlan(corrupt_probability=1.0, seed=2)
        sim = FaultySimulator(g, program, plan)
        sim.run()
        assert sim.dropped == 0
        assert sim.corrupted == 2 * (g.n - 1)


class TestProtocolsFailLoudly:
    def test_broadcast_detects_missing_parent_message(self):
        g = random_tree(20, seed=3)
        parent, depth = bfs_tree(g, 1)

        def program(info):
            value = yield from broadcast_bfs(
                info.id, info.neighbors, parent[info.id], depth[info.id],
                info.n, 1, "m" if info.id == 1 else None,
            )
            return value

        plan = FaultPlan(drop_probability=0.7, seed=1)
        with pytest.raises((ProtocolError, SimulationError)):
            FaultySimulator(g, program, plan).run()

    def test_lemma15_detects_dropped_tree_messages(self):
        g = gnp(16, 0.25, seed=2)

        def program(info):
            out = yield from lemma15_protocol(
                me=info.id, peers=info.neighbors, n=info.n,
                id_space=info.id_space, b=3, t0=1,
            )
            return out

        plan = FaultPlan(drop_probability=0.5, seed=3)
        with pytest.raises((ProtocolError, SimulationError, ValidationError)):
            FaultySimulator(g, program, plan).run()
            # if the run survived the drops, the result must still differ
            # loudly from the reference — unreachable in practice
            raise ProtocolError("fault run unexpectedly silent")

    def test_corruption_detected_or_crashes(self):
        """Corrupted payloads must not produce a 'valid-looking' Lemma 15
        output identical to the clean run (silent corruption)."""
        g = gnp(14, 0.3, seed=5)

        def program(info):
            out = yield from lemma15_protocol(
                me=info.id, peers=info.neighbors, n=info.n,
                id_space=info.id_space, b=3, t0=1,
            )
            return out

        plan = FaultPlan(corrupt_probability=0.4, seed=9)
        try:
            res = FaultySimulator(g, program, plan).run()
        except (ProtocolError, SimulationError, ValidationError, TypeError,
                KeyError, AttributeError, IndexError):
            return  # crashed loudly — acceptable
        ref = lemma15_reference(g, 3)
        assert res.outputs != ref.outputs, (
            "corrupted run silently reproduced the clean output"
        )

    def test_gather_partial_drop_changes_fold_loudly(self):
        """gather is a fold: dropping convergecast messages must never
        yield the complete fold."""
        g = random_tree(24, seed=7)
        parent, depth = bfs_tree(g, 1)

        def program(info):
            merged = yield from gather_bfs(
                info.id, info.neighbors, parent[info.id], depth[info.id],
                info.n, 1, frozenset([info.id]), lambda a, b: a | b,
            )
            return merged

        plan = FaultPlan(drop_probability=0.3, seed=11)
        try:
            res = FaultySimulator(g, program, plan).run()
        except (ProtocolError, SimulationError):
            return
        full = frozenset(g.nodes)
        assert any(out != full for out in res.outputs.values())
