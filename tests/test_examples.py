"""Smoke tests: every example script runs to completion and prints its
headline sections (examples are part of the public API surface)."""

import runpy
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


@pytest.mark.slow
@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script, capsys):
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert len(out.splitlines()) >= 5


def test_examples_exist():
    names = {p.stem for p in EXAMPLES}
    assert {"quickstart", "sensor_network_coloring",
            "adhoc_clusterheads_mis", "clustering_explorer"} <= names
