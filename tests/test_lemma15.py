"""Tests for Lemma 15: one clustering phase, distributed vs reference."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.clustering import ColoredBFSClustering
from repro.core.lemma15 import (
    lemma15_duration,
    lemma15_protocol,
    lemma15_reference,
    singleton_palette,
)
from repro.graphs import (
    caterpillar,
    complete_graph,
    cycle,
    gnp,
    path,
    preferential_attachment,
    random_tree,
    star,
)
from repro.graphs.examples import figure4_instance
from repro.model import SleepingSimulator
from repro.util.idspace import permuted_ids, polynomial_ids
from repro.util.mathx import iterated_log


def run_distributed(graph, b):
    def program(info):
        out = yield from lemma15_protocol(
            me=info.id, peers=info.neighbors, n=info.n,
            id_space=info.id_space, b=b, t0=1,
        )
        return out

    return SleepingSimulator(graph, program).run()


CASES = [
    (lambda: path(14), 2),
    (lambda: cycle(12), 3),
    (lambda: star(9), 2),
    (lambda: gnp(25, 0.15, seed=1), 3),
    (lambda: random_tree(20, seed=5), 2),
    (lambda: caterpillar(6, 4), 3),
    (lambda: complete_graph(8), 2),
    (lambda: preferential_attachment(25, 2, seed=3), 3),
    (lambda: gnp(20, 0.2, seed=9, ids=permuted_ids(20, seed=4)), 2),
]


class TestDistributedMatchesReference:
    @pytest.mark.parametrize("factory,b", CASES)
    def test_outputs_equal(self, factory, b):
        g = factory()
        res = run_distributed(g, b)
        ref = lemma15_reference(g, b)
        assert res.outputs == ref.outputs

    @pytest.mark.parametrize("factory,b", CASES[:4])
    def test_round_complexity_within_window(self, factory, b):
        g = factory()
        res = run_distributed(g, b)
        assert res.round_complexity <= lemma15_duration(g.n, g.id_space, b)


class TestLemma15Guarantees:
    @pytest.mark.parametrize("factory,b", CASES)
    def test_colored_bfs_clustering(self, factory, b):
        """γ with singleton colors in [1, a·b²] plus shifted unique labels
        forms a colored BFS-clustering of G (Definition 4)."""
        g = factory()
        ref = lemma15_reference(g, b)
        clustering = ColoredBFSClustering(ref.gamma(), ref.delta())
        clustering.validate(g)

    @pytest.mark.parametrize("factory,b", CASES)
    def test_singletons_are_singletons(self, factory, b):
        """Every node with a small color is alone in its color-component."""
        g = factory()
        ref = lemma15_reference(g, b)
        ab2 = singleton_palette(b)
        gamma = ref.gamma()
        for v, out in ref.outputs.items():
            if out.singleton:
                assert 1 <= gamma[v] <= ab2
                assert out.delta == 0
                assert all(gamma[u] != gamma[v] for u in g.neighbors(v))
            else:
                assert gamma[v] > ab2

    @pytest.mark.parametrize("factory,b", CASES)
    def test_residual_cluster_count_bound(self, factory, b):
        """At most n/b residual clusters (the induction engine of Thm 13)."""
        g = factory()
        ref = lemma15_reference(g, b)
        assert ref.residual_clusters <= g.n // b

    @pytest.mark.parametrize("factory,b", CASES)
    def test_residual_roots_have_high_degree(self, factory, b):
        g = factory()
        ref = lemma15_reference(g, b)
        for out in ref.outputs.values():
            if not out.singleton:
                assert out.root_degree > b

    @pytest.mark.parametrize("factory,b", CASES)
    def test_u_nodes_have_low_degree(self, factory, b):
        """The claim backing the G[U] Linial run: every node in a cluster
        with a low-degree root itself has degree <= b."""
        g = factory()
        ref = lemma15_reference(g, b)
        for v, out in ref.outputs.items():
            if out.singleton:
                assert g.degree(v) <= b


class TestClaim16:
    @pytest.mark.parametrize("factory,b", CASES)
    def test_c2_strictly_decreasing_toward_root(self, factory, b):
        g = factory()
        ref = lemma15_reference(g, b)
        for v in g.nodes:
            parent = ref.p2[v]
            if parent is not None:
                assert ref.c2[v] > ref.c2[parent]

    @pytest.mark.parametrize("factory,b", CASES)
    def test_p2_is_a_subgraph_forest(self, factory, b):
        """p2 edges lie in G (unlike p1, which may jump 2 hops)."""
        g = factory()
        ref = lemma15_reference(g, b)
        for v in g.nodes:
            if ref.p2[v] is not None:
                assert g.has_edge(v, ref.p2[v])

    @pytest.mark.parametrize("factory,b", CASES)
    def test_roots_are_2ball_minima(self, factory, b):
        g = factory()
        ref = lemma15_reference(g, b)
        for v in g.nodes:
            if ref.p1[v] is None:
                ball = list(g.neighbors(v)) + list(g.distance_2_neighbors(v))
                assert all(ref.c1[u] > ref.c1[v] for u in ball)


class TestAwakeComplexity:
    def test_awake_is_log_star_scale(self):
        g = gnp(30, 0.12, seed=2)
        res = run_distributed(g, 3)
        # 2 exchange + 4 casts * 3 + 1 membership + Linial steps * small
        logstar = max(iterated_log(g.id_space), 1)
        assert res.awake_complexity <= 15 + 5 * logstar

    def test_awake_with_huge_id_space(self):
        """IDs from [n^3]: the distance-2 Linial prologue kicks in; awake
        stays O(log* n) while rounds grow polynomially."""
        g = gnp(18, 0.2, seed=6, ids=polynomial_ids(18, 3, seed=1))
        res = run_distributed(g, 2)
        ref = lemma15_reference(g, 2)
        assert res.outputs == ref.outputs
        logstar = max(iterated_log(g.id_space), 1)
        assert res.awake_complexity <= 15 + 7 * logstar


class TestFigure4:
    def test_figure4_instance_decomposes(self):
        """Regenerates Figure 4's scenario: b=3, hubs of degree > 3 become
        residual roots; the low-degree fringe dissolves into singletons."""
        inst = figure4_instance()
        ref = lemma15_reference(inst.graph, inst.b)
        hubs = [v for v in inst.graph.nodes if inst.graph.degree(v) > inst.b]
        assert hubs  # the instance has high-degree hubs
        clustering = ColoredBFSClustering(ref.gamma(), ref.delta())
        clustering.validate(inst.graph)
        assert ref.residual_clusters <= inst.graph.n // inst.b
        # every residual root is a hub
        for out in ref.outputs.values():
            if not out.singleton:
                assert out.root in hubs


@settings(max_examples=12, deadline=None)
@given(st.integers(6, 26), st.integers(0, 10**6), st.integers(2, 4))
def test_property_distributed_equals_reference(n, seed, b):
    g = gnp(n, 2.8 / n, seed=seed)
    res = run_distributed(g, b)
    ref = lemma15_reference(g, b)
    assert res.outputs == ref.outputs
    ColoredBFSClustering(ref.gamma(), ref.delta()).validate(g)
    assert ref.residual_clusters <= g.n // b
