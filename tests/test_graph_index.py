"""Property tests: the CSR-indexed StaticGraph fast path agrees with a
naive reference implementation on every query.

The naive implementations below mirror the seed (pre-index) code: sort
the adjacency on every access, walk plain dict-of-tuples structures for
BFS/components, and recount degrees on demand. Hypothesis drives both
over random graphs; any divergence is an index bug.
"""

from collections import deque

from hypothesis import given, settings, strategies as st

from repro.graphs import StaticGraph, gnp, graph_square, induced_subgraph


# -- naive reference implementations (seed semantics) ------------------------


def naive_nodes(g):
    return tuple(sorted(g.adjacency))


def naive_degree(g, v):
    return len(g.adjacency[v])


def naive_max_degree(g):
    return max((len(nbrs) for nbrs in g.adjacency.values()), default=0)


def naive_num_edges(g):
    return sum(len(nbrs) for nbrs in g.adjacency.values()) // 2


def naive_edges(g):
    out = []
    for v, nbrs in sorted(g.adjacency.items()):
        for u in nbrs:
            if u > v:
                out.append((v, u))
    return out


def naive_bfs_distances(g, source):
    dist = {source: 0}
    queue = deque([source])
    while queue:
        v = queue.popleft()
        for u in g.adjacency[v]:
            if u not in dist:
                dist[u] = dist[v] + 1
                queue.append(u)
    return dist


def naive_components(g):
    seen = set()
    components = []
    for v in naive_nodes(g):
        if v not in seen:
            comp = set(naive_bfs_distances(g, v))
            seen |= comp
            components.append(frozenset(comp))
    return components


def naive_distance_2(g, v):
    direct = set(g.adjacency[v])
    two_hop = set()
    for u in direct:
        two_hop.update(g.adjacency[u])
    two_hop -= direct
    two_hop.discard(v)
    return tuple(sorted(two_hop))


# -- strategies --------------------------------------------------------------


@st.composite
def graphs(draw):
    n = draw(st.integers(min_value=1, max_value=24))
    possible = [(u, v) for u in range(1, n + 1) for v in range(u + 1, n + 1)]
    edges = draw(st.lists(st.sampled_from(possible), max_size=60) if possible
                 else st.just([]))
    return StaticGraph.from_edges(edges, nodes=range(1, n + 1), id_space=n)


# -- the agreement properties ------------------------------------------------


@settings(max_examples=120, deadline=None)
@given(graphs())
def test_scalar_queries_agree(g):
    assert g.nodes == naive_nodes(g)
    assert g.node_set == frozenset(naive_nodes(g))
    assert g.max_degree == naive_max_degree(g)
    assert g.num_edges == naive_num_edges(g)
    for v in g.nodes:
        assert g.degree(v) == naive_degree(v=v, g=g)
        assert g.neighbors(v) == tuple(sorted(g.adjacency[v]))


@settings(max_examples=120, deadline=None)
@given(graphs())
def test_edges_agree(g):
    assert list(g.edges()) == naive_edges(g)


@settings(max_examples=120, deadline=None)
@given(graphs())
def test_bfs_distances_agree(g):
    for source in g.nodes:
        assert g.bfs_distances(source) == naive_bfs_distances(g, source)


@settings(max_examples=120, deadline=None)
@given(graphs())
def test_connected_components_agree(g):
    assert g.connected_components() == naive_components(g)
    assert g.is_connected() == (len(naive_components(g)) <= 1)


@settings(max_examples=120, deadline=None)
@given(graphs())
def test_distance_2_agree(g):
    for v in g.nodes:
        assert g.distance_2_neighbors(v) == naive_distance_2(g, v)


@settings(max_examples=60, deadline=None)
@given(graphs())
def test_trusted_ops_match_validated_construction(g):
    """graph_square / induced_subgraph build through the trusted fast path;
    re-validating their adjacency through the public constructor must
    accept it and produce an equal graph."""
    sq = graph_square(g)
    assert StaticGraph(sq.adjacency, id_space=sq.id_space) == sq
    half = set(list(g.nodes)[: g.n // 2])
    sub = induced_subgraph(g, half)
    assert StaticGraph(sub.adjacency, id_space=sub.id_space) == sub
    assert set(sub.nodes) == half


def test_index_is_cached_and_lazy():
    g = gnp(64, 0.1, seed=3)
    assert g._index is g._index  # one build, cached on the frozen instance
    n1 = g.nodes
    assert g.nodes is n1  # no re-sort per access
