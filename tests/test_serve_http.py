"""HTTP round-trip tests for the `repro serve` service.

One module-scoped service instance (ephemeral port, tmp store + cache)
backs all tests; the suite covers the ISSUE-10 acceptance criteria:
warm cached /solve in single-digit ms (generous CI-safe bound), served
tables byte-identical to the artifact's deterministic view, and
/provenance resolving the full scenario → trial → artifact chain.
"""

import json
import time
import urllib.error
import urllib.request

import pytest

from repro import api
from repro.runner import TrialCache, run_sweep, sweep_from_grid
from repro.runner.artifacts import write_sweep_artifact
from repro.serve import ReproService, ResultStore, canonical_json


class Client:
    """A tiny urllib client returning (status, parsed-or-raw body)."""

    def __init__(self, port):
        self.base = f"http://127.0.0.1:{port}"

    def get_raw(self, path):
        try:
            with urllib.request.urlopen(self.base + path) as response:
                return response.status, response.read()
        except urllib.error.HTTPError as error:
            return error.code, error.read()

    def get(self, path):
        status, body = self.get_raw(path)
        return status, json.loads(body)

    def post(self, path, payload=None):
        data = json.dumps(payload or {}).encode()
        request = urllib.request.Request(
            self.base + path, data=data, method="POST",
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request) as response:
                return response.status, json.loads(response.read())
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read())


@pytest.fixture(scope="module")
def served(tmp_path_factory):
    """A running service over one ingested sweep + warmed trial cache."""
    tmp = tmp_path_factory.mktemp("serve-http")
    cache = TrialCache(tmp / "cache")
    spec = sweep_from_grid(
        families=("path",), sizes=(12, 16), problems=("mis",),
        algorithms=("greedy",), trials_per_config=2, master_seed=5,
        name="warmed",
    )
    result = run_sweep(spec, cache=cache)
    artifact = write_sweep_artifact(result, tmp)
    store = ResultStore(tmp / "RESULTS.db")
    ingest = store.ingest_path(artifact)
    service = ReproService(store, cache=cache, artifact_dir=tmp)
    server = service.start(port=0)
    client = Client(server.server_address[1])
    yield {
        "client": client,
        "artifact": artifact,
        "digest": ingest.digest,
        "store": store,
        "spec": spec,
    }
    service.stop()
    store.close()


class TestCatalog:
    def test_catalog_matches_api(self, served):
        status, catalog = served["client"].get("/catalog")
        assert status == 200
        expected = api.catalog()
        assert catalog["families"] == list(expected["families"])
        assert catalog["algorithms"] == list(expected["algorithms"])
        assert catalog["engines"] == list(expected["engines"])
        assert set(catalog["engine_matrix"]) == set(
            expected["engine_matrix"]
        )

    def test_health(self, served):
        status, health = served["client"].get("/health")
        assert status == 200
        assert health["status"] == "ok"
        assert health["store"]["sweeps"] == 1


class TestSolve:
    QUERY = "/solve?family=path&n=12&problem=mis&algorithm=greedy&seed=5"

    def test_sweep_warmed_trial_hits_cache(self, served):
        """A /solve for a grid cell the sweep already ran is a warm hit:
        the query compiles to the same TrialSpec, hence the same
        content-addressed cache key."""
        status, solved = served["client"].get(self.QUERY + "&trial=1")
        assert status == 200
        assert solved["cached"] is True
        assert solved["label"] == "path/n=12/mis/greedy#1"
        assert solved["headers"][:4] == [
            "family", "n", "problem", "algorithm",
        ]
        assert len(solved["rows"]) == 1

    def test_warm_latency_bound(self, served):
        """Acceptance: warm cached query in single-digit ms. The bound
        here is deliberately generous for loaded CI machines; the
        server-side figure is the honest one."""
        served["client"].get(self.QUERY)  # ensure warm
        started = time.perf_counter()
        status, solved = served["client"].get(self.QUERY)
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        assert status == 200
        assert solved["cached"] is True
        assert solved["elapsed_ms"] < 100.0
        assert elapsed_ms < 1000.0

    def test_cold_then_warm(self, served):
        cold_query = (
            "/solve?family=cycle&n=14&problem=mis&algorithm=greedy&seed=9"
        )
        status, first = served["client"].get(cold_query)
        assert status == 200
        assert first["cached"] is False
        status, second = served["client"].get(cold_query)
        assert second["cached"] is True
        assert second["rows"] == first["rows"]
        assert second["cache_key"] == first["cache_key"]

    def test_solve_result_matches_sweep_row(self, served):
        """The served row is byte-for-byte the row the sweep tabled."""
        status, solved = served["client"].get(self.QUERY + "&trial=0")
        artifact = json.loads(served["artifact"].read_text())
        grid = artifact["tables"]["GRID"]
        row = [str(cell) for cell in solved["rows"][0]]
        assert row in grid["rows"]

    def test_unknown_family_is_400_listing_names(self, served):
        status, body = served["client"].get(
            "/solve?family=nope&problem=mis&algorithm=greedy"
        )
        assert status == 400
        assert "unknown family" in body["error"]
        assert "'gnp'" in body["error"]  # valid names are listed

    def test_unknown_algorithm_is_400_listing_names(self, served):
        status, body = served["client"].get(
            "/solve?family=path&problem=mis&algorithm=nope"
        )
        assert status == 400
        assert "unknown algorithm" in body["error"]
        assert "'theorem1'" in body["error"]

    def test_missing_parameter_is_400(self, served):
        status, body = served["client"].get("/solve?family=path")
        assert status == 400
        assert "problem" in body["error"]

    def test_bad_integer_is_400(self, served):
        status, body = served["client"].get(
            "/solve?family=path&n=twelve&problem=mis&algorithm=greedy"
        )
        assert status == 400
        assert "integer" in body["error"]


class TestSweepQueries:
    def test_sweep_listing_and_summary(self, served):
        status, body = served["client"].get("/sweeps")
        assert status == 200
        assert [s["name"] for s in body["sweeps"]] == ["warmed"]
        status, summary = served["client"].get("/sweeps/warmed")
        assert summary["num_trials"] == 4
        assert [t["exp_id"] for t in summary["tables"]] == ["GRID"]

    def test_served_table_bytes_identical_to_artifact(self, served):
        """Acceptance: every served table is byte-identical to its
        source artifact's deterministic view."""
        artifact = json.loads(served["artifact"].read_text())
        for exp_id, table in artifact["tables"].items():
            status, body = served["client"].get_raw(
                f"/sweeps/{served['digest']}/tables/{exp_id}"
            )
            assert status == 200
            assert body == canonical_json(table).encode()

    def test_served_view_bytes_identical_to_artifact(self, served):
        from repro.runner.artifacts import deterministic_view

        artifact = json.loads(served["artifact"].read_text())
        status, body = served["client"].get_raw(
            f"/sweeps/{served['digest']}/view"
        )
        assert status == 200
        assert body == canonical_json(deterministic_view(artifact)).encode()

    def test_unknown_sweep_is_404_listing_names(self, served):
        status, body = served["client"].get("/sweeps/doesnotexist")
        assert status == 404
        assert "warmed" in body["error"]

    def test_unknown_table_is_404_listing_ids(self, served):
        status, body = served["client"].get(
            f"/sweeps/{served['digest']}/tables/E99"
        )
        assert status == 404
        assert "GRID" in body["error"]

    def test_unknown_route_is_404(self, served):
        status, body = served["client"].get("/nope/nope")
        assert status == 404
        assert "no route" in body["error"]


class TestProvenance:
    def test_trial_and_provenance_chain(self, served):
        """Acceptance: /provenance/<trial> resolves the full scenario →
        trial → artifact chain for any ingested sweep."""
        trials = served["store"].trials_of(served["digest"])
        for trial in trials:
            status, dag = served["client"].get(
                f"/provenance/{trial['trial_id']}"
            )
            assert status == 200
            kinds = {n["kind"] for n in dag["nodes"]}
            assert {"scenario", "trial", "artifact"} <= kinds
            artifact_node = next(
                n for n in dag["nodes"] if n["kind"] == "artifact"
            )
            assert artifact_node["digest"] == served["digest"]

    def test_trial_lookup_by_label(self, served):
        status, trial = served["client"].get(
            "/trials/path%2Fn%3D12%2Fmis%2Fgreedy%230"
        )
        assert status == 200
        assert trial["scenario"]["n"] == 12

    def test_sweep_dag(self, served):
        status, dag = served["client"].get(
            f"/sweeps/{served['digest']}/dag"
        )
        assert status == 200
        assert len([n for n in dag["nodes"] if n["kind"] == "trial"]) == 4

    def test_unknown_trial_is_404(self, served):
        status, body = served["client"].get("/provenance/unknown")
        assert status == 404


class TestSweepSubmission:
    def test_submit_poll_fetch_round_trip(self, served, tmp_path):
        client = served["client"]
        status, submitted = client.post("/sweeps", {
            "families": ["path"], "sizes": [10], "problems": ["mis"],
            "algorithms": ["greedy"], "trials": 1, "seed": 11,
            "name": "submitted",
        })
        assert status == 202
        assert submitted["num_trials"] == 1
        job_id = submitted["job"]
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            status, job = client.get(f"/jobs/{job_id}")
            if job["status"] in ("completed", "failed"):
                break
            time.sleep(0.05)
        assert job["status"] == "completed", job
        assert job["digest"]
        # The completed sweep's table is served byte-identically to the
        # artifact the job wrote.
        artifact = json.loads(
            open(job["artifact"], encoding="utf-8").read()
        )
        status, body = client.get_raw(
            f"/sweeps/{job['digest']}/tables/GRID"
        )
        assert status == 200
        assert body == canonical_json(artifact["tables"]["GRID"]).encode()

    def test_submit_unknown_axis_is_400_listing_names(self, served):
        status, body = served["client"].post("/sweeps", {
            "families": ["not-a-family"],
        })
        assert status == 400
        assert "unknown family" in body["error"]
        assert "'path'" in body["error"]

    def test_unknown_job_is_404(self, served):
        status, body = served["client"].get("/jobs/job-999")
        assert status == 404

    def test_jobs_listing(self, served):
        status, body = served["client"].get("/jobs")
        assert status == 200
        assert isinstance(body["jobs"], list)

    def test_ingest_endpoint(self, served, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("}{")
        status, body = served["client"].post(
            "/ingest", {"paths": [str(bad)]}
        )
        assert status == 200
        assert body["results"][0]["status"] == "skipped"


class TestReadonly:
    @pytest.fixture(scope="class")
    def readonly(self, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("serve-ro")
        cache = TrialCache(tmp / "cache")
        result = api.run_grid(
            families=("path",), sizes=(10,), problems=("mis",),
            algorithms=("greedy",), trials=1, seed=2, cache=cache,
            name="frozen",
        )
        artifact = write_sweep_artifact(result, tmp)
        store = ResultStore(tmp / "RESULTS.db")
        store.ingest_path(artifact)
        store.close()
        ro_store = ResultStore(tmp / "RESULTS.db", readonly=True)
        service = ReproService(ro_store, cache=cache, readonly=True)
        server = service.start(port=0)
        yield Client(server.server_address[1])
        service.stop()
        ro_store.close()

    def test_warm_hits_still_serve(self, readonly):
        status, solved = readonly.get(
            "/solve?family=path&n=10&problem=mis&algorithm=greedy&seed=2"
        )
        assert status == 200
        assert solved["cached"] is True

    def test_cold_miss_is_409(self, readonly):
        status, body = readonly.get(
            "/solve?family=path&n=11&problem=mis&algorithm=greedy"
        )
        assert status == 409
        assert "readonly" in body["error"]

    def test_sweep_submit_is_403(self, readonly):
        status, body = readonly.post("/sweeps", {})
        assert status == 403

    def test_ingest_is_403(self, readonly):
        status, body = readonly.post("/ingest", {"paths": []})
        assert status == 403
