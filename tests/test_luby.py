"""Tests for Luby's randomized MIS (the related-work LOCAL baseline)."""

import pytest

from repro.graphs import complete_graph, cycle, gnp, path, star
from repro.olocal.luby import luby_mis
from repro.core.theorem1 import solve
from repro.olocal import MaximalIndependentSet


class TestCorrectness:
    @pytest.mark.parametrize(
        "factory",
        [lambda: path(12), lambda: cycle(9), lambda: star(8),
         lambda: complete_graph(10), lambda: gnp(40, 0.15, seed=1)],
    )
    def test_valid_mis(self, factory):
        g = factory()
        result = luby_mis(g, seed=3)  # validates internally
        assert set(result.outputs) == set(g.nodes)

    def test_single_node(self):
        from repro.graphs import StaticGraph

        g = StaticGraph({1: ()}, id_space=1)
        result = luby_mis(g)
        assert result.outputs == {1: True}

    def test_different_seeds_both_valid(self):
        g = gnp(30, 0.2, seed=5)
        a = luby_mis(g, seed=1)
        b = luby_mis(g, seed=2)
        # both valid (checked inside); typically different sets
        assert set(a.outputs) == set(b.outputs) == set(g.nodes)

    def test_reproducible(self):
        g = gnp(25, 0.2, seed=7)
        assert luby_mis(g, seed=9).outputs == luby_mis(g, seed=9).outputs


class TestComplexityProfile:
    def test_always_awake_until_decided(self):
        """Luby never sleeps: a node's awake count equals its termination
        round — the profile the Sleeping model improves on."""
        g = gnp(30, 0.15, seed=11)
        result = luby_mis(g, seed=4)
        metrics = result.simulation.metrics
        for v in g.nodes:
            assert metrics.awake_rounds[v] == metrics.termination_round[v]

    def test_phases_logarithmic_scale(self):
        """W.h.p. O(log n) phases; at these sizes a loose cap suffices."""
        g = gnp(120, 0.1, seed=13)
        result = luby_mis(g, seed=5)
        assert result.phases <= 6 * max(g.n.bit_length(), 1)

    def test_runaway_guard(self):
        g = path(6)
        from repro.errors import SimulationError

        with pytest.raises(SimulationError, match="phases"):
            luby_mis(g, seed=1, max_phases=0)

    def test_paper_algorithm_beats_luby_awake_at_scale(self):
        """The motivating comparison: on a long path Luby keeps everyone
        awake for Θ(log n)-many full phases while Theorem 1's awake cost
        is schedule-bounded; at n where log n phases × 2 exceeds the
        pipeline's constant, the deterministic sleeper wins — here we
        simply record both numbers and that Luby = always-awake."""
        g = gnp(60, 0.1, seed=17)
        luby = luby_mis(g, seed=6)
        paper = solve(g, MaximalIndependentSet())
        assert luby.awake_complexity == luby.round_complexity
        assert paper.awake_complexity < paper.round_complexity
