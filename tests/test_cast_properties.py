"""Property-based tests for Lemma 6 casts: random trees, random monotone
labelings, random payload folds — the primitives everything else reuses."""

import random

from hypothesis import given, settings, strategies as st

from repro.core.cast import (
    broadcast_labeled,
    convergecast_labeled,
    gather_bfs,
    labeled_cast_duration,
)
from repro.graphs import random_tree
from repro.model import SleepingSimulator


@st.composite
def tree_with_labels(draw):
    n = draw(st.integers(3, 24))
    seed = draw(st.integers(0, 10**6))
    graph = random_tree(n, seed=seed)
    root = draw(st.sampled_from(sorted(graph.nodes)))
    depth = graph.bfs_distances(root)
    parent = {
        v: (None if v == root else min(
            u for u in graph.neighbors(v) if depth[u] == depth[v] - 1))
        for v in graph.nodes
    }
    # random strictly-monotone labels along root-to-leaf paths
    rng = random.Random(draw(st.integers(0, 10**6)))
    label = {}
    for v in sorted(graph.nodes, key=depth.__getitem__):
        if parent[v] is None:
            label[v] = rng.randint(0, 3)
        else:
            label[v] = label[parent[v]] + rng.randint(1, 4)
    bound = max(label.values()) + rng.randint(0, 5)
    return graph, root, parent, label, bound


class TestLabeledCastProperties:
    @given(tree_with_labels())
    @settings(max_examples=30, deadline=None)
    def test_broadcast_reaches_everyone(self, case):
        graph, root, parent, label, bound = case

        def program(info):
            value = yield from broadcast_labeled(
                info.id, info.neighbors, parent[info.id], label[info.id],
                bound, 1, ("payload", root) if info.id == root else None,
            )
            return value

        res = SleepingSimulator(graph, program).run()
        assert all(out == ("payload", root) for out in res.outputs.values())
        assert res.awake_complexity <= 3
        assert res.round_complexity <= labeled_cast_duration(bound)

    @given(tree_with_labels())
    @settings(max_examples=30, deadline=None)
    def test_convergecast_folds_exactly_once(self, case):
        """The fold must see every node's payload exactly once — summing
        node IDs detects both losses and duplicates."""
        graph, root, parent, label, bound = case

        def program(info):
            total = yield from convergecast_labeled(
                info.id, info.neighbors, parent[info.id], label[info.id],
                bound, 1, info.id, lambda a, b: a + b,
            )
            return total

        res = SleepingSimulator(graph, program).run()
        assert res.outputs[root] == sum(graph.nodes)
        assert res.awake_complexity <= 3

    @given(tree_with_labels())
    @settings(max_examples=20, deadline=None)
    def test_sequential_composition_lemma8(self, case):
        """Convergecast then broadcast in adjacent windows: every node
        learns the exact fold; awake costs add."""
        graph, root, parent, label, bound = case
        window = labeled_cast_duration(bound)

        def program(info):
            total = yield from convergecast_labeled(
                info.id, info.neighbors, parent[info.id], label[info.id],
                bound, 1, info.id, lambda a, b: a + b,
            )
            result = yield from broadcast_labeled(
                info.id, info.neighbors, parent[info.id], label[info.id],
                bound, 1 + window, total,
            )
            return result

        res = SleepingSimulator(graph, program).run()
        expected = sum(graph.nodes)
        assert all(out == expected for out in res.outputs.values())
        assert res.awake_complexity <= 6


class TestGatherProperties:
    @given(st.integers(3, 30), st.integers(0, 10**6), st.integers(0, 10**6))
    @settings(max_examples=30, deadline=None)
    def test_gather_computes_global_max(self, n, tree_seed, root_seed):
        graph = random_tree(n, seed=tree_seed)
        root = sorted(graph.nodes)[root_seed % n]
        depth = graph.bfs_distances(root)
        parent = {
            v: (None if v == root else min(
                u for u in graph.neighbors(v) if depth[u] == depth[v] - 1))
            for v in graph.nodes
        }

        def program(info):
            result = yield from gather_bfs(
                info.id, info.neighbors, parent[info.id], depth[info.id],
                info.n, 1, info.id * 7, max,
            )
            return result

        res = SleepingSimulator(graph, program).run()
        assert all(out == max(graph.nodes) * 7 for out in res.outputs.values())
        assert res.awake_complexity <= 4
