"""Tests for Theorem 1 — the end-to-end headline result."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.theorem1 import solve, theorem1_duration
from repro.core.theorem9 import theorem9_reference
from repro.graphs import complete_graph, cycle, gnp, grid, path, star
from repro.olocal import (
    PROBLEMS,
    DegreePlusOneListColoring,
    DeltaPlusOneColoring,
    MaximalIndependentSet,
)
from repro.util.idspace import permuted_ids
from repro.util.mathx import iterated_log, sqrt_log_ceil


class TestEndToEnd:
    @pytest.mark.parametrize("problem_name", sorted(PROBLEMS))
    def test_all_problems_valid(self, problem_name):
        problem = PROBLEMS[problem_name]
        g = gnp(14, 0.25, seed=1)
        result = solve(g, problem)  # validate=True checks the solution
        assert set(result.outputs) == set(g.nodes)

    @pytest.mark.parametrize(
        "factory",
        [lambda: path(9), lambda: cycle(8), lambda: star(7),
         lambda: grid(3, 3), lambda: complete_graph(6),
         lambda: gnp(12, 0.3, seed=2, ids=permuted_ids(12, seed=3))],
    )
    def test_graph_families(self, factory):
        g = factory()
        result = solve(g, MaximalIndependentSet())
        assert set(result.outputs) == set(g.nodes)

    def test_output_is_a_sequential_greedy_run(self):
        """The defining O-LOCAL property: the distributed output equals the
        sequential greedy under the clustering-induced orientation."""
        g = gnp(14, 0.25, seed=4)
        problem = DeltaPlusOneColoring()
        result = solve(g, problem)
        oracle = theorem9_reference(g, problem, result.clustering)
        assert result.outputs == oracle

    def test_list_coloring_respects_lists(self):
        g = cycle(8)
        problem = DegreePlusOneListColoring()
        inputs = {v: tuple(range(v, v + 4)) for v in g.nodes}
        result = solve(g, problem, inputs=inputs)
        for v, color in result.outputs.items():
            assert color in inputs[v]

    def test_clustering_exposed(self):
        g = gnp(12, 0.25, seed=5)
        result = solve(g, MaximalIndependentSet())
        result.clustering.validate(g)
        assert result.clustering.max_color() <= result.palette_bound


class TestComplexityBounds:
    def test_awake_sqrtlog_logstar(self):
        g = gnp(20, 0.2, seed=6)
        result = solve(g, DeltaPlusOneColoring())
        sqrt_log = max(1, sqrt_log_ceil(g.n))
        log_star = max(1, iterated_log(g.id_space))
        budget = 2 * sqrt_log * (5 + 7 * (20 + 7 * log_star) + 40) + 7 * (
            1 + 30
        )
        assert result.awake_complexity <= budget

    def test_round_complexity_within_duration(self):
        g = gnp(10, 0.3, seed=7)
        result = solve(g, MaximalIndependentSet())
        assert result.round_complexity <= theorem1_duration(g.n, g.id_space)

    def test_awake_independent_of_delta(self):
        """The point of the paper: on stars (Δ = n-1) the awake complexity
        does not blow up with the degree — unlike the BM21 baseline whose
        schedule is Θ(log Δ)."""
        small = solve(star(8), MaximalIndependentSet())
        big = solve(star(16), MaximalIndependentSet())
        # same sqrt(log n) regime: awake stays in the same ballpark
        assert big.awake_complexity <= 2 * small.awake_complexity

    def test_b_override(self):
        g = gnp(12, 0.25, seed=8)
        result = solve(g, MaximalIndependentSet(), b=3)
        assert result.b == 3


@settings(max_examples=6, deadline=None)
@given(st.integers(4, 14), st.integers(0, 10**6))
def test_property_end_to_end(n, seed):
    g = gnp(n, 3.0 / n, seed=seed)
    problem = MaximalIndependentSet()
    result = solve(g, problem)
    oracle = theorem9_reference(g, problem, result.clustering)
    assert result.outputs == oracle
