"""Tests for the unified scenario API (repro.api): Scenario semantics,
run_scenario validation + determinism for all four algorithms, and
run_grid bridging into the sharded sweep runner."""

import pickle

import pytest

from repro.api import (
    RunResult,
    Scenario,
    catalog,
    run_grid,
    run_scenario,
    scenarios_from_grid,
)
from repro.core.algorithms import ALGORITHMS, SolveOutcome
from repro.runner import TrialCache
from repro.runner.trials import sweep_from_grid

ALL_ALGORITHMS = ("theorem1", "baseline", "theorem9", "greedy")


class TestScenario:
    def test_defaults(self):
        s = Scenario()
        assert (s.family, s.problem, s.algorithm) == ("gnp", "mis", "theorem1")
        assert s.engine is None
        assert s.params == ()

    def test_params_mapping_normalized_to_sorted_tuple(self):
        s = Scenario(params={"p": 0.2, "b": 4})
        assert s.params == (("b", 4), ("p", 0.2))
        assert s.params_dict() == {"b": 4, "p": 0.2}
        # same content, either spelling -> equal and hash-equal
        assert s == Scenario(params=(("p", 0.2), ("b", 4)))
        assert hash(s) == hash(Scenario(params=(("p", 0.2), ("b", 4))))

    def test_with_params_merges(self):
        s = Scenario(params={"p": 0.2})
        s2 = s.with_params(b=8)
        assert s2.params_dict() == {"b": 8, "p": 0.2}
        assert s.params_dict() == {"p": 0.2}  # original frozen

    def test_pickle_round_trip(self):
        s = Scenario(family="regular", n=24, ids="poly3", seed=7,
                     problem="coloring", algorithm="baseline",
                     params={"degree": 4})
        clone = pickle.loads(pickle.dumps(s))
        assert clone == s
        assert clone.params == s.params
        assert pickle.loads(pickle.dumps(clone)) == s

    def test_describe_is_jsonable_identity(self):
        d = Scenario(params={"b": 4}).describe()
        assert d["family"] == "gnp" and d["params"] == {"b": 4}


class TestValidation:
    def test_valid_scenario_has_no_errors(self):
        assert Scenario(family="path", n=8).validate() == []

    @pytest.mark.parametrize(
        "kwargs, fragment",
        [
            ({"family": "nope"}, "unknown family"),
            ({"problem": "sudoku"}, "unknown problem"),
            ({"algorithm": "turbo"}, "unknown algorithm"),
            ({"ids": "weird"}, "unknown id scheme"),
            ({"n": 0}, "n must be >= 1"),
            ({"params": {"zap": 1}}, "unknown scenario param"),
            ({"algorithm": "theorem1", "engine": "reference"},
             "does not support engine"),
            ({"algorithm": "greedy", "engine": "warp"},
             "unknown engine"),
        ],
    )
    def test_each_axis_is_validated(self, kwargs, fragment):
        errors = Scenario(**kwargs).validate()
        assert any(fragment in e for e in errors), errors

    def test_errors_list_valid_registry_names(self):
        (error,) = Scenario(algorithm="turbo").validate()
        for name in ALL_ALGORITHMS:
            assert name in error

    def test_run_scenario_returns_errors_instead_of_raising(self):
        result = run_scenario(Scenario(family="nope", problem="sudoku"))
        assert isinstance(result, RunResult)
        assert not result.ok
        assert result.outcome is None and result.graph is None
        assert len(result.errors) == 2

    def test_aliases_resolve_everywhere(self):
        result = run_scenario(
            Scenario(family="path", n=8, problem="mis", algorithm="t1")
        )
        assert result.ok
        assert result.outcome.algorithm == "theorem1"


class TestRunScenario:
    @pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
    def test_uniform_outcome_and_determinism(self, algorithm):
        """Running the same scenario twice is bit-identical, for every
        registered algorithm (satellite acceptance criterion)."""
        scenario = Scenario(family="gnp", n=12, seed=3, problem="coloring",
                            algorithm=algorithm)
        first = run_scenario(scenario)
        second = run_scenario(scenario)
        assert first.ok and second.ok
        for result in (first, second):
            assert isinstance(result.outcome, SolveOutcome)
            assert result.outcome.algorithm == algorithm
            assert result.outcome.awake_complexity >= 1
            assert result.outcome.round_complexity >= 1
        assert first.outcome.outputs == second.outcome.outputs
        assert (
            first.outcome.awake_complexity,
            first.outcome.average_awake,
            first.outcome.round_complexity,
            first.outcome.messages_sent,
        ) == (
            second.outcome.awake_complexity,
            second.outcome.average_awake,
            second.outcome.round_complexity,
            second.outcome.messages_sent,
        )

    def test_outputs_are_validated_solutions(self):
        result = run_scenario(
            Scenario(family="cycle", n=9, problem="mis", algorithm="theorem9")
        )
        assert result.ok
        from repro.olocal import PROBLEMS

        assert PROBLEMS.get("mis").validate(
            result.graph, result.outcome.outputs
        ) == []

    def test_theorem9_extras_carry_clustering_stage(self):
        result = run_scenario(
            Scenario(family="path", n=10, algorithm="theorem9")
        )
        extras = result.outcome.extras
        assert extras["clustering_colors"] >= 1
        assert extras["clustering_awake"] >= 1
        assert extras["clustering_rounds"] >= 1

    def test_greedy_reference_accounting(self):
        result = run_scenario(
            Scenario(family="path", n=10, algorithm="greedy")
        )
        outcome = result.outcome
        assert outcome.engine == "reference"
        assert outcome.awake_complexity == 1
        assert outcome.average_awake == 1.0
        assert outcome.round_complexity == 10
        assert outcome.messages_sent == 9

    def test_family_params_reach_the_builder(self):
        sparse = run_scenario(
            Scenario(family="gnp", n=24, seed=1, params={"p": 0.05},
                     algorithm="greedy")
        )
        dense = run_scenario(
            Scenario(family="gnp", n=24, seed=1, params={"p": 0.9},
                     algorithm="greedy")
        )
        assert sparse.graph.num_edges < dense.graph.num_edges

    def test_algorithm_b_param_is_honored(self):
        result = run_scenario(
            Scenario(family="path", n=12, algorithm="theorem1",
                     params={"b": 2})
        )
        assert result.ok
        assert result.outcome.extras["b"] == 2


class TestRunGrid:
    def test_workers_do_not_change_the_aggregate(self):
        """run_grid at 1 vs 2 workers renders byte-identical tables for
        all four algorithms (satellite acceptance criterion)."""
        kwargs = dict(
            families=("path", "gnp"),
            sizes=(8, 12),
            problems=("mis",),
            algorithms=ALL_ALGORITHMS,
            trials=1,
            seed=5,
        )
        serial = run_grid(workers=1, **kwargs)
        sharded = run_grid(workers=2, **kwargs)
        assert serial.render() == sharded.render()
        rows = serial.experiments()["GRID"].rows
        assert len(rows) == 2 * 2 * 1 * len(ALL_ALGORITHMS)
        assert {row[3] for row in rows} == set(ALL_ALGORITHMS)

    def test_grid_caches_trials(self, tmp_path):
        cache = TrialCache(tmp_path / "cache")
        kwargs = dict(families=("path",), sizes=(8,), problems=("mis",),
                      algorithms=("greedy", "theorem9"), cache=cache)
        cold = run_grid(**kwargs)
        warm = run_grid(**kwargs)
        assert cold.cache_stats.misses == 2
        assert warm.cache_stats.hits == 2 and warm.cache_stats.misses == 0
        assert cold.render() == warm.render()

    def test_unknown_names_fail_before_running(self):
        with pytest.raises(KeyError, match="unknown algorithm"):
            run_grid(algorithms=("turbo",))
        with pytest.raises(KeyError, match="unknown famil"):
            run_grid(families=("nope",))

    def test_scenarios_from_grid_matches_sweep_seeds(self):
        scenarios = scenarios_from_grid(
            families=("path",), sizes=(8,), problems=("mis",),
            algorithms=("theorem1", "greedy"), trials=2, seed=9,
        )
        spec = sweep_from_grid(
            families=("path",), sizes=(8,), problems=("mis",),
            algorithms=("theorem1", "greedy"), trials_per_config=2,
            master_seed=9,
        )
        assert [s.seed for s in scenarios] == [t.seed for t in spec.trials]
        assert [s.algorithm for s in scenarios] == [
            t.kwargs_dict()["algorithm"] for t in spec.trials
        ]


class TestCatalog:
    def test_catalog_lists_every_axis(self):
        axes = catalog()
        assert "gnp" in axes["families"]
        assert "maximal_independent_set" in axes["problems"]
        assert set(ALL_ALGORITHMS) <= set(axes["algorithms"])

    def test_algorithm_registry_metadata(self):
        entry = ALGORITHMS.entry("theorem1")
        assert "b" in entry.params
        assert entry.value.trace_program is not None
        assert ALGORITHMS.entry("greedy").value.engines == (
            "reference", "simulator", "vectorized"
        )


class TestFaultAxis:
    """Fault injection as a first-class scenario axis."""

    def test_faults_auto_select_faulty_engine(self):
        s = Scenario(fault_drop=0.1)
        assert s.faults_active
        assert s.resolved_engine() == "faulty-simulator"
        assert s.validate() == []

    def test_fault_free_scenario_resolves_default_engine(self):
        s = Scenario()
        assert not s.faults_active
        assert s.resolved_engine() is None

    def test_explicit_nonfaulty_engine_with_faults_rejected(self):
        errors = Scenario(fault_corrupt=0.2, engine="simulator").validate()
        assert any("fault params require engine" in e for e in errors)

    def test_fault_probabilities_validated(self):
        errors = Scenario(fault_drop=1.5).validate()
        assert any("fault_drop must be in [0, 1]" in e for e in errors)

    def test_greedy_cannot_run_faulty(self):
        errors = Scenario(algorithm="greedy", fault_drop=0.5).validate()
        assert any("does not support engine" in e for e in errors)

    def test_fault_plan_seed_defaults_to_scenario_seed(self):
        assert Scenario(seed=9, fault_drop=0.1).fault_plan().seed == 9
        assert (
            Scenario(seed=9, fault_drop=0.1, fault_seed=4).fault_plan().seed
            == 4
        )

    def test_immune_rounds_normalized(self):
        s = Scenario(immune_rounds=[3, 1, 3, 2])
        assert s.immune_rounds == (1, 2, 3)

    def test_describe_carries_fault_identity_only_when_active(self):
        assert "faults" not in Scenario().describe()
        d = Scenario(fault_corrupt=0.2, fault_seed=5).describe()
        assert d["faults"]["corrupt_probability"] == 0.2
        assert d["faults"]["seed"] == 5

    @pytest.mark.parametrize("algorithm", ("theorem1", "baseline", "theorem9"))
    def test_fault_scenarios_raise_loudly_or_survive(self, algorithm):
        """End-to-end acceptance: a corrupting scenario either raises a
        repro error (the designed loud failure) or survives and reports
        its fault accounting — never a silent wrong outcome."""
        from repro.errors import ReproError

        scenario = Scenario(
            family="gnp", n=14, seed=3, problem="mis", algorithm=algorithm,
            fault_corrupt=0.3,
        )
        try:
            result = run_scenario(scenario)
        except ReproError:
            return  # failed loudly: exactly what the fault axis is for
        assert result.ok
        extras = result.outcome.extras
        assert result.outcome.engine == "faulty-simulator"
        assert extras["corrupted"] >= 0 and "fault_plan" in extras
        clean = run_scenario(
            Scenario(family="gnp", n=14, seed=3, problem="mis",
                     algorithm=algorithm)
        )
        # The clean engine label must be untouched.
        assert clean.outcome.engine == "simulator"

    def test_fault_run_is_deterministic(self):
        scenario = Scenario(
            family="path", n=16, seed=2, algorithm="baseline",
            fault_drop=0.02, fault_seed=11,
        )
        from repro.errors import ReproError

        def attempt():
            try:
                result = run_scenario(scenario)
                return ("ok", result.outcome.outputs,
                        result.outcome.extras.get("dropped"))
            except ReproError as exc:
                return ("raised", type(exc).__name__, str(exc))

        assert attempt() == attempt()

    def test_fault_free_grid_cache_keys_unchanged(self):
        """The fault axis must not shift pre-existing cache identities:
        a fault-free grid enumerates byte-identical trial kwargs (and
        therefore cache keys) whether or not the fault parameters exist."""
        from repro.runner import trial_cache_key
        from repro.runner.cache import code_version_salt

        salt = code_version_salt()
        plain = sweep_from_grid(
            families=["path"], sizes=[8], problems=["mis"],
            algorithms=["theorem1"],
        )
        explicit_zero = sweep_from_grid(
            families=["path"], sizes=[8], problems=["mis"],
            algorithms=["theorem1"],
            fault_drop=0.0, fault_corrupt=0.0, fault_seed=99,
            immune_rounds=[1, 2],
        )
        assert [t.kwargs for t in plain.trials] == [
            t.kwargs for t in explicit_zero.trials
        ]
        assert [trial_cache_key(t, salt) for t in plain.trials] == [
            trial_cache_key(t, salt) for t in explicit_zero.trials
        ]
        # The known-good shape of a fault-free solve trial's kwargs.
        assert [k for k, _ in plain.trials[0].kwargs] == [
            "family", "n", "problem", "algorithm", "seed",
        ]

    def test_faulty_grid_gets_distinct_cache_lane(self):
        from repro.runner import trial_cache_key
        from repro.runner.cache import code_version_salt

        salt = code_version_salt()
        plain = sweep_from_grid(
            families=["path"], sizes=[8], problems=["mis"],
            algorithms=["theorem1"],
        )
        faulty = sweep_from_grid(
            families=["path"], sizes=[8], problems=["mis"],
            algorithms=["theorem1"], fault_drop=0.1,
        )
        assert trial_cache_key(plain.trials[0], salt) != trial_cache_key(
            faulty.trials[0], salt
        )
        kwargs = faulty.trials[0].kwargs_dict()
        assert kwargs["fault_drop"] == 0.1
        assert kwargs["fault_seed"] != 0  # derived per trial
        assert "!d=0.1" in faulty.trials[0].label

    def test_fault_grid_runs_end_to_end_with_keep_going(self):
        """A fault sweep flows through run_grid/run_sweep: trials that
        raise become failures, survivors aggregate under allow_partial."""
        result = run_grid(
            families=("path",), sizes=(8, 12), problems=("mis",),
            algorithms=("baseline",), trials=2, seed=1,
            fault_corrupt=0.05, keep_going=True,
        )
        total = len(result.spec.trials)
        assert total == 4
        assert len(result.outcomes) + len(result.failures) == total
        if result.failures:
            assert all(
                f.error_type.endswith("Error") for f in result.failures
            )
            tables = result.experiments(allow_partial=True)
        else:
            tables = result.experiments()
        if result.outcomes:
            assert len(tables["GRID"].rows) == len(result.outcomes)

    def test_catalog_surfaces_fault_axis(self):
        axes = catalog()
        assert "faulty-simulator" in axes["engines"]
        assert set(axes["fault_params"]) == {
            "fault_drop", "fault_corrupt", "fault_seed", "immune_rounds",
        }
        assert axes["fault_capable"] == ("theorem1", "baseline", "theorem9")

    def test_solve_cli_fault_flags(self):
        from repro.cli import make_parser

        args = make_parser().parse_args(
            ["solve", "--fault-drop", "0.2", "--fault-seed", "7",
             "--immune-rounds", "1", "2"]
        )
        assert args.fault_drop == 0.2
        assert args.fault_seed == 7
        assert args.immune_rounds == [1, 2]

    def test_solve_cli_fault_run_exit_codes(self, capsys):
        from repro.cli import main

        # Survivor: tiny drop probability on a path with an immune round.
        code = main(
            ["solve", "--family", "path", "--n", "8", "--algorithm",
             "baseline", "--fault-drop", "0.0001", "--fault-seed", "1"]
        )
        out = capsys.readouterr().out
        if code == 0:
            assert "faults: engine=faulty-simulator" in out
        else:
            assert code == 3
            assert "faults broke the protocol" in out
