"""Tests for the O-LOCAL framework, the four problems, and §2.2's
non-membership counterexample."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ValidationError
from repro.graphs import complete_graph, gnp, path, star
from repro.graphs.examples import distance2_counterexample_path
from repro.olocal import (
    PROBLEMS,
    DegreePlusOneListColoring,
    DeltaPlusOneColoring,
    MaximalIndependentSet,
    MinimalVertexCover,
    sequential_greedy,
)
from repro.olocal.not_olocal import (
    alternating_orientation_sinks,
    defeating_id_assignment,
    sink_collision,
    validate_distance2_coloring,
)


def random_priority(nodes, seed):
    order = list(nodes)
    random.Random(seed).shuffle(order)
    rank = {v: i for i, v in enumerate(order)}
    return rank.__getitem__


class TestGreedyEngine:
    def test_id_priority_coloring_path(self):
        g = path(4)
        out = sequential_greedy(g, DeltaPlusOneColoring(), lambda v: v)
        assert out == {1: 1, 2: 2, 3: 1, 4: 2}

    def test_rejects_non_injective_priority(self):
        with pytest.raises(ValidationError, match="injective"):
            sequential_greedy(path(3), DeltaPlusOneColoring(), lambda v: 0)

    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(3, 40),
        st.integers(0, 10**6),
        st.integers(0, 10**6),
        st.sampled_from(sorted(PROBLEMS)),
    )
    def test_any_orientation_yields_valid_solution(
        self, n, gseed, pseed, problem_name
    ):
        """The defining property of O-LOCAL: the greedy succeeds for EVERY
        acyclic orientation (here: every total priority order)."""
        problem = PROBLEMS[problem_name]
        g = gnp(n, 3.0 / n, seed=gseed)
        inputs = problem.make_inputs(g)
        out = sequential_greedy(
            g, problem, random_priority(g.nodes, pseed), inputs
        )
        problem.check(g, out, inputs)


class TestColoring:
    def test_complete_graph_uses_all_colors(self):
        g = complete_graph(5)
        out = sequential_greedy(g, DeltaPlusOneColoring(), lambda v: v)
        assert sorted(out.values()) == [1, 2, 3, 4, 5]

    def test_validator_catches_monochromatic_edge(self):
        g = path(2)
        problem = DeltaPlusOneColoring()
        assert problem.validate(g, {1: 1, 2: 1})
        with pytest.raises(ValidationError):
            problem.check(g, {1: 1, 2: 1})

    def test_validator_catches_palette_overflow(self):
        g = path(3)
        violations = DeltaPlusOneColoring().validate(g, {1: 5, 2: 2, 3: 1})
        assert any("deg+1" in v for v in violations)

    def test_validator_catches_missing_node(self):
        violations = DeltaPlusOneColoring().validate(path(3), {1: 1, 2: 2})
        assert any("no color" in v for v in violations)


class TestMIS:
    def test_star_hub_first(self):
        g = star(6)
        hub = max(g.nodes, key=g.degree)
        out = sequential_greedy(g, MaximalIndependentSet(), lambda v: (v != hub, v))
        assert out[hub] is True
        assert sum(out.values()) == 1

    def test_star_leaves_first(self):
        g = star(6)
        hub = max(g.nodes, key=g.degree)
        out = sequential_greedy(g, MaximalIndependentSet(), lambda v: (v == hub, v))
        assert out[hub] is False
        assert sum(out.values()) == 5

    def test_validator_catches_non_maximal(self):
        g = path(3)
        violations = MaximalIndependentSet().validate(
            g, {1: False, 2: False, 3: False}
        )
        assert any("maximal" in v for v in violations)

    def test_validator_catches_dependent_set(self):
        g = path(2)
        violations = MaximalIndependentSet().validate(g, {1: True, 2: True})
        assert any("both endpoints" in v for v in violations)


class TestListColoring:
    def test_respects_private_lists(self):
        g = path(3)
        inputs = {1: (7, 8), 2: (8, 7, 9), 3: (7, 8)}
        out = sequential_greedy(
            g, DegreePlusOneListColoring(), lambda v: v, inputs
        )
        assert out[1] == 7 and out[2] == 8 and out[3] == 7

    def test_too_small_list_rejected(self):
        g = star(4)
        hub = max(g.nodes, key=g.degree)
        inputs = {v: (1,) for v in g.nodes}
        with pytest.raises(ValueError, match="palette"):
            sequential_greedy(
                g, DegreePlusOneListColoring(), lambda v: (v != hub, v), inputs
            )

    def test_validator_checks_list_membership(self):
        g = path(2)
        problem = DegreePlusOneListColoring()
        inputs = {1: (1, 2), 2: (3, 4)}
        violations = problem.validate(g, {1: 9, 2: 3}, inputs)
        assert any("not in its list" in v for v in violations)


class TestVertexCover:
    def test_cover_complements_mis(self):
        g = gnp(25, 0.2, seed=3)
        mis = sequential_greedy(g, MaximalIndependentSet(), lambda v: v)
        cover = sequential_greedy(g, MinimalVertexCover(), lambda v: v)
        assert all(cover[v] == (not mis[v]) for v in g.nodes)

    def test_validator_catches_uncovered_edge(self):
        g = path(2)
        violations = MinimalVertexCover().validate(g, {1: False, 2: False})
        assert any("uncovered" in v for v in violations)


class TestDistance2NotOLocal:
    """Executable version of the §2.2 argument."""

    def test_sinks_are_odd_positions(self):
        assert alternating_orientation_sinks(6) == [1, 3, 5]

    @given(st.builds(dict, st.just({})), st.integers(0, 10**6))
    @settings(max_examples=20, deadline=None)
    def test_every_rule_is_defeated(self, _, seed):
        """For any sink rule f: {1..6} -> {1..5} (random sample), some ID
        assignment makes two distance-2 sinks collide."""
        rng = random.Random(seed)
        table = {i: rng.randint(1, 5) for i in range(1, 7)}
        f = table.__getitem__
        assignment = defeating_id_assignment(f, n=6)
        assert assignment is not None
        pair = sink_collision(f, assignment)
        assert pair is not None
        p1, p2 = pair
        assert p2 - p1 == 2  # distance exactly 2 on the path

    def test_collision_breaks_distance2_coloring(self):
        g = distance2_counterexample_path(6)
        f = lambda node_id: 1 + (node_id % 5)
        assignment = defeating_id_assignment(f, 6)
        # color nodes by the rule applied to the ID placed at their position
        colors = {pos + 1: f(assignment[pos]) for pos in range(6)}
        assert validate_distance2_coloring(g, colors)

    def test_pigeonhole_boundary(self):
        """With an injective rule on 5 IDs nothing collides — n >= 6 is
        exactly where the pigeonhole bites."""
        f = lambda i: i  # injective on {1..5}
        assert defeating_id_assignment(f, 5) is None
