"""Tests for Lemma 10 — the φ/r color-scheduling mappings (Figure 1)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.mapping import ColorScheduleMapping, render_figure1
from repro.errors import MappingError


class TestFigure1Values:
    """The paper's concrete example: q = 8 (Figure 1)."""

    def setup_method(self):
        self.m = ColorScheduleMapping(8)

    def test_phi_2_is_3(self):
        assert self.m.phi(2) == 3

    def test_r_2(self):
        assert set(self.m.r(2)) == {2, 3, 4, 8}

    def test_phi_4_is_7(self):
        assert self.m.phi(4) == 7

    def test_r_4(self):
        assert set(self.m.r(4)) == {4, 6, 7, 8}

    def test_lca_of_3_and_7_is_4(self):
        assert self.m.meeting_point(2, 4) == 4

    def test_schedule_length(self):
        assert self.m.schedule_length == 4  # 1 + log2(8)

    def test_render_contains_root(self):
        art = render_figure1(8)
        assert "8" in art.splitlines()[0]


class TestProperties:
    @pytest.mark.parametrize("q", [1, 2, 4, 8, 16, 64, 256])
    def test_verify_all_properties(self, q):
        ColorScheduleMapping(q).verify()

    def test_rejects_non_power_of_two(self):
        with pytest.raises(MappingError):
            ColorScheduleMapping(6)

    def test_rejects_color_out_of_range(self):
        m = ColorScheduleMapping(8)
        with pytest.raises(MappingError):
            m.phi(9)
        with pytest.raises(MappingError):
            m.r(0)

    def test_for_palette_rounds_up(self):
        assert ColorScheduleMapping.for_palette(5).q == 8
        assert ColorScheduleMapping.for_palette(8).q == 8
        assert ColorScheduleMapping.for_palette(9).q == 16

    @given(st.integers(0, 10))
    def test_schedule_values_in_range(self, log_q):
        q = 2**log_q
        m = ColorScheduleMapping(q)
        for c in range(1, q + 1):
            assert all(1 <= x <= 2 * q - 1 for x in m.r(c))

    @given(st.integers(1, 7), st.data())
    def test_meeting_point_strictly_between(self, log_q, data):
        q = 2**log_q
        m = ColorScheduleMapping(q)
        c1 = data.draw(st.integers(1, q))
        c2 = data.draw(st.integers(1, q).filter(lambda c: c != c1))
        x = m.meeting_point(c1, c2)
        lo, hi = sorted((m.phi(c1), m.phi(c2)))
        assert lo < x < hi
        assert x in set(m.r(c1)) & set(m.r(c2))

    def test_r_partition(self):
        m = ColorScheduleMapping(16)
        for c in range(1, 17):
            r = set(m.r(c))
            assert r == set(m.r_less(c)) | {m.phi(c)} | set(m.r_greater(c))


class TestScheduleSemantics:
    def test_color1_receives_nothing(self):
        """Color 1's leaf is the leftmost: r<(1) is empty — it decides
        immediately, like the base case of the induction."""
        m = ColorScheduleMapping(8)
        assert m.r_less(1) == ()

    def test_max_color_sends_nothing(self):
        m = ColorScheduleMapping(8)
        assert m.r_greater(8) == ()

    def test_lower_color_decides_before_higher_meets(self):
        """For c1 < c2 there is a common round after φ(c1) and before φ(c2):
        the handoff the induction in Lemma 11 relies on."""
        m = ColorScheduleMapping(32)
        for c1 in range(1, 33):
            for c2 in range(c1 + 1, 33):
                x = m.meeting_point(c1, c2)
                assert m.phi(c1) < x < m.phi(c2)
                assert x in m.r_greater(c1)
                assert x in m.r_less(c2)
