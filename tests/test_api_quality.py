"""Quality gates on the public API surface: importability, docstrings,
and __all__ consistency."""

import importlib
import inspect
import pkgutil

import pytest

import repro

MODULES = [
    name
    for _, name, _ in pkgutil.walk_packages(repro.__path__, prefix="repro.")
    # __main__ exits on import by design (it runs the CLI)
    if name != "repro.__main__"
]


def test_every_module_imports():
    for name in MODULES:
        importlib.import_module(name)


def test_package_all_resolves():
    for symbol in repro.__all__:
        assert hasattr(repro, symbol), f"__all__ lists missing {symbol}"


@pytest.mark.parametrize("module_name", MODULES)
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), (
        f"{module_name} lacks a module docstring"
    )


@pytest.mark.parametrize("module_name", MODULES)
def test_public_callables_documented(module_name):
    """Every public function/class defined in the package carries a
    docstring (doc comments on every public item — deliverable (e))."""
    module = importlib.import_module(module_name)
    undocumented = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isfunction(obj) or inspect.isclass(obj)):
            continue
        if getattr(obj, "__module__", None) != module_name:
            continue  # re-export; documented at its home
        if not (obj.__doc__ and obj.__doc__.strip()):
            undocumented.append(name)
    assert not undocumented, (
        f"{module_name}: undocumented public items {undocumented}"
    )


def test_version_string():
    assert repro.__version__.count(".") == 2


def test_cli_is_a_leaf_layer():
    """Nothing in the package imports repro.cli except the CLI entry
    points themselves — the layering inversion (runner importing graph
    builders from the CLI) must not come back."""
    import pathlib
    import re

    package_root = pathlib.Path(repro.__file__).resolve().parent
    offenders = []
    for source in sorted(package_root.rglob("*.py")):
        if source.name in ("cli.py", "__main__.py"):
            continue
        if re.search(r"^\s*(from|import)\s+repro\.cli\b",
                     source.read_text(), re.MULTILINE):
            offenders.append(str(source.relative_to(package_root)))
    assert not offenders, f"modules importing repro.cli: {offenders}"


def test_registries_are_the_single_source_of_names():
    """The package exports the three scenario registries, and they are
    Registry instances (not the plain dicts they replaced)."""
    from repro.registry import Registry

    for name in ("GRAPH_FAMILIES", "PROBLEMS", "ALGORITHMS"):
        assert isinstance(getattr(repro, name), Registry), name
