"""Faithfulness of the virtualization: running Lemma 15 *through* Lemma 7
over a clustering of G must produce exactly what Lemma 15 produces when
simulated directly on the virtual graph H — the property Theorem 13's
correctness rests on."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.clustering import UniquelyLabeledBFSClustering
from repro.core.lemma15 import (
    lemma15_duration,
    lemma15_protocol,
    lemma15_reference,
)
from repro.core.virtual import run_on_virtual_graph
from repro.graphs import gnp
from repro.model import SleepingSimulator


def random_connected_clustering(graph, num_groups, seed, label_base=1000):
    """Random membership, refined to connected clusters."""
    rng = random.Random(seed)
    raw = {v: rng.randrange(num_groups) for v in graph.nodes}
    label, next_label, seen = {}, label_base, set()
    for v in graph.nodes:
        if v in seen:
            continue
        comp, stack = {v}, [v]
        while stack:
            x = stack.pop()
            for u in graph.neighbors(x):
                if u not in comp and u not in seen and raw[u] == raw[v]:
                    comp.add(u)
                    stack.append(u)
        for u in comp:
            label[u] = next_label
        seen |= comp
        next_label += 1
    return UniquelyLabeledBFSClustering.from_roots(graph, label)


def run_lemma15_via_virtual(graph, clustering, b, label_space):
    vrounds = lemma15_duration(graph.n, label_space, b)

    def vprogram(vinfo):
        out = yield from lemma15_protocol(
            me=vinfo.id, peers=vinfo.neighbors, n=vinfo.n,
            id_space=label_space, b=b, t0=1,
        )
        return out

    def program(info):
        outcome = yield from run_on_virtual_graph(
            me=info.id, peers=info.neighbors,
            label=clustering.label[info.id], delta=clustering.dist[info.id],
            n=info.n, t0=1, vprogram=vprogram, label_space=label_space,
            max_virtual_rounds=vrounds,
        )
        return outcome.output

    return SleepingSimulator(graph, program).run()


@pytest.mark.parametrize("seed,groups,b", [(1, 3, 2), (2, 4, 3), (5, 2, 2)])
def test_virtual_lemma15_equals_reference_on_h(seed, groups, b):
    g = gnp(22, 0.18, seed=seed)
    clustering = random_connected_clustering(g, groups, seed)
    clustering.validate(g)
    h = clustering.virtual_graph(g)
    label_space = max(h.id_space, max(clustering.label.values()))

    res = run_lemma15_via_virtual(g, clustering, b, label_space)
    ref = lemma15_reference(
        type(h)(h.adjacency, id_space=label_space), b
    )
    for v in g.nodes:
        assert res.outputs[v] == ref.outputs[clustering.label[v]]


@settings(max_examples=8, deadline=None)
@given(st.integers(8, 20), st.integers(0, 10**6), st.integers(2, 3))
def test_property_virtual_matches_direct(n, seed, b):
    g = gnp(n, 3.0 / n, seed=seed)
    clustering = random_connected_clustering(g, 3, seed)
    h = clustering.virtual_graph(g)
    label_space = max(h.id_space, max(clustering.label.values()))
    res = run_lemma15_via_virtual(g, clustering, b, label_space)
    ref = lemma15_reference(type(h)(h.adjacency, id_space=label_space), b)
    for v in g.nodes:
        assert res.outputs[v] == ref.outputs[clustering.label[v]]
