"""Tests for the resilience layer (repro.runner.resilience + chaos).

Covers the fabric's promises under injected faults:

- **retry** — deterministic jittered backoff; a transiently raising
  trial completes and the aggregate is byte-identical to a fault-free
  run;
- **timeout** — a hung trial surfaces as a retriable
  ``TrialTimeoutError`` instead of stalling the sweep;
- **worker death** — a worker that exits hard breaks the pool; the
  executor rebuilds it, requeues only the unfinished trials, and the
  aggregate is still byte-identical; an exhausted restart budget is the
  only thing that aborts;
- **keep-going** — terminal failures become a ``FailureReport``;
  aggregation refuses partial input unless explicitly allowed;
- **journal** — completed trials checkpoint to an append-only journal;
  ``--resume`` skips them and reproduces identical tables; corrupt
  tails and stale salts read fail-open.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.runner import chaos as chaos_mod
from repro.runner import (
    ChaosError,
    ChaosSpec,
    FailureReport,
    RetryPolicy,
    SweepError,
    SweepJournal,
    TrialFailure,
    TrialSpec,
    TrialTimeoutError,
    run_sweep,
    sweep_from_experiments,
    trial_digest,
)
from repro.runner.chaos import CHAOS_ENV, chaos_from_env
from repro.runner.executor import TrialOutcome, pool_start_method
from repro.runner.resilience import backoff_seed, trial_deadline

HAS_FORK = pool_start_method() == "fork"

#: Cheap experiments (sub-second combined) for chaos sweeps.
CHEAP = ("E2", "E4", "E5")


@pytest.fixture(autouse=True)
def _disarm_chaos(monkeypatch):
    """Each test starts with no armed chaos and a cold memo."""
    monkeypatch.delenv(CHAOS_ENV, raising=False)
    monkeypatch.setattr(chaos_mod, "_armed", None)


def _arm(monkeypatch, **spec) -> None:
    monkeypatch.setenv(CHAOS_ENV, json.dumps(spec))


def _spec():
    return sweep_from_experiments(CHEAP)


def _trial(index: int = 0, label: str = "t", seed: int = 0) -> TrialSpec:
    return TrialSpec(
        index=index, kind="experiment", key="E2", label=label,
        kwargs=(("x", 1),), seed=seed,
    )


# -- retry policy ------------------------------------------------------------


class TestRetryPolicy:
    def test_default_never_retries_plain_exceptions(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.should_retry(TrialTimeoutError("slow"), 1)
        assert policy.should_retry(TrialTimeoutError("slow"), 2)
        assert not policy.should_retry(TrialTimeoutError("slow"), 3)
        assert not policy.should_retry(ValueError("boom"), 1)

    def test_retriable_classes_are_configurable(self):
        policy = RetryPolicy(max_attempts=2, retriable=(ChaosError,))
        assert policy.should_retry(ChaosError("chaos"), 1)
        assert not policy.should_retry(TrialTimeoutError("slow"), 1)

    def test_validation(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="jitter"):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError, match="backoff_base"):
            RetryPolicy(backoff_base=-1)

    def test_backoff_is_deterministic_per_trial_and_attempt(self):
        policy = RetryPolicy(max_attempts=4, backoff_base=0.5)
        trial = _trial(seed=7)
        first = policy.backoff_seconds(trial, 1)
        assert first == policy.backoff_seconds(trial, 1)
        # Jitter is seeded from the trial identity: a different trial
        # draws a different (but equally reproducible) schedule.
        other = policy.backoff_seconds(_trial(seed=8), 1)
        assert first != other

    def test_backoff_growth_and_ceiling(self):
        policy = RetryPolicy(
            max_attempts=10, backoff_base=1.0, backoff_factor=2.0,
            backoff_max=3.0, jitter=0.0,
        )
        trial = _trial()
        assert policy.backoff_seconds(trial, 1) == 1.0
        assert policy.backoff_seconds(trial, 2) == 2.0
        assert policy.backoff_seconds(trial, 3) == 3.0  # capped
        assert policy.backoff_seconds(trial, 8) == 3.0

    def test_jitter_stays_within_fraction(self):
        policy = RetryPolicy(
            max_attempts=2, backoff_base=1.0, jitter=0.5
        )
        delay = policy.backoff_seconds(_trial(), 1)
        assert 0.5 <= delay <= 1.0

    def test_zero_base_means_no_sleep(self):
        assert RetryPolicy(max_attempts=3).backoff_seconds(_trial(), 1) == 0.0


# -- trial identity ----------------------------------------------------------


class TestTrialDigest:
    def test_positional_fields_excluded(self):
        # Same work at a different grid position: same digest — the
        # journal (like the cache) must match on content, not position.
        a = _trial(index=0, label="path/n=8#0")
        b = _trial(index=5, label="renamed")
        assert trial_digest(a) == trial_digest(b)
        assert backoff_seed(a) == backoff_seed(b)

    def test_identity_fields_included(self):
        assert trial_digest(_trial(seed=1)) != trial_digest(_trial(seed=2))


# -- per-trial deadline ------------------------------------------------------


class TestTrialDeadline:
    def test_fast_body_unaffected(self):
        with trial_deadline(_trial(), 5.0):
            value = 1 + 1
        assert value == 2

    def test_hang_raises_timeout(self):
        with pytest.raises(TrialTimeoutError, match="wall-clock budget"):
            with trial_deadline(_trial(label="slowpoke"), 0.1):
                time.sleep(5)

    def test_none_and_zero_disable_the_deadline(self):
        for timeout in (None, 0, -1):
            with trial_deadline(_trial(), timeout):
                pass


# -- chaos harness -----------------------------------------------------------


class TestChaosSpec:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown chaos mode"):
            ChaosSpec(mode="explode")

    def test_env_arming_and_memoization(self, monkeypatch):
        assert chaos_from_env() is None
        _arm(monkeypatch, mode="raise", match="E4[", times=1)
        spec = chaos_from_env()
        assert spec is not None and spec.mode == "raise"
        # Same env value → same object, so fuse-less counters persist.
        assert chaos_from_env() is spec

    def test_malformed_spec_raises(self, monkeypatch):
        monkeypatch.setenv(CHAOS_ENV, "[1, 2]")
        with pytest.raises(ValueError, match="JSON object"):
            chaos_from_env()

    def test_firing_is_bounded_per_process(self):
        spec = ChaosSpec(mode="raise", match="t", times=2)
        for _ in range(2):
            with pytest.raises(ChaosError):
                spec.maybe_fire(_trial())
        spec.maybe_fire(_trial())  # fuse burnt: no further firing

    def test_fuse_files_bound_firing_across_instances(self, tmp_path):
        fuse = str(tmp_path / "fuse")
        first = ChaosSpec(mode="raise", match="t", times=1, fuse=fuse)
        with pytest.raises(ChaosError):
            first.maybe_fire(_trial())
        # A *different* instance (as after a pool restart or in another
        # worker) sees the claimed fuse file and stays quiet.
        second = ChaosSpec(mode="raise", match="t", times=1, fuse=fuse)
        second.maybe_fire(_trial())

    def test_match_filters_by_label(self):
        spec = ChaosSpec(mode="raise", match="E9[", times=1)
        spec.maybe_fire(_trial(label="E2[x]"))  # no match, no fire


# -- chaos through the executor ----------------------------------------------


class TestChaosSweeps:
    def test_injected_raise_fails_the_sweep_by_default(self, monkeypatch):
        _arm(monkeypatch, mode="raise", match="E4[", times=1)
        with pytest.raises(SweepError, match=r"E4\[.*ChaosError"):
            run_sweep(_spec(), workers=1)

    def test_retry_recovers_from_transient_raise(self, monkeypatch):
        baseline = run_sweep(_spec(), workers=1).render()
        monkeypatch.setattr(chaos_mod, "_armed", None)
        _arm(monkeypatch, mode="raise", match="E4[", times=1)
        result = run_sweep(
            _spec(),
            workers=1,
            retry=RetryPolicy(max_attempts=2, retriable=(ChaosError,)),
        )
        # Tables are bit-identical; the retry only adds the S3 footer.
        assert result.render().startswith(baseline)
        assert result.resilience_summary() == (
            "1 trial(s) retried (0 timeout(s), 0 worker death(s))"
        )

    def test_hang_hits_timeout_and_retries(self, monkeypatch):
        baseline = run_sweep(_spec(), workers=1).render()
        monkeypatch.setattr(chaos_mod, "_armed", None)
        _arm(monkeypatch, mode="hang", match="E4[", times=1, hang_seconds=30)
        result = run_sweep(
            _spec(),
            workers=1,
            timeout=0.5,
            retry=RetryPolicy(max_attempts=2),  # timeouts retriable by default
        )
        assert result.render().startswith(baseline)
        assert result.resilience_summary() == (
            "1 trial(s) retried (1 timeout(s), 0 worker death(s))"
        )

    def test_hang_without_retry_surfaces_timeout(self, monkeypatch):
        _arm(monkeypatch, mode="hang", match="E4[", times=1, hang_seconds=30)
        with pytest.raises(SweepError, match="TrialTimeoutError"):
            run_sweep(_spec(), workers=1, timeout=0.5)

    def test_keep_going_collects_failures(self, monkeypatch):
        _arm(monkeypatch, mode="raise", match="E4[", times=0)
        result = run_sweep(_spec(), workers=1, keep_going=True)
        assert len(result.failures) == 1
        failure = result.failures[0]
        assert failure.error_type == "ChaosError"
        assert "E4[" in failure.label
        assert "ChaosError" in failure.traceback
        assert len(result.outcomes) == len(_spec().trials) - 1

    def test_partial_aggregate_refused_then_allowed(self, monkeypatch):
        _arm(monkeypatch, mode="raise", match="E4[", times=0)
        result = run_sweep(_spec(), workers=1, keep_going=True)
        with pytest.raises(SweepError, match="allow_partial"):
            result.experiments()
        tables = result.experiments(allow_partial=True)
        assert "E2" in tables and "E4" not in tables

    @pytest.mark.skipif(not HAS_FORK, reason="needs fork start method")
    def test_worker_crash_recovers_via_pool_restart(
        self, monkeypatch, tmp_path
    ):
        baseline = run_sweep(_spec(), workers=1).render()
        monkeypatch.setattr(chaos_mod, "_armed", None)
        _arm(
            monkeypatch, mode="exit", match="E4[", times=1,
            fuse=str(tmp_path / "fuse"),
        )
        result = run_sweep(_spec(), workers=2)
        assert result.pool_restarts >= 1
        assert result.render().startswith(baseline)
        assert "worker death(s)" in (result.resilience_summary() or "")

    @pytest.mark.skipif(not HAS_FORK, reason="needs fork start method")
    def test_restart_budget_exhaustion_aborts(self, monkeypatch):
        # No fuse and times=0: the trial kills its worker on every
        # attempt, in every rebuilt pool — the budget must give up.
        _arm(monkeypatch, mode="exit", match="E4[", times=0)
        with pytest.raises(SweepError, match="worker process died"):
            run_sweep(_spec(), workers=2, max_pool_restarts=1)

    @pytest.mark.skipif(not HAS_FORK, reason="needs fork start method")
    def test_pool_keep_going_collects_worker_exception(self, monkeypatch):
        _arm(monkeypatch, mode="raise", match="E4[", times=0)
        result = run_sweep(_spec(), workers=2, keep_going=True)
        assert [f.error_type for f in result.failures] == ["ChaosError"]
        assert result.experiments(allow_partial=True)


# -- failure report ----------------------------------------------------------


class TestFailureReport:
    def _failure(self, index=0, error="ValueError"):
        return TrialFailure(
            index=index, label=f"t{index}", error_type=error,
            message="boom", traceback="Traceback...\nValueError: boom",
            attempts=2,
        )

    def test_bool_and_counts(self):
        assert not FailureReport()
        report = FailureReport(
            (self._failure(0), self._failure(1, "ChaosError"))
        )
        assert report
        assert report.by_error_type() == {"ValueError": 1, "ChaosError": 1}

    def test_render_carries_tracebacks(self):
        report = FailureReport((self._failure(),))
        text = report.render()
        assert "1 trial failure(s)" in text
        assert "ValueError: boom" in text
        assert "after 2 attempt(s)" in text

    def test_describe_is_jsonable(self):
        report = FailureReport((self._failure(),))
        assert json.loads(json.dumps(report.describe()))["count"] == 1


# -- journal / resume --------------------------------------------------------


class TestJournal:
    def test_roundtrip_resume_skips_and_matches(self, tmp_path):
        path = tmp_path / "SWEEP_t.journal"
        spec = _spec()
        first = run_sweep(spec, workers=1, journal=SweepJournal(path))
        resumed = run_sweep(
            spec, workers=1, journal=SweepJournal(path, resume=True)
        )
        assert all(o.resumed for o in resumed.outcomes)
        assert resumed.render() == first.render()

    def test_interrupted_run_resumes_byte_identically(self, tmp_path):
        path = tmp_path / "SWEEP_t.journal"
        spec = _spec()
        full = run_sweep(spec, workers=1, journal=SweepJournal(path))
        # Simulate a run killed partway: keep the header + 1 entry.
        lines = path.read_text().splitlines(keepends=True)
        path.write_text("".join(lines[:2]))
        resumed = run_sweep(
            spec, workers=1, journal=SweepJournal(path, resume=True)
        )
        assert sum(o.resumed for o in resumed.outcomes) == 1
        assert resumed.render() == full.render()
        # The journal was topped back up to a full checkpoint.
        again = run_sweep(
            spec, workers=1, journal=SweepJournal(path, resume=True)
        )
        assert all(o.resumed for o in again.outcomes)

    def test_corrupt_tail_reads_fail_open(self, tmp_path):
        path = tmp_path / "SWEEP_t.journal"
        spec = _spec()
        run_sweep(spec, workers=1, journal=SweepJournal(path))
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"digest": "torn-wr')  # torn tail line
        resumed = run_sweep(
            spec, workers=1, journal=SweepJournal(path, resume=True)
        )
        assert all(o.resumed for o in resumed.outcomes)

    def test_checksum_mismatch_drops_entry_and_tail(self, tmp_path):
        path = tmp_path / "SWEEP_t.journal"
        spec = _spec()
        run_sweep(spec, workers=1, journal=SweepJournal(path))
        lines = path.read_text().splitlines()
        entry = json.loads(lines[1])
        entry["sha"] = "0" * 16  # flipped bits
        lines[1] = json.dumps(entry)
        path.write_text("\n".join(lines) + "\n")
        journal = SweepJournal(path, resume=True)
        assert journal.load_outcomes(spec.trials) == {}

    def test_stale_salt_discards_entries(self, tmp_path):
        path = tmp_path / "SWEEP_t.journal"
        spec = _spec()
        run_sweep(
            spec, workers=1, journal=SweepJournal(path, salt="oldcode")
        )
        # Same file, current code version: nothing resumes.
        journal = SweepJournal(path, resume=True)
        assert journal.load_outcomes(spec.trials) == {}
        # And begin() restarts the stale file.
        journal.begin(spec.name, len(spec.trials))
        header = json.loads(path.read_text().splitlines()[0])
        assert header["salt"] == journal.salt

    def test_alien_file_is_ignored(self, tmp_path):
        path = tmp_path / "SWEEP_t.journal"
        path.write_text("not a journal at all\n")
        journal = SweepJournal(path, resume=True)
        assert journal.load_outcomes(_spec().trials) == {}

    def test_missing_file_resumes_empty(self, tmp_path):
        journal = SweepJournal(tmp_path / "nope.journal", resume=True)
        assert journal.load_outcomes(_spec().trials) == {}

    def test_unpicklable_payload_degrades_to_no_checkpoint(self, tmp_path):
        journal = SweepJournal(tmp_path / "SWEEP_t.journal")
        journal.begin("t", 1)
        outcome = TrialOutcome(
            spec=_trial(), payload=lambda: None, seconds=0.1, worker=1
        )
        assert journal.append(outcome) is False

    def test_fresh_journal_truncates_previous_run(self, tmp_path):
        path = tmp_path / "SWEEP_t.journal"
        spec = _spec()
        run_sweep(spec, workers=1, journal=SweepJournal(path))
        run_sweep(spec, workers=1, journal=SweepJournal(path))  # no resume
        lines = path.read_text().splitlines()
        assert len(lines) == 1 + len(spec.trials)

    @pytest.mark.skipif(not HAS_FORK, reason="needs fork start method")
    def test_pool_sweep_journals_and_resumes(self, tmp_path):
        path = tmp_path / "SWEEP_t.journal"
        spec = _spec()
        parallel = run_sweep(spec, workers=2, journal=SweepJournal(path))
        resumed = run_sweep(
            spec, workers=1, journal=SweepJournal(path, resume=True)
        )
        assert all(o.resumed for o in resumed.outcomes)
        assert resumed.render() == parallel.render()


# -- resilience CLI flags ----------------------------------------------------


class TestResilienceCli:
    def test_parser_defaults(self):
        from repro.cli import make_parser

        args = make_parser().parse_args(["sweep"])
        assert args.retries == 0
        assert args.timeout is None
        assert args.max_pool_restarts == 2
        assert not args.keep_going
        assert not args.allow_partial
        assert args.resume is None
        assert not args.no_journal

    def test_sweep_writes_journal_next_to_artifact(self, tmp_path):
        from repro.cli import main

        argv = [
            "sweep", "--experiments", "E2", "--tag", "jrnl", "--no-cache",
            "--output-dir", str(tmp_path),
        ]
        assert main(argv) == 0
        assert (tmp_path / "SWEEP_jrnl.journal").exists()
        assert (tmp_path / "SWEEP_jrnl.json").exists()

    def test_no_journal_flag(self, tmp_path):
        from repro.cli import main

        argv = [
            "sweep", "--experiments", "E2", "--tag", "nj", "--no-cache",
            "--no-journal", "--output-dir", str(tmp_path),
        ]
        assert main(argv) == 0
        assert not (tmp_path / "SWEEP_nj.journal").exists()

    def test_cli_resume_round_trip(self, tmp_path, capsys):
        from repro.cli import main

        argv = [
            "sweep", "--experiments", "E2", "E4", "--tag", "rt",
            "--no-cache", "--output-dir", str(tmp_path),
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        resume_argv = argv + [
            "--resume", str(tmp_path / "SWEEP_rt.journal"),
        ]
        assert main(resume_argv) == 0
        captured = capsys.readouterr()
        assert "resumed from journal" in captured.err
        assert captured.out == first

    def test_keep_going_cli_refuses_partial_without_flag(
        self, monkeypatch, tmp_path, capsys
    ):
        from repro.cli import main

        monkeypatch.setattr(chaos_mod, "_armed", None)
        monkeypatch.setenv(
            CHAOS_ENV, json.dumps({"mode": "raise", "match": "E4[", "times": 0})
        )
        argv = [
            "sweep", "--experiments", "E2", "E4", "--no-cache",
            "--keep-going", "--output-dir", str(tmp_path), "--no-artifact",
        ]
        assert main(argv) == 1
        err = capsys.readouterr().err
        assert "trial failure(s)" in err and "--allow-partial" in err
        assert main(argv + ["--allow-partial"]) == 0
        assert "E2" in capsys.readouterr().out
