"""Tests for the LOCAL-model adapter and the always-awake strawman."""

import pytest

from repro.graphs import cycle, gnp, path, star
from repro.model.lockstep import greedy_by_id_local, run_local
from repro.olocal import (
    DeltaPlusOneColoring,
    MaximalIndependentSet,
    sequential_greedy,
)
from repro.util.idspace import adversarial_path_ids


class TestRunLocal:
    def test_flood_counts_rounds(self):
        """Flood-max: every node learns the max ID in diameter rounds."""
        g = path(7)

        def first_messages(state):
            state.memory["best"] = state.info.id
            return {u: state.info.id for u in state.info.neighbors}

        def on_round(state, r, inbox):
            best = max([state.memory["best"], *inbox.values()])
            state.memory["best"] = best
            if r >= state.info.n:  # diameter bound
                state.finish(best)
            return {u: best for u in state.info.neighbors}

        res = run_local(g, first_messages, on_round)
        assert all(out == 7 for out in res.outputs.values())
        # LOCAL = always awake: awake equals rounds
        assert res.awake_complexity == res.round_complexity

    def test_runaway_detected(self):
        g = path(2)

        def first_messages(state):
            return None

        def on_round(state, r, inbox):
            return None  # never finishes

        with pytest.raises(RuntimeError, match="exceeded"):
            run_local(g, first_messages, on_round, max_rounds=20)


class TestGreedyById:
    @pytest.mark.parametrize(
        "factory", [lambda: path(10), lambda: cycle(9), lambda: star(8),
                     lambda: gnp(20, 0.2, seed=1)]
    )
    def test_matches_sequential_greedy(self, factory):
        g = factory()
        problem = DeltaPlusOneColoring()
        res = greedy_by_id_local(g, problem)
        expected = sequential_greedy(g, problem, lambda v: v)
        assert res.outputs == expected

    def test_adversarial_ids_cost_linear_awake(self):
        """Decreasing IDs along a path force a Θ(n) dependency chain —
        the motivation for sleeping algorithms."""
        n = 24
        g = path(n, ids=adversarial_path_ids(n))
        res = greedy_by_id_local(g, MaximalIndependentSet())
        assert res.awake_complexity >= n - 2

    def test_sleeping_beats_always_awake_on_adversarial_chain(self):
        """On the adversarial chain the paper's algorithm is already far
        below the strawman's Θ(n) awake cost at moderate n."""
        from repro.core.theorem1 import solve

        n = 96
        g = path(n, ids=adversarial_path_ids(n))
        strawman = greedy_by_id_local(g, MaximalIndependentSet())
        paper = solve(g, MaximalIndependentSet())
        assert strawman.awake_complexity >= n - 2
        assert paper.awake_complexity < strawman.awake_complexity
