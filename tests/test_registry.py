"""Tests for the generic registry layer (repro.registry): registration
semantics, alias resolution, dict compatibility, and entry-point plugin
loading via a stub on-disk distribution."""

import importlib
import sys
import textwrap

import pytest

from repro.registry import (
    PLUGIN_GROUP,
    Registry,
    RegistryError,
    UnknownNameError,
    load_plugins,
)


class TestRegistration:
    def test_add_and_get(self):
        reg = Registry("widget")
        reg.add("alpha", 1, title="first")
        assert reg.get("alpha") == 1
        assert reg["alpha"] == 1
        assert reg.entry("alpha").title == "first"

    def test_decorator_returns_value_unchanged(self):
        reg = Registry("widget")

        @reg.register("fn", title="a function")
        def fn():
            return 42

        assert fn() == 42
        assert reg.get("fn") is fn

    def test_duplicate_name_rejected(self):
        reg = Registry("widget")
        reg.add("alpha", 1)
        with pytest.raises(RegistryError, match="duplicate widget name 'alpha'"):
            reg.add("alpha", 2)
        assert reg.get("alpha") == 1  # original untouched

    def test_alias_colliding_with_name_rejected(self):
        reg = Registry("widget")
        reg.add("alpha", 1)
        with pytest.raises(RegistryError, match="duplicate"):
            reg.add("beta", 2, aliases=("alpha",))

    def test_name_colliding_with_alias_rejected(self):
        reg = Registry("widget")
        reg.add("alpha", 1, aliases=("a",))
        with pytest.raises(RegistryError, match="duplicate"):
            reg.add("a", 2)

    def test_self_colliding_aliases_rejected(self):
        reg = Registry("widget")
        with pytest.raises(RegistryError, match="collide"):
            reg.add("alpha", 1, aliases=("x", "x"))
        with pytest.raises(RegistryError, match="collide"):
            reg.add("beta", 1, aliases=("beta",))

    def test_unregister_frees_name_and_aliases(self):
        reg = Registry("widget")
        reg.add("alpha", 1, aliases=("a",))
        reg.unregister("a")  # aliases resolve here too
        assert "alpha" not in reg
        assert "a" not in reg
        reg.add("alpha", 2, aliases=("a",))  # name reusable
        assert reg.get("a") == 2


class TestLookup:
    def test_alias_resolution(self):
        reg = Registry("widget")
        reg.add("alpha", 1, aliases=("a", "al"))
        assert reg.resolve("a") == "alpha"
        assert reg.resolve("alpha") == "alpha"
        assert reg.get("al") == 1
        assert reg.entry("a").name == "alpha"

    def test_unknown_name_lists_choices(self):
        reg = Registry("widget")
        reg.add("alpha", 1, aliases=("a",))
        reg.add("beta", 2)
        with pytest.raises(UnknownNameError) as exc:
            reg.get("gamma")
        message = str(exc.value)
        assert "unknown widget 'gamma'" in message
        assert "'alpha'" in message and "'beta'" in message
        assert "aliases" in message

    def test_unknown_name_is_a_key_error(self):
        reg = Registry("widget")
        with pytest.raises(KeyError):
            reg["nope"]

    def test_get_with_default(self):
        reg = Registry("widget")
        reg.add("alpha", 1)
        assert reg.get("nope", None) is None
        assert reg.get("nope", "fallback") == "fallback"
        assert reg.get("alpha", None) == 1


class TestDictCompatibility:
    """The registries replaced plain dicts; old access patterns hold."""

    def _reg(self):
        reg = Registry("widget")
        reg.add("beta", 2, aliases=("b",))
        reg.add("alpha", 1)
        return reg

    def test_iteration_order_and_sorted(self):
        reg = self._reg()
        assert list(reg) == ["beta", "alpha"]  # registration order
        assert sorted(reg) == ["alpha", "beta"]

    def test_membership_len_items(self):
        reg = self._reg()
        assert "alpha" in reg and "b" in reg and "nope" not in reg
        assert len(reg) == 2
        assert reg.items() == (("beta", 2), ("alpha", 1))
        assert reg.keys() == reg.names() == ("beta", "alpha")
        assert reg.values() == (2, 1)

    def test_alias_map(self):
        reg = self._reg()
        assert reg.alias_map() == {"b": "beta"}

    def test_repr_names_the_kind(self):
        assert "widget" in repr(self._reg())


STUB_MODULE = """\
from repro.olocal import PROBLEMS
from repro.olocal.problem import OLocalProblem


class StubConstantProblem(OLocalProblem):
    '''Every node outputs 0; trivially valid (test fixture).'''

    name = "stub_constant"

    def decide(self, node, decided_neighbors):
        return 0

    def validate(self, graph, outputs, inputs=None):
        return [f"node {v}: {out}" for v, out in sorted(outputs.items())
                if out != 0]


def register():
    '''Entry-point target: idempotent registration.'''
    if StubConstantProblem.name not in PROBLEMS:
        PROBLEMS.add(StubConstantProblem.name, StubConstantProblem(),
                     title="Stub constant", aliases=("stub",))
"""


def _write_stub_distribution(root, entry_points_txt):
    """A minimal installed distribution: a module + .dist-info metadata."""
    (root / "repro_stub_plugin_mod.py").write_text(STUB_MODULE)
    info = root / "repro_stub_plugin-0.1.dist-info"
    info.mkdir()
    (info / "METADATA").write_text(
        "Metadata-Version: 2.1\nName: repro-stub-plugin\nVersion: 0.1\n"
    )
    (info / "entry_points.txt").write_text(textwrap.dedent(entry_points_txt))


@pytest.fixture
def stub_sys_path(tmp_path):
    """Put tmp_path on sys.path for distribution discovery, then clean up."""
    sys.path.insert(0, str(tmp_path))
    importlib.invalidate_caches()
    try:
        yield tmp_path
    finally:
        sys.path.remove(str(tmp_path))
        sys.modules.pop("repro_stub_plugin_mod", None)
        importlib.invalidate_caches()


class TestPluginLoading:
    def test_entry_point_registration_end_to_end(self, stub_sys_path):
        """A stub distribution's repro.plugins entry point registers a
        new problem that `repro solve` and Scenario run without any
        repro source change (tentpole acceptance criterion)."""
        from repro.api import Scenario, run_scenario
        from repro.cli import main
        from repro.olocal import PROBLEMS

        _write_stub_distribution(
            stub_sys_path,
            """\
            [repro.plugins]
            stub = repro_stub_plugin_mod:register
            """,
        )
        loaded = load_plugins(force=True)
        assert "stub" in loaded
        try:
            assert "stub_constant" in PROBLEMS
            assert PROBLEMS.resolve("stub") == "stub_constant"

            result = run_scenario(
                Scenario(family="path", n=6, problem="stub",
                         algorithm="greedy")
            )
            assert result.ok, result.errors
            assert set(result.outcome.outputs.values()) == {0}

            assert main(["solve", "--family", "path", "--n", "6",
                         "--problem", "stub", "--algorithm", "greedy"]) == 0
        finally:
            PROBLEMS.unregister("stub_constant")

    def test_loading_is_once_per_process_unless_forced(self, stub_sys_path):
        _write_stub_distribution(
            stub_sys_path,
            """\
            [repro.plugins]
            stub = repro_stub_plugin_mod:register
            """,
        )
        from repro.olocal import PROBLEMS

        assert load_plugins() == []  # already loaded earlier in-process
        assert load_plugins(force=True) == ["stub"]
        try:
            assert "stub_constant" in PROBLEMS
        finally:
            PROBLEMS.unregister("stub_constant")

    def test_broken_plugin_warns_and_is_skipped(self, stub_sys_path):
        (stub_sys_path / "repro_stub_plugin_mod.py").write_text(
            "def register():\n    raise RuntimeError('boom')\n"
        )
        info = stub_sys_path / "repro_stub_plugin-0.1.dist-info"
        info.mkdir()
        (info / "METADATA").write_text(
            "Metadata-Version: 2.1\nName: repro-stub-plugin\nVersion: 0.1\n"
        )
        (info / "entry_points.txt").write_text(
            "[repro.plugins]\nbad = repro_stub_plugin_mod:register\n"
        )
        importlib.invalidate_caches()
        with pytest.warns(RuntimeWarning, match="failed to load"):
            loaded = load_plugins(force=True)
        assert "bad" not in loaded

    def test_plugin_group_constant(self):
        assert PLUGIN_GROUP == "repro.plugins"


class TestDecoratorExtension:
    def test_third_party_decorator_call_makes_problem_runnable(self):
        """The other extension route: a plain PROBLEMS.add call (no
        packaging) is enough for `repro solve` and Scenario."""
        from repro.api import Scenario, run_scenario
        from repro.cli import main
        from repro.olocal import PROBLEMS
        from repro.olocal.problem import OLocalProblem

        class EchoDegree(OLocalProblem):
            """Every node outputs its own degree (always valid)."""

            name = "echo_degree"

            def decide(self, node, decided_neighbors):
                return node.degree

            def validate(self, graph, outputs, inputs=None):
                return [
                    f"{v}: {outputs[v]} != {graph.degree(v)}"
                    for v in sorted(outputs)
                    if outputs[v] != graph.degree(v)
                ]

        PROBLEMS.add("echo_degree", EchoDegree(), aliases=("echo",))
        try:
            result = run_scenario(
                Scenario(family="star", n=7, problem="echo",
                         algorithm="baseline")
            )
            assert result.ok, result.errors
            hub_degree = max(result.outcome.outputs.values())
            assert hub_degree == 6
            assert main(["solve", "--family", "star", "--n", "7",
                         "--problem", "echo_degree"]) == 0
        finally:
            PROBLEMS.unregister("echo_degree")
