"""The README's fenced python blocks actually run (the api-smoke CI job
executes the first one verbatim; this keeps all of them honest)."""

import re
from pathlib import Path

import pytest

README = Path(__file__).resolve().parent.parent / "README.md"

BLOCK_RE = re.compile(r"^```python\n(.*?)^```$", re.MULTILINE | re.DOTALL)


def python_blocks():
    """Every fenced python block in the README, in document order."""
    return BLOCK_RE.findall(README.read_text(encoding="utf-8"))


def test_readme_exists_with_python_quickstart():
    blocks = python_blocks()
    assert len(blocks) >= 2  # quickstart + registry-extension example
    assert "run_scenario" in blocks[0]


def test_readme_engine_matrix_in_sync():
    """The README's algorithm × engine table must match the registry —
    the same source of truth `repro solve --list` prints."""
    from repro.core.algorithms import ALGORITHMS

    text = README.read_text(encoding="utf-8")
    rows = re.findall(r"^\| `(\w+)` +\| ((?:`[\w-]+` ?)+) *\|$", text, re.MULTILINE)
    documented = {
        name: tuple(e.strip("`") for e in engines.split())
        for name, engines in rows
    }
    actual = {
        name: ALGORITHMS.get(name).engines for name in ALGORITHMS.names()
    }
    assert documented == actual, (
        "README engine matrix out of sync with `repro solve --list`"
    )


@pytest.mark.slow
def test_readme_python_blocks_execute():
    """Run all blocks sequentially in one namespace, like a reader
    pasting them into a session."""
    from repro import GRAPH_FAMILIES

    namespace: dict = {}
    try:
        for block in python_blocks():
            exec(compile(block, str(README), "exec"), namespace)  # noqa: S102
    finally:
        if "barbell" in GRAPH_FAMILIES:
            GRAPH_FAMILIES.unregister("barbell")
