"""Tests for the edge-problem extension (Open Question 5 via line graphs)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ValidationError
from repro.graphs import complete_graph, cycle, gnp, path, star
from repro.olocal.edge_problems import (
    edge_coloring,
    line_graph,
    maximal_matching,
    validate_edge_coloring,
    validate_maximal_matching,
)


class TestLineGraph:
    def test_path_line_graph_is_path(self):
        lg = line_graph(path(5))
        assert lg.graph.n == 4
        assert lg.graph.num_edges == 3
        assert lg.graph.max_degree == 2

    def test_star_line_graph_is_complete(self):
        lg = line_graph(star(6))
        assert lg.graph.n == 5
        assert lg.graph.num_edges == 10  # K5

    def test_cycle_line_graph_is_cycle(self):
        lg = line_graph(cycle(7))
        assert lg.graph.n == 7
        assert lg.graph.num_edges == 7

    def test_vertex_edge_bijection(self):
        g = gnp(12, 0.3, seed=1)
        lg = line_graph(g)
        assert len(lg.edge_of_vertex) == g.num_edges
        for vertex, edge in lg.edge_of_vertex.items():
            assert lg.vertex_of_edge[edge] == vertex

    def test_adjacency_iff_shared_endpoint(self):
        g = gnp(10, 0.35, seed=2)
        lg = line_graph(g)
        for a in lg.graph.nodes:
            for b in lg.graph.nodes:
                if a >= b:
                    continue
                e1, e2 = lg.edge_of_vertex[a], lg.edge_of_vertex[b]
                shares = bool(set(e1) & set(e2))
                assert lg.graph.has_edge(a, b) == shares


class TestMaximalMatching:
    @pytest.mark.parametrize("method", ["baseline", "theorem1"])
    def test_small_graphs(self, method):
        for g in (path(6), cycle(7), star(6)):
            result = maximal_matching(g, method=method)
            assert len(result.outputs) == g.num_edges

    def test_matching_on_path_is_alternating_ish(self):
        result = maximal_matching(path(7), method="baseline")
        size = sum(result.outputs.values())
        assert 2 <= size <= 3  # maximal matchings of P7 have 2 or 3 edges

    def test_star_matching_has_one_edge(self):
        result = maximal_matching(star(8), method="baseline")
        assert sum(result.outputs.values()) == 1

    def test_validator_catches_conflicts(self):
        g = path(3)
        with pytest.raises(ValidationError, match="sharing node"):
            validate_maximal_matching(
                g, {(1, 2): True, (2, 3): True}
            )

    def test_validator_catches_non_maximal(self):
        g = path(5)
        with pytest.raises(ValidationError, match="not maximal"):
            validate_maximal_matching(
                g, {(1, 2): True, (2, 3): False, (3, 4): False, (4, 5): False}
            )


class TestEdgeColoring:
    @pytest.mark.parametrize("method", ["baseline", "theorem1"])
    def test_small_graphs(self, method):
        for g in (path(6), cycle(6), complete_graph(5)):
            result = edge_coloring(g, method=method)
            assert len(result.outputs) == g.num_edges

    def test_palette_within_2delta_minus_1(self):
        g = gnp(14, 0.3, seed=3)
        result = edge_coloring(g, method="baseline")
        assert max(result.outputs.values()) <= 2 * g.max_degree - 1

    def test_validator_catches_shared_color_at_node(self):
        g = star(4)
        hub = max(g.nodes, key=g.degree)
        leaves = [v for v in g.nodes if v != hub]
        colors = {
            (min(hub, leaf), max(hub, leaf)): 1 for leaf in leaves
        }
        with pytest.raises(ValidationError, match="share"):
            validate_edge_coloring(g, colors)

    def test_validator_catches_palette_overflow(self):
        g = path(3)
        with pytest.raises(ValidationError, match="outside"):
            validate_edge_coloring(g, {(1, 2): 99, (2, 3): 1})


@settings(max_examples=8, deadline=None)
@given(st.integers(4, 14), st.integers(0, 10**6))
def test_property_matching_via_baseline(n, seed):
    g = gnp(n, 3.0 / n, seed=seed)
    result = maximal_matching(g, method="baseline")  # validators run inside
    assert set(result.outputs) == set(g.edges())
