"""Tests for Lemma 7: running protocols on the virtual graph of a
uniquely-labeled BFS-clustering, with replica consistency and the ×7 awake
overhead bound."""

import pytest

from repro.core.clustering import UniquelyLabeledBFSClustering
from repro.core.linial import linial_coloring, linial_duration
from repro.core.virtual import run_on_virtual_graph, virtual_duration
from repro.errors import ProtocolError, SimulationError
from repro.graphs import cycle, gnp, path
from repro.graphs.examples import figure2_instance
from repro.model import AwakeAt, SleepingSimulator


def make_clustered(graph, membership):
    """Helper: a clustering from a membership map, plus per-node pairs."""
    clustering = UniquelyLabeledBFSClustering.from_roots(graph, membership)
    clustering.validate(graph)
    return clustering


def run_virtual(graph, clustering, vprogram, vrounds, label_space=None,
                contribution_fn=None, setup_extra=None):
    space = label_space if label_space is not None else graph.id_space

    def program(info):
        outcome = yield from run_on_virtual_graph(
            me=info.id,
            peers=info.neighbors,
            label=clustering.label[info.id],
            delta=clustering.dist[info.id],
            n=info.n,
            t0=1,
            vprogram=vprogram,
            label_space=space,
            max_virtual_rounds=vrounds,
            contribution_fn=contribution_fn,
            setup_extra=setup_extra,
        )
        return outcome

    return SleepingSimulator(graph, program).run()


class TestSetup:
    def test_members_and_neighbors_discovered(self):
        inst = figure2_instance()
        clustering = UniquelyLabeledBFSClustering(
            inst.level1_label, inst.level1_dist
        )

        def vprogram(vinfo):
            return (vinfo.id, vinfo.neighbors)
            yield  # pragma: no cover

        res = run_virtual(inst.graph, clustering, vprogram, vrounds=1)
        out = res.outputs
        # cluster 1 = {1,2,3} is adjacent to clusters 2 (edge 2-4) and 3 (3-7)
        assert out[1].output == (1, (2, 3))
        assert out[1].members == (1, 2, 3)
        # all replicas of a cluster agree
        assert out[1].output == out[2].output == out[3].output
        # cluster 3 = {6,7,8} adjacent to 1, 2, 4
        assert out[6].output == (3, (1, 2, 4))

    def test_contributions_merged(self):
        g = path(4)
        clustering = make_clustered(g, {1: 10, 2: 10, 3: 20, 4: 20})

        def contribution(neighbor_setup):
            return ("contrib", sorted(neighbor_setup))

        def vprogram(vinfo):
            return vinfo.input
            yield  # pragma: no cover

        res = run_virtual(
            g, clustering, vprogram, vrounds=1, contribution_fn=contribution
        )
        assert res.outputs[1].output == {
            1: ("contrib", [2]),
            2: ("contrib", [1, 3]),
        }

    def test_invalid_delta_detected(self):
        g = path(3)
        clustering = UniquelyLabeledBFSClustering(
            {1: 9, 2: 9, 3: 9}, {1: 0, 2: 1, 3: 5}  # δ jumps
        )

        def vprogram(vinfo):
            return None
            yield  # pragma: no cover

        with pytest.raises((ProtocolError, SimulationError), match="BFS"):
            run_virtual(g, clustering, vprogram, vrounds=1)


class TestMessagePassing:
    def test_virtual_round_exchange(self):
        """Clusters on a path of three clusters exchange their labels."""
        g = path(6)
        clustering = make_clustered(g, {1: 5, 2: 5, 3: 6, 4: 6, 5: 7, 6: 7})

        def vprogram(vinfo):
            inbox = yield AwakeAt(
                1, {lab: ("hello", vinfo.id) for lab in vinfo.neighbors}
            )
            return sorted(inbox.values())

        res = run_virtual(g, clustering, vprogram, vrounds=1)
        assert res.outputs[1].output == [("hello", 6)]
        assert res.outputs[3].output == [("hello", 5), ("hello", 7)]
        assert res.outputs[5].output == [("hello", 6)]

    def test_sleeping_virtual_node_misses_messages(self):
        """A cluster asleep in virtual round 1 loses the message — Sleeping
        semantics lift to the virtual level."""
        g = path(4)
        clustering = make_clustered(g, {1: 5, 2: 5, 3: 6, 4: 6})

        def vprogram(vinfo):
            if vinfo.id == 5:
                inbox = yield AwakeAt(1, {6: "early"})
                inbox = yield AwakeAt(2, {6: "late"})
                return None
            inbox = yield AwakeAt(2)  # asleep in virtual round 1
            return dict(inbox)

        res = run_virtual(g, clustering, vprogram, vrounds=2)
        assert res.outputs[3].output == {5: "late"}

    def test_nonneighbor_virtual_send_rejected(self):
        g = path(4)
        clustering = make_clustered(g, {1: 5, 2: 5, 3: 6, 4: 6})

        def vprogram(vinfo):
            yield AwakeAt(1, {999: "boo"})
            return None

        with pytest.raises((ProtocolError, SimulationError), match="non-neighbor"):
            run_virtual(g, clustering, vprogram, vrounds=1)

    def test_window_overrun_detected(self):
        g = path(2)
        clustering = make_clustered(g, {1: 5, 2: 5})

        def vprogram(vinfo):
            yield AwakeAt(100)
            return None

        with pytest.raises((ProtocolError, SimulationError), match="overrun"):
            run_virtual(g, clustering, vprogram, vrounds=3)


class TestLemma7Bounds:
    def test_awake_overhead_at_most_7x(self):
        """Awake ≤ setup(≤5) + 7 × (virtual awake rounds), per Lemma 7
        (our phases use ≤5: 1 exchange + ≤4 gather)."""
        g = gnp(18, 0.2, seed=3)
        membership = {v: 100 + (v % 4) for v in g.nodes}
        # refine to connected pieces
        clustering = UniquelyLabeledBFSClustering.from_roots(
            g, _refine_connected(g, membership)
        )
        clustering.validate(g)
        virtual_awake = 3

        def vprogram(vinfo):
            for r in range(1, virtual_awake + 1):
                yield AwakeAt(r, {lab: r for lab in vinfo.neighbors})
            return "done"

        def program(info):
            outcome = yield from run_on_virtual_graph(
                info.id, info.neighbors, clustering.label[info.id],
                clustering.dist[info.id], info.n, 1, vprogram,
                label_space=g.id_space, max_virtual_rounds=virtual_awake,
            )
            return outcome.output

        res = SleepingSimulator(g, program).run()
        assert all(out == "done" for out in res.outputs.values())
        assert res.awake_complexity <= 5 + 7 * virtual_awake
        assert res.round_complexity <= virtual_duration(g.n, virtual_awake)

    def test_virtual_linial_matches_direct_run(self):
        """Linial on the virtual graph H via Lemma 7 produces exactly the
        coloring a direct simulation on H produces — simulation is faithful."""
        g = cycle(12)
        membership = {v: 100 + (v - 1) // 3 for v in g.nodes}
        clustering = make_clustered(g, membership)
        h = clustering.virtual_graph(g)
        degree = h.max_degree

        def vprogram(vinfo):
            color = yield from linial_coloring(
                vinfo.id, vinfo.neighbors, color=vinfo.id - 1,
                palette=vinfo.id_space, conflict_degree=degree, t0=1,
            )
            return color

        vrounds = linial_duration(h.id_space, degree)
        res = run_virtual(g, clustering, vprogram, vrounds, label_space=h.id_space)

        def direct(info):
            color = yield from linial_coloring(
                info.id, info.neighbors, color=info.id - 1,
                palette=info.id_space, conflict_degree=degree, t0=1,
            )
            return color

        direct_res = SleepingSimulator(h, direct).run()
        for v in g.nodes:
            assert res.outputs[v].output == direct_res.outputs[clustering.label[v]]


def _refine_connected(graph, raw):
    label, next_label, seen = {}, 1000, set()
    for v in graph.nodes:
        if v in seen:
            continue
        comp, stack = {v}, [v]
        while stack:
            x = stack.pop()
            for u in graph.neighbors(x):
                if u not in comp and u not in seen and raw[u] == raw[v]:
                    comp.add(u)
                    stack.append(u)
        for u in comp:
            label[u] = next_label
        seen |= comp
        next_label += 1
    return label
