"""Tests for Theorem 9: solving O-LOCAL problems given a colored
BFS-clustering, awake O(log c)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.clustering import ColoredBFSClustering
from repro.core.theorem9 import (
    solve_with_clustering,
    theorem9_duration,
    theorem9_reference,
)
from repro.core.theorem13 import theorem13_reference
from repro.graphs import cycle, gnp, grid, path, star
from repro.olocal import (
    PROBLEMS,
    DeltaPlusOneColoring,
    MaximalIndependentSet,
)
from repro.util.mathx import ceil_log2, next_pow2


def trivial_clustering(graph):
    """Each node a singleton cluster colored by a greedy proper coloring."""
    colors = {}
    for v in graph.nodes:
        used = {colors[u] for u in graph.neighbors(v) if u in colors}
        c = 1
        while c in used:
            c += 1
        colors[v] = c
    return ColoredBFSClustering(colors, {v: 0 for v in graph.nodes})


def coarse_clustering(graph, piece=3):
    """Contiguous clusters of ~piece nodes, 2-colored along the quotient."""
    label, next_label, seen = {}, 0, set()
    for v in graph.nodes:
        if v in seen:
            continue
        comp, frontier = [v], [v]
        seen.add(v)
        while frontier and len(comp) < piece:
            x = frontier.pop()
            for u in graph.neighbors(x):
                if u not in seen and len(comp) < piece:
                    seen.add(u)
                    comp.append(u)
                    frontier.append(u)
        for u in comp:
            label[u] = next_label
        next_label += 1
    # color the quotient graph greedily
    quotient_adj: dict[int, set[int]] = {}
    for u, v in graph.edges():
        if label[u] != label[v]:
            quotient_adj.setdefault(label[u], set()).add(label[v])
            quotient_adj.setdefault(label[v], set()).add(label[u])
    qcolor: dict[int, int] = {}
    for lab in sorted(set(label.values())):
        used = {qcolor[m] for m in quotient_adj.get(lab, ()) if m in qcolor}
        c = 1
        while c in used:
            c += 1
        qcolor[lab] = c
    color = {v: qcolor[label[v]] for v in graph.nodes}
    # BFS distances within each cluster
    dist = {}
    for lab in set(label.values()):
        members = {v for v in graph.nodes if label[v] == lab}
        root = min(members)
        from collections import deque

        d = {root: 0}
        queue = deque([root])
        while queue:
            x = queue.popleft()
            for u in graph.neighbors(x):
                if u in members and u not in d:
                    d[u] = d[x] + 1
                    queue.append(u)
        dist.update(d)
    clustering = ColoredBFSClustering(color, dist)
    clustering.validate(graph)
    return clustering


CLUSTERINGS = [trivial_clustering, coarse_clustering]


class TestCorrectness:
    @pytest.mark.parametrize("problem_name", sorted(PROBLEMS))
    @pytest.mark.parametrize("make_clustering", CLUSTERINGS)
    def test_valid_and_matches_oracle(self, problem_name, make_clustering):
        problem = PROBLEMS[problem_name]
        g = gnp(20, 0.15, seed=2)
        clustering = make_clustering(g)
        inputs = problem.make_inputs(g)
        res = solve_with_clustering(g, problem, clustering, inputs)
        oracle = theorem9_reference(g, problem, clustering, inputs)
        assert res.outputs == oracle

    @pytest.mark.parametrize(
        "factory",
        [lambda: path(15), lambda: cycle(12), lambda: star(9),
         lambda: grid(4, 4), lambda: gnp(24, 0.12, seed=7)],
    )
    def test_families_with_coarse_clusters(self, factory):
        g = factory()
        clustering = coarse_clustering(g)
        res = solve_with_clustering(g, MaximalIndependentSet(), clustering)
        oracle = theorem9_reference(g, MaximalIndependentSet(), clustering)
        assert res.outputs == oracle

    def test_theorem13_clustering_feeds_theorem9(self):
        """Integration: the Theorem 13 clustering is a valid input."""
        g = gnp(16, 0.2, seed=4)
        clustering_result = theorem13_reference(g)
        res = solve_with_clustering(
            g, DeltaPlusOneColoring(), clustering_result.clustering
        )
        assert set(res.outputs) == set(g.nodes)


class TestComplexity:
    def test_awake_log_c(self):
        """Awake ≤ pre-phase (3) + setup (≤5) + 7·(1 + log₂ q) where
        q = next_pow2(c) — the O(log c) of Theorem 9."""
        g = gnp(24, 0.15, seed=5)
        clustering = coarse_clustering(g)
        c = clustering.canonical().max_color()
        res = solve_with_clustering(g, DeltaPlusOneColoring(), clustering)
        budget = 3 + 5 + 7 * (1 + ceil_log2(next_pow2(c)))
        assert res.awake_complexity <= budget

    def test_round_complexity_o_cn(self):
        g = gnp(20, 0.15, seed=6)
        clustering = coarse_clustering(g)
        c = clustering.canonical().max_color()
        res = solve_with_clustering(g, DeltaPlusOneColoring(), clustering)
        assert res.round_complexity <= theorem9_duration(g.n, c)

    def test_awake_grows_slowly_with_palette(self):
        """Widening the assumed palette c costs only log-many extra awake
        rounds."""
        g = gnp(20, 0.15, seed=8)
        clustering = trivial_clustering(g)
        small = solve_with_clustering(g, MaximalIndependentSet(), clustering)
        wide = solve_with_clustering(
            g, MaximalIndependentSet(), clustering, palette=1024
        )
        assert (
            wide.awake_complexity
            <= small.awake_complexity + 7 * ceil_log2(1024)
        )


@settings(max_examples=10, deadline=None)
@given(st.integers(6, 24), st.integers(0, 10**6))
def test_property_random_graph_random_clusters(n, seed):
    g = gnp(n, 2.5 / n, seed=seed)
    clustering = coarse_clustering(g, piece=2 + seed % 3)
    problem = DeltaPlusOneColoring()
    res = solve_with_clustering(g, problem, clustering)
    oracle = theorem9_reference(g, problem, clustering)
    assert res.outputs == oracle
