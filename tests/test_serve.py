"""Result store, provenance DAG, and ingest/serve CLI tests.

The HTTP layer has its own suite (tests/test_serve_http.py); this one
covers the store and DAG directly plus the `repro ingest` / `repro
stats --store` CLI surfaces.
"""

import json

import pytest

from repro import api
from repro.cli import main
from repro.runner import SweepJournal, TrialCache, run_sweep, sweep_from_grid
from repro.runner.artifacts import deterministic_view, write_sweep_artifact
from repro.serve import (
    ResultStore,
    StoreError,
    canonical_json,
    parse_solve_label,
    provenance,
    sweep_dag,
)

BENCH_LINES = (
    '{"date": "2026-08-07T10:00:00", "mode": "quick", '
    '"speedups": {"greedy/4096": 80.0, "baseline/4096": 120.0}}\n'
    '{"date": "2026-08-08T10:00:00", "mode": "full", '
    '"speedups": {"greedy/4096": 90.0}}\n'
)


@pytest.fixture(scope="module")
def sweep_artifact(tmp_path_factory):
    """One small grid sweep artifact (with journal) on disk."""
    tmp = tmp_path_factory.mktemp("serve-store")
    spec = sweep_from_grid(
        families=("path",), sizes=(12, 16), problems=("mis",),
        algorithms=("greedy",), trials_per_config=2, master_seed=5,
        name="stored",
    )
    journal = SweepJournal(path=tmp / "SWEEP_stored.journal")
    result = run_sweep(spec, cache=TrialCache(tmp / "cache"), journal=journal)
    path = write_sweep_artifact(result, tmp)
    return path


@pytest.fixture()
def store(tmp_path):
    s = ResultStore(tmp_path / "RESULTS.db")
    yield s
    s.close()


class TestIngest:
    def test_sweep_artifact_round_trip(self, store, sweep_artifact):
        result = store.ingest_path(sweep_artifact)
        assert result.status == "ingested"
        assert result.kind == "sweep"
        counts = store.counts()
        assert counts["sweeps"] == 1
        assert counts["trials"] == 4
        assert counts["sweep_tables"] == 1

    def test_reingest_same_digest_is_noop(self, store, sweep_artifact):
        first = store.ingest_path(sweep_artifact)
        again = store.ingest_path(sweep_artifact)
        assert again.status == "already-ingested"
        assert again.digest == first.digest
        assert "no-op" in again.render()
        assert store.counts() == store.counts()
        assert store.counts()["artifacts"] == 1

    def test_corrupt_file_fails_open(self, store, tmp_path):
        bad = tmp_path / "SWEEP_bad.json"
        bad.write_text("{ this is not json")
        result = store.ingest_path(bad)
        assert result.status == "skipped"
        assert not result.ok
        assert result.render().startswith("warning: skipped")
        assert store.counts()["artifacts"] == 0

    def test_truncated_artifact_fails_open(self, store, sweep_artifact):
        truncated = sweep_artifact.parent / "SWEEP_trunc.json"
        truncated.write_bytes(sweep_artifact.read_bytes()[:200])
        assert store.ingest_path(truncated).status == "skipped"

    def test_json_without_artifact_shape_fails_open(self, store, tmp_path):
        other = tmp_path / "other.json"
        other.write_text('{"hello": "world"}')
        result = store.ingest_path(other)
        assert result.status == "skipped"
        assert "sweep/tables" in result.detail

    def test_missing_file_fails_open(self, store, tmp_path):
        assert store.ingest_path(tmp_path / "nope.json").status == "skipped"

    def test_journal_ingest(self, store, sweep_artifact):
        journal = sweep_artifact.parent / "SWEEP_stored.journal"
        result = store.ingest_path(journal)
        assert result.status == "ingested"
        assert result.kind == "journal"
        journals = store.journals_for("stored")
        assert len(journals) == 1
        assert journals[0]["entries"] == 4

    def test_bench_history_ingest(self, store, tmp_path):
        path = tmp_path / "BENCH_history.jsonl"
        path.write_text(BENCH_LINES)
        result = store.ingest_path(path)
        assert result.status == "ingested"
        assert result.kind == "bench-history"
        rows = store.bench_rows()
        assert [r["mode"] for r in rows] == ["quick", "full"]

    def test_ingest_determinism(self, tmp_path, sweep_artifact):
        """Two stores ingesting the same file hold identical content."""
        stores = []
        for name in ("a.db", "b.db"):
            s = ResultStore(tmp_path / name)
            s.ingest_path(sweep_artifact)
            stores.append(s)
        a, b = stores
        digest = a.sweeps()[0]["artifact_digest"]
        assert b.sweeps()[0]["artifact_digest"] == digest
        assert a.view_bytes(digest) == b.view_bytes(digest)
        assert a.trials_of(digest) == b.trials_of(digest)
        for s in stores:
            s.close()


class TestByteIdentity:
    def test_stored_table_matches_artifact_slice(self, store, sweep_artifact):
        store.ingest_path(sweep_artifact)
        digest = store.sweeps()[0]["artifact_digest"]
        artifact = json.loads(sweep_artifact.read_text())
        for exp_id in artifact["tables"]:
            expected = canonical_json(artifact["tables"][exp_id])
            assert store.table_bytes(digest, exp_id) == expected.encode()

    def test_stored_view_matches_artifact_view(self, store, sweep_artifact):
        store.ingest_path(sweep_artifact)
        digest = store.sweeps()[0]["artifact_digest"]
        artifact = json.loads(sweep_artifact.read_text())
        expected = canonical_json(deterministic_view(artifact))
        assert store.view_bytes(digest) == expected.encode()


class TestQueries:
    def test_resolve_by_prefix_and_name(self, store, sweep_artifact):
        store.ingest_path(sweep_artifact)
        digest = store.sweeps()[0]["artifact_digest"]
        assert store.resolve_sweep(digest[:10]) == digest
        assert store.resolve_sweep("stored") == digest
        assert store.resolve_sweep("nonexistent") is None

    def test_trial_lookup_by_id_and_label(self, store, sweep_artifact):
        store.ingest_path(sweep_artifact)
        digest = store.sweeps()[0]["artifact_digest"]
        trials = store.trials_of(digest)
        by_id = store.trial(trials[0]["trial_id"])
        by_label = store.trial(trials[0]["label"])
        assert by_id == by_label
        assert by_id["scenario"]["family"] == "path"

    def test_readonly_store_refuses_ingest(self, tmp_path, sweep_artifact):
        writable = ResultStore(tmp_path / "ro.db")
        writable.ingest_path(sweep_artifact)
        writable.close()
        ro = ResultStore(tmp_path / "ro.db", readonly=True)
        with pytest.raises(StoreError, match="readonly"):
            ro.ingest_path(sweep_artifact)
        assert ro.counts()["sweeps"] == 1
        ro.close()

    def test_readonly_store_must_exist(self, tmp_path):
        with pytest.raises(StoreError, match="does not exist"):
            ResultStore(tmp_path / "missing.db", readonly=True)

    def test_non_store_file_is_refused(self, tmp_path):
        path = tmp_path / "alien.db"
        path.write_text("not sqlite at all")
        with pytest.raises(StoreError):
            ResultStore(path, readonly=True)


class TestSolveLabelParsing:
    def test_plain_grid_label(self):
        parsed = parse_solve_label("gnp/n=64/mis/theorem1#3")
        assert parsed == {
            "family": "gnp", "n": 64, "problem": "mis",
            "algorithm": "theorem1", "trial": 3,
        }

    def test_engine_and_fault_suffixes(self):
        parsed = parse_solve_label("path/n=16/mis/greedy#0@vectorized")
        assert parsed["engine"] == "vectorized"
        parsed = parse_solve_label("path/n=16/mis/greedy#0!d=0.1,c=0")
        assert parsed["faults"] == "d=0.1,c=0"

    def test_non_grid_label_is_none(self):
        assert parse_solve_label("E9[n=512]") is None


class TestProvenanceDag:
    def test_full_chain(self, store, sweep_artifact):
        store.ingest_path(sweep_artifact)
        store.ingest_path(sweep_artifact.parent / "SWEEP_stored.journal")
        digest = store.sweeps()[0]["artifact_digest"]
        trial = store.trials_of(digest)[0]
        dag = provenance(store, trial["trial_id"])
        kinds = {node["kind"] for node in dag["nodes"]}
        assert kinds == {"scenario", "trial", "artifact", "output"}
        assert dag["root"] == trial["trial_id"]
        # The chain is connected: scenario → trial → artifact → table.
        by_id = {node["id"]: node for node in dag["nodes"]}
        chain = {
            (by_id[e["from"]]["kind"], by_id[e["to"]]["kind"])
            for e in dag["edges"]
        }
        assert ("scenario", "trial") in chain
        assert ("trial", "artifact") in chain
        assert ("artifact", "output") in chain
        assert ("artifact", "artifact") in chain  # journal → artifact

    def test_scenario_node_carries_grid_coordinates(
        self, store, sweep_artifact
    ):
        store.ingest_path(sweep_artifact)
        digest = store.sweeps()[0]["artifact_digest"]
        trial = store.trials_of(digest)[0]
        dag = provenance(store, trial["trial_id"])
        scenario = next(
            n for n in dag["nodes"] if n["kind"] == "scenario"
        )
        assert scenario["family"] == "path"
        assert scenario["problem"] == "mis"
        assert scenario["algorithm"] == "greedy"
        assert scenario["seed"] == trial["seed"]

    def test_unknown_trial_is_none(self, store):
        assert provenance(store, "no-such-trial") is None

    def test_sweep_dag_covers_every_trial(self, store, sweep_artifact):
        store.ingest_path(sweep_artifact)
        digest = store.sweeps()[0]["artifact_digest"]
        dag = sweep_dag(store, digest)
        trial_nodes = [n for n in dag["nodes"] if n["kind"] == "trial"]
        assert len(trial_nodes) == 4
        assert dag["root"] == f"artifact:{digest}"


class TestIngestCli:
    def test_ingest_and_noop_messages(
        self, tmp_path, sweep_artifact, capsys
    ):
        db = tmp_path / "RESULTS.db"
        assert main(
            ["ingest", str(sweep_artifact), "--store", str(db)]
        ) == 0
        out = capsys.readouterr().out
        assert "ingested sweep" in out
        assert main(
            ["ingest", str(sweep_artifact), "--store", str(db)]
        ) == 0
        out = capsys.readouterr().out
        assert "already ingested" in out
        assert "no-op" in out

    def test_corrupt_file_warns_but_exits_zero(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("][")
        assert main(["ingest", str(bad), "--store",
                     str(tmp_path / "db")]) == 0
        captured = capsys.readouterr()
        assert "warning: skipped" in captured.err
        assert "bad.json" not in captured.out


class TestStatsStore:
    def test_bench_trend_identical_from_file_and_store(
        self, tmp_path, monkeypatch, capsys
    ):
        """`repro stats --bench` renders the same bytes either way."""
        monkeypatch.chdir(tmp_path)
        (tmp_path / "BENCH_history.jsonl").write_text(BENCH_LINES)
        db = tmp_path / "RESULTS.db"
        # Ingest by the same (relative) path `stats --bench` defaults
        # to: the store echoes the source path in the header line.
        main(["ingest", "BENCH_history.jsonl", "--store", str(db)])
        capsys.readouterr()

        assert main(["stats", "--bench"]) == 0
        from_file = capsys.readouterr().out
        assert main(["stats", "--bench", "--store", str(db)]) == 0
        from_store = capsys.readouterr().out
        assert from_store == from_file
        assert "benchmark history" in from_file

    def test_store_without_bench_artifact(self, tmp_path, capsys):
        db = tmp_path / "empty.db"
        ResultStore(db).close()
        assert main(["stats", "--bench", "--store", str(db)]) == 0
        assert "no benchmark history rows" in capsys.readouterr().out


class TestServeIsALeaf:
    def test_serve_package_does_not_import_cli(self):
        """serve is a library layer below the CLI, like every subsystem."""
        import subprocess
        import sys

        probe = (
            "import sys; import repro.serve; "
            "sys.exit(1 if 'repro.cli' in sys.modules else 0)"
        )
        result = subprocess.run(
            [sys.executable, "-c", probe], capture_output=True
        )
        assert result.returncode == 0


def test_run_grid_then_ingest_round_trips_scenarios(tmp_path):
    """api.run_grid → artifact → store reproduces the scenario axes."""
    result = api.run_grid(
        families=("path",), sizes=(10,), problems=("mis",),
        algorithms=("greedy",), trials=1, seed=3, name="tiny",
    )
    path = write_sweep_artifact(result, tmp_path)
    store = ResultStore(tmp_path / "db")
    store.ingest_path(path)
    digest = store.sweeps()[0]["artifact_digest"]
    (trial,) = store.trials_of(digest)
    assert trial["scenario"] == {
        "family": "path", "n": 10, "problem": "mis",
        "algorithm": "greedy", "trial": 0, "seed": trial["seed"],
    }
    store.close()
