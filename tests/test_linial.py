"""Tests for Linial's color reduction: properness, palette, awake bounds."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.linial import (
    final_palette,
    fixed_point_palette,
    linial_coloring,
    linial_duration,
    num_steps,
    reduction_schedule,
    step_parameters,
)
from repro.graphs import cycle, gnp, graph_square, path, random_regular, star
from repro.model import SleepingSimulator
from repro.util.idspace import polynomial_ids
from repro.util.mathx import iterated_log, next_prime


class TestScheduleMath:
    def test_fixed_point_is_quadratic(self):
        for d in range(1, 60):
            q = next_prime(d + 1)
            assert fixed_point_palette(d) == q * q
            assert fixed_point_palette(d) <= 16 * d * d  # the a=16 bound

    def test_step_parameters_none_at_fixed_point(self):
        assert step_parameters(fixed_point_palette(3), 3) is None

    def test_schedule_shrinks_monotonically(self):
        k, d = 10**12, 5
        sizes = [k] + [q * q for _, q in reduction_schedule(k, d)]
        assert all(a > b for a, b in zip(sizes, sizes[1:]))
        assert sizes[-1] == final_palette(k, d)

    def test_num_steps_is_log_star_ish(self):
        """Steps grow like log*: huge palettes need only a handful."""
        assert num_steps(10**6, 3) <= 4
        assert num_steps(10**12, 3) <= 5
        assert num_steps(10**100, 3) <= 8

    @given(st.integers(1, 30), st.integers(2, 10**9))
    @settings(max_examples=60, deadline=None)
    def test_step_validity(self, degree, palette):
        params = step_parameters(palette, degree)
        if params is None:
            assert palette <= fixed_point_palette(degree) or palette <= (
                next_prime(degree + 1) ** 2
            ) or True  # no progress possible
        else:
            d, q = params
            assert q > degree * d
            assert q ** (d + 1) >= palette
            assert q * q < palette


def run_linial(graph, distance=1, conflict_degree=None):
    if conflict_degree is None:
        conflict_degree = (
            graph.max_degree if distance == 1 else graph.max_degree**2
        )

    def program(info):
        color = yield from linial_coloring(
            me=info.id,
            peers=info.neighbors,
            color=info.id - 1,
            palette=info.id_space,
            conflict_degree=conflict_degree,
            t0=1,
            distance=distance,
        )
        return color

    res = SleepingSimulator(graph, program).run()
    return res, conflict_degree


class TestDistance1:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: path(20),
            lambda: cycle(15),
            lambda: star(12),
            lambda: gnp(40, 0.1, seed=1),
            lambda: random_regular(24, 4, seed=2),
            lambda: gnp(35, 0.15, seed=7, ids=polynomial_ids(35, 2, seed=1)),
        ],
    )
    def test_proper_and_in_palette(self, factory):
        g = factory()
        res, degree = run_linial(g)
        colors = res.outputs
        target = final_palette(g.id_space, degree)
        assert all(0 <= c < target for c in colors.values())
        for u, v in g.edges():
            assert colors[u] != colors[v]

    def test_awake_equals_steps(self):
        g = gnp(30, 0.12, seed=3)
        res, degree = run_linial(g)
        steps = num_steps(g.id_space, degree)
        assert res.awake_complexity == steps
        assert res.round_complexity == linial_duration(g.id_space, degree)

    def test_awake_is_log_star_scale(self):
        """Even with an n²-sized ID space, awake rounds stay ~log* n."""
        n = 60
        g = gnp(n, 0.1, seed=5, ids=polynomial_ids(n, 2, seed=2))
        res, degree = run_linial(g)
        assert res.awake_complexity <= 3 * iterated_log(g.id_space) + 3


class TestDistance2:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: path(15),
            lambda: cycle(12),
            lambda: gnp(25, 0.1, seed=4),
        ],
    )
    def test_distance2_properness(self, factory):
        g = factory()
        res, degree = run_linial(g, distance=2)
        colors = res.outputs
        g2 = graph_square(g)
        for u, v in g2.edges():
            assert colors[u] != colors[v], f"distance-2 collision {u},{v}"

    def test_distance2_costs_two_rounds_per_step(self):
        g = cycle(12)
        res, degree = run_linial(g, distance=2)
        steps = num_steps(g.id_space, degree)
        assert res.awake_complexity == 2 * steps


class TestErrorPaths:
    def test_improper_input_coloring_detected(self):
        g = path(2)

        def program(info):
            color = yield from linial_coloring(
                info.id, info.neighbors, color=0, palette=100,
                conflict_degree=1, t0=1,
            )
            return color

        from repro.errors import ProtocolError, SimulationError

        with pytest.raises((ProtocolError, SimulationError)):
            SleepingSimulator(g, program).run()

    def test_color_out_of_palette_rejected(self):
        g = path(2)

        def program(info):
            color = yield from linial_coloring(
                info.id, info.neighbors, color=500, palette=100,
                conflict_degree=1, t0=1,
            )
            return color

        from repro.errors import ProtocolError, SimulationError

        with pytest.raises((ProtocolError, SimulationError)):
            SleepingSimulator(g, program).run()
