"""Tests for the analysis layer: bounds, experiments, tables, report."""

import pytest

from repro.analysis import bounds
from repro.analysis.experiments import (
    ALL_EXPERIMENTS,
    experiment_e1,
    experiment_e2,
    experiment_e4,
    experiment_e5,
    experiment_e10,
)
from repro.util.tables import format_table


class TestBounds:
    def test_lemma6(self):
        assert bounds.lemma6_awake_bound() == 3
        assert bounds.lemma6_awake_bound(labeled=False) == 2

    def test_lemma11_monotone_in_palette(self):
        values = [bounds.lemma11_awake_bound(c) for c in (2, 8, 64, 1024)]
        assert values == sorted(values)
        assert bounds.lemma11_awake_bound(8) == 4  # 1 + log2(8)

    def test_baseline_grows_with_delta(self):
        low = bounds.baseline_awake_bound(100, 2)
        high = bounds.baseline_awake_bound(100, 50)
        assert high > low

    def test_theorem13_bound_positive_and_monotone_in_phases(self):
        small = bounds.theorem13_awake_bound(16, 16)
        large = bounds.theorem13_awake_bound(2**16, 2**16)
        assert 0 < small < large

    def test_theorem1_composes(self):
        n, space = 64, 64
        t13 = bounds.theorem13_awake_bound(n, space)
        t1 = bounds.theorem1_awake_bound(n, space)
        assert t1 > t13

    def test_asymptotics(self):
        assert bounds.theorem1_asymptotic(2**16) == 4 * 4
        assert bounds.baseline_asymptotic(delta=2**10, id_space=2**16) == 10 + 4


class TestTables:
    def test_alignment_and_markdown(self):
        table = format_table(["a", "bb"], [[1, "xy"], [22, "z"]])
        lines = table.splitlines()
        assert lines[0].startswith("|")
        assert len(set(len(line) for line in lines)) == 1  # aligned

    def test_title(self):
        table = format_table(["x"], [[1]], title="T")
        assert table.startswith("### T")

    def test_float_formatting(self):
        table = format_table(["x"], [[1.23456]])
        assert "1.235" in table

    def test_row_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])


class TestExperiments:
    def test_registry_complete(self):
        expected = {"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8a", "E8b",
                    "E8c", "E9", "E10", "E11", "E12"}
        assert expected <= set(ALL_EXPERIMENTS)

    def test_e1_paper_values(self):
        result = experiment_e1(max_log_q=4)
        assert all(row[-1] == "ok" for row in result.rows)
        assert "[2, 3, 4, 8]" in result.findings["phi(2), r(2) at q=8 (paper)"]

    def test_e2_table_covers_all_nodes(self):
        result = experiment_e2()
        assert len(result.rows) == 13  # the Figure 2 instance has 13 nodes

    def test_e4_decomposition_sound(self):
        result = experiment_e4()
        kinds = {str(row[6]).split(":")[0] for row in result.rows}
        assert kinds == {"singleton", "residual"}

    def test_e5_all_within_bounds(self):
        result = experiment_e5()
        assert all(row[-1] == "ok" for row in result.rows)

    def test_e10_all_defeated(self):
        result = experiment_e10(num_rules=4)
        assert len(result.rows) == 4

    def test_render_is_markdown(self):
        result = experiment_e2()
        text = result.render()
        assert text.startswith("### E2")
        assert "|" in text
