"""Tests for Theorem 13: the iterated clustering pipeline."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.lemma15 import singleton_palette
from repro.core.theorem13 import (
    color_palette_bound,
    compute_clustering,
    default_b,
    num_phases,
    theorem13_duration,
    theorem13_reference,
)
from repro.graphs import (
    caterpillar,
    complete_graph,
    cycle,
    gnp,
    grid,
    path,
    random_tree,
    star,
)
from repro.util.idspace import permuted_ids, polynomial_ids
from repro.util.mathx import iterated_log, sqrt_log_ceil

FAMILIES = [
    lambda: path(10),
    lambda: cycle(11),
    lambda: star(8),
    lambda: grid(3, 4),
    lambda: random_tree(14, seed=2),
    lambda: caterpillar(4, 2),
    lambda: complete_graph(7),
    lambda: gnp(14, 0.25, seed=3),
    lambda: gnp(12, 0.3, seed=5, ids=permuted_ids(12, seed=1)),
]


class TestParameters:
    def test_default_b_is_2_pow_sqrt_log(self):
        assert default_b(1) == 1
        assert default_b(2) == 2
        assert default_b(16) == 4
        assert default_b(2**16) == 16

    def test_num_phases(self):
        assert num_phases(16) == 4
        assert num_phases(2**16) == 8

    def test_phases_suffice_to_empty(self):
        """b^k >= n² > n for every n >= 2 — the termination argument."""
        for n in [2, 5, 16, 100, 10**4, 10**9]:
            b, k = default_b(n), num_phases(n)
            assert b**k >= n * n

    def test_palette_bound_subexponential(self):
        """k·a·b² = 2^{O(sqrt(log n))} — grows slower than any n^ε."""
        for n, limit in [(16, 2**11), (2**16, 2**15), (2**25, 2**17)]:
            assert color_palette_bound(n) <= limit


class TestDistributedMatchesReference:
    @pytest.mark.parametrize("factory", FAMILIES)
    def test_equal_clusterings(self, factory):
        g = factory()
        res = compute_clustering(g)
        ref = theorem13_reference(g)
        assert res.clustering.color == ref.clustering.color
        assert res.clustering.dist == ref.clustering.dist

    def test_round_complexity_within_duration(self):
        g = gnp(12, 0.25, seed=1)
        res = compute_clustering(g)
        assert res.round_complexity <= theorem13_duration(g.n, g.id_space)


class TestTheorem13Guarantees:
    @pytest.mark.parametrize("factory", FAMILIES)
    def test_valid_colored_bfs_clustering(self, factory):
        g = factory()
        ref = theorem13_reference(g)  # validate=True checks Definition 4
        assert set(ref.clustering.color) == set(g.nodes)

    @pytest.mark.parametrize("factory", FAMILIES)
    def test_color_count_bound(self, factory):
        g = factory()
        ref = theorem13_reference(g)
        assert ref.clustering.max_color() <= ref.palette_bound

    def test_cluster_count_decays_geometrically(self):
        """|V(H_i)| <= |V(H_{i-1})| / b — checked via phase indices: at
        most n/b^{i-1} nodes can finish at phase i or later."""
        g = gnp(60, 0.15, seed=9)
        ref = theorem13_reference(g)
        b = ref.b
        by_phase: dict[int, int] = {}
        for a in ref.assignments.values():
            by_phase[a.phase] = by_phase.get(a.phase, 0) + 1
        later = 0
        phases = sorted(by_phase, reverse=True)
        for i in phases:
            later += by_phase[i]
            if i >= 2:
                assert later <= g.n // (b ** (i - 1)) * max(
                    1, b
                ) or later <= g.n  # coarse sanity; exact decay next
        # exact check via the reference's own recursion is in bench E8

    def test_awake_complexity_sqrtlog_logstar(self):
        """Awake <= C · sqrt(log n) · log*(n) with an explicit constant —
        the paper's headline clustering bound."""
        g = gnp(24, 0.15, seed=11)
        res = compute_clustering(g)
        sqrt_log = max(1, sqrt_log_ceil(g.n))
        log_star = max(1, iterated_log(g.id_space))
        # per phase: virtual lemma15 (<= 5 + 7·awake15) + lemma14 (const);
        # awake15 <= ~15 + 7·log*; phases = 2·sqrt_log
        budget = 2 * sqrt_log * (5 + 7 * (20 + 7 * log_star) + 40)
        assert res.awake_complexity <= budget

    def test_id_space_changes_rounds_not_awake(self):
        """The §5 Remark: larger ID spaces inflate round complexity but
        leave the awake complexity scale unchanged."""
        n = 10
        g_small = gnp(n, 0.3, seed=13)
        g_big = gnp(n, 0.3, seed=13, ids=polynomial_ids(n, 3, seed=2))
        res_small = compute_clustering(g_small)
        res_big = compute_clustering(g_big)
        assert res_big.round_complexity > res_small.round_complexity
        assert res_big.awake_complexity <= 3 * res_small.awake_complexity

    @pytest.mark.parametrize("b", [2, 3, 4])
    def test_explicit_b_ablation(self, b):
        g = gnp(15, 0.2, seed=15)
        ref = theorem13_reference(g, b=b)
        assert ref.b == b
        assert ref.clustering.max_color() <= num_phases(g.n) * singleton_palette(b)

    def test_single_node_graph(self):
        g = path(1)
        ref = theorem13_reference(g)
        assert ref.clustering.color[1] is not None
        res = compute_clustering(g)
        assert res.clustering.color == ref.clustering.color

    def test_two_node_graph(self):
        g = path(2)
        res = compute_clustering(g)
        assert res.clustering.num_colors() == 2


@settings(max_examples=8, deadline=None)
@given(st.integers(4, 18), st.integers(0, 10**6))
def test_property_pipeline_on_random_graphs(n, seed):
    g = gnp(n, 2.8 / n, seed=seed)
    res = compute_clustering(g)
    ref = theorem13_reference(g)
    assert res.clustering.color == ref.clustering.color
    assert res.clustering.dist == ref.clustering.dist
