"""Tests for complexity accounting, including message-size measurement."""

from repro.graphs import path, star
from repro.model import AwakeAt, Broadcast, SleepingSimulator
from repro.model.metrics import SimulationMetrics, payload_weight


class TestPayloadWeight:
    def test_atoms(self):
        assert payload_weight(5) == 1
        assert payload_weight("hello") == 1
        assert payload_weight(None) == 1

    def test_containers(self):
        assert payload_weight((1, 2, 3)) == 3
        assert payload_weight({1: "a", 2: "b"}) == 4
        assert payload_weight([]) == 1  # empty containers still cost one

    def test_nested(self):
        assert payload_weight({"k": (1, 2)}) == 3

    def test_depth_capped(self):
        deep = [1]
        for _ in range(30):
            deep = [deep]
        assert payload_weight(deep) >= 1  # no RecursionError


class TestMeasuredSizes:
    def test_opt_in_measurement(self):
        g = path(3)

        def program(info):
            yield AwakeAt(1, Broadcast(tuple(range(10))))
            return None

        plain = SleepingSimulator(g, program).run()
        assert plain.metrics.max_message_weight == 0

        measured = SleepingSimulator(
            g, program, measure_message_sizes=True
        ).run()
        assert measured.metrics.max_message_weight == 10
        # 2 + 2 edges... path(3): degrees 1,2,1 -> 4 messages of weight 10
        assert measured.metrics.total_message_weight == 40

    def test_summary_includes_weight_when_measured(self):
        metrics = SimulationMetrics()
        assert "max_message_weight" not in metrics.summary()
        metrics.charge_message_weight(7)
        assert metrics.summary()["max_message_weight"] == 7

    def test_theorem9_ships_cluster_sized_messages(self):
        """The paper's protocols send whole cluster states: measured
        message weights grow with cluster size, quantifying the 'messages
        of arbitrary size' allowance of the LOCAL model."""
        from repro.core.clustering import ColoredBFSClustering
        from repro.core.theorem9 import theorem9_protocol
        from repro.olocal import MaximalIndependentSet

        g = star(12)
        hub = max(g.nodes, key=g.degree)
        # one big cluster (the whole star), colored 1

        dist = g.bfs_distances(hub)
        clustering = ColoredBFSClustering(
            {v: 1 for v in g.nodes}, dist
        )

        def program(info):
            out = yield from theorem9_protocol(
                me=info.id, peers=info.neighbors, color=1, delta=dist[info.id],
                palette=1, problem=MaximalIndependentSet(), t0=1, n=info.n,
            )
            return out

        res = SleepingSimulator(g, program, measure_message_sizes=True).run()
        # the gather of the whole-cluster state must exceed the n atoms
        assert res.metrics.max_message_weight >= g.n
