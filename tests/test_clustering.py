"""Tests for Definitions 2-5: BFS-clusterings and their virtual graphs."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.clustering import (
    ColoredBFSClustering,
    UniquelyLabeledBFSClustering,
)
from repro.errors import ClusteringError
from repro.graphs import cycle, gnp, path
from repro.graphs.examples import figure2_instance


class TestUniquelyLabeled:
    def test_trivial_clustering_valid(self):
        g = cycle(5)
        c = UniquelyLabeledBFSClustering.trivial(g)
        c.validate(g)
        assert c.cluster_count() == 5

    def test_trivial_virtual_graph_is_isomorphic(self):
        g = cycle(5)
        h = UniquelyLabeledBFSClustering.trivial(g).virtual_graph(g)
        assert h.adjacency == g.adjacency

    def test_from_roots_computes_bfs_distances(self):
        g = path(6)
        c = UniquelyLabeledBFSClustering.from_roots(
            g, {1: 10, 2: 10, 3: 10, 4: 20, 5: 20, 6: 20}
        )
        c.validate(g)
        assert c.dist == {1: 0, 2: 1, 3: 2, 4: 0, 5: 1, 6: 2}

    def test_figure2_level1_is_valid(self):
        inst = figure2_instance()
        c = UniquelyLabeledBFSClustering(inst.level1_label, inst.level1_dist)
        c.validate(inst.graph)
        assert c.cluster_count() == 5

    def test_figure2_virtual_graph(self):
        inst = figure2_instance()
        c = UniquelyLabeledBFSClustering(inst.level1_label, inst.level1_dist)
        h = c.virtual_graph(inst.graph)
        assert set(h.nodes) == {1, 2, 3, 4, 5}
        assert set(h.edges()) == {(1, 2), (2, 3), (3, 4), (4, 5), (1, 3)}

    def test_detects_two_roots(self):
        g = path(3)
        c = UniquelyLabeledBFSClustering(
            {1: 7, 2: 7, 3: 7}, {1: 0, 2: 0, 3: 1}
        )
        with pytest.raises(ClusteringError, match="roots"):
            c.validate(g)

    def test_detects_disconnected_cluster(self):
        g = path(3)
        c = UniquelyLabeledBFSClustering(
            {1: 7, 2: 8, 3: 7}, {1: 0, 2: 0, 3: 1}
        )
        with pytest.raises(ClusteringError, match="disconnected|unreachable"):
            c.validate(g)

    def test_detects_wrong_distance(self):
        g = path(3)
        c = UniquelyLabeledBFSClustering(
            {1: 7, 2: 7, 3: 7}, {1: 0, 2: 1, 3: 5}
        )
        with pytest.raises(ClusteringError, match="BFS distance"):
            c.validate(g)

    def test_detects_incomplete_cover(self):
        g = path(3)
        c = UniquelyLabeledBFSClustering({1: 7, 2: 7}, {1: 0, 2: 1})
        with pytest.raises(ClusteringError, match="cover"):
            c.validate(g)

    def test_distance_must_be_induced_not_tree(self):
        """δ must be the induced-subgraph distance, even when a spanning
        tree of the cluster would give a longer path."""
        g = cycle(4)  # 1-2-3-4-1
        # Tree 1-2-3-4 gives dist(4)=3, but induced distance is 1.
        c = UniquelyLabeledBFSClustering(
            {v: 9 for v in g.nodes}, {1: 0, 2: 1, 3: 2, 4: 3}
        )
        with pytest.raises(ClusteringError, match="BFS distance"):
            c.validate(g)


class TestColored:
    def test_same_color_disjoint_clusters_ok(self):
        """Non-adjacent clusters may share a color (Definition 4)."""
        g = path(5)
        c = ColoredBFSClustering(
            color={1: 1, 2: 1, 3: 2, 4: 1, 5: 1},
            dist={1: 0, 2: 1, 3: 0, 4: 0, 5: 1},
        )
        c.validate(g)
        clusters = c.clusters(g)
        assert len(clusters) == 3

    def test_component_needs_single_root(self):
        g = path(4)
        c = ColoredBFSClustering(
            color={1: 1, 2: 1, 3: 1, 4: 1},
            dist={1: 0, 2: 1, 3: 1, 4: 0},
        )
        with pytest.raises(ClusteringError, match="roots"):
            c.validate(g)

    def test_virtual_graph_def5(self):
        g = path(5)
        c = ColoredBFSClustering(
            color={1: 1, 2: 1, 3: 2, 4: 1, 5: 1},
            dist={1: 0, 2: 1, 3: 0, 4: 0, 5: 1},
        )
        h, vertex_of = c.virtual_graph(g)
        assert h.n == 3
        assert vertex_of[1] == vertex_of[2]
        assert vertex_of[4] == vertex_of[5]
        assert vertex_of[1] != vertex_of[4]
        # path of three clusters
        assert h.num_edges == 2

    def test_canonical_palette(self):
        g = path(2)
        c = ColoredBFSClustering(
            color={1: (3, "x"), 2: (1, "y")}, dist={1: 0, 2: 0}
        )
        canon = c.canonical()
        assert sorted(canon.color.values()) == [1, 2]
        assert canon.max_color() == 2
        canon.validate(g)

    def test_max_color_requires_ints(self):
        c = ColoredBFSClustering(color={1: (1, 2)}, dist={1: 0})
        with pytest.raises(ClusteringError):
            c.max_color()


@settings(max_examples=30, deadline=None)
@given(st.integers(4, 30), st.integers(0, 10**6), st.integers(1, 5))
def test_random_partition_from_roots_always_validates(n, seed, num_groups):
    """from_roots + validate agree for random connected-component-refined
    partitions: grouping nodes arbitrarily, then splitting groups into
    connected pieces, always yields a valid uniquely-labeled clustering."""
    import random

    g = gnp(n, 3.0 / n, seed=seed)
    rng = random.Random(seed)
    raw = {v: rng.randrange(num_groups) for v in g.nodes}
    # refine to connected pieces with unique labels
    label, next_label = {}, 1
    seen = set()
    for v in g.nodes:
        if v in seen:
            continue
        stack, comp = [v], {v}
        while stack:
            x = stack.pop()
            for u in g.neighbors(x):
                if u not in comp and u not in seen and raw[u] == raw[v]:
                    comp.add(u)
                    stack.append(u)
        for u in comp:
            label[u] = next_label
        seen |= comp
        next_label += 1
    c = UniquelyLabeledBFSClustering.from_roots(g, label)
    c.validate(g)
    h = c.virtual_graph(g)
    assert h.n == c.cluster_count()
