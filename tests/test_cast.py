"""Tests for Lemma 6: broadcast/convergecast awake complexity and windows."""

import pytest

from repro.core.cast import (
    bfs_cast_duration,
    broadcast_bfs,
    broadcast_labeled,
    convergecast_bfs,
    convergecast_labeled,
    gather_bfs,
    gather_duration,
    labeled_cast_duration,
)
from repro.errors import ProtocolError, SimulationError
from repro.graphs import caterpillar, path, random_tree, star
from repro.model import SleepingSimulator


def bfs_tree(graph, root):
    """Centralized BFS tree: (parent, depth) per node, for test harnesses."""
    depth = graph.bfs_distances(root)
    parent = {}
    for v in graph.nodes:
        if v == root:
            parent[v] = None
        else:
            parent[v] = min(
                u for u in graph.neighbors(v) if depth[u] == depth[v] - 1
            )
    return parent, depth


class TestBroadcastBFS:
    @pytest.mark.parametrize(
        "factory,root",
        [
            (lambda: path(9), 1),
            (lambda: path(9), 5),
            (lambda: star(7), 1),
            (lambda: random_tree(25, seed=4), 3),
            (lambda: caterpillar(5, 3), 2),
        ],
    )
    def test_everyone_learns_and_awake_at_most_2(self, factory, root):
        g = factory()
        parent, depth = bfs_tree(g, root)

        def program(info):
            value = yield from broadcast_bfs(
                me=info.id,
                peers=info.neighbors,
                parent=parent[info.id],
                depth=depth[info.id],
                depth_bound=info.n,
                t0=1,
                payload="secret" if info.id == root else None,
            )
            return value

        res = SleepingSimulator(g, program).run()
        assert all(v == "secret" for v in res.outputs.values())
        assert res.awake_complexity <= 2
        assert res.round_complexity <= bfs_cast_duration(g.n)

    def test_root_awake_once(self):
        g = path(6)
        parent, depth = bfs_tree(g, 1)

        def program(info):
            value = yield from broadcast_bfs(
                info.id, info.neighbors, parent[info.id], depth[info.id],
                g.n, 1, "m" if info.id == 1 else None,
            )
            return value

        res = SleepingSimulator(g, program).run()
        assert res.metrics.awake_rounds[1] == 1


class TestConvergecastBFS:
    def test_root_collects_all(self):
        g = random_tree(30, seed=9)
        root = 7
        parent, depth = bfs_tree(g, root)

        def program(info):
            merged = yield from convergecast_bfs(
                info.id, info.neighbors, parent[info.id], depth[info.id],
                g.n, 1, frozenset([info.id]), lambda a, b: a | b,
            )
            return merged

        res = SleepingSimulator(g, program).run()
        assert res.outputs[root] == frozenset(g.nodes)
        assert all(
            res.outputs[v] is None for v in g.nodes if v != root
        )
        assert res.awake_complexity <= 2

    def test_gather_everyone_learns_fold(self):
        g = random_tree(20, seed=2)
        root = 5
        parent, depth = bfs_tree(g, root)

        def program(info):
            merged = yield from gather_bfs(
                info.id, info.neighbors, parent[info.id], depth[info.id],
                g.n, 1, frozenset([info.id]), lambda a, b: a | b,
            )
            return merged

        res = SleepingSimulator(g, program).run()
        assert all(out == frozenset(g.nodes) for out in res.outputs.values())
        assert res.awake_complexity <= 4
        assert res.round_complexity <= gather_duration(g.n)


class TestLabeledCasts:
    def test_broadcast_with_arbitrary_monotone_labels(self):
        """Labels need only increase away from the root (Lemma 6 verbatim);
        here they are scattered, non-consecutive values."""
        g = path(5)
        labels = {1: 0, 2: 7, 3: 9, 4: 30, 5: 44}
        parent = {1: None, 2: 1, 3: 2, 4: 3, 5: 4}
        bound = 50

        def program(info):
            value = yield from broadcast_labeled(
                info.id, info.neighbors, parent[info.id], labels[info.id],
                bound, 1, "x" if info.id == 1 else None,
            )
            return value

        res = SleepingSimulator(g, program).run()
        assert all(v == "x" for v in res.outputs.values())
        assert res.awake_complexity <= 3
        assert res.round_complexity <= labeled_cast_duration(bound)

    def test_convergecast_with_labels_awake_3(self):
        g = star(6)
        hub = max(g.nodes, key=g.degree)
        labels = {v: 0 if v == hub else v + 3 for v in g.nodes}
        parent = {v: None if v == hub else hub for v in g.nodes}

        def program(info):
            merged = yield from convergecast_labeled(
                info.id, info.neighbors, parent[info.id], labels[info.id],
                20, 1, (info.id,), lambda a, b: tuple(sorted(set(a) | set(b))),
            )
            return merged

        res = SleepingSimulator(g, program).run()
        assert res.outputs[hub] == tuple(sorted(g.nodes))
        assert res.awake_complexity <= 3

    def test_rejects_nonmonotone_labels(self):
        g = path(2)
        labels = {1: 5, 2: 3}  # child label below parent label

        def program(info):
            value = yield from broadcast_labeled(
                info.id, info.neighbors, None if info.id == 1 else 1,
                labels[info.id], 10, 1, "x",
            )
            return value

        with pytest.raises((ProtocolError, SimulationError)):
            SleepingSimulator(g, program).run()

    def test_rejects_label_out_of_bound(self):
        g = path(2)

        def program(info):
            value = yield from broadcast_labeled(
                info.id, info.neighbors, None if info.id == 1 else 1,
                info.id * 100, 10, 1, "x",
            )
            return value

        with pytest.raises((ProtocolError, SimulationError)):
            SleepingSimulator(g, program).run()


class TestWindowComposition:
    def test_two_broadcasts_compose_lemma8(self):
        """Sequential composition in disjoint windows (Lemma 8): awake
        complexities add, outputs chain."""
        g = path(6)
        parent, depth = bfs_tree(g, 1)
        window = bfs_cast_duration(g.n)

        def program(info):
            first = yield from broadcast_bfs(
                info.id, info.neighbors, parent[info.id], depth[info.id],
                g.n, 1, 10 if info.id == 1 else None,
            )
            second = yield from broadcast_bfs(
                info.id, info.neighbors, parent[info.id], depth[info.id],
                g.n, 1 + window, first * 2 if info.id == 1 else None,
            )
            return second

        res = SleepingSimulator(g, program).run()
        assert all(v == 20 for v in res.outputs.values())
        assert res.awake_complexity <= 4
