"""Property-based tests of the Sleeping-model runtime itself.

The simulator is the substrate every result rests on, so its semantics get
their own hypothesis suite: co-awake delivery, exact accounting, and
schedule independence from graph labeling.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.graphs import StaticGraph, gnp
from repro.model import AwakeAt, SleepingSimulator
from repro.model.trace import traced_simulation


def schedule_program(schedules, payload_of=lambda v, r: (v, r)):
    """A program that wakes at a fixed schedule, broadcasting each time,
    and returns everything it received."""

    def program(info):
        received = []
        for r in schedules[info.id]:
            inbox = yield AwakeAt(
                r, {u: payload_of(info.id, r) for u in info.neighbors}
            )
            received.extend((r, u, msg) for u, msg in sorted(inbox.items()))
        return received

    return program


@st.composite
def graph_and_schedules(draw):
    n = draw(st.integers(3, 14))
    seed = draw(st.integers(0, 10**6))
    graph = gnp(n, 3.0 / n, seed=seed)
    rng = random.Random(draw(st.integers(0, 10**6)))
    schedules = {
        v: sorted(rng.sample(range(1, 40), rng.randint(1, 6)))
        for v in graph.nodes
    }
    return graph, schedules


class TestDeliverySemantics:
    @given(graph_and_schedules())
    @settings(max_examples=40, deadline=None)
    def test_delivery_iff_co_awake_neighbors(self, case):
        """A node receives (r, u, payload) exactly when u is an adjacent
        node awake at round r — the defining Sleeping-model rule."""
        graph, schedules = case
        res = SleepingSimulator(graph, schedule_program(schedules)).run()
        awake_at = {
            v: set(rounds) for v, rounds in schedules.items()
        }
        for v in graph.nodes:
            got = {(r, u) for r, u, _ in res.outputs[v]}
            expected = {
                (r, u)
                for u in graph.neighbors(v)
                for r in awake_at[u] & awake_at[v]
            }
            assert got == expected

    @given(graph_and_schedules())
    @settings(max_examples=30, deadline=None)
    def test_exact_accounting(self, case):
        graph, schedules = case
        res = SleepingSimulator(graph, schedule_program(schedules)).run()
        metrics = res.metrics
        for v in graph.nodes:
            assert metrics.awake_rounds[v] == len(schedules[v])
            assert metrics.termination_round[v] == schedules[v][-1]
        all_rounds = set().union(*(set(s) for s in schedules.values()))
        assert metrics.active_rounds == len(all_rounds)
        assert metrics.round_complexity == max(
            s[-1] for s in schedules.values()
        )

    @given(graph_and_schedules())
    @settings(max_examples=20, deadline=None)
    def test_trace_agrees_with_schedule(self, case):
        graph, schedules = case
        _, trace = traced_simulation(graph, schedule_program(schedules))
        for v in graph.nodes:
            assert trace.awake_rounds[v] == schedules[v]

    @given(graph_and_schedules())
    @settings(max_examples=20, deadline=None)
    def test_message_count(self, case):
        """Messages *sent* count per (sender-round, neighbor) regardless of
        whether the target was awake (losses still cost energy to send)."""
        graph, schedules = case
        res = SleepingSimulator(graph, schedule_program(schedules)).run()
        expected = sum(
            len(schedules[v]) * graph.degree(v) for v in graph.nodes
        )
        assert res.metrics.messages_sent == expected


class TestDeterminism:
    @given(graph_and_schedules())
    @settings(max_examples=15, deadline=None)
    def test_reruns_identical(self, case):
        graph, schedules = case
        r1 = SleepingSimulator(graph, schedule_program(schedules)).run()
        r2 = SleepingSimulator(graph, schedule_program(schedules)).run()
        assert r1.outputs == r2.outputs
        assert r1.metrics.summary() == r2.metrics.summary()


class TestIsolatedNode:
    def test_single_node_graph(self):
        graph = StaticGraph({1: ()}, id_space=1)

        def program(info):
            inbox = yield AwakeAt(5)
            return dict(inbox)

        res = SleepingSimulator(graph, program).run()
        assert res.outputs == {1: {}}
        assert res.round_complexity == 5
