"""Unit and property tests for exact integer math helpers."""


import pytest
from hypothesis import given, strategies as st

from repro.errors import ReproError
from repro.util.mathx import (
    base_q_digits,
    ceil_div,
    ceil_log2,
    ceil_sqrt,
    eval_poly_mod,
    int_log2,
    is_prime,
    iterated_log,
    next_pow2,
    next_prime,
    sqrt_log_ceil,
)


class TestCeilDiv:
    def test_exact(self):
        assert ceil_div(10, 5) == 2

    def test_rounds_up(self):
        assert ceil_div(11, 5) == 3

    def test_zero_numerator(self):
        assert ceil_div(0, 7) == 0

    def test_rejects_nonpositive_divisor(self):
        with pytest.raises(ReproError):
            ceil_div(1, 0)

    @given(st.integers(0, 10**9), st.integers(1, 10**6))
    def test_matches_float_ceil(self, a, b):
        assert ceil_div(a, b) == (a + b - 1) // b


class TestLogs:
    def test_int_log2_powers(self):
        assert int_log2(1) == 0
        assert int_log2(2) == 1
        assert int_log2(1024) == 10

    def test_int_log2_between_powers(self):
        assert int_log2(1023) == 9

    def test_ceil_log2(self):
        assert ceil_log2(1) == 0
        assert ceil_log2(2) == 1
        assert ceil_log2(3) == 2
        assert ceil_log2(1025) == 11

    def test_next_pow2(self):
        assert next_pow2(1) == 1
        assert next_pow2(3) == 4
        assert next_pow2(16) == 16
        assert next_pow2(17) == 32

    @given(st.integers(1, 10**12))
    def test_pow2_brackets(self, n):
        p = next_pow2(n)
        assert p >= n and p // 2 < n and p & (p - 1) == 0

    def test_rejects_zero(self):
        for fn in (int_log2, ceil_log2, next_pow2):
            with pytest.raises(ReproError):
                fn(0)


class TestSqrt:
    @given(st.integers(0, 10**12))
    def test_ceil_sqrt_exact(self, n):
        r = ceil_sqrt(n)
        assert (r - 1) ** 2 < n or n == 0
        assert r * r >= n

    def test_sqrt_log_examples(self):
        assert sqrt_log_ceil(1) == 0
        assert sqrt_log_ceil(2) == 1
        assert sqrt_log_ceil(16) == 2
        assert sqrt_log_ceil(2**16) == 4
        assert sqrt_log_ceil(2**17) == 5  # ceil(sqrt(17)) = 5


class TestIteratedLog:
    def test_known_values(self):
        assert iterated_log(1) == 0
        assert iterated_log(2) == 1
        assert iterated_log(4) == 2
        assert iterated_log(16) == 3
        assert iterated_log(65536) == 4

    def test_huge_value_is_tiny(self):
        assert iterated_log(2**65536) == 5

    @given(st.integers(2, 10**9))
    def test_monotone_small(self, n):
        assert iterated_log(n) <= iterated_log(n + 1) + 1


class TestPrimes:
    def test_small_primes(self):
        primes = [n for n in range(60) if is_prime(n)]
        assert primes == [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59]

    def test_carmichael_not_prime(self):
        assert not is_prime(561)
        assert not is_prime(41041)

    def test_large_prime(self):
        assert is_prime(2**31 - 1)  # Mersenne prime

    @given(st.integers(2, 10**6))
    def test_next_prime_is_prime_and_minimal(self, n):
        p = next_prime(n)
        assert is_prime(p) and p >= n
        assert not any(is_prime(m) for m in range(n, p))

    def test_bertrand_window(self):
        # next_prime(b+1) <= 2b+2 backs the a=16 constant of Lemma 15.
        for b in range(1, 2000):
            assert next_prime(b + 1) <= 2 * b + 2


class TestPolynomials:
    @given(st.integers(0, 10**6), st.integers(2, 97), st.integers(1, 12))
    def test_digit_roundtrip(self, value, q, width):
        if value >= q**width:
            value %= q**width
        digits = base_q_digits(value, q, width)
        assert sum(d * q**i for i, d in enumerate(digits)) == value

    def test_eval_poly(self):
        # p(x) = 3 + 2x + x^2 over F_7 at x=5: 3 + 10 + 25 = 38 = 3 mod 7
        assert eval_poly_mod([3, 2, 1], 5, 7) == 3

    def test_digits_overflow_rejected(self):
        with pytest.raises(ReproError):
            base_q_digits(100, 10, 2)
