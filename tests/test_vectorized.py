"""The vectorized engine: array kernels, adapter dispatch, sweep axis.

Bit-identity with the per-node engines on a fixed corpus lives in
``tests/test_engine_equivalence.py``; this module covers the rest —
randomized CI-sized differentials for every vectorized-capable adapter,
the n = 65536 scale cases (marked slow), the UnknownNameError contract
for bad engine names, and the sweep/cache behavior of the engines axis.
"""

import pytest

from repro.core.algorithms import ALGORITHMS, ENGINE_VECTORIZED, ENGINES
from repro.graphs.families import build_family_graph
from repro.graphs.generators import preferential_attachment
from repro.registry import RegistryError, UnknownNameError
from repro.olocal import PROBLEMS

VECTORIZED_ADAPTERS = sorted(
    name
    for name in ALGORITHMS.names()
    if ENGINE_VECTORIZED in ALGORITHMS.get(name).engines
)


def test_vectorized_adapters_cover_all_four_algorithms():
    assert VECTORIZED_ADAPTERS == [
        "baseline", "greedy", "theorem1", "theorem9",
    ]


def test_catalog_engine_matrix_matches_adapters():
    """api.catalog() must reflect adapter engine support automatically —
    a future adapter cannot silently drift from the catalog."""
    from repro.api import catalog

    matrix = catalog()["engine_matrix"]
    assert set(matrix) == set(ALGORITHMS.names())
    for name, engines in matrix.items():
        assert tuple(engines) == ALGORITHMS.get(name).engines, name
    for name in ("theorem1", "theorem9"):
        assert ENGINE_VECTORIZED in matrix[name]


def _solve_both(algorithm, graph, problem):
    adapter = ALGORITHMS.get(algorithm)
    vec = adapter.solve(graph, problem, engine=ENGINE_VECTORIZED)
    ref = adapter.solve(graph, problem)
    return vec, ref


def assert_outcomes_identical(vec, ref):
    assert vec.outputs == ref.outputs
    assert vec.awake_complexity == ref.awake_complexity
    assert vec.average_awake == ref.average_awake
    assert vec.round_complexity == ref.round_complexity
    assert vec.messages_sent == ref.messages_sent


# -- randomized CI-sized differentials ---------------------------------------


@pytest.mark.parametrize("algorithm", VECTORIZED_ADAPTERS)
@pytest.mark.parametrize("pname", sorted(PROBLEMS))
@pytest.mark.parametrize(
    "family,n,seed",
    [
        ("gnp", 220, 3),
        ("powerlaw", 180, 5),
        ("regular", 200, 7),
        ("tree", 260, 9),
    ],
)
def test_vectorized_matches_default_engine(algorithm, pname, family, n, seed):
    """vectorized == the adapter's default per-node engine, on random
    graphs, for every problem × every vectorized-capable adapter.

    The greedy adapter's default is the ``reference`` oracle, whose
    metrics model differs by design — compare against ``simulator``
    there instead. The clustered adapters run the full Theorem 13 + 9
    pipeline per node on the simulator side, so their graphs shrink to
    keep the differential CI-sized.
    """
    if algorithm in ("theorem1", "theorem9"):
        n = max(40, n // 4)
    graph = build_family_graph(family, n, seed=seed)
    problem = PROBLEMS.get(pname)
    adapter = ALGORITHMS.get(algorithm)
    baseline_engine = (
        "simulator" if adapter.default_engine == "reference"
        else adapter.default_engine
    )
    vec = adapter.solve(graph, problem, engine=ENGINE_VECTORIZED)
    ref = adapter.solve(graph, problem, engine=baseline_engine)
    assert_outcomes_identical(vec, ref)


@pytest.mark.parametrize("algorithm", VECTORIZED_ADAPTERS)
def test_greedy_outputs_match_reference_oracle(algorithm):
    """Whatever the engine, outputs must equal the sequential greedy /
    checked baseline decision — the engine only changes *how* rounds
    are executed, never what is decided."""
    graph = build_family_graph("gnp", 150, seed=21)
    problem = PROBLEMS.get("coloring")
    vec = ALGORITHMS.get(algorithm).solve(
        graph, problem, engine=ENGINE_VECTORIZED
    )
    problem.check(graph, vec.outputs, problem.make_inputs(graph))


# -- engine validation: the UnknownNameError contract ------------------------


class TestEngineValidation:
    def test_unknown_engine_lists_all_engines(self):
        adapter = ALGORITHMS.get("greedy")
        with pytest.raises(UnknownNameError) as exc:
            adapter.validate_engine("warp")
        message = str(exc.value)
        assert "unknown engine 'warp'" in message
        for engine in ENGINES:
            assert engine in message

    def test_unsupported_engine_lists_adapter_engines(self):
        adapter = ALGORITHMS.get("theorem1")
        with pytest.raises(UnknownNameError) as exc:
            adapter.validate_engine("reference")
        message = str(exc.value)
        assert "'theorem1' does not support engine 'reference'" in message
        for engine in adapter.engines:
            assert engine in message

    def test_unknown_engine_is_registry_and_key_error(self):
        adapter = ALGORITHMS.get("greedy")
        with pytest.raises(RegistryError):
            adapter.validate_engine("warp")
        with pytest.raises(KeyError):
            adapter.validate_engine("warp")

    def test_solve_validates_engine(self):
        graph = build_family_graph("path", 6, seed=0)
        with pytest.raises(UnknownNameError, match="does not support"):
            ALGORITHMS.get("theorem9").solve(
                graph, PROBLEMS.get("mis"), engine="reference"
            )

    def test_scenario_surfaces_engine_errors(self):
        from repro.api import Scenario

        errors = Scenario(algorithm="greedy", engine="warp").validate()
        assert any("unknown engine 'warp'" in e for e in errors)
        errors = Scenario(algorithm="theorem1", engine="reference").validate()
        assert any("does not support engine" in e for e in errors)


# -- the sweep engines axis --------------------------------------------------


class TestEngineAxis:
    def run_grid(self, cache=None, engines=()):
        from repro.api import run_grid

        return run_grid(
            families=["gnp"],
            sizes=[40],
            problems=["mis"],
            algorithms=["greedy"],
            engines=engines,
            cache=cache,
        )

    def test_engine_axis_rows_and_column(self):
        result = self.run_grid(engines=["simulator", "vectorized"])
        grid = result.experiments()["GRID"]
        assert grid.headers[-1] == "engine"
        by_engine = {row[-1]: row for row in grid.rows}
        assert set(by_engine) == {"simulator", "vectorized"}
        # Same derived seed → same graph → identical metrics: the axis
        # is a built-in differential test.
        assert by_engine["simulator"][:-1] == by_engine["vectorized"][:-1]

    def test_engine_axis_covers_clustered_pipeline(self):
        """The --engines differential smoke for the headline pipeline:
        same derived seed → identical metric rows per engine, for both
        clustered adapters."""
        from repro.api import run_grid

        result = run_grid(
            families=["gnp"],
            sizes=[40],
            problems=["mis"],
            algorithms=["theorem1", "theorem9"],
            engines=["simulator", "vectorized"],
        )
        grid = result.experiments()["GRID"]
        algo_col = grid.headers.index("algorithm")
        for algorithm in ("theorem1", "theorem9"):
            rows = {
                row[-1]: row for row in grid.rows
                if row[algo_col] == algorithm
            }
            assert set(rows) == {"simulator", "vectorized"}
            assert rows["simulator"][:-1] == rows["vectorized"][:-1]

    def test_no_axis_keeps_plain_headers(self):
        grid = self.run_grid().experiments()["GRID"]
        assert "engine" not in grid.headers

    def test_axis_does_not_disturb_plain_cache_keys(self, tmp_path):
        from repro.runner import TrialCache

        cache = TrialCache(str(tmp_path))
        self.run_grid(cache=cache)
        stats = self.run_grid(cache=cache).cache_stats
        assert stats.hits == 1  # same key with or without the axis wired
        # engine-tagged trials hash differently per engine
        r = self.run_grid(cache=cache, engines=["simulator", "vectorized"])
        assert r.cache_stats.hits == 0 and r.cache_stats.misses == 2

    def test_engine_labels_tag_trials(self):
        from repro.runner import sweep_from_grid

        spec = sweep_from_grid(
            families=["gnp"], sizes=[16], problems=["mis"],
            algorithms=["greedy"], engines=["vectorized"],
        )
        assert all("@vectorized" in t.label for t in spec.trials)

    def test_bad_engine_fails_at_spec_time(self):
        from repro.runner import sweep_from_grid

        with pytest.raises(KeyError, match="does not support"):
            sweep_from_grid(
                families=["gnp"], sizes=[16], problems=["mis"],
                algorithms=["theorem1"], engines=["reference"],
            )

    def test_engines_axis_rejects_fault_axis(self):
        from repro.runner import sweep_from_grid

        with pytest.raises(KeyError, match="cannot be combined"):
            sweep_from_grid(
                families=["gnp"], sizes=[16], problems=["mis"],
                algorithms=["greedy"], engines=["vectorized"],
                fault_drop=0.1,
            )

    def test_cli_sweep_engine_axis(self, capsys):
        from repro.cli import main

        code = main([
            "sweep", "--grid", "--families", "gnp", "--sizes", "24",
            "--problems", "mis", "--algorithms", "greedy",
            "--engines", "simulator", "vectorized",
            "--no-artifact", "--no-cache",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "engine" in out and "vectorized" in out


# -- scale (marked slow) -----------------------------------------------------


def fast_gnp(n, avg_degree, seed):
    """Sparse G(n, d/n) via networkx's O(n + m) sampler — the family
    registry's ``gnp`` walks all n² pairs, infeasible at these sizes."""
    import networkx as nx

    from repro.graphs.graph import StaticGraph

    return StaticGraph.from_networkx(
        nx.fast_gnp_random_graph(n, avg_degree / n, seed=seed)
    )


@pytest.mark.slow
@pytest.mark.parametrize(
    "gname,factory",
    [
        ("gnp", lambda: fast_gnp(65536, 8, seed=13)),
        # fixed m: the powerlaw *family*'s m = n/16 would mean ~2^28 edges
        ("powerlaw", lambda: preferential_attachment(65536, 8, seed=17)),
    ],
)
def test_vectorized_greedy_at_65536(gname, factory):
    graph = factory()
    problem = PROBLEMS.get("mis")
    vec, ref = _solve_both("greedy", graph, problem)
    # greedy's default engine is the reference oracle: outputs match,
    # metrics follow different models — compare outputs + validity only.
    assert vec.outputs == ref.outputs
    problem.check(graph, vec.outputs, problem.make_inputs(graph))


@pytest.mark.slow
def test_vectorized_baseline_at_65536():
    graph = fast_gnp(65536, 8, seed=23)
    problem = PROBLEMS.get("coloring")
    adapter = ALGORITHMS.get("baseline")
    vec = adapter.solve(graph, problem, engine=ENGINE_VECTORIZED)
    sim = adapter.solve(graph, problem, engine="simulator")
    assert_outcomes_identical(vec, sim)
