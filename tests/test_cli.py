"""Tests for the command-line interface."""

import pytest

from repro.cli import build_graph, main, make_parser


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            make_parser().parse_args([])

    def test_solve_defaults(self):
        args = make_parser().parse_args(["solve"])
        assert args.family == "gnp"
        assert args.problem == "mis"
        assert args.algorithm == "theorem1"


class TestBuildGraph:
    @pytest.mark.parametrize(
        "family", ["path", "cycle", "star", "complete", "grid", "tree",
                     "gnp", "regular", "powerlaw"]
    )
    def test_families(self, family):
        args = make_parser().parse_args(
            ["solve", "--family", family, "--n", "12"]
        )
        graph = build_graph(args)
        assert graph.n >= 4
        assert graph.is_connected()

    def test_unknown_family_rejected(self):
        args = make_parser().parse_args(["solve", "--family", "nope"])
        with pytest.raises(SystemExit, match="unknown family"):
            build_graph(args)

    def test_id_schemes(self):
        for scheme, space in [("identity", 12), ("permuted", 12),
                              ("poly2", 144)]:
            args = make_parser().parse_args(
                ["solve", "--family", "gnp", "--n", "12", "--ids", scheme]
            )
            assert build_graph(args).id_space == space

    def test_unknown_id_scheme_rejected(self):
        args = make_parser().parse_args(
            ["solve", "--family", "gnp", "--n", "12", "--ids", "weird"]
        )
        with pytest.raises(SystemExit, match="unknown id scheme"):
            build_graph(args)


class TestDeprecatedShims:
    """Pre-registry imports from repro.cli keep working."""

    def test_build_family_graph_shim(self):
        from repro.cli import build_family_graph

        graph = build_family_graph("path", 9, seed=1)
        assert graph.n == 9

    def test_problem_aliases_shim(self):
        from repro.cli import PROBLEM_ALIASES

        assert PROBLEM_ALIASES == {
            "coloring": "delta_plus_one_coloring",
            "mis": "maximal_independent_set",
            "list-coloring": "degree_plus_one_list_coloring",
            "vertex-cover": "minimal_vertex_cover",
        }

    def test_graph_families_shim_iterates_names(self):
        from repro.cli import GRAPH_FAMILIES

        assert "gnp" in GRAPH_FAMILIES
        assert set(GRAPH_FAMILIES) >= {"path", "cycle", "grid"}


class TestCommands:
    def test_solve_baseline(self, capsys):
        code = main(["solve", "--family", "path", "--n", "10",
                     "--algorithm", "baseline", "--problem", "coloring"])
        assert code == 0
        out = capsys.readouterr().out
        assert "baseline: awake=" in out

    def test_solve_theorem1_with_outputs(self, capsys):
        code = main(["solve", "--family", "cycle", "--n", "8",
                     "--problem", "mis", "--show-outputs"])
        assert code == 0
        out = capsys.readouterr().out
        assert "theorem1: awake=" in out
        assert "clustering:" in out

    def test_solve_with_trace(self, capsys):
        code = main(["solve", "--family", "star", "--n", "8",
                     "--algorithm", "baseline", "--problem", "mis",
                     "--trace", "--trace-nodes", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "timeline" in out
        assert "awake-rounds" in out

    def test_cluster_command(self, capsys):
        code = main(["cluster", "--family", "path", "--n", "9"])
        assert code == 0
        out = capsys.readouterr().out
        assert "cluster sizes:" in out

    def test_solve_theorem9(self, capsys):
        code = main(["solve", "--family", "path", "--n", "10",
                     "--algorithm", "theorem9", "--problem", "mis"])
        assert code == 0
        out = capsys.readouterr().out
        assert "theorem9: awake=" in out
        assert "clustering:" in out

    def test_solve_greedy_reference(self, capsys):
        code = main(["solve", "--family", "path", "--n", "10",
                     "--algorithm", "greedy", "--problem", "coloring"])
        assert code == 0
        out = capsys.readouterr().out
        assert "greedy: awake=1 avg=1.0 rounds=10 messages=9" in out

    def test_solve_algorithm_alias_resolves(self, capsys):
        code = main(["solve", "--family", "path", "--n", "8",
                     "--algorithm", "bm21"])
        assert code == 0
        assert "baseline: awake=" in capsys.readouterr().out

    def test_unknown_problem_rejected(self):
        with pytest.raises(SystemExit, match="unknown problem"):
            main(["solve", "--family", "path", "--n", "8",
                  "--problem", "sudoku"])

    def test_unknown_algorithm_rejected_listing_names(self):
        # Used to fall through silently to the baseline branch; now the
        # registry rejects it naming the valid algorithms.
        with pytest.raises(SystemExit) as exc:
            main(["solve", "--family", "path", "--n", "8",
                  "--algorithm", "turbo"])
        message = str(exc.value)
        assert "unknown algorithm 'turbo'" in message
        for name in ("theorem1", "baseline", "theorem9", "greedy"):
            assert name in message

    def test_unknown_family_rejected_listing_names(self):
        with pytest.raises(SystemExit) as exc:
            main(["solve", "--family", "doughnut", "--n", "8"])
        message = str(exc.value)
        assert "unknown family 'doughnut'" in message
        assert "'gnp'" in message and "'path'" in message

    def test_b_flag_ignored_by_algorithms_without_it(self, capsys):
        # --b has always been a no-op for the baseline; it must not
        # start failing scenario validation.
        code = main(["solve", "--family", "path", "--n", "8",
                     "--algorithm", "baseline", "--b", "4"])
        assert code == 0
        captured = capsys.readouterr()
        assert "baseline: awake=" in captured.out
        assert "--b is ignored" in captured.err

    def test_unsupported_engine_rejected(self):
        with pytest.raises(SystemExit, match="does not support engine"):
            main(["solve", "--family", "path", "--n", "8",
                  "--algorithm", "theorem1", "--engine", "reference"])

    def test_unknown_engine_rejected(self):
        with pytest.raises(SystemExit, match="unknown engine"):
            main(["solve", "--family", "path", "--n", "8",
                  "--algorithm", "greedy", "--engine", "warp"])

    def test_solve_list_prints_engine_matrix(self, capsys):
        assert main(["solve", "--list"]) == 0
        out = capsys.readouterr().out
        assert "algorithm × engine matrix" in out
        for name in ("theorem1", "baseline", "theorem9", "greedy"):
            assert name in out
        assert "vectorized" in out

    def test_trace_unsupported_for_greedy(self):
        with pytest.raises(SystemExit, match="--trace is not supported"):
            main(["solve", "--family", "path", "--n", "8",
                  "--algorithm", "greedy", "--trace"])

    def test_report_subset(self, tmp_path, capsys):
        output = tmp_path / "EXP.md"
        code = main(
            ["report", "--output", str(output), "--only", "E2", "--no-cache"]
        )
        assert code == 0
        content = output.read_text()
        assert "E2 — Lemma 14" in content

    def test_report_parser_defaults(self):
        args = make_parser().parse_args(["report"])
        assert args.workers == 1
        assert args.cache is True
        assert args.cache_dir == ".repro-cache"
        assert args.only is None

    def test_report_unknown_experiment_fails_listing_ids(self, tmp_path):
        with pytest.raises(SystemExit, match="unknown experiment"):
            main(["report", "--output", str(tmp_path / "x.md"),
                  "--only", "E99", "--no-cache"])

    def test_report_workers_and_cache_threaded(self, tmp_path, capsys):
        output = tmp_path / "EXP.md"
        cache_dir = tmp_path / "cache"
        argv = ["report", "--output", str(output), "--only", "E2",
                "--workers", "1", "--cache-dir", str(cache_dir)]
        assert main(argv) == 0
        assert cache_dir.is_dir()
        first = output.read_bytes()
        capsys.readouterr()
        assert main(argv) == 0
        assert "1 hit(s), 0 miss(es)" in capsys.readouterr().err
        assert output.read_bytes() == first
