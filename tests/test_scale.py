"""Moderate-scale stress tests (marked slow): the stack beyond toy sizes."""

import pytest

from repro import solve, theorem13_reference
from repro.core.theorem13 import compute_clustering
from repro.graphs import gnp, preferential_attachment
from repro.olocal import MaximalIndependentSet


@pytest.mark.slow
class TestScale:
    def test_theorem13_distributed_n128(self):
        g = gnp(128, 4.0 / 128, seed=41)
        res = compute_clustering(g)
        ref = theorem13_reference(g)
        assert res.clustering.color == ref.clustering.color
        assert res.awake_complexity < 400

    def test_theorem1_n192_powerlaw(self):
        """A Δ = n^ε network at n=192: the full pipeline stays correct and
        its awake cost stays flat relative to the n=24 runs."""
        g = preferential_attachment(192, 12, seed=43)
        result = solve(g, MaximalIndependentSet())
        assert result.awake_complexity < 400
        # awake ≪ rounds: the energy/latency trade at scale
        assert result.awake_complexity * 1000 < result.round_complexity

    def test_reference_structure_n8192(self):
        """The centralized reference handles four-digit n in seconds and
        the palette bound stays sub-polynomial."""
        g = gnp(8192, 3.0 / 8192, seed=47)
        ref = theorem13_reference(g)
        assert ref.clustering.max_color() <= ref.palette_bound
        assert ref.palette_bound < g.n * 4
