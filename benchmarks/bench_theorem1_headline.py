"""E9 — the headline: Theorem 1 vs the BM21 baseline across degree regimes.

The paper claims a polynomial improvement in awake complexity for
Δ ≫ 2^{sqrt(log n)}. At simulable scales the asymptotic crossover is out of
reach (constants favor the baseline), so the bench asserts the *shapes*:
the baseline's awake grows with log Δ while Theorem 1's is flat in Δ, and
the Thm1/BM21 ratio is non-increasing in n on the high-degree families.
"""

from benchmarks.conftest import emit
from repro.analysis.experiments import experiment_e9
from repro.core.theorem1 import solve
from repro.graphs import gnp
from repro.olocal import MaximalIndependentSet


def test_bench_theorem1_solve_n24(benchmark):
    graph = gnp(24, 0.15, seed=7)
    benchmark(solve, graph, MaximalIndependentSet())


def test_headline_shapes(experiment_cache):
    result = experiment_cache("E9", experiment_e9)
    emit(result)
    rows = result.rows
    complete = [r for r in rows if "complete" in r[0]]
    path_rows = [r for r in rows if "path" in r[0]]

    # Theorem 1's awake is flat in Δ: complete vs path awake within 3x.
    for c_row, p_row in zip(complete, path_rows):
        assert c_row[4] <= 3 * p_row[4]

    # Baseline's awake is non-decreasing in n on complete graphs (log Δ).
    base_awake = [r[3] for r in complete]
    assert all(a <= b + 1 for a, b in zip(base_awake, base_awake[1:]))

    # The asymptotic trend: Thm1/BM21 ratio non-increasing in n on the
    # high-degree family (allowing 10% noise).
    ratios = [float(r[5]) for r in complete]
    assert all(r2 <= r1 * 1.1 for r1, r2 in zip(ratios, ratios[1:]))
