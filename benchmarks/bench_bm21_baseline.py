"""E6 — Lemma 11 + the BM21 baseline: awake O(log Δ + log* n)."""

from benchmarks.conftest import emit
from repro.analysis.experiments import experiment_e6
from repro.core.bm21 import solve_with_baseline
from repro.graphs import complete_graph, gnp
from repro.olocal import DeltaPlusOneColoring, MaximalIndependentSet


def test_bench_baseline_sparse(benchmark):
    graph = gnp(64, 0.08, seed=2)
    benchmark(solve_with_baseline, graph, MaximalIndependentSet())


def test_bench_baseline_dense(benchmark):
    graph = complete_graph(48)
    benchmark(solve_with_baseline, graph, DeltaPlusOneColoring())


def test_baseline_bounds_hold(experiment_cache):
    result = experiment_cache("E6", experiment_e6)
    emit(result)
    assert all(row[-1] == "ok" for row in result.rows)
    # log Δ growth: complete-64 costs more awake than complete-32
    awake = {row[0]: row[3] for row in result.rows}
    assert awake["complete-64"] >= awake["complete-32"]
