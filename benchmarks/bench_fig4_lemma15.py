"""E4 — Figure 4 / Lemma 15: parent selection and cluster decomposition."""

from benchmarks.conftest import emit
from repro.analysis.experiments import experiment_e4
from repro.core.lemma15 import lemma15_protocol, lemma15_reference
from repro.graphs import gnp
from repro.graphs.examples import figure4_instance
from repro.model import SleepingSimulator


def test_bench_lemma15_reference(benchmark):
    graph = gnp(64, 0.1, seed=4)
    benchmark(lemma15_reference, graph, 3)


def test_bench_lemma15_distributed(benchmark):
    graph = gnp(24, 0.15, seed=4)

    def run():
        def program(info):
            out = yield from lemma15_protocol(
                me=info.id, peers=info.neighbors, n=info.n,
                id_space=info.id_space, b=3, t0=1,
            )
            return out

        return SleepingSimulator(graph, program).run()

    benchmark(run)


def test_regenerate_figure4(experiment_cache):
    result = experiment_cache("E4", experiment_e4)
    emit(result)
    inst = figure4_instance()
    # every residual root is a hub of degree > b, as drawn in the figure
    residual_rows = [r for r in result.rows if str(r[6]).startswith("residual")]
    assert residual_rows
    for row in residual_rows:
        root = int(str(row[6]).split(":")[1])
        assert inst.graph.degree(root) > inst.b
