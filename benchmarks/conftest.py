"""Shared helpers for the benchmark suite.

Every bench regenerates one paper artifact (figure or bound — see
DESIGN.md §4), prints its table (visible with ``pytest -s``), asserts the
claim columns, and times the core computation with pytest-benchmark.
"""

from __future__ import annotations

import pytest


def emit(result) -> None:
    """Print an ExperimentResult table (shown under ``pytest -s``)."""
    print()
    print(result.render())


@pytest.fixture(scope="session")
def experiment_cache():
    """Experiments are deterministic; share results across benches."""
    cache: dict[str, object] = {}

    def get(name: str, runner):
        if name not in cache:
            cache[name] = runner()
        return cache[name]

    return get
