#!/usr/bin/env python
"""Engine microbenchmarks: the indexed graph core and the fast event loops.

Measures, on the same machine and in the same process:

- **graph_construction** — ``StaticGraph.from_edges`` (trusted build +
  eager CSR index) vs the seed's per-edge revalidation of the same
  adjacency;
- **nodes_neighbors_access** — repeated ``nodes``/``degree``/``neighbors``
  sweeps on the cached index vs the seed's sort-per-access semantics;
- **sim_wake / sim_broadcast** — :class:`SleepingSimulator` (bucketed
  wake queue + lockstep carry + zero-copy broadcast + lazy inboxes) vs
  the seed stack: :class:`ReferenceSleepingSimulator` driving programs
  that allocate cost-faithful frozen-dataclass actions;
- **lockstep_quiet / lockstep_greedy** — ``run_local``'s native lockstep
  engine vs the seed stack (generator route on the reference loop);
- **delivery_bound** — dense lockstep broadcast (G(n, 96/n)): per-edge
  delivery dominates; exercises the batched receiver-centric path.
- **vectorized_greedy / vectorized_baseline** — the whole-frontier
  numpy engine vs the per-node engines it replaces (native lockstep
  greedy; the BM21 simulator run), at n = 4096 and n = 2^17 where the
  vectorized path is the only practical option;
- **vectorized_mega** — a throughput-only n = 10^6 run of both
  vectorized solvers (no per-node counterpart is feasible at that
  size, so no speedup is reported).
- **vectorized_theorem1 / vectorized_theorem9** — the clustered
  headline pipeline on the array engine vs the per-node simulator:
  the full Theorem 1 composition (Theorem 13 clustering + Theorem 9
  solver) and the Theorem 9 stage alone on a shared precomputed
  clustering, bit-identical first, timed second;
- **vectorized_theorem1_mega** — throughput-only Theorem 1 runs at
  n = 2^17 and n = 10^6 (the simulator side would take hours there).

Each simulator pair is also checked for *bit-identical* outputs and
metrics before its timing is reported — a benchmark that changed
semantics refuses to report at all.

Speedup ratios (new vs seed, same process) are hardware-independent and
are what ``--check`` regresses against; absolute numbers are recorded
for context only.

Usage:
    python benchmarks/bench_engine.py                # full run, prints table
    python benchmarks/bench_engine.py --quick        # n=1024 only, 1 rep
    python benchmarks/bench_engine.py --emit PATH    # also write JSON
    python benchmarks/bench_engine.py --check PATH   # fail if any speedup
                                                     # regressed >2x vs PATH
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.errors import GraphError  # noqa: E402
from repro.graphs import gnp, path, preferential_attachment  # noqa: E402
from repro.graphs.graph import StaticGraph  # noqa: E402
from repro.model import AwakeAt, Broadcast, SleepingSimulator  # noqa: E402
from repro.model.lockstep import LocalNodeState, run_local  # noqa: E402
from repro.model.reference import ReferenceSleepingSimulator  # noqa: E402


class SeedAwakeAt(AwakeAt):
    """Cost-faithful replica of the seed's frozen-dataclass action: two
    ``object.__setattr__`` calls plus a ``__post_init__`` hop per
    instance (the seed class itself predates the engine's type check)."""

    __slots__ = ()

    def __init__(self, round, messages=None):
        object.__setattr__(self, "round", round)
        object.__setattr__(self, "messages", messages)
        self.__post_init__()

    def __post_init__(self):
        if self.round < 1:
            raise ValueError(f"rounds are 1-indexed, got {self.round}")


def seed_validate(adjacency, id_space):
    """The seed ``__post_init__``: per-edge symmetry scans (O(E·deg))."""
    for v, nbrs in adjacency.items():
        if v in nbrs:
            raise GraphError(f"self-loop at node {v}")
        for u in nbrs:
            if u not in adjacency:
                raise GraphError(f"edge ({v}, {u}) dangles")
            if v not in adjacency[u]:
                raise GraphError(f"edge ({v}, {u}) is not symmetric")
    if adjacency:
        lo, hi = min(adjacency), max(adjacency)
        if lo < 1 or hi > id_space:
            raise GraphError("node IDs out of range")


# -- workload programs -------------------------------------------------------


def wake_program(rounds, action_cls):
    """Staggered wake/sleep pattern, no messages: pure scheduling cost."""

    def program(info):
        r = 1 + info.id % 3
        for _ in range(rounds):
            yield action_cls(r)
            r += 1 + (info.id + r) % 2
        return None

    return program


def broadcast_program(rounds, action_cls):
    """Lockstep broadcast every round: full delivery cost."""

    def program(info):
        for r in range(1, rounds + 1):
            yield action_cls(r, Broadcast(info.id))
        return None

    return program


def quiet_callbacks(rounds):
    """Lockstep listen-only rounds (the cast/calendar idle pattern)."""

    def first_messages(state):
        return None

    def on_round(state, r, inbox):
        if r >= rounds:
            state.finish(r)
        return None

    return first_messages, on_round


def greedy_callbacks(graph):
    """The shipped always-awake greedy strawman's callbacks (shared with
    ``greedy_by_id_local`` so the baseline measures the real algorithm)."""
    from repro.model.lockstep import greedy_by_id_callbacks
    from repro.olocal import MaximalIndependentSet

    first_messages, on_round, _ = greedy_by_id_callbacks(
        graph, MaximalIndependentSet()
    )
    return first_messages, on_round


def run_local_via_seed_stack(graph, first_messages, on_round):
    """The seed implementation of run_local: a generator program driving
    seed actions on the seed event loop."""

    def program(info):
        state = LocalNodeState(info=info, memory={})
        outgoing = first_messages(state)
        round_number = 0
        while not state.done:
            round_number += 1
            inbox = yield SeedAwakeAt(round_number, outgoing)
            outgoing = on_round(state, round_number, inbox)
        return state.output

    return ReferenceSleepingSimulator(graph, program).run()


# -- measurement -------------------------------------------------------------


def timed(fn, reps):
    best = float("inf")
    result = None
    for _ in range(reps):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return result, best


def check_identical(new, seed, case="<unnamed>"):
    assert new.outputs == seed.outputs, f"{case}: engine outputs diverged"
    assert new.metrics.awake_rounds == seed.metrics.awake_rounds, (
        f"{case}: awake_rounds diverged"
    )
    assert new.metrics.termination_round == seed.metrics.termination_round, (
        f"{case}: termination_round diverged"
    )
    assert new.metrics.summary() == seed.metrics.summary(), (
        case,
        new.metrics.summary(),
        seed.metrics.summary(),
    )


def seed_from_edges(edges, nodes, id_space):
    """The seed ``from_edges``: build, then per-edge revalidation."""
    adj = {v: set() for v in nodes}
    for u, v in edges:
        adj.setdefault(u, set()).add(v)
        adj.setdefault(v, set()).add(u)
    frozen = {v: tuple(sorted(nbrs)) for v, nbrs in adj.items()}
    seed_validate(frozen, id_space)
    return frozen


def bench_graph(n, reps, results):
    g = gnp(n, 8.0 / n, seed=n)
    edges = list(g.edges())
    nodes = range(1, n + 1)

    new_g, t_new = timed(
        lambda: StaticGraph.from_edges(edges, nodes=nodes, id_space=n), reps
    )
    seed_adj, t_seed = timed(lambda: seed_from_edges(edges, nodes, n), reps)
    assert dict(new_g.adjacency) == seed_adj
    results[f"graph_construction/n={n}"] = {
        "new_s": t_new,
        "seed_s": t_seed,
        "speedup": t_seed / t_new,
        "edges": len(edges),
    }

    # Repeated property access: the seed recomputed nodes (sort), node-set
    # membership, max_degree and num_edges on *every* access; the index
    # serves all four from the one-shot CSR build.
    sweeps = 400
    probe = n // 2

    def indexed_sweep():
        total = 0
        for _ in range(sweeps):
            total += len(g.nodes) + g.max_degree + g.num_edges
            total += probe in g.node_set
            total += len(g.neighbors(probe))
        return total

    adj = g.adjacency

    def naive_sweep():
        total = 0
        for _ in range(sweeps):
            nodes_sorted = tuple(sorted(adj))
            total += len(nodes_sorted)
            total += max(len(nbrs) for nbrs in adj.values())
            total += sum(len(nbrs) for nbrs in adj.values()) // 2
            total += probe in set(nodes_sorted)
            total += len(adj[probe])
        return total

    r1, t_idx = timed(indexed_sweep, reps)
    r2, t_naive = timed(naive_sweep, reps)
    assert r1 == r2
    results[f"nodes_neighbors_access/n={n}"] = {
        "new_s": t_idx,
        "seed_s": t_naive,
        "speedup": t_naive / t_idx,
    }


def bench_sim(name, graph_factory, n, reps, results):
    g = graph_factory(n)
    for bench, rounds, make in (
        ("sim_wake", 60, wake_program),
        ("sim_broadcast", 40, broadcast_program),
    ):
        case = f"{bench}/{name}/n={n}"
        new_prog = make(rounds, AwakeAt)
        seed_prog = make(rounds, SeedAwakeAt)
        new_res, t_new = timed(lambda: SleepingSimulator(g, new_prog).run(), reps)
        seed_res, t_seed = timed(
            lambda: ReferenceSleepingSimulator(g, seed_prog).run(), reps
        )
        check_identical(new_res, seed_res, case)
        node_rounds = new_res.metrics.total_awake
        results[f"{bench}/{name}/n={n}"] = {
            "node_rounds": node_rounds,
            "new_per_sec": node_rounds / t_new,
            "seed_per_sec": node_rounds / t_seed,
            "speedup": t_seed / t_new,
        }

    for bench, callbacks in (
        ("lockstep_quiet", lambda: quiet_callbacks(120)),
        ("lockstep_greedy", lambda: greedy_callbacks(g)),
    ):
        case = f"{bench}/{name}/n={n}"
        first, on_round = callbacks()
        new_res, t_new = timed(lambda: run_local(g, first, on_round), reps)
        seed_res, t_seed = timed(
            lambda: run_local_via_seed_stack(g, first, on_round), reps
        )
        check_identical(new_res, seed_res, case)
        node_rounds = new_res.metrics.total_awake
        results[f"{bench}/{name}/n={n}"] = {
            "node_rounds": node_rounds,
            "new_per_sec": node_rounds / t_new,
            "seed_per_sec": node_rounds / t_seed,
            "speedup": t_seed / t_new,
        }


def bench_delivery(n, reps, results):
    """Delivery-bound workload: a dense G(n, 96/n) with every node awake
    and broadcasting in lockstep, so per-edge delivery dominates both
    engines. Exercises the batched receiver-centric path (PERFORMANCE.md
    §2); before batching this pattern was Amdahl-capped at ~1.6x."""
    g = gnp(n, 96.0 / n, seed=3)
    rounds = max(2, 10_000 // n)
    case = f"delivery_bound/gnp96/n={n}"
    new_prog = broadcast_program(rounds, AwakeAt)
    seed_prog = broadcast_program(rounds, SeedAwakeAt)
    new_res, t_new = timed(lambda: SleepingSimulator(g, new_prog).run(), reps)
    seed_res, t_seed = timed(
        lambda: ReferenceSleepingSimulator(g, seed_prog).run(), reps
    )
    check_identical(new_res, seed_res, case)
    node_rounds = new_res.metrics.total_awake
    results[case] = {
        "node_rounds": node_rounds,
        "edges": g.num_edges,
        "new_per_sec": node_rounds / t_new,
        "seed_per_sec": node_rounds / t_seed,
        "speedup": t_seed / t_new,
    }


def fast_gnp(n, avg_degree, seed):
    """Sparse G(n, d/n) via networkx's O(n + m) sampler; the shipped
    ``gnp`` family walks all n² pairs, infeasible past ~10^4 nodes."""
    import networkx as nx

    return StaticGraph.from_networkx(
        nx.fast_gnp_random_graph(n, avg_degree / n, seed=seed)
    )


def bench_vectorized(n, reps, results):
    """The vectorized engine vs the per-node engines, bit-identical
    first, timed second. n = 2^17 runs a single rep: the *per-node*
    side takes minutes there, which is exactly the point."""
    from repro.core.bm21 import solve_with_baseline
    from repro.core.bm21_vectorized import solve_with_baseline_vectorized
    from repro.model.lockstep import greedy_by_id_local
    from repro.model.vectorized import greedy_by_id_vectorized
    from repro.olocal import DeltaPlusOneColoring, MaximalIndependentSet

    g = gnp(n, 8.0 / n, seed=1) if n <= 10_000 else fast_gnp(n, 8, seed=1)
    # Small n: min-of-3 even in --quick, or the one-time numpy/first-call
    # cost dominates the tiny kernels and quick-mode speedups collapse
    # far below the committed full-run baseline the CI check compares to.
    reps = 1 if n > 10_000 else max(reps, 3)

    problem = MaximalIndependentSet()
    inputs = problem.make_inputs(g)
    vec_res, t_vec = timed(
        lambda: greedy_by_id_vectorized(g, problem, inputs=inputs), reps
    )
    seed_res, t_seed = timed(
        lambda: greedy_by_id_local(g, problem, inputs=inputs), reps
    )
    case = f"vectorized_greedy/gnp/n={n}"
    check_identical(vec_res, seed_res, case)
    node_rounds = vec_res.metrics.total_awake
    results[case] = {
        "node_rounds": node_rounds,
        "new_per_sec": node_rounds / t_vec,
        "seed_per_sec": node_rounds / t_seed,
        "speedup": t_seed / t_vec,
    }

    coloring = DeltaPlusOneColoring()
    vec_base, t_vec = timed(
        lambda: solve_with_baseline_vectorized(g, coloring), reps
    )
    seed_base, t_seed = timed(lambda: solve_with_baseline(g, coloring), reps)
    case = f"vectorized_baseline/gnp/n={n}"
    check_identical(vec_base.simulation, seed_base.simulation, case)
    assert vec_base.palette == seed_base.palette, f"{case}: palette diverged"
    node_rounds = vec_base.simulation.metrics.total_awake
    results[case] = {
        "node_rounds": node_rounds,
        "new_per_sec": node_rounds / t_vec,
        "seed_per_sec": node_rounds / t_seed,
        "speedup": t_seed / t_vec,
    }


def bench_vectorized_mega(results, n=1_000_000):
    """Throughput-only n = 10^6: the acceptance run for 'a million-node
    graph solves in seconds'. No per-node counterpart (it would take
    hours) and hence no speedup key — ``--check`` skips these cases.
    Baseline validation is skipped too (``check=False``): the O(V + E)
    Python checker would dominate the vectorized kernels."""
    from repro.core.bm21_vectorized import solve_with_baseline_vectorized
    from repro.model.vectorized import greedy_by_id_vectorized
    from repro.olocal import DeltaPlusOneColoring, MaximalIndependentSet

    g = fast_gnp(n, 8, seed=1)

    problem = MaximalIndependentSet()
    inputs = problem.make_inputs(g)
    res, t = timed(lambda: greedy_by_id_vectorized(g, problem, inputs=inputs), 1)
    problem.check(g, res.outputs, inputs)
    node_rounds = res.metrics.total_awake
    results[f"vectorized_mega_greedy/gnp/n={n}"] = {
        "node_rounds": node_rounds,
        "new_per_sec": node_rounds / t,
        "seconds": t,
    }

    base, t = timed(
        lambda: solve_with_baseline_vectorized(
            g, DeltaPlusOneColoring(), check=False
        ),
        1,
    )
    node_rounds = base.simulation.metrics.total_awake
    results[f"vectorized_mega_baseline/gnp/n={n}"] = {
        "node_rounds": node_rounds,
        "new_per_sec": node_rounds / t,
        "seconds": t,
    }


def bench_vectorized_clustered(n, reps, results):
    """The clustered pipeline (Theorem 13 + Theorem 9) on the array
    engine vs the per-node simulator. Always a single rep: the
    *simulator* side of the theorem1 pair costs ~18 s at n = 1024 and
    ~90 s at n = 4096 — which is exactly the gap being measured."""
    from repro.core import theorem1, theorem9
    from repro.core.clustering_vectorized import (
        compute_clustering_vectorized,
    )
    from repro.core.theorem1_vectorized import (
        solve_vectorized,
        solve_with_clustering_vectorized,
    )
    from repro.olocal import MaximalIndependentSet

    g = gnp(n, 8.0 / n, seed=1)
    problem = MaximalIndependentSet()
    reps = 1

    vec_res, t_vec = timed(lambda: solve_vectorized(g, problem), reps)
    seed_res, t_seed = timed(lambda: theorem1.solve(g, problem), reps)
    case = f"vectorized_theorem1/gnp/n={n}"
    check_identical(vec_res.simulation, seed_res.simulation, case)
    assert vec_res.outputs == seed_res.outputs, f"{case}: outputs diverged"
    node_rounds = vec_res.simulation.metrics.total_awake
    results[case] = {
        "node_rounds": node_rounds,
        "new_per_sec": node_rounds / t_vec,
        "seed_per_sec": node_rounds / t_seed,
        "speedup": t_seed / t_vec,
    }

    # Theorem 9 alone, both engines fed the same precomputed clustering.
    clustering = compute_clustering_vectorized(g, validate=False).clustering
    vec9, t_vec = timed(
        lambda: solve_with_clustering_vectorized(g, problem, clustering),
        reps,
    )
    seed9, t_seed = timed(
        lambda: theorem9.solve_with_clustering(g, problem, clustering), reps
    )
    case = f"vectorized_theorem9/gnp/n={n}"
    check_identical(vec9.simulation, seed9.simulation, case)
    assert vec9.outputs == seed9.outputs, f"{case}: outputs diverged"
    node_rounds = vec9.simulation.metrics.total_awake
    results[case] = {
        "node_rounds": node_rounds,
        "new_per_sec": node_rounds / t_vec,
        "seed_per_sec": node_rounds / t_seed,
        "speedup": t_seed / t_vec,
    }


def bench_vectorized_clustered_mega(results):
    """Throughput-only Theorem 1 pipeline runs at the sizes the
    simulator cannot reach (its n = 4096 run already takes ~90 s, and
    the cost grows superlinearly). ``validate=False`` for the same
    reason as the greedy/baseline mega cases; min-of-2 sheds the
    one-time page-fault/lazy-import noise of the first mega call."""
    from repro.core.theorem1_vectorized import solve_vectorized
    from repro.olocal import MaximalIndependentSet

    problem = MaximalIndependentSet()
    for n, avg_degree in ((1 << 17, 8), (1_000_000, 4)):
        g = fast_gnp(n, avg_degree, seed=1)
        res, t = timed(lambda: solve_vectorized(g, problem, validate=False), 2)
        node_rounds = res.simulation.metrics.total_awake
        results[f"vectorized_theorem1_mega/gnp/n={n}"] = {
            "node_rounds": node_rounds,
            "new_per_sec": node_rounds / t,
            "seconds": t,
        }


FAMILIES = [
    ("path", lambda n: path(n)),
    ("gnp", lambda n: gnp(n, 8.0 / n, seed=1)),
    ("ba", lambda n: preferential_attachment(n, 4, seed=2)),
]


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="n=1024, 1 rep")
    parser.add_argument("--emit", metavar="PATH", help="write JSON results")
    parser.add_argument(
        "--check",
        metavar="PATH",
        help="fail if any shared speedup regressed more than 2x vs PATH",
    )
    parser.add_argument(
        "--history",
        metavar="PATH",
        default=str(Path(__file__).resolve().parent.parent
                    / "BENCH_history.jsonl"),
        help="append a dated speedup row here (render with "
        "`repro stats --bench`); --history '' disables",
    )
    args = parser.parse_args(argv)

    sizes = (1024,) if args.quick else (1024, 4096)
    reps = 1 if args.quick else 3
    results: dict[str, dict] = {}

    for n in sizes:
        bench_graph(n, reps, results)
        for name, factory in FAMILIES:
            bench_sim(name, factory, n, reps, results)
        bench_delivery(n, reps, results)

    # n=1024 in both modes: the committed full-run file must contain the
    # quick-mode keys or the CI `--quick --check` would skip them.
    for n in (1024,) if args.quick else (1024, 4096, 131072):
        bench_vectorized(n, reps, results)
    for n in (1024,) if args.quick else (1024, 4096):
        bench_vectorized_clustered(n, reps, results)
    if not args.quick:
        bench_vectorized_mega(results)
        bench_vectorized_clustered_mega(results)

    width = max(len(k) for k in results)
    print(f"{'benchmark'.ljust(width)}  {'new/s':>12}  {'seed/s':>12}  {'speedup':>8}")
    for key in sorted(results):
        row = results[key]
        new = row.get("new_per_sec")
        seed = row.get("seed_per_sec")
        speedup = row.get("speedup")  # throughput-only cases have none
        tail = f"{speedup:.2f}x" if speedup else f"{row['seconds']:.1f}s"
        print(
            f"{key.ljust(width)}  "
            f"{(f'{new:,.0f}' if new else '-'):>12}  "
            f"{(f'{seed:,.0f}' if seed else '-'):>12}  "
            f"{tail:>8}"
        )

    payload = {
        "config": {"sizes": list(sizes), "reps": reps, "quick": args.quick},
        "results": results,
    }
    if args.emit:
        Path(args.emit).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"\nwrote {args.emit}")

    if args.history:
        # One dated row per run — the committed BENCH_history.jsonl is the
        # machine-readable speedup trajectory (`repro stats --bench`).
        row = {
            "date": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "mode": "quick" if args.quick else "full",
            "cases": len(results),
            "speedups": {
                key: round(r["speedup"], 3)
                for key, r in sorted(results.items())
                if "speedup" in r
            },
        }
        with open(args.history, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(row, sort_keys=True) + "\n")
        print(f"\nappended history row to {args.history}")

    if args.check:
        committed = json.loads(Path(args.check).read_text())["results"]
        failures = []
        for key, row in results.items():
            base = committed.get(key)
            if base is None or "speedup" not in row or "speedup" not in base:
                continue
            ratio = row["speedup"] / base["speedup"]
            if ratio < 0.5:
                failures.append(
                    f"  case:     {key}\n"
                    f"  measured: {row['speedup']:.2f}x speedup over the "
                    f"seed stack\n"
                    f"  baseline: {base['speedup']:.2f}x committed in "
                    f"{args.check}\n"
                    f"  ratio:    {ratio:.2f} of baseline "
                    f"(regression floor: 0.50)"
                )
        if failures:
            print(
                f"\nREGRESSIONS — {len(failures)} case(s) lost more than "
                f"half their committed speedup:\n" + "\n\n".join(failures)
            )
            return 1
        print("\ncheck ok: no speedup regressed more than 2x vs baseline")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
