"""E10 — §2.2: distance-2 coloring is not in O-LOCAL."""

from benchmarks.conftest import emit
from repro.analysis.experiments import experiment_e10
from repro.olocal.not_olocal import defeating_id_assignment


def test_bench_defeat_rules(benchmark):
    def defeat_many():
        for seed in range(100):
            f = lambda i, s=seed: 1 + (i * (s + 3)) % 5
            assert defeating_id_assignment(f, 6) is not None

    benchmark(defeat_many)


def test_every_sampled_rule_defeated(experiment_cache):
    result = experiment_cache("E10", experiment_e10)
    emit(result)
    assert len(result.rows) >= 8
    for row in result.rows:
        assert "sinks" in row[2]
