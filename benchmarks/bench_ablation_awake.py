"""E11/E12 — ablations: average awake complexity (Open Question 3) and the
phase parameter b of Theorem 13."""

from benchmarks.conftest import emit
from repro.analysis.experiments import experiment_e11, experiment_e12
from repro.core.theorem13 import compute_clustering
from repro.graphs import gnp


def test_bench_clustering_b2_vs_default(benchmark):
    """Time the pipeline at the smallest b (most phases)."""
    graph = gnp(20, 0.2, seed=13)
    benchmark(compute_clustering, graph, 2)


def test_average_awake_tracks_max(experiment_cache):
    result = experiment_cache("E11", experiment_e11)
    emit(result)
    for row in result.rows:
        name, max_awake, avg_awake = row[0], row[1], row[2]
        assert avg_awake <= max_awake
        # data-independent calendars: the average is a large fraction of
        # the max (Open Question 3 — adaptive schedules — remains open)
        assert avg_awake >= 0.3 * max_awake


def test_b_ablation_tradeoff(experiment_cache):
    result = experiment_cache("E12", experiment_e12)
    emit(result)
    palettes = [row[1] for row in result.rows]
    assert all(a < b for a, b in zip(palettes, palettes[1:]))
    # phases never increase with b
    phases = [row[2] for row in result.rows]
    assert all(a >= b for a, b in zip(phases, phases[1:]))
