"""E2 — Figure 2 / Lemma 14: flattening a two-level clustering."""

from benchmarks.conftest import emit
from repro.analysis.experiments import experiment_e2
from repro.core.lemma14 import lemma14_reference
from repro.graphs.examples import figure2_instance


def test_bench_flatten_reference(benchmark):
    inst = figure2_instance()
    benchmark(
        lemma14_reference,
        inst.graph,
        inst.level1_label,
        inst.level1_dist,
        inst.level2_label,
        inst.level2_dist,
    )


def test_regenerate_figure2(experiment_cache):
    result = experiment_cache("E2", experiment_e2)
    emit(result)
    assert result.findings["(ℓ'', δ'') satisfies Definition 2"] == "yes (validated)"
    # the merged clustering uses exactly the two super-labels
    labels = {row[5] for row in result.rows}
    assert labels == {101, 102}
