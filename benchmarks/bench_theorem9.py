"""E7 — Theorem 9: awake O(log c) given a colored BFS-clustering."""

from benchmarks.conftest import emit
from repro.analysis.experiments import experiment_e7
from repro.core.clustering import ColoredBFSClustering
from repro.core.theorem9 import solve_with_clustering
from repro.graphs import gnp
from repro.olocal import MaximalIndependentSet


def test_bench_theorem9_solve(benchmark):
    graph = gnp(48, 0.1, seed=3)
    colors = {}
    for v in graph.nodes:
        used = {colors[u] for u in graph.neighbors(v) if u in colors}
        c = 1
        while c in used:
            c += 1
        colors[v] = c
    clustering = ColoredBFSClustering(colors, {v: 0 for v in graph.nodes})
    benchmark(
        solve_with_clustering, graph, MaximalIndependentSet(), clustering
    )


def test_awake_scales_logarithmically_in_c(experiment_cache):
    result = experiment_cache("E7", experiment_e7)
    emit(result)
    assert all(row[-1] == "ok" for row in result.rows)
    # doubling c adds a bounded number of awake rounds (~7 per doubling)
    awake = [row[1] for row in result.rows]
    cs = [row[0] for row in result.rows]
    for (c1, a1), (c2, a2) in zip(zip(cs, awake), zip(cs[1:], awake[1:])):
        doublings = max(1, (c2 // max(c1, 1)).bit_length())
        assert a2 - a1 <= 8 * doublings
