"""E5 — Lemma 6: broadcast/convergecast awake complexity and throughput."""

from benchmarks.conftest import emit
from repro.analysis.experiments import experiment_e5
from repro.core.cast import gather_bfs
from repro.graphs import random_tree
from repro.model import SleepingSimulator


def test_bench_gather_on_tree_n256(benchmark):
    """Simulator throughput on the workhorse primitive: convergecast +
    broadcast over a 256-node random tree."""
    graph = random_tree(256, seed=11)
    root = 1
    depth = graph.bfs_distances(root)
    parent = {
        v: (None if v == root else min(
            u for u in graph.neighbors(v) if depth[u] == depth[v] - 1))
        for v in graph.nodes
    }

    def run():
        def program(info):
            merged = yield from gather_bfs(
                info.id, info.neighbors, parent[info.id], depth[info.id],
                info.n, 1, info.id, max,
            )
            return merged

        return SleepingSimulator(graph, program).run()

    result = benchmark(run)
    assert all(out == 256 for out in result.outputs.values())


def test_lemma6_awake_bounds(experiment_cache):
    result = experiment_cache("E5", experiment_e5)
    emit(result)
    assert all(row[-1] == "ok" for row in result.rows)
