"""Substrate bench — raw simulator throughput and time-skipping behavior.

Not a paper artifact; documents the substrate's capacity so users can size
their experiments (the simulator is the laptop stand-in for the testbed).
"""

from repro.graphs import gnp, random_regular
from repro.model import AwakeAt, Broadcast, SleepingSimulator
from repro.util.tables import format_table


def chatter_program(rounds):
    def program(info):
        for r in range(1, rounds + 1):
            yield AwakeAt(r, Broadcast(r))
        return None

    return program


def test_bench_dense_chatter(benchmark):
    """All nodes awake 20 rounds, broadcasting every round (worst case for
    the scheduler: no skipping, full delivery)."""
    graph = random_regular(128, 8, seed=21)
    sim = SleepingSimulator(graph, chatter_program(20))
    benchmark(sim.run)


def test_bench_sparse_wakeups(benchmark):
    """Each node awake 3 times across a 10^9-round horizon: exercises the
    time-skipping heap."""
    graph = gnp(256, 0.05, seed=22)

    def program(info):
        yield AwakeAt(info.id * 1000)
        yield AwakeAt(10**6 + info.id)
        yield AwakeAt(10**9 - info.id)
        return None

    sim = SleepingSimulator(graph, program)
    result = benchmark(sim.run)
    assert result.round_complexity > 10**8


def test_throughput_table():
    import time

    rows = []
    for n, degree, rounds in [(64, 6, 20), (256, 6, 20), (1024, 6, 10)]:
        graph = random_regular(n, degree, seed=n)
        start = time.perf_counter()
        res = SleepingSimulator(graph, chatter_program(rounds)).run()
        elapsed = time.perf_counter() - start
        events = res.metrics.total_awake
        rows.append(
            (n, rounds, events, res.metrics.messages_sent,
             f"{events / elapsed:,.0f}")
        )
    print()
    print(format_table(
        ["n", "rounds", "awake events", "messages", "events/sec"],
        rows, title="Substrate — simulator throughput",
    ))
