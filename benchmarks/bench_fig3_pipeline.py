"""E3 — Figure 3 / the Theorem 13 iteration: cluster-count decay trace."""

from benchmarks.conftest import emit
from repro.analysis.experiments import experiment_e3
from repro.core.theorem13 import theorem13_reference
from repro.graphs import gnp


def test_bench_pipeline_reference_n96(benchmark):
    graph = gnp(96, 0.12, seed=7)
    benchmark(theorem13_reference, graph)


def test_regenerate_figure3_trace(experiment_cache):
    result = experiment_cache("E3", experiment_e3)
    emit(result)
    assert all(row[-1] == "ok" for row in result.rows)
    # the loop terminates within the phase budget
    assert result.findings["phases used"] <= result.findings[
        "phase budget k = 2·sqrt(log n)"
    ]
    # |V(H_i)| strictly decreases
    sizes = [row[1] for row in result.rows]
    assert all(a > b for a, b in zip(sizes, sizes[1:]))
