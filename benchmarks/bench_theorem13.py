"""E8 — Theorem 13: colors, cluster decay, awake complexity, ID-space
remark (three sub-experiments)."""

from benchmarks.conftest import emit
from repro.analysis.experiments import (
    experiment_e8_distributed,
    experiment_e8_idspace,
    experiment_e8_structure,
)
from repro.core.theorem13 import compute_clustering, theorem13_reference
from repro.graphs import gnp


def test_bench_clustering_distributed_n24(benchmark):
    graph = gnp(24, 0.15, seed=5)
    benchmark(compute_clustering, graph)


def test_bench_clustering_reference_n512(benchmark):
    graph = gnp(512, 6.0 / 512, seed=6)
    benchmark(theorem13_reference, graph)


def test_color_bound_at_scale(experiment_cache):
    result = experiment_cache("E8a", experiment_e8_structure)
    emit(result)
    for row in result.rows:
        max_color, bound = row[5], row[6]
        assert max_color <= bound
    # sub-polynomial growth: multiplying n by 64 multiplies the palette
    # bound by far less (the bound crosses below n only at n ≈ 2^17+,
    # beyond simulable scale — same asymptotic story as the paper).
    first_n, last_n = result.rows[0][0], result.rows[-1][0]
    first_bound, last_bound = result.rows[0][6], result.rows[-1][6]
    assert last_bound / first_bound < (last_n / first_n) ** 0.5


def test_awake_bound_simulated(experiment_cache):
    result = experiment_cache("E8b", experiment_e8_distributed)
    emit(result)
    assert all(row[-1] == "ok" for row in result.rows)


def test_idspace_remark(experiment_cache):
    result = experiment_cache("E8c", experiment_e8_idspace)
    emit(result)
    rounds = [row[3] for row in result.rows]
    awake = [row[2] for row in result.rows]
    # rounds grow with the ID exponent s; awake stays in the same ballpark
    assert rounds[0] < rounds[1] < rounds[2]
    assert max(awake) <= 3 * min(awake)
