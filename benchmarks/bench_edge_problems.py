"""Extension bench — edge problems via line graphs (Open Question 5)."""

from repro.graphs import cycle, gnp
from repro.olocal.edge_problems import (
    edge_coloring,
    line_graph,
    maximal_matching,
)
from repro.util.tables import format_table


def test_bench_line_graph_construction(benchmark):
    graph = gnp(64, 0.15, seed=17)
    benchmark(line_graph, graph)


def test_bench_maximal_matching_baseline(benchmark):
    graph = gnp(24, 0.2, seed=18)
    benchmark(maximal_matching, graph, "baseline")


def test_edge_problem_table():
    rows = []
    for name, graph in [
        ("cycle-16", cycle(16)),
        ("gnp-20", gnp(20, 0.2, seed=19)),
    ]:
        mm = maximal_matching(graph, method="baseline")
        ec = edge_coloring(graph, method="baseline")
        rows.append(
            (name, graph.num_edges, sum(mm.outputs.values()),
             mm.awake_complexity, max(ec.outputs.values()),
             2 * graph.max_degree - 1, ec.awake_complexity)
        )
    print()
    print(format_table(
        ["graph", "|E|", "matching size", "awake (MM)",
         "colors", "2Δ-1", "awake (EC)"],
        rows,
        title="Extension — edge problems on L(G) (Open Question 5)",
    ))
    for row in rows:
        assert row[4] <= row[5]  # palette within 2Δ-1
