"""E1 — Figure 1 / Lemma 10: regenerate the tree and verify the mappings."""

from benchmarks.conftest import emit
from repro.analysis.experiments import experiment_e1
from repro.core.mapping import ColorScheduleMapping


def test_bench_verify_q256(benchmark):
    """Time the exhaustive property verification for a 256-color palette."""
    mapping = ColorScheduleMapping(256)
    benchmark(mapping.verify)


def test_bench_schedule_lookup(benchmark):
    """Time the per-node schedule computation (hot path of Lemma 11)."""
    mapping = ColorScheduleMapping(1 << 14)

    def lookup():
        for c in range(1, 512):
            mapping.r(c)
            mapping.phi(c)

    benchmark(lookup)


def test_regenerate_figure1(experiment_cache):
    result = experiment_cache("E1", experiment_e1)
    emit(result)
    assert all(row[-1] == "ok" for row in result.rows)
    # the paper's concrete values
    assert "3, [2, 3, 4, 8]" in result.findings["phi(2), r(2) at q=8 (paper)"]
    assert "7, [4, 6, 7, 8]" in result.findings["phi(4), r(4) at q=8 (paper)"]
