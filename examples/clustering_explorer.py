#!/usr/bin/env python3
"""Explore the Theorem 13 network decomposition phase by phase.

Shows the paper's machinery at work on a blob-structured network: how the
iterated Lemma 15 phases dissolve low-degree regions into singleton
clusters while high-degree hubs aggregate residual clusters, until the
virtual graph is empty (Figure 3's loop). Ends with the colored
BFS-clustering statistics and a validation pass.

Run: python examples/clustering_explorer.py
"""

from collections import Counter

from repro import compute_clustering, theorem13_reference
from repro.core.theorem13 import color_palette_bound, default_b, num_phases
from repro.graphs import barbell
from repro.util.idspace import permuted_ids


def main() -> None:
    # Two dense camps joined by a long low-degree corridor: the corridor
    # dissolves into singleton clusters in phase 1, the camps aggregate
    # into residual clusters and finish in phase 2.
    graph = barbell(12, 30, ids=permuted_ids(54, seed=5))
    b = default_b(graph.n)
    print(f"network: n={graph.n}, edges={graph.num_edges}, "
          f"Δ={graph.max_degree}")
    print(f"parameters: b=2^⌈√log n⌉={b}, phase budget "
          f"k={num_phases(graph.n)}, palette bound "
          f"{color_palette_bound(graph.n, b)}")

    # Structure at scale via the centralized reference.
    ref = theorem13_reference(graph)
    by_phase = Counter(a.phase for a in ref.assignments.values())
    print("\nnodes finalized per phase:")
    for phase in sorted(by_phase):
        print(f"  phase {phase}: {by_phase[phase]} nodes")

    clusters = ref.clustering.clusters(graph)
    sizes = Counter(len(c.members) for c in clusters)
    print(f"\nfinal decomposition: {len(clusters)} clusters, "
          f"{ref.clustering.num_colors()} colors")
    print("cluster-size histogram:", dict(sorted(sizes.items())))

    # The same pipeline, distributed, with real energy accounting.
    res = compute_clustering(graph)
    assert res.clustering.color == ref.clustering.color
    metrics = res.simulation.metrics
    print(f"\ndistributed run: awake={res.awake_complexity}, "
          f"avg awake={metrics.average_awake:.1f}, "
          f"rounds={res.round_complexity:,}, "
          f"messages={metrics.messages_sent:,}")
    print("clustering validated against Definition 4: ok")


if __name__ == "__main__":
    main()
