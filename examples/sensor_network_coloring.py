#!/usr/bin/env python3
"""Scenario: TDMA slot assignment in a battery-powered sensor field.

A field of sensors (a perturbed grid — typical deployment) must agree on
interference-free transmission slots: adjacent sensors need different
slots, i.e. a (Δ+1)-coloring. Every round a radio is powered on costs
energy, so the *awake complexity* is the battery cost of the agreement
phase — exactly the measure the paper optimizes.

The script compares three ways to run the agreement:

1. the BM21 baseline (awake O(log Δ + log* n));
2. the paper's Theorem 1 pipeline (awake O(sqrt(log n)·log* n));
3. a naive always-awake LOCAL sweep (awake = rounds), as the "no sleeping"
   strawman.

Run: python examples/sensor_network_coloring.py
"""

import random

import networkx as nx

from repro import DeltaPlusOneColoring, StaticGraph, solve, solve_with_baseline
from repro.model.lockstep import greedy_by_id_local


def sensor_field(side: int, extra_links: int, seed: int) -> StaticGraph:
    """A side×side grid with a few long-range links (relay antennas)."""
    rng = random.Random(seed)
    g = nx.grid_2d_graph(side, side)
    nodes = list(g.nodes())
    for _ in range(extra_links):
        u, v = rng.sample(nodes, 2)
        g.add_edge(u, v)
    return StaticGraph.from_networkx(g)


def main() -> None:
    graph = sensor_field(side=6, extra_links=5, seed=7)
    problem = DeltaPlusOneColoring()
    print(f"sensor field: n={graph.n}, links={graph.num_edges}, "
          f"Δ={graph.max_degree}")

    naive = greedy_by_id_local(graph, problem)
    problem.check(graph, naive.outputs)
    baseline = solve_with_baseline(graph, problem)
    paper = solve(graph, problem)

    print("\nslot agreement energy (max radio-on rounds per sensor):")
    rows = [
        ("always-awake greedy sweep", naive.awake_complexity,
         naive.round_complexity),
        ("BM21 baseline", baseline.awake_complexity,
         baseline.round_complexity),
        ("Theorem 1 (this paper)", paper.awake_complexity,
         paper.round_complexity),
    ]
    for name, awake, rounds in rows:
        print(f"  {name:<28} awake={awake:>5}  rounds={rounds:>9,}")

    slots = len(set(paper.outputs.values()))
    print(f"\nassigned {slots} TDMA slots "
          f"(≤ Δ+1 = {graph.max_degree + 1}); schedule is interference-free")
    print("\nreading the numbers: sleeping algorithms trade wall-clock "
          "rounds for battery.")
    print("At this toy scale the baseline's constants win; the paper's "
          "algorithm overtakes it")
    print("asymptotically once Δ ≫ 2^√log n — its awake cost is flat in Δ "
          "(see bench E9).")


if __name__ == "__main__":
    main()
