#!/usr/bin/env python3
"""Quickstart: solve O-LOCAL problems in the Sleeping model.

Builds a small random network, runs the paper's Theorem 1 algorithm for
(Δ+1)-coloring and MIS, and prints the energy accounting (awake rounds)
next to the BM21 baseline.

Run: python examples/quickstart.py
"""

from repro import (
    DeltaPlusOneColoring,
    MaximalIndependentSet,
    gnp,
    solve,
    solve_with_baseline,
)


def main() -> None:
    graph = gnp(32, 0.15, seed=42)
    print(f"network: n={graph.n}, edges={graph.num_edges}, "
          f"max degree Δ={graph.max_degree}")

    for problem in (DeltaPlusOneColoring(), MaximalIndependentSet()):
        print(f"\n=== {problem.name} ===")
        result = solve(graph, problem)  # Theorem 1
        baseline = solve_with_baseline(graph, problem)  # BM21

        if problem.name == "delta_plus_one_coloring":
            palette = sorted(set(result.outputs.values()))
            print(f"colors used: {len(palette)} (palette {palette})")
        else:
            members = sorted(v for v, in_set in result.outputs.items() if in_set)
            print(f"MIS size: {len(members)} -> {members}")

        print(f"Theorem 1 : awake={result.awake_complexity:>4}, "
              f"rounds={result.round_complexity:>9,}, "
              f"avg awake={result.simulation.metrics.average_awake:.1f}")
        print(f"BM21      : awake={baseline.awake_complexity:>4}, "
              f"rounds={baseline.round_complexity:>9,}")
        print(f"clustering: {result.clustering.num_colors()} colors "
              f"(bound {result.palette_bound})")


if __name__ == "__main__":
    main()
