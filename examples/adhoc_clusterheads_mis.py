#!/usr/bin/env python3
"""Scenario: cluster-head election in an ad-hoc mesh.

In wireless ad-hoc deployments a maximal independent set is the standard
cluster-head election: heads are never adjacent (no interference between
coordinators) and every device hears a head (coverage). The complementary
minimal vertex cover is the relay backbone.

The script elects heads with the paper's Theorem 1 pipeline on three mesh
shapes, verifies coverage/independence, and reports the election's energy
(awake) cost against the BM21 baseline.

Run: python examples/adhoc_clusterheads_mis.py
"""

from repro import (
    MaximalIndependentSet,
    MinimalVertexCover,
    solve,
    solve_with_baseline,
)
from repro.graphs import caterpillar, preferential_attachment, random_regular


def main() -> None:
    meshes = [
        ("uniform mesh (4-regular)", random_regular(40, 4, seed=3)),
        ("hub-heavy mesh (power-law)", preferential_attachment(40, 3, seed=5)),
        ("corridor deployment (caterpillar)", caterpillar(10, 3)),
    ]
    mis = MaximalIndependentSet()
    cover = MinimalVertexCover()

    for name, graph in meshes:
        heads_result = solve(graph, mis)
        baseline = solve_with_baseline(graph, mis)
        heads = {v for v, flag in heads_result.outputs.items() if flag}

        # every device is a head or adjacent to one (validated by solve(),
        # re-derived here for the narrative)
        covered = all(
            v in heads or any(u in heads for u in graph.neighbors(v))
            for v in graph.nodes
        )
        relays = solve(graph, cover).outputs
        relay_count = sum(1 for flag in relays.values() if flag)

        print(f"=== {name}: n={graph.n}, Δ={graph.max_degree} ===")
        print(f"  heads elected : {len(heads)} (coverage: {covered})")
        print(f"  relay backbone: {relay_count} devices "
              f"(= n - heads: {graph.n - len(heads)})")
        print(f"  election cost : awake={heads_result.awake_complexity} "
              f"(baseline {baseline.awake_complexity}); "
              f"avg awake={heads_result.simulation.metrics.average_awake:.1f}")
        print()


if __name__ == "__main__":
    main()
