"""Exact integer mathematics used by the algorithms and their bounds.

All functions operate on Python integers and are exact (no floating point),
because round schedules must be computed identically by every node.
"""

from __future__ import annotations

import math

from repro.errors import ReproError


def ceil_div(a: int, b: int) -> int:
    """Ceiling of ``a / b`` for non-negative ``a`` and positive ``b``."""
    if b <= 0:
        raise ReproError(f"ceil_div requires a positive divisor, got {b}")
    return -(-a // b)


def int_log2(n: int) -> int:
    """Floor of log2(n) for n >= 1."""
    if n < 1:
        raise ReproError(f"int_log2 requires n >= 1, got {n}")
    return n.bit_length() - 1


def ceil_log2(n: int) -> int:
    """Ceiling of log2(n) for n >= 1 (``ceil_log2(1) == 0``)."""
    if n < 1:
        raise ReproError(f"ceil_log2 requires n >= 1, got {n}")
    return (n - 1).bit_length()


def next_pow2(n: int) -> int:
    """Smallest power of two >= n, for n >= 1."""
    if n < 1:
        raise ReproError(f"next_pow2 requires n >= 1, got {n}")
    return 1 << ceil_log2(n)


def ceil_sqrt(n: int) -> int:
    """Ceiling of sqrt(n) for n >= 0, computed exactly."""
    if n < 0:
        raise ReproError(f"ceil_sqrt requires n >= 0, got {n}")
    r = math.isqrt(n)
    return r if r * r == n else r + 1


def sqrt_log_ceil(n: int) -> int:
    """``ceil(sqrt(log2 n))`` for n >= 1, the paper's recurring quantity.

    For n == 1 this is 0. Used for the parameter ``b = 2^{sqrt(log n)}``
    and the phase count ``k = 2 sqrt(log n)`` of Theorem 13.
    """
    if n < 1:
        raise ReproError(f"sqrt_log_ceil requires n >= 1, got {n}")
    return ceil_sqrt(ceil_log2(n))


def iterated_log(n: int, base: int = 2) -> int:
    """The iterated logarithm log* of ``n``: the number of times ``log_base``
    must be applied before the value drops to <= 1.

    ``iterated_log(1) == 0``, ``iterated_log(2) == 1``,
    ``iterated_log(4) == 2``, ``iterated_log(16) == 3``,
    ``iterated_log(65536) == 4``.
    """
    if n < 1:
        raise ReproError(f"iterated_log requires n >= 1, got {n}")
    if base < 2:
        raise ReproError(f"iterated_log requires base >= 2, got {base}")
    count = 0
    value = n
    while value > 1:
        value = ceil_log2(value) if base == 2 else _ceil_log(value, base)
        count += 1
    return count


def _ceil_log(n: int, base: int) -> int:
    """Ceiling of log_base(n) for n >= 1, exact."""
    if n <= 1:
        return 0
    power, exponent = 1, 0
    while power < n:
        power *= base
        exponent += 1
    return exponent


def is_prime(n: int) -> bool:
    """Deterministic Miller-Rabin primality test, exact for all 64-bit
    integers (and correct with the extended witness set well beyond)."""
    if n < 2:
        return False
    small_primes = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)
    for p in small_primes:
        if n % p == 0:
            return n == p
    d, s = n - 1, 0
    while d % 2 == 0:
        d //= 2
        s += 1
    for a in small_primes:
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(s - 1):
            x = x * x % n
            if x == n - 1:
                break
        else:
            return False
    return True


def next_prime(n: int) -> int:
    """Smallest prime >= n (``next_prime(1) == 2``)."""
    candidate = max(2, n)
    while not is_prime(candidate):
        candidate += 1
    return candidate


def base_q_digits(value: int, q: int, width: int) -> list[int]:
    """Little-endian base-``q`` digits of ``value``, padded to ``width``.

    Used to interpret a color as the coefficient vector of a polynomial
    over the field F_q in Linial's color reduction.
    """
    if value < 0:
        raise ReproError(f"base_q_digits requires value >= 0, got {value}")
    if q < 2:
        raise ReproError(f"base_q_digits requires q >= 2, got {q}")
    digits = []
    v = value
    for _ in range(width):
        digits.append(v % q)
        v //= q
    if v != 0:
        raise ReproError(
            f"value {value} does not fit in {width} base-{q} digits"
        )
    return digits


def eval_poly_mod(coeffs: list[int], x: int, q: int) -> int:
    """Evaluate the polynomial with little-endian ``coeffs`` at ``x`` mod q."""
    acc = 0
    for c in reversed(coeffs):
        acc = (acc * x + c) % q
    return acc
