"""Plain-text table rendering for benchmark output and EXPERIMENTS.md."""

from __future__ import annotations

from typing import Iterable, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render rows as a GitHub-flavoured markdown table (monospace-friendly).

    Numeric cells are right-aligned; everything is stringified with ``str``.
    """
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "| " + " | ".join(c.rjust(widths[i]) for i, c in enumerate(cells)) + " |"

    out = []
    if title:
        out.append(f"### {title}")
        out.append("")
    out.append(line(list(headers)))
    out.append("|" + "|".join("-" * (w + 2) for w in widths) + "|")
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)
