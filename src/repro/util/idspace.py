"""ID assignment schemes.

The LOCAL model assumes unique node identifiers from a polynomial range
``{1, ..., n^c}``. The paper's round complexity depends on that range
(Theorem 13's remark: IDs from ``[n^s]`` give round complexity
``O(n^{1+s} sqrt(log n))``), so experiments need control over it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import ReproError


@dataclass(frozen=True)
class IdAssignment:
    """A concrete assignment of unique IDs to ``n`` nodes.

    Attributes:
        ids: ``ids[i]`` is the identifier of the i-th node (0-indexed nodes).
        space: exclusive upper bound of the ID space; all IDs lie in
            ``[1, space]``. Algorithms use this as the initial palette bound.
    """

    ids: tuple[int, ...]
    space: int

    def __post_init__(self) -> None:
        if len(set(self.ids)) != len(self.ids):
            raise ReproError("IDs must be unique")
        if self.ids and (min(self.ids) < 1 or max(self.ids) > self.space):
            raise ReproError(
                f"IDs must lie in [1, {self.space}], got range "
                f"[{min(self.ids)}, {max(self.ids)}]"
            )

    @property
    def n(self) -> int:
        return len(self.ids)


def identity_ids(n: int) -> IdAssignment:
    """IDs ``1..n`` in node order — the tight ID space of the remark in §5."""
    return IdAssignment(tuple(range(1, n + 1)), space=max(n, 1))


def permuted_ids(n: int, seed: int = 0) -> IdAssignment:
    """A random permutation of ``1..n``."""
    rng = random.Random(seed)
    ids = list(range(1, n + 1))
    rng.shuffle(ids)
    return IdAssignment(tuple(ids), space=max(n, 1))


def polynomial_ids(n: int, exponent: int = 2, seed: int = 0) -> IdAssignment:
    """Unique IDs sampled from ``[1, n^exponent]`` (the general LOCAL-model
    assumption; ``exponent`` is the paper's ``c``)."""
    if exponent < 1:
        raise ReproError(f"exponent must be >= 1, got {exponent}")
    space = max(n, 1) ** exponent
    rng = random.Random(seed)
    ids = rng.sample(range(1, space + 1), n)
    return IdAssignment(tuple(ids), space=space)


def adversarial_path_ids(n: int) -> IdAssignment:
    """Decreasing IDs along node order. On a path graph this makes naive
    'wait for smaller neighbor' schemes take Θ(n) — useful stress input."""
    return IdAssignment(tuple(range(n, 0, -1)), space=max(n, 1))
