"""Utility helpers: integer math, ID spaces, formatting, RNG plumbing."""

from repro.util.mathx import (
    ceil_div,
    ceil_log2,
    ceil_sqrt,
    int_log2,
    is_prime,
    iterated_log,
    next_pow2,
    next_prime,
    sqrt_log_ceil,
)

__all__ = [
    "ceil_div",
    "ceil_log2",
    "ceil_sqrt",
    "int_log2",
    "is_prime",
    "iterated_log",
    "next_pow2",
    "next_prime",
    "sqrt_log_ceil",
]
