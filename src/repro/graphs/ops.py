"""Graph operations used by the clustering construction."""

from __future__ import annotations

from repro.graphs.graph import StaticGraph
from repro.types import NodeId


def graph_square(graph: StaticGraph) -> StaticGraph:
    """The square G²: same nodes, edges between nodes at distance <= 2.

    Lemma 15's first step computes a proper coloring of G², i.e. a
    distance-2 coloring of G.
    """
    adj: dict[NodeId, set[NodeId]] = {v: set() for v in graph.nodes}
    for v in graph.nodes:
        direct = graph.neighbors(v)
        adj[v].update(direct)
        for u in direct:
            adj[v].update(w for w in graph.neighbors(u) if w != v)
    frozen = {v: tuple(sorted(nbrs)) for v, nbrs in adj.items()}
    return StaticGraph(frozen, id_space=graph.id_space)


def induced_subgraph(graph: StaticGraph, nodes: set[NodeId]) -> StaticGraph:
    """The subgraph of G induced by ``nodes`` (IDs preserved)."""
    missing = nodes - set(graph.adjacency)
    if missing:
        raise KeyError(f"nodes not in graph: {sorted(missing)[:5]}")
    adj = {
        v: tuple(u for u in graph.neighbors(v) if u in nodes)
        for v in sorted(nodes)
    }
    return StaticGraph(adj, id_space=graph.id_space)
