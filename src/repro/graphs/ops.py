"""Graph operations used by the clustering construction."""

from __future__ import annotations

from repro.graphs.graph import StaticGraph
from repro.types import NodeId


def graph_square(graph: StaticGraph) -> StaticGraph:
    """The square G²: same nodes, edges between nodes at distance <= 2.

    Lemma 15's first step computes a proper coloring of G², i.e. a
    distance-2 coloring of G. Built from the CSR index in one pass per
    node; the result is symmetric by construction, so it skips
    re-validation.
    """
    index = graph._index
    nodes, offsets, flat = index.nodes, index.offsets, index.flat_slots
    mark = bytearray(len(nodes))
    adj: dict[NodeId, tuple[NodeId, ...]] = {}
    for s, v in enumerate(nodes):
        mark[s] = 1
        ball: list[int] = []
        for j in range(offsets[s], offsets[s + 1]):
            t = flat[j]
            if not mark[t]:
                mark[t] = 1
                ball.append(t)
        for t in tuple(ball):
            for j in range(offsets[t], offsets[t + 1]):
                w = flat[j]
                if not mark[w]:
                    mark[w] = 1
                    ball.append(w)
        ball.sort()
        adj[v] = tuple(nodes[t] for t in ball)
        mark[s] = 0
        for t in ball:
            mark[t] = 0
    return StaticGraph._trusted(adj, graph.id_space)


def induced_subgraph(graph: StaticGraph, nodes: set[NodeId]) -> StaticGraph:
    """The subgraph of G induced by ``nodes`` (IDs preserved)."""
    missing = nodes - graph.node_set
    if missing:
        raise KeyError(f"nodes not in graph: {sorted(missing)[:5]}")
    adj = {
        v: tuple(u for u in graph.neighbors(v) if u in nodes)
        for v in sorted(nodes)
    }
    return StaticGraph._trusted(adj, graph.id_space)
