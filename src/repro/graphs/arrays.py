"""A numpy mirror of the CSR graph index, for the vectorized engine.

:class:`GraphArrays` re-exports the Python-list CSR layout of
:class:`~repro.graphs.graph._GraphIndex` as int64 numpy arrays, plus the
derived views the bulk-synchronous kernels need (per-edge source slots,
the "up" CSR restricted to larger-ID neighbors). It is built lazily and
cached on the owning :class:`~repro.graphs.graph.StaticGraph`, exactly
like the index itself, so graphs that never meet the vectorized engine
never pay for it — and :mod:`repro.graphs.graph` never imports numpy.

The module degrades gracefully: importing it without numpy installed
works; *using* it raises :class:`~repro.errors.SimulationError` with an
actionable message (numpy is a core dependency of the vectorized engine
only — every other engine remains pure Python).

Slot order is ID order: ``_GraphIndex.nodes`` is sorted ascending, so
``slot_u < slot_v  ⇔  id_u < id_v`` and the kernels compare slots where
the sequential code compares IDs.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import TYPE_CHECKING, Any

from repro.errors import SimulationError

try:  # gated: numpy is required by the vectorized engine only
    import numpy as np
except ImportError:  # pragma: no cover - exercised only without numpy
    np = None  # type: ignore[assignment]

if TYPE_CHECKING:
    from repro.graphs.graph import _GraphIndex

#: True when numpy is importable (the vectorized engine's availability).
HAS_NUMPY = np is not None


def require_numpy() -> Any:
    """Return the numpy module or fail loudly with install guidance."""
    if np is None:  # pragma: no cover - exercised only without numpy
        raise SimulationError(
            "the vectorized engine requires numpy; install it "
            "(pip install numpy) or pick the 'simulator' engine"
        )
    return np


@dataclass(frozen=True)
class GraphArrays:
    """int64 CSR arrays of a graph, slot-addressed (slot ``i`` ↔ ``ids[i]``).

    Attributes:
        ids: node IDs, ascending (shape ``(n,)``).
        offsets: CSR row pointers (shape ``(n + 1,)``);
            ``flat[offsets[i]:offsets[i + 1]]`` are slot i's neighbors.
        flat: neighbor *slots*, concatenated in per-node sorted order
            (shape ``(2E,)``).
        degrees: per-slot degree (shape ``(n,)``).
    """

    ids: Any
    offsets: Any
    flat: Any
    degrees: Any

    @classmethod
    def from_index(cls, index: "_GraphIndex") -> "GraphArrays":
        """Mirror a built :class:`_GraphIndex` into numpy arrays."""
        require_numpy()
        return cls(
            ids=np.asarray(index.nodes, dtype=np.int64),
            offsets=np.asarray(index.offsets, dtype=np.int64),
            flat=np.asarray(index.flat_slots, dtype=np.int64),
            degrees=np.asarray(index.degrees, dtype=np.int64),
        )

    @property
    def n(self) -> int:
        """Number of nodes."""
        return len(self.ids)

    @cached_property
    def edge_sources(self) -> Any:
        """Source slot of every ``flat`` entry (shape ``(2E,)``)."""
        return np.repeat(np.arange(self.n, dtype=np.int64), self.degrees)

    @cached_property
    def up(self) -> tuple[Any, Any]:
        """The "up" CSR: directed edges slot → larger slot (= larger ID).

        Returns ``(up_offsets, up_flat)`` delimiting, per slot, its
        neighbors of strictly larger ID — the orientation every
        increasing-priority kernel walks.
        """
        mask = self.flat > self.edge_sources
        up_counts = segment_sum(mask.astype(np.int64), self.offsets)
        up_offsets = np.empty(self.n + 1, dtype=np.int64)
        up_offsets[0] = 0
        np.cumsum(up_counts, out=up_offsets[1:])
        return up_offsets, self.flat[mask]


# -- segment helpers ---------------------------------------------------------
#
# All reductions use the cumsum-difference trick rather than
# ``np.ufunc.reduceat``: reduceat returns ``x[start]`` (not the identity)
# for zero-length segments, which would silently corrupt isolated- or
# zero-degree-node rows.


def segment_sum(values: Any, offsets: Any) -> Any:
    """Per-segment sums of ``values`` delimited by CSR ``offsets``."""
    cum = np.empty(len(values) + 1, dtype=np.int64)
    cum[0] = 0
    np.cumsum(values, out=cum[1:])
    return cum[offsets[1:]] - cum[offsets[:-1]]


def segment_any(flags: Any, counts: Any) -> Any:
    """Per-segment OR of boolean ``flags`` grouped by ``counts``.

    Segments are consecutive; ``counts[i]`` is segment i's length (zero
    allowed, reducing to False).
    """
    cum = np.empty(len(flags) + 1, dtype=np.int64)
    cum[0] = 0
    np.cumsum(flags, out=cum[1:])
    ends = np.cumsum(counts)
    return (cum[ends] - cum[ends - counts]) > 0


def sorted_unique(values: Any) -> Any:
    """Sorted distinct values of a 1-D integer array.

    Semantically ``np.unique(values)``, implemented as sort + boundary
    scan. numpy's hash-based ``unique`` is dramatically slower than a
    plain sort on the large int64 arrays the clustered kernels produce
    (edge keys, absolute wake rounds: ~60× at 5·10⁶ elements measured
    here), and the sort path's O(m log m) is deterministic besides.
    """
    if values.size == 0:
        return values[:0]
    ordered = np.sort(values)
    keep = np.empty(ordered.size, dtype=bool)
    keep[0] = True
    np.not_equal(ordered[1:], ordered[:-1], out=keep[1:])
    return ordered[keep]


def ragged_gather(offsets: Any, flat: Any, slots: Any) -> tuple[Any, Any]:
    """Concatenate ``flat[offsets[s]:offsets[s + 1]]`` for each ``s``.

    The vectorized analogue of ``[x for s in slots for x in nbrs(s)]``:
    returns ``(values, counts)`` where ``counts[i]`` is slot
    ``slots[i]``'s segment length, so downstream segment reductions can
    regroup. Runs in O(total output) — no per-slot Python loop.
    """
    counts = offsets[slots + 1] - offsets[slots]
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=flat.dtype), counts
    starts = offsets[slots]
    shifted = np.cumsum(counts) - counts  # output start of each segment
    idx = np.repeat(starts - shifted, counts) + np.arange(total, dtype=np.int64)
    return flat[idx], counts
