"""Concrete instances mirroring the paper's illustrative figures.

The paper's figures are schematic drawings; these builders produce concrete
graphs with the same structure so that the algorithms' behaviour can be
regenerated and checked mechanically (experiments E2 and E4).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graphs.graph import StaticGraph
from repro.types import ClusterLabel, NodeId


@dataclass(frozen=True)
class TwoLevelInstance:
    """Input of Lemma 14 in the style of Figure 2.

    Attributes:
        graph: the base graph G (black in the figure).
        level1_label: ℓ — cluster label per node of G (orange circles).
        level1_dist: δ — BFS distance to the cluster root (labels in nodes).
        level2_label: ℓ' — super-cluster label per *cluster* (blue circles).
        level2_dist: δ' — BFS distance of each cluster within its
            super-cluster (labels in the orange squares).
    """

    graph: StaticGraph
    level1_label: dict[NodeId, ClusterLabel]
    level1_dist: dict[NodeId, int]
    level2_label: dict[ClusterLabel, ClusterLabel]
    level2_dist: dict[ClusterLabel, int]


def figure2_instance() -> TwoLevelInstance:
    """A 13-node graph with a 5-cluster BFS-clustering whose virtual graph
    carries a second 2-super-cluster BFS-clustering — the shape of Figure 2.
    """
    edges = [
        # cluster A = {1, 2, 3}, root 1
        (1, 2), (1, 3),
        # cluster B = {4, 5}, root 4
        (4, 5),
        # cluster C = {6, 7, 8}, root 6 (a depth-2 chain)
        (6, 7), (7, 8),
        # cluster D = {9, 10}, root 9
        (9, 10),
        # cluster E = {11, 12, 13}, root 11
        (11, 12), (11, 13),
        # inter-cluster edges: A-B, B-C, C-D, D-E, A-C
        (2, 4), (5, 6), (8, 9), (10, 11), (3, 7),
    ]
    graph = StaticGraph.from_edges(edges)
    level1_label = {
        1: 1, 2: 1, 3: 1,
        4: 2, 5: 2,
        6: 3, 7: 3, 8: 3,
        9: 4, 10: 4,
        11: 5, 12: 5, 13: 5,
    }
    level1_dist = {
        1: 0, 2: 1, 3: 1,
        4: 0, 5: 1,
        6: 0, 7: 1, 8: 2,
        9: 0, 10: 1,
        11: 0, 12: 1, 13: 1,
    }
    # H has vertices {1..5} and edges {1-2, 2-3, 3-4, 4-5, 1-3}.
    # Super-cluster X = {1, 2, 3} rooted at cluster 2; Y = {4, 5} rooted at 4.
    level2_label = {1: 101, 2: 101, 3: 101, 4: 102, 5: 102}
    level2_dist = {1: 1, 2: 0, 3: 1, 4: 0, 5: 1}
    return TwoLevelInstance(
        graph, level1_label, level1_dist, level2_label, level2_dist
    )


@dataclass(frozen=True)
class Lemma15Instance:
    """Input of Lemma 15 in the style of Figure 4: a graph, the parameter b,
    the distance-2 palette bound k, and the shifted coloring c1 (low-degree
    nodes carry colors in (k, 2k])."""

    graph: StaticGraph
    b: int
    k: int
    c1: dict[NodeId, int]


def figure4_instance() -> Lemma15Instance:
    """A 20-node mixed-degree graph with b = 3 and k = 100.

    High-degree nodes (degree > 3) keep their distance-2 colors in [1, 100];
    low-degree nodes have 100 added, exactly as in Figure 4(a).
    """
    edges = [
        # hub 1 (degree 6) and hub 2 (degree 5) — the ">b" nodes
        (1, 3), (1, 4), (1, 5), (1, 6), (1, 7), (1, 2),
        (2, 8), (2, 9), (2, 10), (2, 11),
        # a low-degree fringe hanging off the hubs
        (3, 12), (4, 13), (5, 14), (14, 15),
        (8, 16), (9, 17), (17, 18),
        # a long low-degree tail wired so node 20 is a 2-ball color
        # minimum (its ID undercuts everything within distance 2, and all
        # high-degree nodes are >= 3 hops away): the tree rooted at 20 has
        # a degree-<=b root and dissolves into singletons — the grey nodes
        # of Figure 4(b)
        (11, 23), (23, 24), (24, 20), (20, 21), (21, 22),
        (11, 19), (19, 25),
        # cross links keeping it interesting but degrees <= 3 on the fringe
        (6, 12), (10, 16),
    ]
    graph = StaticGraph.from_edges(edges)
    k = 100
    b = 3
    c1 = _greedy_distance2_coloring(graph)
    if max(c1.values()) > k:
        raise AssertionError("figure4 instance needs <= 100 distance-2 colors")
    shifted = {
        v: (c1[v] + k if graph.degree(v) <= b else c1[v]) for v in graph.nodes
    }
    return Lemma15Instance(graph, b=b, k=k, c1=shifted)


def _greedy_distance2_coloring(graph: StaticGraph) -> dict[NodeId, int]:
    """Centralized greedy distance-2 coloring (for building instances only)."""
    colors: dict[NodeId, int] = {}
    for v in graph.nodes:
        conflicts = set(graph.neighbors(v)) | set(graph.distance_2_neighbors(v))
        used = {colors[u] for u in conflicts if u in colors}
        color = 1
        while color in used:
            color += 1
        colors[v] = color
    return colors


def distance2_counterexample_path(n: int = 6) -> StaticGraph:
    """The n-node path witnessing that distance-2 coloring is *not* in
    O-LOCAL (§2.2). Node IDs are 1..n in path order; the adversarial acyclic
    orientation directs every two incident edges oppositely."""
    if n < 6:
        raise ValueError("the paper's counterexample needs n >= 6")
    return StaticGraph.from_edges((i, i + 1) for i in range(1, n))
