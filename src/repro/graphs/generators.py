"""Graph family generators used by tests, examples and benchmarks.

All generators return connected :class:`StaticGraph` instances and accept an
optional :class:`IdAssignment`; by default nodes get identity IDs ``1..n``.
Randomized families take an explicit ``seed`` so every experiment is
reproducible bit-for-bit.
"""

from __future__ import annotations

import random

import networkx as nx

from repro.errors import GraphError
from repro.graphs.graph import StaticGraph
from repro.util.idspace import IdAssignment


def path(n: int, ids: IdAssignment | None = None) -> StaticGraph:
    """The n-node path P_n."""
    _require(n >= 1, f"path needs n >= 1, got {n}")
    return StaticGraph.from_networkx(nx.path_graph(n), ids)


def cycle(n: int, ids: IdAssignment | None = None) -> StaticGraph:
    """The n-node cycle C_n (n >= 3)."""
    _require(n >= 3, f"cycle needs n >= 3, got {n}")
    return StaticGraph.from_networkx(nx.cycle_graph(n), ids)


def complete_graph(n: int, ids: IdAssignment | None = None) -> StaticGraph:
    """K_n — the maximum-degree extreme (Δ = n-1)."""
    _require(n >= 1, f"complete_graph needs n >= 1, got {n}")
    return StaticGraph.from_networkx(nx.complete_graph(n), ids)


def star(n: int, ids: IdAssignment | None = None) -> StaticGraph:
    """Star with one hub and n-1 leaves."""
    _require(n >= 2, f"star needs n >= 2, got {n}")
    return StaticGraph.from_networkx(nx.star_graph(n - 1), ids)


def grid(rows: int, cols: int, ids: IdAssignment | None = None) -> StaticGraph:
    """rows × cols grid — a bounded-degree planar family."""
    _require(rows >= 1 and cols >= 1, "grid needs positive dimensions")
    return StaticGraph.from_networkx(nx.grid_2d_graph(rows, cols), ids)


def hypercube(dim: int, ids: IdAssignment | None = None) -> StaticGraph:
    """The dim-dimensional hypercube (n = 2^dim, Δ = dim = log n)."""
    _require(dim >= 1, f"hypercube needs dim >= 1, got {dim}")
    return StaticGraph.from_networkx(nx.hypercube_graph(dim), ids)


def random_tree(n: int, seed: int = 0, ids: IdAssignment | None = None) -> StaticGraph:
    """Uniform random labeled tree on n nodes (via a random Prüfer sequence)."""
    _require(n >= 1, f"random_tree needs n >= 1, got {n}")
    if n <= 2:
        return path(n, ids)
    rng = random.Random(seed)
    prufer = [rng.randrange(n) for _ in range(n - 2)]
    tree = nx.from_prufer_sequence(prufer)
    return StaticGraph.from_networkx(tree, ids)


def caterpillar(
    spine: int, legs_per_node: int, ids: IdAssignment | None = None
) -> StaticGraph:
    """A caterpillar: a spine path with ``legs_per_node`` pendant leaves per
    spine node. Tunable degree with tiny treewidth."""
    _require(spine >= 1 and legs_per_node >= 0, "invalid caterpillar shape")
    g = nx.path_graph(spine)
    next_node = spine
    for s in range(spine):
        for _ in range(legs_per_node):
            g.add_edge(s, next_node)
            next_node += 1
    return StaticGraph.from_networkx(g, ids)


def barbell(clique: int, bridge: int, ids: IdAssignment | None = None) -> StaticGraph:
    """Two cliques of size ``clique`` joined by a path of ``bridge`` nodes —
    mixes Δ = clique-1 hubs with a long low-degree corridor."""
    _require(clique >= 3, f"barbell needs clique >= 3, got {clique}")
    return StaticGraph.from_networkx(nx.barbell_graph(clique, bridge), ids)


def gnp(
    n: int,
    p: float,
    seed: int = 0,
    ids: IdAssignment | None = None,
    method: str = "binomial",
) -> StaticGraph:
    """Erdős–Rényi G(n, p), patched to be connected by linking components
    along a deterministic spanning chain.

    ``method`` selects the sampler: ``"binomial"`` (the default) walks
    all n² pairs via :func:`nx.gnp_random_graph`; ``"fast"`` uses
    :func:`nx.fast_gnp_random_graph`, which runs in O(n + m) expected
    time and is the only practical choice at n ≈ 10^5–10^6. The two
    samplers draw different graphs for the same seed — ``method="fast"``
    deliberately breaks seed compatibility with the default in exchange
    for scale.
    """
    _require(n >= 1 and 0.0 <= p <= 1.0, "invalid gnp parameters")
    _require(
        method in ("binomial", "fast"),
        f"gnp method must be 'binomial' or 'fast', got {method!r}",
    )
    if method == "fast":
        g = nx.fast_gnp_random_graph(n, p, seed=seed)
    else:
        g = nx.gnp_random_graph(n, p, seed=seed)
    _connect(g, seed)
    return StaticGraph.from_networkx(g, ids)


def random_regular(
    n: int, degree: int, seed: int = 0, ids: IdAssignment | None = None
) -> StaticGraph:
    """Random d-regular graph (n·d even, d < n), connected-patched."""
    _require(degree < n and (n * degree) % 2 == 0, "invalid regular parameters")
    g = nx.random_regular_graph(degree, n, seed=seed)
    _connect(g, seed)
    return StaticGraph.from_networkx(g, ids)


def preferential_attachment(
    n: int, m: int, seed: int = 0, ids: IdAssignment | None = None
) -> StaticGraph:
    """Barabási–Albert graph: power-law degrees, Δ grows polynomially in n —
    the regime where the paper beats the BM21 baseline."""
    _require(1 <= m < n, f"need 1 <= m < n, got m={m}, n={n}")
    g = nx.barabasi_albert_graph(n, m, seed=seed)
    _connect(g, seed)
    return StaticGraph.from_networkx(g, ids)


def clustered_graph(
    num_clusters: int,
    cluster_size: int,
    inter_edges: int = 1,
    seed: int = 0,
    ids: IdAssignment | None = None,
) -> StaticGraph:
    """Dense blobs sparsely interconnected — a natural fit for BFS-clustering
    experiments (the decomposition should roughly recover the blobs)."""
    _require(num_clusters >= 1 and cluster_size >= 1, "invalid cluster shape")
    rng = random.Random(seed)
    g = nx.Graph()
    blocks: list[list[int]] = []
    node = 0
    for _ in range(num_clusters):
        members = list(range(node, node + cluster_size))
        node += cluster_size
        blocks.append(members)
        for i, u in enumerate(members):
            for v in members[i + 1 :]:
                if rng.random() < 0.7:
                    g.add_edge(u, v)
        g.add_nodes_from(members)
        _connect_within(g, members, rng)
    for i in range(1, num_clusters):
        for _ in range(inter_edges):
            u = rng.choice(blocks[i - 1])
            v = rng.choice(blocks[i])
            g.add_edge(u, v)
    return StaticGraph.from_networkx(g, ids)


def _connect(g: nx.Graph, seed: int) -> None:
    """Join connected components with single edges, deterministically."""
    components = [sorted(c) for c in nx.connected_components(g)]
    components.sort(key=lambda c: c[0])
    for prev, cur in zip(components, components[1:]):
        g.add_edge(prev[0], cur[0])


def _connect_within(g: nx.Graph, members: list[int], rng: random.Random) -> None:
    sub = g.subgraph(members)
    components = [sorted(c) for c in nx.connected_components(sub)]
    components.sort(key=lambda c: c[0])
    for prev, cur in zip(components, components[1:]):
        g.add_edge(prev[0], cur[0])


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise GraphError(message)
