"""The graph-family registry: named, seeded builders + ID schemes.

This module is the single source of truth for what a *family name*
means — ``repro solve --family``, ``repro sweep --grid --families``,
:class:`repro.api.Scenario` and the sweep runner's grid specs all
resolve through :data:`GRAPH_FAMILIES` (it previously lived inside the
CLI, which forced the runner to import :mod:`repro.cli` — a layering
inversion fixed by this module).

Every builder has the uniform signature ``build(n, *, seed, ids,
**params)`` where ``ids`` is a resolved
:class:`~repro.util.idspace.IdAssignment` (or ``None`` for the identity
scheme) and ``params`` are the family's declared parameters (see each
entry's ``params`` schema — e.g. ``p`` for ``gnp``, ``degree`` for
``regular``). New families register with the same decorator::

    from repro.graphs.families import GRAPH_FAMILIES

    @GRAPH_FAMILIES.register("lollipop", title="Clique + tail")
    def build_lollipop(n, *, seed, ids):
        ...

ID schemes (the LOCAL model's polynomial ID-space assumption, §5
Remark) are strings: ``identity`` (IDs 1..n), ``permuted`` (a seeded
permutation of 1..n), or ``polyK`` (unique IDs from ``[1, n^K]``;
``poly`` alone means ``poly2``).
"""

from __future__ import annotations

from typing import Callable

from repro.graphs.generators import (
    complete_graph,
    cycle,
    gnp,
    grid,
    hypercube,
    path,
    preferential_attachment,
    random_regular,
    random_tree,
    star,
)
from repro.graphs.graph import StaticGraph
from repro.registry import Registry, RegistryError, UnknownNameError
from repro.util.idspace import IdAssignment, permuted_ids, polynomial_ids
from repro.util.mathx import ceil_sqrt

#: Builder signature: ``build(n, *, seed, ids, **params)``.
FamilyBuilder = Callable[..., StaticGraph]

#: The family registry — the one place family names are defined.
GRAPH_FAMILIES: Registry[FamilyBuilder] = Registry("family")

#: Valid ID-scheme spellings (``polyK`` for any integer K >= 1).
ID_SCHEMES = ("identity", "permuted", "polyK")


def validate_id_scheme(scheme: str) -> None:
    """Check an ID-scheme string syntactically (no assignment is built —
    cheap enough for scenario validation at any n); raises
    :class:`UnknownNameError` listing the valid spellings."""
    if scheme in ("identity", "permuted"):
        return
    if scheme.startswith("poly") and (scheme[4:] == "" or scheme[4:].isdigit()):
        return
    raise UnknownNameError(
        f"unknown id scheme {scheme!r}; choose from {list(ID_SCHEMES)}"
    )


def resolve_id_assignment(
    scheme: str, n: int, seed: int = 0
) -> IdAssignment | None:
    """Turn an ID-scheme string into a concrete assignment.

    ``None`` means "builder default" (identity IDs 1..n). Unknown
    schemes raise :class:`UnknownNameError` listing the valid ones.
    """
    validate_id_scheme(scheme)
    if scheme == "identity":
        return None
    if scheme == "permuted":
        return permuted_ids(n, seed=seed)
    return polynomial_ids(n, exponent=int(scheme[4:] or 2), seed=seed)


def build_family_graph(
    family: str,
    n: int,
    seed: int = 0,
    p: float = 0.15,
    degree: int = 4,
    ids: str = "identity",
    **params: object,
) -> StaticGraph:
    """Instantiate a registered graph family with an ID scheme.

    ``p`` and ``degree`` keep their historical role as convenience
    defaults: they are forwarded only to families whose schema declares
    them. Extra ``params`` must be declared by the family's schema
    (unknown ones raise :class:`RegistryError` naming the schema), so a
    typo fails loudly at build time.
    """
    entry = GRAPH_FAMILIES.entry(family)
    id_assignment = resolve_id_assignment(ids, n, seed)
    kwargs = dict(params)
    if "p" in entry.params:
        kwargs.setdefault("p", p)
    if "degree" in entry.params:
        kwargs.setdefault("degree", degree)
    unknown = sorted(set(kwargs) - set(entry.params))
    if unknown:
        raise RegistryError(
            f"family {entry.name!r} does not take parameter(s) {unknown}; "
            f"declared: {sorted(entry.params) or 'none'}"
        )
    return entry.value(n, seed=seed, ids=id_assignment, **kwargs)


# ---------------------------------------------------------------------------
# Built-in families (semantics identical to the pre-registry CLI table).
# ---------------------------------------------------------------------------


@GRAPH_FAMILIES.register("path", title="Path P_n")
def _build_path(n: int, seed: int, ids: IdAssignment | None) -> StaticGraph:
    """Path on n nodes."""
    return path(n, ids)


@GRAPH_FAMILIES.register("cycle", title="Cycle C_n")
def _build_cycle(n: int, seed: int, ids: IdAssignment | None) -> StaticGraph:
    """Cycle on n nodes."""
    return cycle(n, ids)


@GRAPH_FAMILIES.register("star", title="Star K_{1,n-1}")
def _build_star(n: int, seed: int, ids: IdAssignment | None) -> StaticGraph:
    """Star with one hub and n-1 leaves."""
    return star(n, ids)


@GRAPH_FAMILIES.register("complete", title="Complete graph K_n")
def _build_complete(
    n: int, seed: int, ids: IdAssignment | None
) -> StaticGraph:
    """Complete graph on n nodes."""
    return complete_graph(n, ids)


@GRAPH_FAMILIES.register(
    "grid", title="⌈√n⌉ × ⌈√n⌉ grid (identity IDs; n rounds up to a square)"
)
def _build_grid(n: int, seed: int, ids: IdAssignment | None) -> StaticGraph:
    """Two-dimensional grid with side ⌈√n⌉ (ID scheme not applied)."""
    return grid(ceil_sqrt(n), ceil_sqrt(n), None)


@GRAPH_FAMILIES.register(
    "hypercube", title="Hypercube Q_d, d = ⌊log₂ n⌋ (identity IDs)"
)
def _build_hypercube(
    n: int, seed: int, ids: IdAssignment | None
) -> StaticGraph:
    """Hypercube of dimension max(1, n.bit_length() - 1)."""
    return hypercube(max(1, n.bit_length() - 1), None)


@GRAPH_FAMILIES.register("tree", title="Uniform random tree")
def _build_tree(n: int, seed: int, ids: IdAssignment | None) -> StaticGraph:
    """Seeded uniform random tree."""
    return random_tree(n, seed=seed, ids=ids)


@GRAPH_FAMILIES.register(
    "gnp",
    title="Erdős–Rényi G(n, p), connectivity-patched",
    params={
        "p": "edge probability (default 0.15)",
        "method": (
            "sampler: 'binomial' (default, walks all n² pairs) or 'fast' "
            "(O(n + m) geometric skipping for mega-scale n; draws a "
            "different graph for the same seed than 'binomial')"
        ),
    },
)
def _build_gnp(
    n: int,
    seed: int,
    ids: IdAssignment | None,
    p: float = 0.15,
    method: str = "binomial",
) -> StaticGraph:
    """Seeded G(n, p) random graph."""
    return gnp(n, p, seed=seed, ids=ids, method=method)


@GRAPH_FAMILIES.register(
    "regular",
    title="Random d-regular graph (n bumped to make n·d even; identity IDs)",
    params={"degree": "regular degree d (default 4)"},
)
def _build_regular(
    n: int, seed: int, ids: IdAssignment | None, degree: int = 4
) -> StaticGraph:
    """Seeded random regular graph."""
    return random_regular(
        n if (n * degree) % 2 == 0 else n + 1, degree, seed=seed, ids=None
    )


@GRAPH_FAMILIES.register(
    "powerlaw", title="Preferential attachment, m = max(2, n/16)"
)
def _build_powerlaw(
    n: int, seed: int, ids: IdAssignment | None
) -> StaticGraph:
    """Seeded preferential-attachment (power-law degree) graph."""
    return preferential_attachment(n, max(2, n // 16), seed=seed, ids=ids)
