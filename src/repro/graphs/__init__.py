"""Graph substrate: immutable adjacency structure, generators, paper figures."""

from repro.graphs.graph import StaticGraph
from repro.graphs.generators import (
    barbell,
    caterpillar,
    clustered_graph,
    complete_graph,
    cycle,
    gnp,
    grid,
    hypercube,
    path,
    preferential_attachment,
    random_regular,
    random_tree,
    star,
)
from repro.graphs.ops import graph_square, induced_subgraph
from repro.graphs.families import (
    GRAPH_FAMILIES,
    build_family_graph,
    resolve_id_assignment,
    validate_id_scheme,
)

__all__ = [
    "GRAPH_FAMILIES",
    "StaticGraph",
    "build_family_graph",
    "resolve_id_assignment",
    "validate_id_scheme",
    "barbell",
    "caterpillar",
    "clustered_graph",
    "complete_graph",
    "cycle",
    "gnp",
    "graph_square",
    "grid",
    "hypercube",
    "induced_subgraph",
    "path",
    "preferential_attachment",
    "random_regular",
    "random_tree",
    "star",
]
