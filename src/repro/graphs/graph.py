"""An immutable, ID-addressed graph used by the simulator and algorithms.

Nodes are addressed *by their LOCAL-model identifier*, not by position:
every algorithm in the paper manipulates IDs, so making the ID the node
key removes an entire class of off-by-one translation bugs.

Hot-path queries (``nodes``, ``degree``, ``max_degree``, ``num_edges``,
BFS, components, ``distance_2_neighbors``) are served by a CSR-style
index — a contiguous neighbor-slot array plus per-node offsets and dense
id↔slot maps — built lazily, exactly once, and cached on the frozen
instance. The index layout is documented in PERFORMANCE.md.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

import networkx as nx

from repro.errors import GraphError
from repro.types import NodeId
from repro.util.idspace import IdAssignment, identity_ids


class _GraphIndex:
    """The CSR-style fast-path index of a :class:`StaticGraph`.

    Attributes:
        nodes: all node IDs, ascending (slot ``i`` holds ``nodes[i]``).
        node_set: the same IDs as a frozenset (O(1) membership).
        slot_of: dense ID → slot map.
        offsets: ``offsets[i]:offsets[i+1]`` delimits slot i's neighbors
            inside ``flat_slots`` (CSR row pointers).
        flat_slots: contiguous neighbor *slots*, in the adjacency's stored
            neighbor order (preserves iteration order bit-for-bit).
        degrees: per-slot degree.
        max_degree / num_edges: aggregated once at build time.
    """

    __slots__ = (
        "nodes",
        "node_set",
        "slot_of",
        "offsets",
        "flat_slots",
        "degrees",
        "max_degree",
        "num_edges",
    )

    def __init__(self, adjacency: Mapping[NodeId, tuple[NodeId, ...]]) -> None:
        nodes = tuple(sorted(adjacency))
        slot_of = {v: i for i, v in enumerate(nodes)}
        offsets = [0] * (len(nodes) + 1)
        flat_slots: list[int] = []
        degrees = [0] * len(nodes)
        append = flat_slots.append
        total = 0
        for i, v in enumerate(nodes):
            nbrs = adjacency[v]
            degrees[i] = len(nbrs)
            total += len(nbrs)
            offsets[i + 1] = total
            for u in nbrs:
                append(slot_of[u])
        self.nodes = nodes
        self.node_set = frozenset(nodes)
        self.slot_of = slot_of
        self.offsets = offsets
        self.flat_slots = flat_slots
        self.degrees = degrees
        self.max_degree = max(degrees, default=0)
        self.num_edges = total // 2


def _validate_adjacency(
    adjacency: Mapping[NodeId, tuple[NodeId, ...]], id_space: int
) -> None:
    """One-shot O(V + E) validation of a hand-built adjacency."""
    directed: set[tuple[NodeId, NodeId]] = set()
    for v, nbrs in adjacency.items():
        for u in nbrs:
            if u == v:
                raise GraphError(f"self-loop at node {v}")
            if u not in adjacency:
                raise GraphError(f"edge ({v}, {u}) dangles: {u} missing")
            directed.add((v, u))
    for v, u in directed:
        if (u, v) not in directed:
            raise GraphError(f"edge ({v}, {u}) is not symmetric")
    if adjacency:
        lo, hi = min(adjacency), max(adjacency)
        if lo < 1 or hi > id_space:
            raise GraphError(
                f"node IDs must lie in [1, {id_space}], "
                f"got range [{lo}, {hi}]"
            )


@dataclass(frozen=True)
class StaticGraph:
    """A simple undirected graph with unique integer node IDs.

    Attributes:
        adjacency: mapping from node ID to a sorted tuple of neighbor IDs.
        id_space: upper bound of the ID range ``[1, id_space]`` that the
            IDs were drawn from; algorithms use it as the initial palette.
    """

    adjacency: Mapping[NodeId, tuple[NodeId, ...]]
    id_space: int

    def __post_init__(self) -> None:
        _validate_adjacency(self.adjacency, self.id_space)

    # -- construction -----------------------------------------------------

    @classmethod
    def _trusted(
        cls,
        adjacency: Mapping[NodeId, tuple[NodeId, ...]],
        id_space: int,
    ) -> "StaticGraph":
        """Wrap an adjacency known-correct by construction (no re-check)."""
        self = object.__new__(cls)
        object.__setattr__(self, "adjacency", adjacency)
        object.__setattr__(self, "id_space", id_space)
        return self

    @property
    def _index(self) -> _GraphIndex:
        index = self.__dict__.get("_index_cache")
        if index is None:
            index = _GraphIndex(self.adjacency)
            object.__setattr__(self, "_index_cache", index)
        return index

    @property
    def arrays(self):
        """The numpy CSR mirror of the index (vectorized-engine fast path).

        Built lazily on first access and cached like the index itself;
        see :class:`repro.graphs.arrays.GraphArrays`. Raises
        :class:`~repro.errors.SimulationError` when numpy is missing —
        every non-vectorized engine works without it.
        """
        arrays = self.__dict__.get("_arrays_cache")
        if arrays is None:
            from repro.graphs.arrays import GraphArrays

            arrays = GraphArrays.from_index(self._index)
            object.__setattr__(self, "_arrays_cache", arrays)
        return arrays

    @staticmethod
    def from_edges(
        edges: Iterable[tuple[NodeId, NodeId]],
        nodes: Iterable[NodeId] = (),
        id_space: int | None = None,
    ) -> "StaticGraph":
        """Build a graph from an edge list (plus optional isolated nodes)."""
        adj: dict[NodeId, set[NodeId]] = {v: set() for v in nodes}
        for u, v in edges:
            if u == v:
                raise GraphError(f"self-loop at node {u}")
            adj.setdefault(u, set()).add(v)
            adj.setdefault(v, set()).add(u)
        frozen = {v: tuple(sorted(nbrs)) for v, nbrs in adj.items()}
        space = id_space if id_space is not None else (max(adj) if adj else 1)
        if adj:
            lo, hi = min(adj), max(adj)
            if lo < 1 or hi > space:
                raise GraphError(
                    f"node IDs must lie in [1, {space}], "
                    f"got range [{lo}, {hi}]"
                )
        graph = StaticGraph._trusted(frozen, space)
        graph._index  # symmetric by construction; index built eagerly
        return graph

    @staticmethod
    def from_networkx(
        graph: nx.Graph, ids: IdAssignment | None = None
    ) -> "StaticGraph":
        """Relabel a networkx graph with the given ID assignment.

        The networkx nodes are sorted (by ``repr`` when not comparable) and
        mapped positionally to ``ids``; defaults to identity IDs ``1..n``.
        """
        nodes = _stable_sorted(graph.nodes())
        assignment = ids if ids is not None else identity_ids(len(nodes))
        if assignment.n != len(nodes):
            raise GraphError(
                f"ID assignment has {assignment.n} ids for {len(nodes)} nodes"
            )
        relabel = {node: assignment.ids[i] for i, node in enumerate(nodes)}
        edges = [(relabel[u], relabel[v]) for u, v in graph.edges()]
        return StaticGraph.from_edges(
            edges, nodes=relabel.values(), id_space=assignment.space
        )

    def to_networkx(self) -> nx.Graph:
        g = nx.Graph()
        g.add_nodes_from(self.adjacency)
        for v, nbrs in self.adjacency.items():
            g.add_edges_from((v, u) for u in nbrs if u > v)
        return g

    # -- queries -----------------------------------------------------------

    @property
    def n(self) -> int:
        return len(self.adjacency)

    @property
    def nodes(self) -> tuple[NodeId, ...]:
        return self._index.nodes

    @property
    def node_set(self) -> frozenset[NodeId]:
        """All node IDs as a frozenset (O(1) after the first access)."""
        return self._index.node_set

    def __iter__(self) -> Iterator[NodeId]:
        return iter(self._index.nodes)

    def __contains__(self, v: NodeId) -> bool:
        return v in self.adjacency

    def neighbors(self, v: NodeId) -> tuple[NodeId, ...]:
        return self.adjacency[v]

    def degree(self, v: NodeId) -> int:
        return len(self.adjacency[v])

    @property
    def max_degree(self) -> int:
        return self._index.max_degree

    @property
    def num_edges(self) -> int:
        return self._index.num_edges

    def edges(self) -> Iterator[tuple[NodeId, NodeId]]:
        index = self._index
        nodes, offsets, flat = index.nodes, index.offsets, index.flat_slots
        for i, v in enumerate(nodes):
            for j in range(offsets[i], offsets[i + 1]):
                u = nodes[flat[j]]
                if u > v:
                    yield (v, u)

    def has_edge(self, u: NodeId, v: NodeId) -> bool:
        return v in self.adjacency.get(u, ())

    def is_connected(self) -> bool:
        if self.n == 0:
            return True
        index = self._index
        return len(self._component_slots(index, 0)) == self.n

    def connected_components(self) -> list[frozenset[NodeId]]:
        index = self._index
        nodes = index.nodes
        seen = bytearray(len(nodes))
        components = []
        for s in range(len(nodes)):
            if not seen[s]:
                comp = self._component_slots(index, s)
                for t in comp:
                    seen[t] = 1
                components.append(frozenset(nodes[t] for t in comp))
        return components

    def _component(self, start: NodeId) -> set[NodeId]:
        index = self._index
        comp = self._component_slots(index, index.slot_of[start])
        return {index.nodes[t] for t in comp}

    @staticmethod
    def _component_slots(index: _GraphIndex, start: int) -> list[int]:
        offsets, flat = index.offsets, index.flat_slots
        seen = bytearray(len(index.nodes))
        seen[start] = 1
        comp = [start]
        queue = deque(comp)
        while queue:
            s = queue.popleft()
            for j in range(offsets[s], offsets[s + 1]):
                t = flat[j]
                if not seen[t]:
                    seen[t] = 1
                    comp.append(t)
                    queue.append(t)
        return comp

    def bfs_distances(self, source: NodeId) -> dict[NodeId, int]:
        """Distances from ``source`` to every reachable node."""
        index = self._index
        nodes, offsets, flat = index.nodes, index.offsets, index.flat_slots
        start = index.slot_of[source]
        dist_by_slot = [-1] * len(nodes)
        dist_by_slot[start] = 0
        dist = {source: 0}
        queue = deque((start,))
        while queue:
            s = queue.popleft()
            d = dist_by_slot[s] + 1
            for j in range(offsets[s], offsets[s + 1]):
                t = flat[j]
                if dist_by_slot[t] < 0:
                    dist_by_slot[t] = d
                    dist[nodes[t]] = d
                    queue.append(t)
        return dist

    def distance_2_neighbors(self, v: NodeId) -> tuple[NodeId, ...]:
        """Nodes at distance exactly 2 from ``v`` (the paper's N²(v))."""
        index = self._index
        nodes, offsets, flat = index.nodes, index.offsets, index.flat_slots
        s = index.slot_of[v]
        mark = bytearray(len(nodes))
        mark[s] = 1
        direct = flat[offsets[s] : offsets[s + 1]]
        for t in direct:
            mark[t] = 1
        two_hop: list[int] = []
        for t in direct:
            for j in range(offsets[t], offsets[t + 1]):
                w = flat[j]
                if not mark[w]:
                    mark[w] = 1
                    two_hop.append(w)
        two_hop.sort()
        return tuple(nodes[t] for t in two_hop)


def _stable_sorted(nodes: Iterable) -> list:
    nodes = list(nodes)
    try:
        return sorted(nodes)
    except TypeError:
        return sorted(nodes, key=repr)
