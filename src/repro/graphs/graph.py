"""An immutable, ID-addressed graph used by the simulator and algorithms.

Nodes are addressed *by their LOCAL-model identifier*, not by position:
every algorithm in the paper manipulates IDs, so making the ID the node
key removes an entire class of off-by-one translation bugs.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

import networkx as nx

from repro.errors import GraphError
from repro.types import NodeId
from repro.util.idspace import IdAssignment, identity_ids


@dataclass(frozen=True)
class StaticGraph:
    """A simple undirected graph with unique integer node IDs.

    Attributes:
        adjacency: mapping from node ID to a sorted tuple of neighbor IDs.
        id_space: upper bound of the ID range ``[1, id_space]`` that the
            IDs were drawn from; algorithms use it as the initial palette.
    """

    adjacency: Mapping[NodeId, tuple[NodeId, ...]]
    id_space: int
    _degrees: dict[NodeId, int] = field(
        default_factory=dict, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        for v, nbrs in self.adjacency.items():
            if v in nbrs:
                raise GraphError(f"self-loop at node {v}")
            for u in nbrs:
                if u not in self.adjacency:
                    raise GraphError(f"edge ({v}, {u}) dangles: {u} missing")
                if v not in self.adjacency[u]:
                    raise GraphError(f"edge ({v}, {u}) is not symmetric")
        if self.adjacency:
            lo, hi = min(self.adjacency), max(self.adjacency)
            if lo < 1 or hi > self.id_space:
                raise GraphError(
                    f"node IDs must lie in [1, {self.id_space}], "
                    f"got range [{lo}, {hi}]"
                )

    # -- construction -----------------------------------------------------

    @staticmethod
    def from_edges(
        edges: Iterable[tuple[NodeId, NodeId]],
        nodes: Iterable[NodeId] = (),
        id_space: int | None = None,
    ) -> "StaticGraph":
        """Build a graph from an edge list (plus optional isolated nodes)."""
        adj: dict[NodeId, set[NodeId]] = {v: set() for v in nodes}
        for u, v in edges:
            if u == v:
                raise GraphError(f"self-loop at node {u}")
            adj.setdefault(u, set()).add(v)
            adj.setdefault(v, set()).add(u)
        frozen = {v: tuple(sorted(nbrs)) for v, nbrs in adj.items()}
        space = id_space if id_space is not None else (max(adj) if adj else 1)
        return StaticGraph(frozen, id_space=space)

    @staticmethod
    def from_networkx(
        graph: nx.Graph, ids: IdAssignment | None = None
    ) -> "StaticGraph":
        """Relabel a networkx graph with the given ID assignment.

        The networkx nodes are sorted (by ``repr`` when not comparable) and
        mapped positionally to ``ids``; defaults to identity IDs ``1..n``.
        """
        nodes = _stable_sorted(graph.nodes())
        assignment = ids if ids is not None else identity_ids(len(nodes))
        if assignment.n != len(nodes):
            raise GraphError(
                f"ID assignment has {assignment.n} ids for {len(nodes)} nodes"
            )
        relabel = {node: assignment.ids[i] for i, node in enumerate(nodes)}
        edges = [(relabel[u], relabel[v]) for u, v in graph.edges()]
        return StaticGraph.from_edges(
            edges, nodes=relabel.values(), id_space=assignment.space
        )

    def to_networkx(self) -> nx.Graph:
        g = nx.Graph()
        g.add_nodes_from(self.adjacency)
        for v, nbrs in self.adjacency.items():
            g.add_edges_from((v, u) for u in nbrs if u > v)
        return g

    # -- queries -----------------------------------------------------------

    @property
    def n(self) -> int:
        return len(self.adjacency)

    @property
    def nodes(self) -> tuple[NodeId, ...]:
        return tuple(sorted(self.adjacency))

    def __iter__(self) -> Iterator[NodeId]:
        return iter(self.nodes)

    def __contains__(self, v: NodeId) -> bool:
        return v in self.adjacency

    def neighbors(self, v: NodeId) -> tuple[NodeId, ...]:
        return self.adjacency[v]

    def degree(self, v: NodeId) -> int:
        return len(self.adjacency[v])

    @property
    def max_degree(self) -> int:
        if not self.adjacency:
            return 0
        return max(len(nbrs) for nbrs in self.adjacency.values())

    @property
    def num_edges(self) -> int:
        return sum(len(nbrs) for nbrs in self.adjacency.values()) // 2

    def edges(self) -> Iterator[tuple[NodeId, NodeId]]:
        for v, nbrs in sorted(self.adjacency.items()):
            for u in nbrs:
                if u > v:
                    yield (v, u)

    def has_edge(self, u: NodeId, v: NodeId) -> bool:
        return v in self.adjacency.get(u, ())

    def is_connected(self) -> bool:
        if self.n == 0:
            return True
        start = next(iter(self.adjacency))
        return len(self._component(start)) == self.n

    def connected_components(self) -> list[frozenset[NodeId]]:
        seen: set[NodeId] = set()
        components = []
        for v in self.nodes:
            if v not in seen:
                comp = self._component(v)
                seen |= comp
                components.append(frozenset(comp))
        return components

    def _component(self, start: NodeId) -> set[NodeId]:
        seen = {start}
        queue = deque([start])
        while queue:
            v = queue.popleft()
            for u in self.adjacency[v]:
                if u not in seen:
                    seen.add(u)
                    queue.append(u)
        return seen

    def bfs_distances(self, source: NodeId) -> dict[NodeId, int]:
        """Distances from ``source`` to every reachable node."""
        dist = {source: 0}
        queue = deque([source])
        while queue:
            v = queue.popleft()
            for u in self.adjacency[v]:
                if u not in dist:
                    dist[u] = dist[v] + 1
                    queue.append(u)
        return dist

    def distance_2_neighbors(self, v: NodeId) -> tuple[NodeId, ...]:
        """Nodes at distance exactly 2 from ``v`` (the paper's N²(v))."""
        direct = set(self.adjacency[v])
        two_hop: set[NodeId] = set()
        for u in direct:
            two_hop.update(self.adjacency[u])
        two_hop -= direct
        two_hop.discard(v)
        return tuple(sorted(two_hop))


def _stable_sorted(nodes: Iterable) -> list:
    nodes = list(nodes)
    try:
        return sorted(nodes)
    except TypeError:
        return sorted(nodes, key=repr)
