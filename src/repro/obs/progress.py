"""The sweep's consolidated progress line.

One line, updated in place on a tty (redrawn with ``\\r``) and printed
at coarse milestones otherwise, replacing the old per-trial chatter:
``done/total``, the cache hit-rate so far, and an ETA from the rolling
mean duration of *executed* trials divided across the workers. Verbose
mode (``--verbose``) restores the per-trial lines for debugging.
"""

from __future__ import annotations

import sys
import time
from typing import Any, TextIO


class SweepProgress:
    """A progress callback for :func:`repro.runner.executor.run_sweep`."""

    def __init__(
        self,
        total: int,
        workers: int = 1,
        stream: TextIO | None = None,
        verbose: bool = False,
    ) -> None:
        self.total = total
        self.workers = max(1, workers)
        self.stream = stream if stream is not None else sys.stderr
        self.verbose = verbose
        self.done = 0
        self.hits = 0
        self.resumed = 0
        self.executed = 0
        self.exec_seconds = 0.0
        self._start = time.monotonic()
        self._dirty = False
        try:
            self._tty = bool(self.stream.isatty())
        except (AttributeError, ValueError):
            self._tty = False
        # Non-tty (logs, CI): print at ~decile milestones, not per trial.
        self._milestone = max(1, total // 10)

    def __call__(self, outcome: Any) -> None:
        self.done += 1
        if outcome.resumed:
            self.resumed += 1
        elif outcome.cached:
            self.hits += 1
        else:
            self.executed += 1
            self.exec_seconds += outcome.seconds
        if self.verbose:
            self._per_trial(outcome)
            return
        if self._tty:
            self._redraw()
        elif self.done == self.total or self.done % self._milestone == 0:
            print(self._line(), file=self.stream)

    def _per_trial(self, outcome: Any) -> None:
        if outcome.resumed:
            note = "resumed from journal"
        elif outcome.cached:
            note = f"cache hit, {outcome.seconds:.2f}s saved"
        else:
            note = f"{outcome.seconds:.2f}s, pid {outcome.worker}"
        print(
            f"  [{outcome.spec.index + 1}/{self.total}] "
            f"{outcome.spec.label} ({note})",
            file=self.stream,
        )

    def _line(self) -> str:
        seen = self.hits + self.resumed + self.executed
        rate = self.hits / seen if seen else 0.0
        line = (
            f"  {self.done}/{self.total} trials | "
            f"{self.hits} cache hit(s) ({rate:.0%})"
        )
        if self.resumed:
            line += f" | {self.resumed} resumed from journal"
        remaining = self.total - self.done
        if remaining and self.executed:
            mean = self.exec_seconds / self.executed
            eta = mean * remaining / self.workers
            line += f" | eta ~{eta:.0f}s"
        return line

    def _redraw(self) -> None:
        print(f"\r\x1b[K{self._line()}", end="", file=self.stream)
        self._dirty = True

    def finish(self) -> None:
        """Terminate an in-place line; print the final state once."""
        if self.verbose:
            return
        if self._tty:
            if self._dirty:
                print(file=self.stream)
        elif self.done and self.done < self.total:
            # Aborted early — the done == total print never happened.
            print(self._line(), file=self.stream)
