"""Cross-cutting observability: structured spans, counters, progress.

Three small, dependency-free pieces the execution layers emit into:

- :mod:`repro.obs.spans` — contextvar-scoped ``span("phase", **attrs)``
  records with a no-op fast path and a multi-process-safe JSONL
  emitter (``SWEEP_<name>.trace.jsonl`` / ``RUN.trace.jsonl``);
- :mod:`repro.obs.counters` — always-on process-wide counters, shipped
  from workers to the sweep parent as per-trial deltas and surfaced on
  ``SweepResult.observability``;
- :mod:`repro.obs.progress` — the consolidated sweep progress line;
- :mod:`repro.obs.render` — the ``repro trace`` / ``repro stats``
  rendering behind the CLI.

The cardinal rule (enforced by ``tests/test_obs.py``): observability
never changes what a run computes — tables, cache keys, and journals
are byte-identical with tracing on or off.
"""

from repro.obs import counters
from repro.obs.counters import COUNTERS, peak_rss_kib
from repro.obs.progress import SweepProgress
from repro.obs.spans import (
    NOOP_SPAN,
    TRACE_ENV,
    JsonlEmitter,
    Span,
    configure,
    disable,
    enabled,
    event,
    sample_stride,
    span,
    trace_path,
)

__all__ = [
    "COUNTERS",
    "NOOP_SPAN",
    "TRACE_ENV",
    "JsonlEmitter",
    "Span",
    "SweepProgress",
    "configure",
    "counters",
    "disable",
    "enabled",
    "event",
    "peak_rss_kib",
    "sample_stride",
    "span",
    "trace_path",
]
