"""Structured tracing: contextvar spans, a no-op fast path, JSONL emission.

The tracing contract, in order of importance:

1. **Zero overhead when disabled.** :func:`span` returns a shared no-op
   singleton when tracing is off — one module-global bool check, no
   allocation beyond the call itself, nothing retained. Hot loops that
   want to skip even that much hoist ``enabled()`` into a local bool
   once per run.
2. **Tracing never changes results.** Spans observe; they carry no data
   back into the computation. Tables, cache keys, and journals are
   byte-identical with tracing on or off — the differential tests in
   ``tests/test_obs.py`` are the gate.
3. **One process tree, one stream.** The emitter appends to a single
   ``*.trace.jsonl`` file with ``O_APPEND`` and exactly one ``write()``
   per record, so sweep workers (fork *or* spawn) interleave whole
   lines, never torn ones. Activation travels through the
   :data:`TRACE_ENV` environment variable: fork workers inherit the
   live module state, spawn workers re-arm from the environment at
   import time.

Span records (``kind: "span"``) carry a process-unique ``id``, the
``parent`` span id (from a :class:`contextvars.ContextVar`, so the tree
survives thread switches and — via fork inheritance — reaches into
worker processes), the emitting ``pid``, a shared-monotonic-clock
``t0`` and a ``dur`` in seconds. Instantaneous facts (a cache hit, a
retry, a pool restart) are ``kind: "event"`` records with ``dur: 0``.
"""

from __future__ import annotations

import itertools
import json
import os
import time
from contextvars import ContextVar
from typing import Any

#: Environment variable carrying the active trace file path; set by
#: :func:`configure` so worker processes (fork or spawn) join the stream.
TRACE_ENV = "REPRO_TRACE"

#: Environment variable overriding the per-round sampling stride.
STRIDE_ENV = "REPRO_TRACE_STRIDE"

#: Default sampling stride for per-round counters (simulator loop):
#: one ``event`` record every N active rounds.
DEFAULT_STRIDE = 256

_current: ContextVar[str | None] = ContextVar("repro_obs_span", default=None)
_ids = itertools.count(1)

_enabled: bool = False
_emitter: "JsonlEmitter | None" = None
_stride: int = DEFAULT_STRIDE


class JsonlEmitter:
    """Appends one JSON line per record to ``path``.

    The file descriptor is opened with ``O_APPEND`` and each record is
    emitted in a single ``os.write`` call, so concurrent writers (pool
    workers) interleave complete lines. The descriptor is re-opened
    after a fork (pid check) — children never share the parent's file
    offset bookkeeping.
    """

    __slots__ = ("path", "_fd", "_pid")

    def __init__(self, path: str | os.PathLike[str]) -> None:
        self.path = os.fspath(path)
        self._fd: int | None = None
        self._pid: int | None = None

    def emit(self, record: dict[str, Any]) -> None:
        line = json.dumps(
            record, separators=(",", ":"), sort_keys=True, default=str
        )
        try:
            os.write(self._ensure_fd(), (line + "\n").encode("utf-8"))
        except OSError:
            # Tracing is observability, not correctness: a full disk or
            # a yanked file degrades to "no trace", never to a failure.
            pass

    def _ensure_fd(self) -> int:
        pid = os.getpid()
        if self._fd is None or self._pid != pid:
            self._fd = os.open(
                self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
            )
            self._pid = pid
        return self._fd

    def close(self) -> None:
        if self._fd is not None and self._pid == os.getpid():
            try:
                os.close(self._fd)
            except OSError:
                pass
        self._fd = None
        self._pid = None


def enabled() -> bool:
    """Whether tracing is live — hoist into a local bool in hot loops."""
    return _enabled


def sample_stride() -> int:
    """Per-round sampling stride for loop instrumentation (>= 1)."""
    return _stride


def trace_path() -> str | None:
    """The active trace file path, or ``None`` when disabled."""
    return _emitter.path if _enabled and _emitter is not None else None


def configure(
    path: str | os.PathLike[str],
    *,
    stride: int | None = None,
    truncate: bool = True,
    export_env: bool = True,
) -> str:
    """Enable tracing to ``path``; returns the path.

    ``export_env`` (default) publishes the path through
    :data:`TRACE_ENV` so worker processes spawned later — by either
    start method — join the same stream. ``truncate`` starts the file
    fresh (a new run's trace should not append to last week's).
    """
    global _enabled, _emitter, _stride
    disable()
    path = os.fspath(path)
    if truncate:
        try:
            with open(path, "w", encoding="utf-8"):
                pass
        except OSError:
            pass
    if stride is not None:
        _stride = max(1, int(stride))
    elif STRIDE_ENV in os.environ:
        try:
            _stride = max(1, int(os.environ[STRIDE_ENV]))
        except ValueError:
            _stride = DEFAULT_STRIDE
    _emitter = JsonlEmitter(path)
    _enabled = True
    if export_env:
        os.environ[TRACE_ENV] = path
        if stride is not None:
            os.environ[STRIDE_ENV] = str(_stride)
    return path


def disable() -> None:
    """Stop tracing and clear the environment activation."""
    global _enabled, _emitter, _stride
    _enabled = False
    if _emitter is not None:
        _emitter.close()
        _emitter = None
    _stride = DEFAULT_STRIDE
    os.environ.pop(TRACE_ENV, None)


def _arm_from_env() -> None:
    """Join a trace stream announced via the environment.

    Spawn-method pool workers import this module fresh; the parent's
    :func:`configure` left the path in :data:`TRACE_ENV`, so they start
    emitting into the same file without any explicit handshake.
    """
    path = os.environ.get(TRACE_ENV)
    if path:
        configure(path, truncate=False, export_env=False)


class _NoopSpan:
    """The disabled path: one shared, stateless, reentrant instance."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False

    def event(self, name: str, **attrs: Any) -> None:
        """Discard (matches :meth:`Span.event`)."""


NOOP_SPAN = _NoopSpan()


class Span:
    """A live span: times a phase and emits one record on exit."""

    __slots__ = ("name", "attrs", "span_id", "parent_id", "t0", "_token")

    def __init__(self, name: str, attrs: dict[str, Any]) -> None:
        self.name = name
        self.attrs = attrs

    def __enter__(self) -> "Span":
        self.span_id = f"{os.getpid()}-{next(_ids)}"
        self.parent_id = _current.get()
        self._token = _current.set(self.span_id)
        self.t0 = time.monotonic()
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        dur = time.monotonic() - self.t0
        _current.reset(self._token)
        record: dict[str, Any] = {
            "kind": "span",
            "name": self.name,
            "id": self.span_id,
            "parent": self.parent_id,
            "pid": os.getpid(),
            "t0": self.t0,
            "dur": dur,
        }
        if exc_type is not None:
            record["error"] = exc_type.__name__
        if self.attrs:
            record["attrs"] = self.attrs
        if _enabled and _emitter is not None:
            _emitter.emit(record)
        return False

    def event(self, name: str, **attrs: Any) -> None:
        """An instantaneous record parented to this span."""
        _emit_event(name, self.span_id, attrs)


def span(name: str, **attrs: Any) -> "Span | _NoopSpan":
    """Open a span around a phase::

        with span("scenario.solve", algorithm="theorem1"):
            ...

    Disabled tracing returns the shared no-op singleton — callers never
    branch on :func:`enabled` for correctness, only for hot-loop
    economy.
    """
    if not _enabled:
        return NOOP_SPAN
    return Span(name, attrs)


def event(name: str, **attrs: Any) -> None:
    """Emit an instantaneous record under the current span (no-op when
    tracing is disabled)."""
    if not _enabled:
        return
    _emit_event(name, _current.get(), attrs)


def _emit_event(
    name: str, parent: str | None, attrs: dict[str, Any]
) -> None:
    if not _enabled or _emitter is None:
        return
    record: dict[str, Any] = {
        "kind": "event",
        "name": name,
        "id": f"{os.getpid()}-{next(_ids)}",
        "parent": parent,
        "pid": os.getpid(),
        "t0": time.monotonic(),
        "dur": 0.0,
    }
    if attrs:
        record["attrs"] = attrs
    _emitter.emit(record)


_arm_from_env()
