"""Rendering for ``repro trace`` and ``repro stats``.

``repro trace`` reads a ``*.trace.jsonl`` stream (see
:mod:`repro.obs.spans` for the record contract) and renders a per-trial
timeline plus a slowest-span table; ``--check`` turns the structural
invariants (every line parses, every parent id resolves) into an exit
code for CI. ``repro stats`` reads ``SWEEP_*.json`` artifacts and
summarizes throughput, cache economics, and the retry taxonomy; with
``--bench`` it renders the committed ``BENCH_history.jsonl``
trajectory instead.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any


class TraceError(ValueError):
    """A trace file failed a structural invariant (``--check``)."""


def load_trace(path: str | Path) -> tuple[list[dict[str, Any]], int]:
    """Parse a trace stream; returns ``(records, bad_line_count)``.

    Unparseable lines (torn tail from a killed run) are counted, not
    fatal — ``--check`` decides whether they fail the invocation.
    """
    records: list[dict[str, Any]] = []
    bad = 0
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                bad += 1
                continue
            if not isinstance(record, dict) or "id" not in record:
                bad += 1
                continue
            records.append(record)
    return records, bad


def check_trace(records: list[dict[str, Any]], bad: int) -> list[str]:
    """Structural invariants for ``--check``; returns the violations.

    Every record needs an id/name/pid/t0/dur; every non-null parent must
    resolve to another record in the stream (the emitting process wrote
    its enclosing span on exit, fork workers inherit a parent whose span
    the parent process wrote).
    """
    problems: list[str] = []
    if bad:
        problems.append(f"{bad} unparseable line(s)")
    ids = {record["id"] for record in records}
    orphans = sum(
        1
        for record in records
        if record.get("parent") is not None and record["parent"] not in ids
    )
    if orphans:
        problems.append(f"{orphans} record(s) with unresolved parent ids")
    for field in ("name", "pid", "t0", "dur"):
        missing = sum(1 for record in records if field not in record)
        if missing:
            problems.append(f"{missing} record(s) missing {field!r}")
    negative = sum(1 for r in records if r.get("dur", 0) < 0)
    if negative:
        problems.append(f"{negative} record(s) with negative duration")
    return problems


def trial_records(records: list[dict[str, Any]]) -> list[dict[str, Any]]:
    """The per-trial ``trial.result`` events, in trial-index order."""
    trials = [r for r in records if r.get("name") == "trial.result"]
    trials.sort(key=lambda r: r.get("attrs", {}).get("index", 0))
    return trials


def render_trace(
    path: str | Path,
    records: list[dict[str, Any]],
    bad: int,
    limit: int = 12,
) -> str:
    """The human-facing trace summary: header, timeline, slowest spans."""
    lines: list[str] = []
    pids = {record["pid"] for record in records if "pid" in record}
    t0s = [r["t0"] for r in records if "t0" in r]
    window = 0.0
    if t0s:
        ends = [
            r["t0"] + r.get("dur", 0.0) for r in records if "t0" in r
        ]
        window = max(ends) - min(t0s)
    lines.append(
        f"trace: {path} — {len(records)} record(s), {len(pids)} "
        f"process(es), {window:.2f}s window"
        + (f", {bad} unparseable line(s)" if bad else "")
    )

    trials = trial_records(records)
    if trials:
        lines.append("")
        lines.append(f"trial timeline ({len(trials)} trial(s)):")
        base = min(t0s) if t0s else 0.0
        for record in trials:
            attrs = record.get("attrs", {})
            if attrs.get("resumed"):
                note = "resumed"
            elif attrs.get("cached"):
                note = "cache hit"
            else:
                note = f"pid {attrs.get('worker', record.get('pid'))}"
            lines.append(
                f"  [{attrs.get('index', '?'):>3}] "
                f"+{record['t0'] - base:6.2f}s "
                f"{attrs.get('seconds', 0.0):7.3f}s  "
                f"{attrs.get('label', '?')}  ({note})"
            )

    by_name: dict[str, list[float]] = {}
    for record in records:
        if record.get("kind") == "span":
            by_name.setdefault(record["name"], []).append(
                record.get("dur", 0.0)
            )
    if by_name:
        rows = sorted(
            (
                (sum(durs), max(durs), len(durs), name)
                for name, durs in by_name.items()
            ),
            reverse=True,
        )
        lines.append("")
        lines.append("slowest spans (by total time):")
        lines.append(
            f"  {'span':<28} {'count':>6} {'total':>9} {'max':>9}"
        )
        for total, peak, count, name in rows[:limit]:
            lines.append(
                f"  {name:<28} {count:>6} {total:>8.3f}s {peak:>8.3f}s"
            )

    events = sorted(
        {
            r["name"]
            for r in records
            if r.get("kind") == "event" and r.get("name") != "trial.result"
        }
    )
    if events:
        lines.append("")
        lines.append(f"event kinds: {' '.join(events)}")
    return "\n".join(lines)


# -- repro stats --------------------------------------------------------------


def _retry_summary(observability: dict[str, Any]) -> str | None:
    retries = observability.get("retries") or {}
    retried = retries.get("trials_retried", 0)
    deaths = retries.get("worker_deaths", 0)
    if not retried and not deaths:
        return None
    return (
        f"{retried} trial(s) retried ({retries.get('timeouts', 0)} "
        f"timeout(s), {deaths} worker death(s), "
        f"{retries.get('attempts', 0)} extra attempt(s))"
    )


def render_stats(path: str | Path, payload: dict[str, Any]) -> str:
    """One artifact's throughput / cache / retry summary."""
    timing = payload.get("timing") or {}
    trials = timing.get("trials") or []
    wall = float(timing.get("wall_seconds") or 0.0)
    executed = [t for t in trials if not t.get("cached") and not t.get("resumed")]
    lines = [f"{path}:"]
    throughput = len(trials) / wall if wall > 0 else math.inf
    lines.append(
        f"  {len(trials)} trial(s) ({len(executed)} executed) in "
        f"{wall:.2f}s wall on {timing.get('workers', '?')} worker(s) — "
        f"{throughput:.1f} trials/s"
    )
    busy = float(timing.get("trial_seconds_total") or 0.0)
    if wall > 0 and busy:
        lines.append(
            f"  trial time {busy:.2f}s "
            f"(parallel speedup {busy / wall:.1f}x)"
        )
    cache = timing.get("cache")
    if cache:
        hits, misses = cache.get("hits", 0), cache.get("misses", 0)
        total = hits + misses
        rate = f"{hits / total:.0%}" if total else "n/a"
        lines.append(
            f"  cache: {hits} hit(s), {misses} miss(es) ({rate} hit "
            f"rate), ~{cache.get('seconds_saved', 0.0):.2f}s saved"
        )
    observability = payload.get("observability") or {}
    retry_line = _retry_summary(observability)
    if retry_line:
        lines.append(f"  resilience: {retry_line}")
    if timing.get("pool_restarts"):
        lines.append(f"  pool restarts: {timing['pool_restarts']}")
    failures = payload.get("failures") or {}
    if failures.get("count"):
        lines.append(
            f"  failures: {failures['count']} "
            f"({failures.get('summary', '')})"
        )
    rss = observability.get("peak_rss_kib")
    if rss:
        lines.append(f"  peak rss: {rss / 1024:.0f} MiB")
    counters = observability.get("counters") or {}
    if counters:
        shown = ", ".join(
            f"{name}={counters[name]:,}" for name in sorted(counters)[:8]
        )
        lines.append(f"  counters: {shown}")
    return "\n".join(lines)


# -- repro stats --bench ------------------------------------------------------


def load_bench_history(path: str | Path) -> list[dict[str, Any]]:
    """Parse ``BENCH_history.jsonl`` rows (bad lines skipped, like a
    journal tail)."""
    rows: list[dict[str, Any]] = []
    try:
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    row = json.loads(line)
                except ValueError:
                    continue
                if isinstance(row, dict) and "date" in row:
                    rows.append(row)
    except OSError:
        return []
    return rows


def render_bench_history(path: str | Path) -> str:
    """The benchmark trajectory: one line per recorded run."""
    return render_bench_rows(load_bench_history(path), path)


def render_bench_rows(rows: list[dict[str, Any]], source: str | Path) -> str:
    """Render already-loaded bench rows, labeled with their source.

    Shared by the file path (``repro stats --bench``) and the result
    store (``--store`` / ``GET /bench``): both must produce the
    identical trend rendering for the same rows.
    """
    if not rows:
        return f"{source}: no benchmark history rows"
    lines = [
        f"benchmark history: {source} — {len(rows)} run(s)",
        f"  {'date':<20} {'mode':<6} {'cases':>5} {'geomean':>9} "
        f"{'worst case':>10}",
    ]
    for row in rows:
        speedups = [
            float(s)
            for s in (row.get("speedups") or {}).values()
            if s and s > 0
        ]
        if speedups:
            geomean = math.exp(
                sum(math.log(s) for s in speedups) / len(speedups)
            )
            worst = min(speedups)
            summary = f"{geomean:>8.1f}x {worst:>9.1f}x"
        else:
            summary = f"{'n/a':>9} {'n/a':>10}"
        lines.append(
            f"  {row.get('date', '?'):<20} {row.get('mode', '?'):<6} "
            f"{len(speedups):>5} {summary}"
        )
    return "\n".join(lines)
