"""Process-wide metric counters, merged across sweep workers.

Counters are plain dict increments — cheap enough to stay on
unconditionally (unlike spans they never touch the filesystem), so the
taxonomy they feed (``SweepResult.observability``, the artifact
``observability`` block, ``repro stats``) is populated whether or not
tracing is armed.

Aggregation model: the executor snapshots the process counters around
each trial (:func:`snapshot` / :func:`delta`) and ships the delta back
on the ``TrialOutcome`` — worker increments cross the process boundary
as data, not shared state — then the parent folds worker deltas into
its own counters (:func:`merge`). Failed attempts ship nothing; their
retries are counted parent-side where the retry decision is made.

Naming convention: dotted ``layer.metric`` lowercase names, e.g.
``cache.hit``, ``trial.run``, ``sim.messages``. Peak RSS is not a
counter (maxima don't sum) — it rides separately via
:func:`peak_rss_kib`.
"""

from __future__ import annotations

from typing import Any


class CounterSet:
    """A named bag of monotonically increasing numbers."""

    __slots__ = ("_data",)

    def __init__(self) -> None:
        self._data: dict[str, float] = {}

    def add(self, name: str, value: float = 1) -> None:
        data = self._data
        data[name] = data.get(name, 0) + value

    def get(self, name: str) -> float:
        return self._data.get(name, 0)

    def snapshot(self) -> dict[str, float]:
        return dict(self._data)

    def reset(self) -> None:
        self._data.clear()


#: The process-wide counter set every layer increments into.
COUNTERS = CounterSet()


def add(name: str, value: float = 1) -> None:
    """Increment a process-wide counter."""
    COUNTERS.add(name, value)


def snapshot() -> dict[str, float]:
    """A copy of the current process-wide counter values."""
    return COUNTERS.snapshot()


def delta(
    before: dict[str, float], after: dict[str, float]
) -> dict[str, float]:
    """The nonzero increments between two snapshots."""
    return {
        name: value - before.get(name, 0)
        for name, value in after.items()
        if value != before.get(name, 0)
    }


def merge(into: dict[str, float], other: dict[str, float]) -> None:
    """Fold ``other``'s counts into ``into`` (in place)."""
    for name, value in other.items():
        into[name] = into.get(name, 0) + value


def peak_rss_kib() -> int:
    """This process's peak resident set size in KiB (0 where the
    ``resource`` module is unavailable)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return 0
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB; macOS reports bytes.
    import sys

    if sys.platform == "darwin":  # pragma: no cover - linux CI
        rss //= 1024
    return int(rss)


def normalized(counters: dict[str, float]) -> dict[str, Any]:
    """Counters as JSON-friendly numbers (ints where exact), sorted."""
    out: dict[str, Any] = {}
    for name in sorted(counters):
        value = counters[name]
        out[name] = int(value) if float(value).is_integer() else value
    return out
