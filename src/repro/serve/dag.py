"""Provenance DAG over the result store: scenario → trial → artifact → output.

Every number the service hands out is an edge away from the exact
inputs that produced it. :func:`provenance` reconstructs that chain for
one trial from the ingested tables alone — no re-reading the original
files — and renders it as plain JSON:

- ``scenario`` nodes: the grid coordinates (family, n, problem,
  algorithm, trial, engine/faults when present) parsed from the trial's
  label, plus the derived per-trial seed;
- ``trial`` nodes: the ingested trial row (index, kind, key, label,
  seconds, worker, cached/resumed flags);
- ``artifact`` nodes: the content-addressed file the trial was ingested
  from (digest, path, kind), plus any journals that checkpointed the
  same sweep;
- ``output`` nodes: the sweep's report tables and, for bench-history
  artifacts, trend rows.

Edges always point from producer to product (``scenario → trial →
artifact → output``), so walking forward answers "what did this
scenario produce" and walking the reversed edges answers "where did
this table's numbers come from".
"""

from __future__ import annotations

from typing import Any

from repro.serve.store import ResultStore


def _node(nodes: list[dict[str, Any]], seen: set[str], node_id: str,
          kind: str, **attrs: Any) -> str:
    if node_id not in seen:
        seen.add(node_id)
        nodes.append({"id": node_id, "kind": kind, **attrs})
    return node_id


def provenance(store: ResultStore, trial_ref: str) -> dict[str, Any] | None:
    """The full provenance chain of one ingested trial, as a JSON DAG.

    Args:
        store: the result store to resolve against.
        trial_ref: a trial id (:func:`repro.serve.store.served_trial_id`)
            or an exact trial label.

    Returns:
        ``{"root": trial_id, "nodes": [...], "edges": [...]}`` with
        nodes/edges as described in the module docstring, or ``None``
        when the trial is unknown.
    """
    trial = store.trial(trial_ref)
    if trial is None:
        return None
    nodes: list[dict[str, Any]] = []
    edges: list[dict[str, str]] = []
    seen: set[str] = set()

    trial_id = _node(
        nodes, seen, trial["trial_id"], "trial",
        index=trial["idx"], kind_of_trial=trial["kind"], key=trial["key"],
        label=trial["label"], seed=trial["seed"], seconds=trial["seconds"],
        worker=trial["worker"], cached=trial["cached"],
        resumed=trial["resumed"],
    )

    if trial["scenario"] is not None:
        scenario_id = _node(
            nodes, seen, f"scenario:{trial['label']}", "scenario",
            **trial["scenario"],
        )
        edges.append({"from": scenario_id, "to": trial_id})

    digest = trial["artifact_digest"]
    sweep = store.sweep(digest)
    artifact_attrs: dict[str, Any] = {"digest": digest}
    if sweep is not None:
        artifact_attrs.update(
            path=sweep["path"], sweep=sweep["name"],
            master_seed=sweep["master_seed"], num_trials=sweep["num_trials"],
            partial=bool(sweep["partial"]),
        )
    artifact_id = _node(
        nodes, seen, f"artifact:{digest}", "artifact", **artifact_attrs
    )
    edges.append({"from": trial_id, "to": artifact_id})

    if sweep is not None:
        for journal in store.journals_for(sweep["name"]):
            journal_id = _node(
                nodes, seen, f"artifact:{journal['artifact_digest']}",
                "artifact", digest=journal["artifact_digest"],
                journal_of=journal["sweep_name"], entries=journal["entries"],
                salt=journal["salt"],
            )
            edges.append({"from": journal_id, "to": artifact_id})
        for table in sweep["tables"]:
            table_id = _node(
                nodes, seen, f"table:{digest}:{table['exp_id']}", "output",
                exp_id=table["exp_id"], title=table["title"],
            )
            edges.append({"from": artifact_id, "to": table_id})

    return {"root": trial_id, "nodes": nodes, "edges": edges}


def sweep_dag(store: ResultStore, digest: str) -> dict[str, Any] | None:
    """The provenance DAG of one whole ingested sweep artifact.

    Same node/edge vocabulary as :func:`provenance`, rooted at the
    artifact: every trial's scenario chain plus every output table, in
    one graph. Returns ``None`` for an unknown digest.
    """
    sweep = store.sweep(digest)
    if sweep is None:
        return None
    nodes: list[dict[str, Any]] = []
    edges: list[dict[str, str]] = []
    seen: set[str] = set()

    artifact_id = _node(
        nodes, seen, f"artifact:{digest}", "artifact", digest=digest,
        path=sweep["path"], sweep=sweep["name"],
        master_seed=sweep["master_seed"], num_trials=sweep["num_trials"],
        partial=bool(sweep["partial"]),
    )
    for trial in store.trials_of(digest):
        trial_id = _node(
            nodes, seen, trial["trial_id"], "trial",
            index=trial["idx"], kind_of_trial=trial["kind"],
            key=trial["key"], label=trial["label"], seed=trial["seed"],
            seconds=trial["seconds"], cached=trial["cached"],
            resumed=trial["resumed"],
        )
        if trial["scenario"] is not None:
            scenario_id = _node(
                nodes, seen, f"scenario:{trial['label']}", "scenario",
                **trial["scenario"],
            )
            edges.append({"from": scenario_id, "to": trial_id})
        edges.append({"from": trial_id, "to": artifact_id})
    for journal in store.journals_for(sweep["name"]):
        journal_id = _node(
            nodes, seen, f"artifact:{journal['artifact_digest']}", "artifact",
            digest=journal["artifact_digest"],
            journal_of=journal["sweep_name"], entries=journal["entries"],
            salt=journal["salt"],
        )
        edges.append({"from": journal_id, "to": artifact_id})
    for table in sweep["tables"]:
        table_id = _node(
            nodes, seen, f"table:{digest}:{table['exp_id']}", "output",
            exp_id=table["exp_id"], title=table["title"],
        )
        edges.append({"from": artifact_id, "to": table_id})

    return {"root": artifact_id, "nodes": nodes, "edges": edges}
