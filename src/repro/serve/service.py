"""The ``repro serve`` HTTP API: results, provenance, and sweep submission.

A thin stdlib-only (`http.server`) threaded front end over three things
the repo already has:

- the scenario surface (:func:`repro.api.catalog`, the registries'
  validation errors — unknown axes come back as 400s listing the valid
  names, exactly the messages the CLI prints);
- the content-addressed trial cache (:mod:`repro.runner.cache`) — the
  warm-cache fast path behind ``GET /solve``, answering repeat queries
  in ~ms without touching a solver;
- the :class:`~repro.serve.store.ResultStore` — ingested sweep
  artifacts, journals, and bench history, plus the provenance DAG
  (:mod:`repro.serve.dag`).

Endpoints (all JSON; full table in ``docs/SERVICE.md``)::

    GET  /health                         liveness + store row counts
    GET  /catalog                        api.catalog()
    GET  /solve?family=&n=&problem=&algorithm=[&trial=&seed=&engine=]
    GET  /sweeps                         ingested sweeps
    GET  /sweeps/<digest>                one sweep (digest prefix or name)
    GET  /sweeps/<digest>/view           canonical deterministic-view bytes
    GET  /sweeps/<digest>/tables         table ids
    GET  /sweeps/<digest>/tables/<exp>   canonical table bytes
    GET  /sweeps/<digest>/dag            whole-sweep provenance DAG
    GET  /trials/<id-or-label>           one ingested trial
    GET  /provenance/<id-or-label>       scenario → trial → artifact chain
    GET  /bench                          latest ingested bench trend rows
    GET  /jobs  /jobs/<id>               submitted sweeps + status polling
    POST /sweeps                         submit an async grid sweep
    POST /ingest                         ingest artifact paths
    POST /shutdown                       stop serving cleanly

**The deterministic view is sacred**: ``…/view`` and ``…/tables/<exp>``
reply with the *stored canonical bytes* —
``json.dumps(slice, indent=2, ensure_ascii=False)`` of the ingested
artifact's corresponding slice, byte-identical to re-serializing the
file — never a reformatted copy.

``GET /solve`` is the serving hot path. The query is compiled to the
**exact** :class:`~repro.runner.specs.TrialSpec` a grid sweep would
build (same kwargs order, same content-addressed seed derivation), so
its cache key matches entries warmed by any previous sweep or report
run. A warm hit answers from one pickle read; a miss computes in-process
and warms the cache for next time — unless the service is ``readonly``,
in which case misses are refused (409) and nothing is ever written.

Sweep submission is async: ``POST /sweeps`` enqueues a grid for a
single background worker thread (one sweep at a time — ``run_sweep``
itself shards across processes), returns a job id, and ``GET
/jobs/<id>`` polls it. A finished job's artifact is written to disk and
auto-ingested, so its tables are immediately queryable.

Every request is traced (``serve.request`` spans) and counted
(``serve.request``, ``serve.solve.hit`` / ``.miss`` counters) through
:mod:`repro.obs`; tracing never changes any served byte.
"""

from __future__ import annotations

import itertools
import json
import queue
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any
from urllib.parse import parse_qsl, unquote, urlparse

from repro import api
from repro.obs import counters
from repro.obs.spans import span
from repro.runner.cache import DEFAULT_CACHE_DIR, TrialCache
from repro.runner.trials import SOLVE_HEADERS, execute_trial, sweep_from_grid
from repro.serve.dag import provenance, sweep_dag
from repro.serve.store import ResultStore, StoreError


class ServiceError(Exception):
    """An HTTP error response: ``raise ServiceError(400, "message")``."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


def solve_spec(
    family: str,
    n: int,
    problem: str,
    algorithm: str,
    trial: int = 0,
    seed: int = 0,
    engine: str | None = None,
):
    """The exact grid :class:`~repro.runner.specs.TrialSpec` of one query.

    Built *by* :func:`~repro.runner.trials.sweep_from_grid` (a
    one-cell grid, taking its last trial), so the kwargs order, the
    content-addressed per-trial seed, and therefore the trial cache key
    are guaranteed to match the spec any sweep of this scenario
    produces — the warm-cache contract. Unknown names raise the grid's
    ``KeyError`` listing the valid registry names.
    """
    if trial < 0:
        raise ServiceError(400, f"trial must be >= 0, got {trial}")
    spec = sweep_from_grid(
        families=(family,),
        sizes=(n,),
        problems=(problem,),
        algorithms=(algorithm,),
        trials_per_config=trial + 1,
        master_seed=seed,
        engines=(engine,) if engine else (),
    )
    return spec.trials[-1]


class SweepJob:
    """One submitted sweep: request, lifecycle state, and result."""

    def __init__(self, job_id: str, request: dict[str, Any]) -> None:
        self.job_id = job_id
        self.request = request
        self.status = "queued"
        self.submitted_at = time.time()
        self.error: str | None = None
        self.artifact_path: str | None = None
        self.artifact_digest: str | None = None
        self.num_trials: int | None = None
        self.wall_seconds: float | None = None

    def describe(self) -> dict[str, Any]:
        """JSON-able job status for ``GET /jobs/<id>``."""
        return {
            "job": self.job_id,
            "status": self.status,
            "request": self.request,
            "error": self.error,
            "artifact": self.artifact_path,
            "digest": self.artifact_digest,
            "num_trials": self.num_trials,
            "wall_seconds": self.wall_seconds,
        }


class ReproService:
    """The service state shared by all request-handler threads.

    Args:
        store: the result store to serve (and auto-ingest into).
        cache: trial cache for ``/solve``; defaults to a
            :class:`~repro.runner.cache.TrialCache` under ``cache_dir``.
        cache_dir: cache directory when ``cache`` is not given.
        readonly: refuse every mutation — ``POST /sweeps`` and
            ``POST /ingest`` return 403, and ``/solve`` cache misses
            return 409 instead of computing (warm hits still serve).
        artifact_dir: where submitted sweeps write their
            ``SWEEP_*.json`` artifacts (default: the store's directory).
    """

    def __init__(
        self,
        store: ResultStore,
        cache: TrialCache | None = None,
        cache_dir: str | Path = DEFAULT_CACHE_DIR,
        readonly: bool = False,
        artifact_dir: str | Path | None = None,
    ) -> None:
        self.store = store
        self.cache = cache if cache is not None else TrialCache(cache_dir)
        self.readonly = readonly
        if artifact_dir is None:
            parent = Path(store.path).parent if store.path != ":memory:" else "."
            artifact_dir = parent
        self.artifact_dir = Path(artifact_dir)
        self._jobs: dict[str, SweepJob] = {}
        self._jobs_lock = threading.Lock()
        self._queue: queue.Queue[SweepJob | None] = queue.Queue()
        self._job_ids = itertools.count(1)
        self._worker: threading.Thread | None = None
        self._server: ThreadingHTTPServer | None = None

    # -- lifecycle -----------------------------------------------------------

    def start(self, port: int = 0, host: str = "127.0.0.1") -> ThreadingHTTPServer:
        """Bind, start the sweep worker, and serve on a daemon thread.

        ``port=0`` binds an ephemeral port; read the actual one from
        ``server.server_address[1]``.
        """
        handler = _make_handler(self)
        server = ThreadingHTTPServer((host, port), handler)
        server.daemon_threads = True
        self._server = server
        self._worker = threading.Thread(
            target=self._run_jobs, name="repro-serve-sweeps", daemon=True
        )
        self._worker.start()
        thread = threading.Thread(
            target=server.serve_forever, name="repro-serve-http", daemon=True
        )
        thread.start()
        return server

    def stop(self) -> None:
        """Stop serving and drain the worker thread."""
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
        self._queue.put(None)
        if self._worker is not None:
            self._worker.join(timeout=10)
            self._worker = None

    def _run_jobs(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:
                return
            with self._jobs_lock:
                job.status = "running"
            try:
                self._execute_job(job)
                with self._jobs_lock:
                    job.status = "completed"
            except Exception as exc:  # fail the job, keep the worker
                with self._jobs_lock:
                    job.status = "failed"
                    job.error = f"{type(exc).__name__}: {exc}"
                counters.add("serve.sweep.failed")

    def _execute_job(self, job: SweepJob) -> None:
        from repro.runner.artifacts import write_sweep_artifact

        request = job.request
        with span("serve.sweep", job=job.job_id, sweep=request["name"]):
            result = api.run_grid(
                families=request["families"],
                sizes=request["sizes"],
                problems=request["problems"],
                algorithms=request["algorithms"],
                trials=request["trials"],
                seed=request["seed"],
                workers=request["workers"],
                engines=request["engines"],
                cache=self.cache,
                name=request["name"],
            )
            path = write_sweep_artifact(result, self.artifact_dir)
            ingested = self.store.ingest_path(path)
        with self._jobs_lock:
            job.artifact_path = str(path)
            job.artifact_digest = ingested.digest
            job.num_trials = len(result.spec.trials)
            job.wall_seconds = result.wall_seconds
        counters.add("serve.sweep.completed")

    # -- GET routes ----------------------------------------------------------

    def health(self) -> dict[str, Any]:
        """``GET /health``."""
        return {
            "status": "ok",
            "readonly": self.readonly,
            "store": self.store.counts(),
        }

    def catalog(self) -> dict[str, Any]:
        """``GET /catalog`` — :func:`repro.api.catalog` verbatim."""
        return api.catalog()

    def solve(self, params: dict[str, str]) -> dict[str, Any]:
        """``GET /solve`` — the warm-cache fast path."""
        for required in ("family", "problem", "algorithm"):
            if required not in params:
                raise ServiceError(
                    400, f"missing required query parameter {required!r}"
                )
        try:
            spec = solve_spec(
                family=params["family"],
                n=_int_param(params, "n", 32),
                problem=params["problem"],
                algorithm=params["algorithm"],
                trial=_int_param(params, "trial", 0),
                seed=_int_param(params, "seed", 0),
                engine=params.get("engine") or None,
            )
        except KeyError as exc:
            # sweep_from_grid's registry errors list the valid names.
            raise ServiceError(400, str(exc.args[0])) from exc
        started = time.perf_counter()
        cached = self.cache.load(spec)
        if cached is not None:
            counters.add("serve.solve.hit")
            payload, seconds, was_cached = cached.payload, cached.seconds, True
        elif self.readonly:
            raise ServiceError(
                409,
                f"trial {spec.label!r} is not in the cache and the "
                f"service is readonly; run it via a sweep first",
            )
        else:
            counters.add("serve.solve.miss")
            with span("serve.solve.compute", label=spec.label):
                compute_started = time.perf_counter()
                payload = execute_trial(spec)
                seconds = time.perf_counter() - compute_started
            self.cache.store(spec, payload, seconds)
            was_cached = False
        headers = list(SOLVE_HEADERS)
        if any(len(row) > len(headers) for row in payload["rows"]):
            headers.append("engine")
        return {
            "label": spec.label,
            "seed": spec.seed,
            "cache_key": self.cache.key(spec),
            "cached": was_cached,
            "compute_seconds": seconds,
            "elapsed_ms": (time.perf_counter() - started) * 1000.0,
            "headers": headers,
            "rows": payload["rows"],
        }

    def _resolve_digest(self, ref: str) -> str:
        digest = self.store.resolve_sweep(ref)
        if digest is None:
            known = [s["name"] for s in self.store.sweeps()]
            raise ServiceError(
                404,
                f"no ingested sweep matches {ref!r}; ingested sweeps: "
                f"{sorted(set(known))}",
            )
        return digest

    def sweeps(self) -> list[dict[str, Any]]:
        """``GET /sweeps`` — every ingested sweep's summary row."""
        return self.store.sweeps()

    def sweep_summary(self, ref: str) -> dict[str, Any]:
        """``GET /sweeps/<ref>``."""
        summary = self.store.sweep(self._resolve_digest(ref))
        assert summary is not None
        return summary

    def table(self, ref: str, exp_id: str) -> bytes:
        """``GET /sweeps/<ref>/tables/<exp_id>`` — canonical bytes."""
        digest = self._resolve_digest(ref)
        content = self.store.table_bytes(digest, exp_id)
        if content is None:
            raise ServiceError(
                404,
                f"sweep {digest[:12]} has no table {exp_id!r}; available: "
                f"{self.store.table_ids(digest)}",
            )
        return content

    def view(self, ref: str) -> bytes:
        """``GET /sweeps/<ref>/view`` — canonical deterministic view."""
        content = self.store.view_bytes(self._resolve_digest(ref))
        assert content is not None
        return content

    def trial(self, ref: str) -> dict[str, Any]:
        """``GET /trials/<ref>``."""
        trial = self.store.trial(ref)
        if trial is None:
            raise ServiceError(404, f"no ingested trial matches {ref!r}")
        return trial

    def trial_provenance(self, ref: str) -> dict[str, Any]:
        """``GET /provenance/<ref>``."""
        dag = provenance(self.store, ref)
        if dag is None:
            raise ServiceError(404, f"no ingested trial matches {ref!r}")
        return dag

    def sweep_provenance(self, ref: str) -> dict[str, Any]:
        """``GET /sweeps/<ref>/dag``."""
        dag = sweep_dag(self.store, self._resolve_digest(ref))
        assert dag is not None
        return dag

    def bench(self) -> dict[str, Any]:
        """``GET /bench`` — the latest ingested bench trend."""
        return {
            "source": self.store.bench_source(),
            "rows": self.store.bench_rows(),
        }

    def jobs(self) -> list[dict[str, Any]]:
        """``GET /jobs`` — every submitted job, newest last."""
        with self._jobs_lock:
            return [job.describe() for job in self._jobs.values()]

    def job(self, job_id: str) -> dict[str, Any]:
        """``GET /jobs/<id>``."""
        with self._jobs_lock:
            job = self._jobs.get(job_id)
            if job is None:
                raise ServiceError(
                    404,
                    f"no job {job_id!r}; known jobs: {sorted(self._jobs)}",
                )
            return job.describe()

    # -- POST routes ---------------------------------------------------------

    def submit_sweep(self, body: dict[str, Any]) -> dict[str, Any]:
        """``POST /sweeps`` — enqueue an async grid sweep."""
        if self.readonly:
            raise ServiceError(403, "service is readonly; sweeps refused")
        request = {
            "families": [str(f) for f in _list_field(body, "families", ["gnp"])],
            "sizes": [int(s) for s in _list_field(body, "sizes", [32])],
            "problems": [str(p) for p in _list_field(body, "problems", ["mis"])],
            "algorithms": [
                str(a) for a in _list_field(body, "algorithms", ["theorem1"])
            ],
            "engines": [str(e) for e in _list_field(body, "engines", [])],
            "trials": int(body.get("trials", 1)),
            "seed": int(body.get("seed", 0)),
            "workers": int(body.get("workers", 1)),
            "name": str(body.get("name", "served")),
        }
        try:
            # Validate the whole grid up front (the same registry errors
            # the CLI prints), so a bad submission 400s immediately
            # instead of failing later inside the worker.
            spec = sweep_from_grid(
                families=request["families"],
                sizes=request["sizes"],
                problems=request["problems"],
                algorithms=request["algorithms"],
                trials_per_config=request["trials"],
                master_seed=request["seed"],
                name=request["name"],
                engines=request["engines"],
            )
        except KeyError as exc:
            raise ServiceError(400, str(exc.args[0])) from exc
        with self._jobs_lock:
            job = SweepJob(f"job-{next(self._job_ids)}", request)
            self._jobs[job.job_id] = job
        self._queue.put(job)
        counters.add("serve.sweep.submitted")
        return {
            "job": job.job_id,
            "status": job.status,
            "num_trials": len(spec.trials),
        }

    def ingest(self, body: dict[str, Any]) -> dict[str, Any]:
        """``POST /ingest`` — ingest artifact files by path."""
        if self.readonly:
            raise ServiceError(403, "service is readonly; ingest refused")
        paths = _list_field(body, "paths", None)
        if paths is None:
            raise ServiceError(400, "body must carry a 'paths' list")
        results = self.store.ingest_many([str(p) for p in paths])
        return {
            "results": [
                {
                    "path": r.path,
                    "status": r.status,
                    "kind": r.kind,
                    "digest": r.digest,
                    "detail": r.detail,
                }
                for r in results
            ]
        }


def _int_param(params: dict[str, str], name: str, default: int) -> int:
    raw = params.get(name)
    if raw is None:
        return default
    try:
        return int(raw)
    except ValueError:
        raise ServiceError(
            400, f"query parameter {name!r} must be an integer, got {raw!r}"
        ) from None


def _list_field(body: dict[str, Any], name: str, default: Any) -> Any:
    value = body.get(name, default)
    if value is default:
        return default
    if not isinstance(value, list):
        raise ServiceError(400, f"field {name!r} must be a list")
    return value


def _make_handler(service: ReproService) -> type[BaseHTTPRequestHandler]:
    """A request-handler class closed over one service instance."""

    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        server_version = "repro-serve"

        def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
            pass  # request logging goes through obs spans, not stderr

        # -- plumbing ----------------------------------------------------

        def _reply_json(self, status: int, value: Any) -> None:
            body = (
                json.dumps(value, indent=2, ensure_ascii=False) + "\n"
            ).encode("utf-8")
            self._reply_bytes(status, body)

        def _reply_bytes(self, status: int, body: bytes) -> None:
            self.send_response(status)
            self.send_header("Content-Type", "application/json; charset=utf-8")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _read_body(self) -> dict[str, Any]:
            length = int(self.headers.get("Content-Length") or 0)
            raw = self.rfile.read(length) if length else b""
            if not raw:
                return {}
            try:
                body = json.loads(raw)
            except ValueError as exc:
                raise ServiceError(400, f"request body is not JSON: {exc}")
            if not isinstance(body, dict):
                raise ServiceError(400, "request body must be a JSON object")
            return body

        def _dispatch(self, method: str) -> None:
            parsed = urlparse(self.path)
            # Unquote per segment, after splitting: %2F inside one
            # segment (e.g. a trial label) must not become a separator.
            parts = [unquote(p) for p in parsed.path.split("/") if p]
            counters.add("serve.request")
            try:
                with span("serve.request", method=method, path=parsed.path):
                    self._route(method, parts, dict(parse_qsl(parsed.query)))
            except ServiceError as exc:
                counters.add("serve.request.error")
                self._reply_json(exc.status, {"error": exc.message})
            except StoreError as exc:
                counters.add("serve.request.error")
                self._reply_json(403, {"error": str(exc)})
            except BrokenPipeError:
                pass  # client went away mid-reply
            except Exception as exc:  # one bad request must not kill serve
                counters.add("serve.request.error")
                self._reply_json(
                    500, {"error": f"{type(exc).__name__}: {exc}"}
                )

        # -- routing -----------------------------------------------------

        def _route(
            self, method: str, parts: list[str], params: dict[str, str]
        ) -> None:
            if method == "GET":
                self._route_get(parts, params)
            else:
                self._route_post(parts)

        def _route_get(
            self, parts: list[str], params: dict[str, str]
        ) -> None:
            if parts == ["health"]:
                return self._reply_json(200, service.health())
            if parts == ["catalog"]:
                return self._reply_json(200, service.catalog())
            if parts == ["solve"]:
                return self._reply_json(200, service.solve(params))
            if parts == ["sweeps"]:
                return self._reply_json(200, {"sweeps": service.sweeps()})
            if len(parts) == 2 and parts[0] == "sweeps":
                return self._reply_json(200, service.sweep_summary(parts[1]))
            if len(parts) == 3 and parts[0] == "sweeps":
                if parts[2] == "view":
                    return self._reply_bytes(200, service.view(parts[1]))
                if parts[2] == "tables":
                    digest = service._resolve_digest(parts[1])
                    return self._reply_json(
                        200, {"tables": service.store.table_ids(digest)}
                    )
                if parts[2] == "dag":
                    return self._reply_json(
                        200, service.sweep_provenance(parts[1])
                    )
            if (
                len(parts) == 4
                and parts[0] == "sweeps"
                and parts[2] == "tables"
            ):
                return self._reply_bytes(
                    200, service.table(parts[1], parts[3])
                )
            if len(parts) == 2 and parts[0] == "trials":
                return self._reply_json(200, service.trial(parts[1]))
            if len(parts) == 2 and parts[0] == "provenance":
                return self._reply_json(
                    200, service.trial_provenance(parts[1])
                )
            if parts == ["bench"]:
                return self._reply_json(200, service.bench())
            if parts == ["jobs"]:
                return self._reply_json(200, {"jobs": service.jobs()})
            if len(parts) == 2 and parts[0] == "jobs":
                return self._reply_json(200, service.job(parts[1]))
            raise ServiceError(
                404,
                f"no route GET /{'/'.join(parts)}; see docs/SERVICE.md "
                f"for the endpoint table",
            )

        def _route_post(self, parts: list[str]) -> None:
            if parts == ["sweeps"]:
                return self._reply_json(
                    202, service.submit_sweep(self._read_body())
                )
            if parts == ["ingest"]:
                return self._reply_json(200, service.ingest(self._read_body()))
            if parts == ["shutdown"]:
                self._reply_json(200, {"status": "shutting down"})
                # shutdown() blocks until serve_forever returns, so it
                # must run off the handler thread.
                threading.Thread(target=service.stop, daemon=True).start()
                return None
            raise ServiceError(404, f"no route POST /{'/'.join(parts)}")

        def do_GET(self) -> None:  # noqa: N802 (http.server contract)
            self._dispatch("GET")

        def do_POST(self) -> None:  # noqa: N802 (http.server contract)
            self._dispatch("POST")

    return Handler
