"""The results service layer: indexed store, provenance DAG, HTTP API.

``repro.serve`` turns the repo's flat result files into a queryable,
long-running service while keeping every deterministic byte sacred:

- :mod:`repro.serve.store` — :class:`ResultStore`, a sqlite index over
  ingested ``SWEEP_*.json`` artifacts, ``SWEEP_*.journal`` checkpoints,
  and ``BENCH_history.jsonl``, keyed by content-addressed digests;
  ingest is idempotent (same digest → no-op) and fail-open (corrupt
  files skip with a warning);
- :mod:`repro.serve.dag` — :func:`provenance` / :func:`sweep_dag`,
  the scenario → trial → artifact → output provenance graph as JSON;
- :mod:`repro.serve.service` — :class:`ReproService`, the
  stdlib-``http.server`` threaded API behind ``repro serve``: catalog,
  warm-cache ``/solve``, byte-identical table serving, bench trends,
  async sweep submission.

Like every other subsystem, serve is a library layer below the CLI:
nothing here imports :mod:`repro.cli`.
"""

from repro.serve.dag import provenance, sweep_dag
from repro.serve.service import ReproService, ServiceError, solve_spec
from repro.serve.store import (
    IngestResult,
    ResultStore,
    StoreError,
    canonical_json,
    file_digest,
    parse_solve_label,
    served_trial_id,
)

__all__ = [
    "IngestResult",
    "ReproService",
    "ResultStore",
    "ServiceError",
    "StoreError",
    "canonical_json",
    "file_digest",
    "parse_solve_label",
    "provenance",
    "served_trial_id",
    "solve_spec",
    "sweep_dag",
]
