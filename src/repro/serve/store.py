"""The sqlite-indexed result store behind ``repro serve`` / ``repro ingest``.

Every number this repo produces already lives in a flat file —
``SWEEP_*.json`` artifacts, ``SWEEP_*.journal`` checkpoints,
``BENCH_history.jsonl`` trend rows. :class:`ResultStore` ingests those
files into queryable sqlite tables keyed by the **same content-addressed
digests** the trial cache uses (SHA-256 of the bytes for files, the
:func:`repro.runner.resilience.trial_digest` identity convention for
trials), so a number served over HTTP is traceable back to the exact
artifact — and through it, the exact scenario and seed — that produced
it.

Two invariants, both inherited from the runner subsystem:

- **The deterministic view is sacred.** Tables are stored as the
  *canonical serialization* (:func:`canonical_json` — exactly the
  ``json.dumps`` options :func:`repro.runner.artifacts.write_sweep_artifact`
  uses), so any table served from the store is byte-identical to
  re-serializing the same slice of the on-disk artifact. Nothing is
  reformatted, rounded, or re-aggregated on the way out.
- **Ingest is idempotent and fail-open.** A file whose digest is
  already indexed is a no-op (``already-ingested``), never a duplicate
  row; a corrupt or truncated file is skipped with a warning
  (``skipped``), never an error — the same convention as the trial
  cache's corrupt-record handling.

The store is safe for multi-threaded readers/writers within one
process (one connection, one lock — the HTTP service's threading
model); cross-process writers should each use their own store path.
"""

from __future__ import annotations

import hashlib
import json
import sqlite3
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable

from repro.obs import counters

#: Bump when the sqlite schema changes shape; old stores are then
#: refused with a clear error (re-ingest into a fresh store).
SCHEMA_VERSION = 1

#: Artifact kinds the ingester recognizes.
KIND_SWEEP = "sweep"
KIND_BENCH = "bench-history"
KIND_JOURNAL = "journal"

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS artifacts (
    digest TEXT PRIMARY KEY,
    kind TEXT NOT NULL,
    name TEXT NOT NULL,
    path TEXT NOT NULL,
    ingested_at REAL NOT NULL,
    size_bytes INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS sweeps (
    artifact_digest TEXT PRIMARY KEY REFERENCES artifacts(digest),
    name TEXT NOT NULL,
    master_seed INTEGER,
    num_trials INTEGER NOT NULL,
    partial INTEGER NOT NULL,
    workers INTEGER,
    wall_seconds REAL,
    view TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS trials (
    trial_id TEXT NOT NULL,
    artifact_digest TEXT NOT NULL REFERENCES artifacts(digest),
    idx INTEGER NOT NULL,
    kind TEXT NOT NULL,
    key TEXT NOT NULL,
    label TEXT NOT NULL,
    seed INTEGER,
    seconds REAL,
    worker INTEGER,
    cached INTEGER,
    resumed INTEGER,
    scenario TEXT,
    PRIMARY KEY (artifact_digest, idx)
);
CREATE INDEX IF NOT EXISTS trials_by_id ON trials(trial_id);
CREATE INDEX IF NOT EXISTS trials_by_label ON trials(label);
CREATE TABLE IF NOT EXISTS sweep_tables (
    artifact_digest TEXT NOT NULL REFERENCES artifacts(digest),
    exp_id TEXT NOT NULL,
    title TEXT,
    content TEXT NOT NULL,
    PRIMARY KEY (artifact_digest, exp_id)
);
CREATE TABLE IF NOT EXISTS bench_rows (
    artifact_digest TEXT NOT NULL REFERENCES artifacts(digest),
    line_no INTEGER NOT NULL,
    date TEXT,
    mode TEXT,
    content TEXT NOT NULL,
    PRIMARY KEY (artifact_digest, line_no)
);
CREATE TABLE IF NOT EXISTS journals (
    artifact_digest TEXT PRIMARY KEY REFERENCES artifacts(digest),
    sweep_name TEXT NOT NULL,
    salt TEXT,
    num_trials INTEGER,
    entries INTEGER NOT NULL
);
"""


class StoreError(RuntimeError):
    """The store refused an operation (readonly, schema mismatch, …)."""


def canonical_json(value: Any) -> str:
    """The store's one serialization of JSON values.

    Exactly the options :func:`repro.runner.artifacts.write_sweep_artifact`
    writes artifacts with, so a slice re-serialized here is
    byte-identical to the same slice re-serialized from the file.
    """
    return json.dumps(value, indent=2, ensure_ascii=False)


def file_digest(data: bytes) -> str:
    """Content address of an ingested file: SHA-256 of its bytes."""
    return hashlib.sha256(data).hexdigest()


def served_trial_id(artifact_digest: str, index: int, label: str,
                    seed: int | None) -> str:
    """The stable id of one ingested trial row.

    Artifacts carry a trial's position, label, and seed but not its
    kwargs, so the runner's kwargs-based
    :func:`~repro.runner.resilience.trial_digest` cannot be recomputed
    here; this digest addresses the trial *as ingested* — scoped to its
    artifact, stable across re-ingests of identical bytes.
    """
    material = repr((artifact_digest, index, label, seed))
    return hashlib.sha256(material.encode("utf-8")).hexdigest()[:16]


def parse_solve_label(label: str) -> dict[str, Any] | None:
    """Scenario coordinates of a grid solve trial, parsed from its label.

    Grid labels are generated by
    :func:`repro.runner.trials.sweep_from_grid` as
    ``family/n=N/problem/algorithm#t[@engine][!d=..,c=..]``; anything
    that does not match reads as ``None`` (no scenario node in the DAG,
    never an ingest failure).
    """
    import re

    match = re.fullmatch(
        r"(?P<family>[^/]+)/n=(?P<n>\d+)/(?P<problem>[^/]+)/"
        r"(?P<algorithm>[^/#@!]+)#(?P<trial>\d+)"
        r"(?:@(?P<engine>[^!]+))?(?:!(?P<faults>.*))?",
        label,
    )
    if match is None:
        return None
    parsed: dict[str, Any] = {
        "family": match["family"],
        "n": int(match["n"]),
        "problem": match["problem"],
        "algorithm": match["algorithm"],
        "trial": int(match["trial"]),
    }
    if match["engine"]:
        parsed["engine"] = match["engine"]
    if match["faults"]:
        parsed["faults"] = match["faults"]
    return parsed


@dataclass(frozen=True)
class IngestResult:
    """What one :meth:`ResultStore.ingest_path` call did.

    ``status`` is ``"ingested"`` (new rows), ``"already-ingested"``
    (same digest seen before — a no-op), or ``"skipped"`` (corrupt,
    truncated, or unrecognized file — fail-open with ``detail``).
    """

    path: str
    status: str
    kind: str | None = None
    digest: str | None = None
    detail: str = ""

    @property
    def ok(self) -> bool:
        """True unless the file was skipped."""
        return self.status != "skipped"

    def render(self) -> str:
        """The one-line message ``repro ingest`` prints per file."""
        short = (self.digest or "")[:12]
        if self.status == "ingested":
            return f"ingested {self.kind} {short} {self.path} ({self.detail})"
        if self.status == "already-ingested":
            return f"already ingested {short} {self.path} (no-op)"
        return f"warning: skipped {self.path} ({self.detail})"


class ResultStore:
    """The sqlite-indexed store of ingested results.

    Args:
        path: sqlite database path (created on first write), or
            ``":memory:"`` for an ephemeral store.
        readonly: refuse every write (ingest raises
            :class:`StoreError`); the database file must already exist.
    """

    def __init__(self, path: str | Path = "RESULTS.db",
                 readonly: bool = False) -> None:
        self.path = str(path)
        self.readonly = readonly
        self._lock = threading.Lock()
        if readonly and self.path != ":memory:" and not Path(self.path).exists():
            raise StoreError(f"readonly store {self.path!r} does not exist")
        self._db = sqlite3.connect(self.path, check_same_thread=False)
        self._db.row_factory = sqlite3.Row
        with self._lock:
            if readonly:
                self._check_schema()
            else:
                self._db.executescript(_SCHEMA)
                row = self._db.execute(
                    "SELECT value FROM meta WHERE key = 'schema_version'"
                ).fetchone()
                if row is None:
                    self._db.execute(
                        "INSERT INTO meta (key, value) VALUES (?, ?)",
                        ("schema_version", str(SCHEMA_VERSION)),
                    )
                    self._db.commit()
                elif int(row["value"]) != SCHEMA_VERSION:
                    raise StoreError(
                        f"store {self.path!r} has schema version "
                        f"{row['value']}, this code expects {SCHEMA_VERSION}; "
                        f"re-ingest into a fresh store"
                    )

    def _check_schema(self) -> None:
        try:
            row = self._db.execute(
                "SELECT value FROM meta WHERE key = 'schema_version'"
            ).fetchone()
        except sqlite3.DatabaseError as exc:
            raise StoreError(f"{self.path!r} is not a result store") from exc
        if row is None or int(row["value"]) != SCHEMA_VERSION:
            raise StoreError(
                f"store {self.path!r} missing or mismatched schema version"
            )

    def close(self) -> None:
        """Close the underlying sqlite connection."""
        with self._lock:
            self._db.close()

    # -- ingest --------------------------------------------------------------

    def ingest_path(self, path: str | Path) -> IngestResult:
        """Index one artifact file; idempotent and fail-open.

        Recognizes ``SWEEP_*.json`` sweep artifacts, append-only
        ``SWEEP_*.journal`` checkpoints, and ``BENCH_history.jsonl``
        trend files by *content*, not by name. Unrecognized or corrupt
        content is skipped with a warning detail, matching the trial
        cache's fail-open read convention.
        """
        if self.readonly:
            raise StoreError("store is readonly; ingest refused")
        path = Path(path)
        try:
            data = path.read_bytes()
        except OSError as exc:
            return IngestResult(
                path=str(path), status="skipped", detail=f"unreadable: {exc}"
            )
        digest = file_digest(data)
        with self._lock:
            known = self._db.execute(
                "SELECT kind FROM artifacts WHERE digest = ?", (digest,)
            ).fetchone()
        if known is not None:
            counters.add("serve.ingest.noop")
            return IngestResult(
                path=str(path), status="already-ingested",
                kind=known["kind"], digest=digest,
            )
        result = self._classify_and_ingest(path, data, digest)
        if result.status == "ingested":
            counters.add("serve.ingest")
        else:
            counters.add("serve.ingest.skipped")
        return result

    def ingest_many(self, paths: Iterable[str | Path]) -> list[IngestResult]:
        """:meth:`ingest_path` over many files, in order."""
        return [self.ingest_path(p) for p in paths]

    def _classify_and_ingest(
        self, path: Path, data: bytes, digest: str
    ) -> IngestResult:
        text = None
        try:
            text = data.decode("utf-8")
        except UnicodeDecodeError:
            return IngestResult(
                path=str(path), status="skipped", detail="not utf-8 text"
            )
        try:
            payload = json.loads(text)
        except ValueError:
            payload = None
        if isinstance(payload, dict) and "sweep" in payload and "tables" in payload:
            return self._ingest_sweep(path, payload, digest, len(data))
        # Line-oriented formats: journal (typed header) or bench history.
        lines = text.splitlines()
        first: Any = None
        if lines:
            try:
                first = json.loads(lines[0])
            except ValueError:
                first = None
        if isinstance(first, dict) and first.get("kind") == "sweep-journal":
            return self._ingest_journal(path, first, lines, digest, len(data))
        if any(_bench_row(line) is not None for line in lines):
            return self._ingest_bench(path, lines, digest, len(data))
        if isinstance(payload, dict):
            detail = "json without sweep/tables keys"
        elif payload is not None:
            detail = "json is not an artifact object"
        else:
            detail = "unrecognized or truncated content"
        return IngestResult(path=str(path), status="skipped", detail=detail)

    def _register_artifact(
        self, digest: str, kind: str, name: str, path: Path, size: int
    ) -> None:
        self._db.execute(
            "INSERT INTO artifacts (digest, kind, name, path, ingested_at, "
            "size_bytes) VALUES (?, ?, ?, ?, ?, ?)",
            (digest, kind, name, str(path), time.time(), size),
        )

    def _ingest_sweep(
        self, path: Path, payload: dict[str, Any], digest: str, size: int
    ) -> IngestResult:
        from repro.runner.artifacts import deterministic_view

        sweep = payload.get("sweep") or {}
        tables = payload.get("tables") or {}
        trials = sweep.get("trials")
        if not isinstance(trials, list) or not isinstance(tables, dict):
            return IngestResult(
                path=str(path), status="skipped",
                detail="artifact missing trials/tables lists",
            )
        timing = payload.get("timing") or {}
        timing_by_label = {
            t.get("label"): t for t in (timing.get("trials") or [])
            if isinstance(t, dict)
        }
        name = str(sweep.get("name", path.stem))
        with self._lock:
            self._register_artifact(digest, KIND_SWEEP, name, path, size)
            self._db.execute(
                "INSERT INTO sweeps (artifact_digest, name, master_seed, "
                "num_trials, partial, workers, wall_seconds, view) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    digest, name, sweep.get("master_seed"),
                    int(sweep.get("num_trials", len(trials))),
                    int(bool(payload.get("partial"))),
                    timing.get("workers"), timing.get("wall_seconds"),
                    canonical_json(deterministic_view(payload)),
                ),
            )
            for trial in trials:
                if not isinstance(trial, dict):
                    continue
                index = int(trial.get("index", 0))
                label = str(trial.get("label", ""))
                seed = trial.get("seed")
                provenance = timing_by_label.get(label) or {}
                scenario = None
                if trial.get("kind") == "solve":
                    parsed = parse_solve_label(label)
                    if parsed is not None:
                        parsed["seed"] = seed
                        scenario = json.dumps(parsed, sort_keys=True)
                self._db.execute(
                    "INSERT OR REPLACE INTO trials (trial_id, "
                    "artifact_digest, idx, kind, key, label, seed, seconds, "
                    "worker, cached, resumed, scenario) "
                    "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                    (
                        served_trial_id(digest, index, label, seed),
                        digest, index,
                        str(trial.get("kind", "")), str(trial.get("key", "")),
                        label, seed, provenance.get("seconds"),
                        provenance.get("worker"),
                        int(bool(provenance.get("cached"))),
                        int(bool(provenance.get("resumed"))),
                        scenario,
                    ),
                )
            for exp_id, table in tables.items():
                title = table.get("title") if isinstance(table, dict) else None
                self._db.execute(
                    "INSERT INTO sweep_tables (artifact_digest, exp_id, "
                    "title, content) VALUES (?, ?, ?, ?)",
                    (digest, str(exp_id), title, canonical_json(table)),
                )
            self._db.commit()
        return IngestResult(
            path=str(path), status="ingested", kind=KIND_SWEEP, digest=digest,
            detail=f"{len(trials)} trial(s), {len(tables)} table(s)",
        )

    def _ingest_journal(
        self, path: Path, header: dict[str, Any], lines: list[str],
        digest: str, size: int,
    ) -> IngestResult:
        from repro.runner.resilience import SweepJournal

        entries = 0
        for line in lines[1:]:
            if SweepJournal._decode_entry(line) is None:
                break  # corrupt tail: count the valid prefix, fail open
            entries += 1
        name = str(header.get("sweep", path.stem))
        with self._lock:
            self._register_artifact(digest, KIND_JOURNAL, name, path, size)
            self._db.execute(
                "INSERT INTO journals (artifact_digest, sweep_name, salt, "
                "num_trials, entries) VALUES (?, ?, ?, ?, ?)",
                (digest, name, header.get("salt"),
                 header.get("num_trials"), entries),
            )
            self._db.commit()
        return IngestResult(
            path=str(path), status="ingested", kind=KIND_JOURNAL,
            digest=digest, detail=f"{entries} checkpointed trial(s)",
        )

    def _ingest_bench(
        self, path: Path, lines: list[str], digest: str, size: int
    ) -> IngestResult:
        rows = [row for row in map(_bench_row, lines) if row is not None]
        with self._lock:
            self._register_artifact(
                digest, KIND_BENCH, path.name, path, size
            )
            for line_no, row in enumerate(rows):
                self._db.execute(
                    "INSERT INTO bench_rows (artifact_digest, line_no, date, "
                    "mode, content) VALUES (?, ?, ?, ?, ?)",
                    (digest, line_no, row.get("date"), row.get("mode"),
                     json.dumps(row, sort_keys=True)),
                )
            self._db.commit()
        return IngestResult(
            path=str(path), status="ingested", kind=KIND_BENCH, digest=digest,
            detail=f"{len(rows)} bench row(s)",
        )

    # -- queries -------------------------------------------------------------

    def counts(self) -> dict[str, int]:
        """Row counts per table — the service's health summary."""
        out: dict[str, int] = {}
        with self._lock:
            for table in ("artifacts", "sweeps", "trials", "sweep_tables",
                          "bench_rows", "journals"):
                out[table] = self._db.execute(
                    f"SELECT COUNT(*) AS c FROM {table}"  # noqa: S608
                ).fetchone()["c"]
        return out

    def artifacts(self) -> list[dict[str, Any]]:
        """Every ingested artifact, in ingest order."""
        with self._lock:
            rows = self._db.execute(
                "SELECT digest, kind, name, path, size_bytes FROM artifacts "
                "ORDER BY ingested_at, digest"
            ).fetchall()
        return [dict(row) for row in rows]

    def sweeps(self) -> list[dict[str, Any]]:
        """Every ingested sweep artifact's summary, in ingest order."""
        with self._lock:
            rows = self._db.execute(
                "SELECT s.artifact_digest, s.name, s.master_seed, "
                "s.num_trials, s.partial, s.workers, s.wall_seconds, a.path "
                "FROM sweeps s JOIN artifacts a ON a.digest = "
                "s.artifact_digest ORDER BY a.ingested_at, s.artifact_digest"
            ).fetchall()
        return [dict(row) for row in rows]

    def resolve_sweep(self, ref: str) -> str | None:
        """A sweep artifact digest from a digest prefix or sweep name.

        Names resolve to the most recently ingested sweep of that name;
        ambiguous digest prefixes resolve to ``None``.
        """
        with self._lock:
            rows = self._db.execute(
                "SELECT artifact_digest FROM sweeps WHERE artifact_digest "
                "LIKE ?", (ref + "%",)
            ).fetchall()
            if len(rows) == 1:
                return rows[0]["artifact_digest"]
            if len(rows) > 1:
                return None
            row = self._db.execute(
                "SELECT s.artifact_digest FROM sweeps s JOIN artifacts a "
                "ON a.digest = s.artifact_digest WHERE s.name = ? "
                "ORDER BY a.ingested_at DESC LIMIT 1", (ref,)
            ).fetchone()
        return row["artifact_digest"] if row else None

    def sweep(self, digest: str) -> dict[str, Any] | None:
        """One ingested sweep's summary plus its table ids."""
        with self._lock:
            row = self._db.execute(
                "SELECT s.*, a.path FROM sweeps s JOIN artifacts a ON "
                "a.digest = s.artifact_digest WHERE s.artifact_digest = ?",
                (digest,),
            ).fetchone()
            if row is None:
                return None
            tables = self._db.execute(
                "SELECT exp_id, title FROM sweep_tables WHERE "
                "artifact_digest = ? ORDER BY exp_id", (digest,)
            ).fetchall()
        summary = {k: row[k] for k in row.keys() if k != "view"}
        summary["tables"] = [dict(t) for t in tables]
        return summary

    def view_bytes(self, digest: str) -> bytes | None:
        """The canonical deterministic view ({"sweep", "tables"}) bytes."""
        with self._lock:
            row = self._db.execute(
                "SELECT view FROM sweeps WHERE artifact_digest = ?", (digest,)
            ).fetchone()
        return row["view"].encode("utf-8") if row else None

    def table_ids(self, digest: str) -> list[str]:
        """The experiment ids of one sweep's stored tables."""
        with self._lock:
            rows = self._db.execute(
                "SELECT exp_id FROM sweep_tables WHERE artifact_digest = ? "
                "ORDER BY exp_id", (digest,)
            ).fetchall()
        return [row["exp_id"] for row in rows]

    def table_bytes(self, digest: str, exp_id: str) -> bytes | None:
        """One table's canonical bytes (the byte-identity contract)."""
        with self._lock:
            row = self._db.execute(
                "SELECT content FROM sweep_tables WHERE artifact_digest = ? "
                "AND exp_id = ?", (digest, exp_id)
            ).fetchone()
        return row["content"].encode("utf-8") if row else None

    def trials_of(self, digest: str) -> list[dict[str, Any]]:
        """One sweep's ingested trial rows, in spec order."""
        with self._lock:
            rows = self._db.execute(
                "SELECT * FROM trials WHERE artifact_digest = ? ORDER BY idx",
                (digest,),
            ).fetchall()
        return [self._trial_dict(row) for row in rows]

    def trial(self, ref: str) -> dict[str, Any] | None:
        """One trial by id (or unique label), newest artifact first."""
        with self._lock:
            row = self._db.execute(
                "SELECT t.* FROM trials t JOIN artifacts a ON a.digest = "
                "t.artifact_digest WHERE t.trial_id = ? OR t.label = ? "
                "ORDER BY a.ingested_at DESC LIMIT 1", (ref, ref)
            ).fetchone()
        return None if row is None else self._trial_dict(row)

    @staticmethod
    def _trial_dict(row: sqlite3.Row) -> dict[str, Any]:
        trial = dict(row)
        scenario = trial.pop("scenario", None)
        trial["scenario"] = json.loads(scenario) if scenario else None
        trial["cached"] = bool(trial.get("cached"))
        trial["resumed"] = bool(trial.get("resumed"))
        return trial

    def journals_for(self, sweep_name: str) -> list[dict[str, Any]]:
        """Ingested journals checkpointing sweeps of this name."""
        with self._lock:
            rows = self._db.execute(
                "SELECT * FROM journals WHERE sweep_name = ? "
                "ORDER BY artifact_digest", (sweep_name,)
            ).fetchall()
        return [dict(row) for row in rows]

    def bench_source(self) -> dict[str, Any] | None:
        """The most recently ingested bench-history artifact."""
        with self._lock:
            row = self._db.execute(
                "SELECT digest, path FROM artifacts WHERE kind = ? "
                "ORDER BY ingested_at DESC, digest LIMIT 1", (KIND_BENCH,)
            ).fetchone()
        return dict(row) if row else None

    def bench_rows(self) -> list[dict[str, Any]]:
        """Trend rows of the latest ingested bench history, file order.

        Row for row what :func:`repro.obs.render.load_bench_history`
        parses from the file, so the store-backed ``repro stats --bench
        --store`` renders the identical trajectory.
        """
        source = self.bench_source()
        if source is None:
            return []
        with self._lock:
            rows = self._db.execute(
                "SELECT content FROM bench_rows WHERE artifact_digest = ? "
                "ORDER BY line_no", (source["digest"],)
            ).fetchall()
        return [json.loads(row["content"]) for row in rows]


def _bench_row(line: str) -> dict[str, Any] | None:
    """Parse one bench-history line (same acceptance as
    :func:`repro.obs.render.load_bench_history`)."""
    line = line.strip()
    if not line:
        return None
    try:
        row = json.loads(line)
    except ValueError:
        return None
    if isinstance(row, dict) and "date" in row:
        return row
    return None
