"""Picklable trial/sweep specifications and deterministic seed derivation.

A sweep is described *entirely up front* as a flat, ordered tuple of
:class:`TrialSpec` values. Every spec is a small frozen record of
primitives (plus, at most, a picklable problem instance in its kwargs),
so the same spec can be executed in-process, shipped to a worker
process, or written to a JSON artifact for provenance. Aggregation
consumes trial payloads **in spec order**, never in completion order —
that is what makes the aggregate independent of the worker count.

Seed derivation is content-addressed: :func:`derive_seed` hashes the
master seed together with the trial's identifying coordinates, so adding
or reordering trials never shifts the seeds of the others (a counter
would).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any

#: Trial kinds understood by :mod:`repro.runner.trials`.
KIND_EXPERIMENT = "experiment"
KIND_SOLVE = "solve"


def derive_seed(master_seed: int, *coordinates: Any) -> int:
    """Derive a 63-bit trial seed from a master seed and trial coordinates.

    Deterministic across processes and Python versions (SHA-256 of the
    ``repr`` of the coordinate tuple — no ``hash()``, which is salted).
    """
    material = repr((master_seed, *coordinates)).encode("utf-8")
    digest = hashlib.sha256(material).digest()
    return int.from_bytes(digest[:8], "big") >> 1


@dataclass(frozen=True)
class TrialSpec:
    """One schedulable unit of a sweep.

    Attributes:
        index: position in the sweep; aggregation orders payloads by it.
        kind: ``"experiment"`` (an E-series plan trial) or ``"solve"``
            (one seeded ``(family, n, problem, algorithm)`` run).
        key: the experiment id (e.g. ``"E9"``) for experiment trials,
            or the problem name for solve trials.
        label: human-readable name for progress and error messages.
        kwargs: the trial function's keyword arguments as a tuple of
            ``(name, value)`` pairs — hashable and picklable.
        seed: the derived per-trial seed, when the trial is seeded at
            the sweep layer (solve grids); experiment trials carry
            their seeds inside ``kwargs`` and leave this ``None``.
    """

    index: int
    kind: str
    key: str
    label: str
    kwargs: tuple[tuple[str, Any], ...] = ()
    seed: int | None = None

    def kwargs_dict(self) -> dict[str, Any]:
        return dict(self.kwargs)

    def describe(self) -> dict[str, Any]:
        """JSON-able identity (no payloads, no timings)."""
        return {
            "index": self.index,
            "kind": self.kind,
            "key": self.key,
            "label": self.label,
            "seed": self.seed,
        }


@dataclass(frozen=True)
class SweepSpec:
    """An ordered collection of trials plus the sweep's identity."""

    name: str
    trials: tuple[TrialSpec, ...]
    master_seed: int = 0

    def __post_init__(self) -> None:
        for position, trial in enumerate(self.trials):
            if trial.index != position:
                raise ValueError(
                    f"trial {trial.label!r} has index {trial.index}, "
                    f"expected {position}: sweep trials must be "
                    f"contiguously indexed in order"
                )

    @property
    def experiment_ids(self) -> tuple[str, ...]:
        """Distinct experiment keys, in first-appearance order."""
        seen: dict[str, None] = {}
        for trial in self.trials:
            if trial.kind == KIND_EXPERIMENT:
                seen.setdefault(trial.key, None)
        return tuple(seen)

    def describe(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "master_seed": self.master_seed,
            "num_trials": len(self.trials),
            "trials": [trial.describe() for trial in self.trials],
        }
