"""``SWEEP_*.json`` artifact output.

The artifact has two layers:

- a **deterministic** layer — the sweep's identity (spec, seeds) and
  the aggregated ``tables`` (rendered markdown plus findings), which is
  byte-identical for any worker count; the determinism tests compare
  exactly this layer across worker counts;
- a **provenance** layer — per-trial wall times, worker pids, cache
  hit/miss accounting, the worker count and total wall clock, which is
  expected to vary run to run and is kept in separate keys
  (``timing``).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.runner.executor import SweepResult


def sweep_artifact_payload(result: SweepResult) -> dict[str, Any]:
    """The JSON-able artifact content for a completed sweep."""
    experiments = result.experiments()
    stats = result.cache_stats
    tables = {
        exp_id: {
            "title": exp.title,
            "headers": [str(h) for h in exp.headers],
            "rows": [[str(cell) for cell in row] for row in exp.rows],
            "findings": {str(k): str(v) for k, v in exp.findings.items()},
            "render": exp.render(),
        }
        for exp_id, exp in experiments.items()
    }
    return {
        "sweep": result.spec.describe(),
        "tables": tables,
        "timing": {
            "workers": result.workers,
            "wall_seconds": result.wall_seconds,
            # Compute done by *this* run; cache hits carry historical
            # times, accounted separately under ``cache.seconds_saved``.
            "trial_seconds_total": sum(
                o.seconds for o in result.outcomes if not o.cached
            ),
            "cache": None if stats is None else stats.describe(),
            "trials": [
                {
                    "label": outcome.spec.label,
                    "seconds": outcome.seconds,
                    "worker": outcome.worker,
                    "cached": outcome.cached,
                }
                for outcome in result.outcomes
            ],
        },
    }


def deterministic_view(payload: dict[str, Any]) -> dict[str, Any]:
    """The subset of an artifact payload that must not depend on the
    worker count or machine load."""
    return {"sweep": payload["sweep"], "tables": payload["tables"]}


def write_sweep_artifact(
    result: SweepResult, output_dir: str | Path = ".", tag: str | None = None
) -> Path:
    """Write ``SWEEP_<tag>.json`` (tag defaults to the sweep name)."""
    tag = tag or result.spec.name
    path = Path(output_dir) / f"SWEEP_{tag}.json"
    payload = sweep_artifact_payload(result)
    path.write_text(json.dumps(payload, indent=2, ensure_ascii=False) + "\n")
    return path
