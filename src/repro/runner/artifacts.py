"""``SWEEP_*.json`` artifact output.

The artifact has two layers:

- a **deterministic** layer — the sweep's identity (spec, seeds) and
  the aggregated ``tables`` (rendered markdown plus findings), which is
  byte-identical for any worker count; the determinism tests compare
  exactly this layer across worker counts;
- a **provenance** layer — per-trial wall times, worker pids, cache
  hit/miss accounting, pool restarts, the worker count and total wall
  clock, which is expected to vary run to run and is kept in separate
  keys (``timing``, ``failures``, ``observability``).

The ``observability`` block (merged counters, per-worker aggregates,
retry taxonomy, peak RSS — see :mod:`repro.obs`) is provenance by
construction: pids and RSS vary run to run, so it lives outside
:func:`deterministic_view` exactly like ``timing``.

A sweep run with ``keep_going`` may complete with failures; its
artifact then aggregates the completed trials (partial, explicitly
marked) and embeds the full
:class:`~repro.runner.resilience.FailureReport` — failed trials listed
with their remote tracebacks — under ``failures``. The deterministic
view never includes it.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.runner.executor import SweepResult


def sweep_artifact_payload(result: SweepResult) -> dict[str, Any]:
    """The JSON-able artifact content for a completed sweep.

    A keep-going sweep that collected failures aggregates only its
    completed trials — the artifact says so (``partial: true``) and
    carries the failure report alongside.
    """
    experiments = result.experiments(allow_partial=bool(result.failures))
    stats = result.cache_stats
    tables = {
        exp_id: {
            "title": exp.title,
            "headers": [str(h) for h in exp.headers],
            "rows": [[str(cell) for cell in row] for row in exp.rows],
            "findings": {str(k): str(v) for k, v in exp.findings.items()},
            "render": exp.render(),
        }
        for exp_id, exp in experiments.items()
    }
    return {
        "sweep": result.spec.describe(),
        "tables": tables,
        "partial": bool(result.failures),
        "failures": result.failure_report.describe(),
        "observability": result.observability,
        "timing": {
            "workers": result.workers,
            "wall_seconds": result.wall_seconds,
            "pool_restarts": result.pool_restarts,
            # Compute done by *this* run; cache hits and journal
            # resumes carry historical times, accounted separately
            # under ``cache.seconds_saved`` / the journal itself.
            "trial_seconds_total": sum(
                o.seconds
                for o in result.outcomes
                if not o.cached and not o.resumed
            ),
            "cache": None if stats is None else stats.describe(),
            "trials": [
                {
                    "label": outcome.spec.label,
                    "seconds": outcome.seconds,
                    "worker": outcome.worker,
                    "cached": outcome.cached,
                    "resumed": outcome.resumed,
                }
                for outcome in result.outcomes
            ],
        },
    }


def deterministic_view(payload: dict[str, Any]) -> dict[str, Any]:
    """The subset of an artifact payload that must not depend on the
    worker count or machine load."""
    return {"sweep": payload["sweep"], "tables": payload["tables"]}


def write_sweep_artifact(
    result: SweepResult, output_dir: str | Path = ".", tag: str | None = None
) -> Path:
    """Write ``SWEEP_<tag>.json`` (tag defaults to the sweep name)."""
    tag = tag or result.spec.name
    path = Path(output_dir) / f"SWEEP_{tag}.json"
    payload = sweep_artifact_payload(result)
    path.write_text(json.dumps(payload, indent=2, ensure_ascii=False) + "\n")
    return path
