"""Deterministic fault injection into the sweep executor itself.

The resilience layer (:mod:`repro.runner.resilience`) exists to survive
raising trials, hung stragglers, and workers that die hard — so it must
be *tested* by exactly those faults, on demand and reproducibly. This
module injects them at the top of the executor's per-trial entry point
(``_run_one``), in whichever process executes the trial.

A :class:`ChaosSpec` is env-driven (:data:`CHAOS_ENV` holds a JSON
object), so the CLI, tests, and CI can arm chaos without any code path
knowing about it::

    REPRO_CHAOS='{"match": "E4[", "mode": "exit", "times": 1,
                  "fuse": "/tmp/chaos-fuse"}' \\
        python -m repro sweep --quick --workers 2

Modes:

- ``raise`` — raise :class:`ChaosError` (exercises retry/keep-going);
- ``hang`` — sleep ``hang_seconds`` (exercises the per-trial timeout);
- ``exit`` — ``os._exit(exit_code)``: the worker dies without raising
  (exercises pool restart and unfinished-trial requeue).

Determinism: the spec fires on trials whose **label** contains
``match`` (labels are stable, spec-ordered identities), at most
``times`` times. Bounded firing across *processes* (pool workers,
restarted pools, resumed runs) is coordinated through ``fuse`` marker
files claimed with ``O_CREAT | O_EXCL`` — the k-th firing claims
``<fuse>.k`` atomically, so "crash exactly once, then succeed" works
even when the retry lands in a different worker process. Without a
``fuse``, firings are counted per process (fine for serial sweeps).
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field

from repro.runner.specs import TrialSpec

#: Environment variable the executor reads chaos specs from.
CHAOS_ENV = "REPRO_CHAOS"

MODES = ("raise", "hang", "exit")


class ChaosError(RuntimeError):
    """The injected failure of ``mode="raise"``."""


@dataclass
class ChaosSpec:
    """One armed fault: where it fires, what it does, how often.

    ``times <= 0`` means "every matching trial" (useful for asserting
    that budgets are enforced, e.g. a trial that crashes the pool on
    every attempt must exhaust ``max_pool_restarts``).
    """

    mode: str
    match: str = ""
    times: int = 1
    fuse: str | None = None
    hang_seconds: float = 3600.0
    exit_code: int = 32
    _fired: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ValueError(f"unknown chaos mode {self.mode!r}; one of {MODES}")

    def _claim_firing(self) -> bool:
        """Atomically claim one of the ``times`` allowed firings."""
        if self.times <= 0:
            return True
        if self.fuse is None:
            if self._fired >= self.times:
                return False
            self._fired += 1
            return True
        for k in range(self.times):
            try:
                fd = os.open(
                    f"{self.fuse}.{k}", os.O_CREAT | os.O_EXCL | os.O_WRONLY
                )
            except FileExistsError:
                continue
            os.close(fd)
            return True
        return False

    def maybe_fire(self, spec: TrialSpec) -> None:
        """Inject the fault if this trial matches and firings remain."""
        if self.match not in spec.label:
            return
        if not self._claim_firing():
            return
        if self.mode == "raise":
            raise ChaosError(
                f"chaos: injected failure in trial {spec.label!r}"
            )
        if self.mode == "hang":
            time.sleep(self.hang_seconds)
            return
        # mode == "exit": die without raising, like a segfault or OOM
        # kill — the parent only sees BrokenProcessPool.
        os._exit(self.exit_code)


#: Memoized (raw env value, parsed spec) so fuse-less ``times`` counts
#: persist across calls within one process.
_armed: tuple[str, ChaosSpec] | None = None


def chaos_from_env(environ: dict[str, str] | None = None) -> ChaosSpec | None:
    """The armed :class:`ChaosSpec`, or None. Malformed specs raise —
    armed-but-broken chaos must never silently test nothing."""
    global _armed
    raw = (environ if environ is not None else os.environ).get(CHAOS_ENV)
    if not raw:
        return None
    if _armed is not None and _armed[0] == raw:
        return _armed[1]
    payload = json.loads(raw)
    if not isinstance(payload, dict):
        raise ValueError(f"{CHAOS_ENV} must hold a JSON object, got: {raw!r}")
    spec = ChaosSpec(**payload)
    _armed = (raw, spec)
    return spec


def maybe_inject(spec: TrialSpec) -> None:
    """Executor hook: fire the env-armed chaos spec, if any, for this
    trial. Reads the environment on every call — workers inherit the
    parent's environment under both fork and spawn, and tests arm/
    disarm chaos per test via monkeypatch."""
    chaos = chaos_from_env()
    if chaos is not None:
        chaos.maybe_fire(spec)


__all__ = [
    "CHAOS_ENV",
    "ChaosError",
    "ChaosSpec",
    "chaos_from_env",
    "maybe_inject",
]
