"""Resilience layer for the sweep executor: retry, timeout, checkpoint.

A single raising trial, a hung straggler, or a worker that dies hard
must not abort a 10^5-trial sweep and throw away every completed trial.
This module supplies the three pieces the executor composes:

- :class:`RetryPolicy` — bounded re-execution of failed trials with a
  **deterministic** jittered backoff: the jitter is seeded from the
  trial's content-addressed identity (:func:`backoff_seed`), so two
  runs of the same sweep sleep the same schedule — retries never
  introduce nondeterminism into anything observable;
- :class:`TrialTimeoutError` + :func:`trial_deadline` — a per-trial
  wall-clock budget enforced *inside* the executing process via
  ``SIGALRM`` (where the platform has it), so a hung trial surfaces as
  a retriable exception instead of stalling the sweep forever;
- :class:`SweepJournal` — an append-only checkpoint of completed
  :class:`~repro.runner.executor.TrialOutcome`\\ s (``SWEEP_*.journal``
  next to the artifacts). One JSON line per trial, identity-addressed
  (a digest of kind/key/kwargs/seed, like the trial cache but without
  positional index or label) and checksummed; reads are **fail-open on
  a corrupt tail** exactly like :mod:`repro.runner.cache` — a torn
  last line after a crash costs one trial, never the journal. The
  parent process is the only writer, so plain appends are safe.
- :class:`TrialFailure` / :class:`FailureReport` — what ``--keep-going``
  collects instead of aborting: per-trial failure records carrying the
  remote traceback, embedded in the ``SweepResult`` and the artifact.
  Aggregation refuses partial input unless explicitly allowed
  (``--allow-partial``), so a degraded sweep still terminates with an
  explicit, attributable verdict — never a silently wrong aggregate.
"""

from __future__ import annotations

import base64
import hashlib
import json
import pickle
import random
import signal
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterator

from repro.obs import counters
from repro.obs.spans import event
from repro.runner.specs import TrialSpec

if TYPE_CHECKING:
    from repro.runner.executor import TrialOutcome

#: On-disk journal line format — bump when the record shape changes;
#: old journals then read as empty (resume recomputes, never misreads).
JOURNAL_FORMAT = 1


class TrialTimeoutError(RuntimeError):
    """A trial exceeded its per-trial wall-clock budget (retriable)."""


def trial_digest(spec: TrialSpec) -> str:
    """Identity digest of a trial: kind/key/kwargs/seed, nothing
    positional — the journal analogue of the cache key (no code salt;
    the journal header carries the salt once for the whole file)."""
    material = repr((spec.kind, spec.key, spec.kwargs, spec.seed))
    return hashlib.sha256(material.encode("utf-8")).hexdigest()[:32]


def backoff_seed(spec: TrialSpec) -> int:
    """Deterministic per-trial jitter seed, content-addressed off the
    same identity as :func:`trial_digest` (grid trials fold in their
    derived seed; experiment trials their kind/key/kwargs)."""
    return int(trial_digest(spec)[:15], 16)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded, deterministic re-execution of failed trials.

    Attributes:
        max_attempts: total attempts per trial (1 = never retry).
        retriable: exception classes worth retrying. The default covers
            only :class:`TrialTimeoutError` — a deterministic trial
            that raised will raise again, so blanket retries are
            opt-in (the CLI's ``--retries`` opts into ``Exception``
            because the operator asked for exactly that).
        backoff_base: first-retry delay in seconds (0 = no sleep).
        backoff_factor: multiplier per further attempt.
        backoff_max: delay ceiling.
        jitter: fraction of each delay that is randomized — drawn from
            a generator seeded by the trial identity and the attempt
            number, so the schedule is reproducible run to run.
    """

    max_attempts: int = 1
    retriable: tuple[type[BaseException], ...] = (TrialTimeoutError,)
    backoff_base: float = 0.0
    backoff_factor: float = 2.0
    backoff_max: float = 30.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff_base < 0:
            raise ValueError(f"backoff_base must be >= 0, got {self.backoff_base}")
        if not 0 <= self.jitter <= 1:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    def should_retry(self, exc: BaseException, attempt: int) -> bool:
        """Whether a trial that failed on ``attempt`` (1-based) with
        ``exc`` gets another try."""
        return attempt < self.max_attempts and isinstance(exc, self.retriable)

    def backoff_seconds(self, spec: TrialSpec, attempt: int) -> float:
        """The deterministic delay before retry number ``attempt``."""
        if self.backoff_base <= 0:
            return 0.0
        delay = min(
            self.backoff_base * self.backoff_factor ** (attempt - 1),
            self.backoff_max,
        )
        if self.jitter:
            rng = random.Random(backoff_seed(spec) * 1000003 + attempt)
            delay *= 1 - self.jitter + self.jitter * rng.random()
        return delay


@contextmanager
def trial_deadline(spec: TrialSpec, timeout: float | None) -> Iterator[None]:
    """Raise :class:`TrialTimeoutError` inside the current process if
    the body runs longer than ``timeout`` seconds.

    Uses ``SIGALRM``/``setitimer``, which interrupts pure-Python hangs
    (the common straggler mode here); platforms without ``SIGALRM``
    (Windows) or calls off the main thread degrade to "no deadline"
    rather than failing — the parent's pool-restart budget still bounds
    the damage a truly wedged worker can do.
    """
    if (
        timeout is None
        or timeout <= 0
        or not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        yield
        return

    def on_alarm(signum: int, frame: Any) -> None:
        # Emitted here, in the timing-out process, so the trace shows
        # *where* the deadline fired; the executor counts the taxonomy
        # parent-side when the exception reaches it.
        event("trial.timeout", label=spec.label, timeout=timeout)
        raise TrialTimeoutError(
            f"trial {spec.label!r} exceeded its {timeout}s wall-clock budget"
        )

    previous = signal.signal(signal.SIGALRM, on_alarm)
    signal.setitimer(signal.ITIMER_REAL, timeout)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


# -- keep-going failure collection -------------------------------------------


@dataclass(frozen=True)
class TrialFailure:
    """One trial that failed for good (retries exhausted or not
    retriable) under ``--keep-going``."""

    index: int
    label: str
    error_type: str
    message: str
    traceback: str
    attempts: int = 1

    def describe(self) -> dict[str, Any]:
        return {
            "index": self.index,
            "label": self.label,
            "error_type": self.error_type,
            "message": self.message,
            "traceback": self.traceback,
            "attempts": self.attempts,
        }


@dataclass(frozen=True)
class FailureReport:
    """All of a sweep's collected trial failures, in spec order."""

    failures: tuple[TrialFailure, ...] = ()

    def __bool__(self) -> bool:
        return bool(self.failures)

    def by_error_type(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for failure in self.failures:
            counts[failure.error_type] = counts.get(failure.error_type, 0) + 1
        return counts

    def describe(self) -> dict[str, Any]:
        return {
            "count": len(self.failures),
            "by_error_type": self.by_error_type(),
            "failures": [f.describe() for f in self.failures],
        }

    def summary(self) -> str:
        kinds = ", ".join(
            f"{count}× {name}"
            for name, count in sorted(self.by_error_type().items())
        )
        return f"{len(self.failures)} trial failure(s) ({kinds})"

    def render(self) -> str:
        """Human-readable report: one block per failure, remote
        traceback included."""
        lines = [self.summary()]
        for failure in self.failures:
            lines.append(
                f"  [{failure.index}] {failure.label}: "
                f"{failure.error_type}: {failure.message} "
                f"(after {failure.attempts} attempt(s))"
            )
            if failure.traceback:
                lines.extend(
                    "    | " + tb_line
                    for tb_line in failure.traceback.rstrip().splitlines()
                )
        return "\n".join(lines)


# -- checkpoint journal ------------------------------------------------------


@dataclass
class SweepJournal:
    """Append-only checkpoint of completed trial outcomes.

    Line 1 is a header (format version, sweep name, code salt); every
    further line is one completed trial — identity digest, timing, and
    the pickled payload (base64) guarded by a checksum. ``resume=True``
    loads whatever valid prefix exists and appends from there;
    otherwise the file is started fresh. A header whose salt does not
    match the current code version is stale: its entries are discarded
    (results from old code never resume into a new run), mirroring the
    trial cache's code-version invalidation.
    """

    path: Path
    resume: bool = False
    salt: str | None = None
    _entries: dict[str, dict[str, Any]] = field(default_factory=dict, repr=False)
    _loaded: bool = field(default=False, repr=False)

    def __post_init__(self) -> None:
        self.path = Path(self.path)
        if self.salt is None:
            from repro.runner.cache import code_version_salt

            self.salt = code_version_salt()

    # -- reading

    def load_outcomes(self, trials: tuple[TrialSpec, ...]) -> dict[int, "TrialOutcome"]:
        """Journaled outcomes for the trials of this sweep, keyed by
        trial index — what ``--resume`` prefills before executing."""
        from repro.runner.executor import TrialOutcome

        if not self.resume:
            return {}
        self._ensure_loaded()
        found: dict[int, TrialOutcome] = {}
        for trial in trials:
            record = self._entries.get(trial_digest(trial))
            if record is None:
                continue
            found[trial.index] = TrialOutcome(
                spec=trial,
                payload=record["payload"],
                seconds=record["seconds"],
                worker=0,
                resumed=True,
            )
        if found:
            counters.add("journal.resume", len(found))
            event("journal.resume", path=str(self.path), trials=len(found))
        return found

    def _ensure_loaded(self) -> None:
        if self._loaded:
            return
        self._loaded = True
        self._entries = {}
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                lines = handle.readlines()
        except OSError:
            return
        if not lines:
            return
        header = self._decode_header(lines[0])
        if header is None or header.get("salt") != self.salt:
            # Alien file or stale code version: nothing to resume.
            return
        for line in lines[1:]:
            record = self._decode_entry(line)
            if record is None:
                # Corrupt tail (torn write, truncation): fail open —
                # keep the valid prefix, recompute the rest.
                break
            self._entries[record["digest"]] = record

    @staticmethod
    def _decode_header(line: str) -> dict[str, Any] | None:
        try:
            header = json.loads(line)
        except ValueError:
            return None
        if (
            not isinstance(header, dict)
            or header.get("format") != JOURNAL_FORMAT
            or header.get("kind") != "sweep-journal"
        ):
            return None
        return header

    @staticmethod
    def _decode_entry(line: str) -> dict[str, Any] | None:
        try:
            record = json.loads(line)
            if not isinstance(record, dict):
                return None
            data = record["data"]
            digest = record["digest"]
            checksum = record["sha"]
            if hashlib.sha256(data.encode("ascii")).hexdigest()[:16] != checksum:
                return None
            payload = pickle.loads(base64.b64decode(data))
        except Exception:
            return None
        return {
            "digest": digest,
            "seconds": float(record.get("seconds", 0.0)),
            "payload": payload,
        }

    # -- writing

    def begin(self, sweep_name: str, num_trials: int) -> None:
        """Start (or continue) the journal file for one sweep run.

        Fresh journals are truncated and given a new header; resumed
        journals keep their valid contents — unless stale or alien, in
        which case they are restarted (resume already yielded nothing).
        """
        self._ensure_loaded()
        if self.resume and self._entries:
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        header = {
            "format": JOURNAL_FORMAT,
            "kind": "sweep-journal",
            "sweep": sweep_name,
            "num_trials": num_trials,
            "salt": self.salt,
        }
        with open(self.path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(header) + "\n")
        self._entries = {}

    def append(self, outcome: "TrialOutcome") -> bool:
        """Checkpoint one completed trial; best-effort (a full disk
        degrades to "no checkpoint", never to a failed sweep). The
        record is written in a single ``write`` call so a crashed run
        leaves at most one torn tail line, which reads fail-open."""
        digest = trial_digest(outcome.spec)
        if digest in self._entries:
            return True
        try:
            data = base64.b64encode(
                pickle.dumps(outcome.payload, protocol=pickle.HIGHEST_PROTOCOL)
            ).decode("ascii")
        except Exception:
            return False
        record = {
            "digest": digest,
            "index": outcome.spec.index,
            "label": outcome.spec.label,
            "seconds": outcome.seconds,
            "sha": hashlib.sha256(data.encode("ascii")).hexdigest()[:16],
            "data": data,
        }
        try:
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(json.dumps(record) + "\n")
                handle.flush()
        except OSError:
            return False
        self._entries[digest] = {
            "digest": digest,
            "seconds": outcome.seconds,
            "payload": outcome.payload,
        }
        counters.add("journal.append")
        return True


__all__ = [
    "FailureReport",
    "JOURNAL_FORMAT",
    "RetryPolicy",
    "SweepJournal",
    "TrialFailure",
    "TrialTimeoutError",
    "backoff_seed",
    "trial_deadline",
    "trial_digest",
]
