"""The sweep-runner subsystem: sharded, deterministic experiment sweeps.

Layers (each in its own module, importable independently):

- :mod:`repro.runner.specs` — ``TrialSpec``/``SweepSpec``: picklable,
  order-indexed descriptions of seeded trials, plus the deterministic
  per-trial seed derivation;
- :mod:`repro.runner.trials` — spec constructors (E-series experiment
  sweeps and seeded ``(family, n, problem, seed)`` solve grids) and the
  worker-side trial execution/aggregation against the experiment plans;
- :mod:`repro.runner.executor` — ``run_sweep``: serial with
  ``workers=1`` (the bit-identical reference path) or sharded across a
  ``multiprocessing`` pool, with ordered result aggregation and
  worker-crash surfacing;
- :mod:`repro.runner.artifacts` — ``SWEEP_*.json`` artifact output with
  a deterministic ``tables`` section (identical for any worker count).

The CLI entry point is ``python -m repro sweep`` (see :mod:`repro.cli`).
"""

from repro.runner.artifacts import sweep_artifact_payload, write_sweep_artifact
from repro.runner.executor import SweepError, SweepResult, TrialOutcome, run_sweep
from repro.runner.specs import SweepSpec, TrialSpec, derive_seed
from repro.runner.trials import (
    aggregate_sweep,
    execute_trial,
    sweep_from_experiments,
    sweep_from_grid,
)

__all__ = [
    "SweepError",
    "SweepResult",
    "SweepSpec",
    "TrialOutcome",
    "TrialSpec",
    "aggregate_sweep",
    "derive_seed",
    "execute_trial",
    "run_sweep",
    "sweep_artifact_payload",
    "sweep_from_experiments",
    "sweep_from_grid",
    "write_sweep_artifact",
]
