"""The sweep-runner subsystem: sharded, deterministic experiment sweeps.

Layers (each in its own module, importable independently):

- :mod:`repro.runner.specs` — ``TrialSpec``/``SweepSpec``: picklable,
  order-indexed descriptions of seeded trials, plus the deterministic
  per-trial seed derivation;
- :mod:`repro.runner.trials` — spec constructors (E-series experiment
  sweeps and seeded ``(family, n, problem, seed)`` solve grids) and the
  worker-side trial execution/aggregation against the experiment plans;
- :mod:`repro.runner.cache` — ``TrialCache``: a content-addressed
  on-disk store of trial results, keyed by SHA-256 of the trial's
  identity (kind, key, kwargs, derived seed) plus a code-version salt,
  so repeated sweeps and report regenerations skip heavy recomputation;
- :mod:`repro.runner.executor` — ``run_sweep``: serial with
  ``workers=1`` (the bit-identical reference path) or sharded across a
  ``multiprocessing`` pool, with ordered result aggregation,
  worker-crash surfacing, and optional cache lookup/store;
- :mod:`repro.runner.resilience` — ``RetryPolicy`` (bounded attempts,
  deterministic jittered backoff), the per-trial wall-clock deadline,
  the append-only ``SweepJournal`` checkpoint (``--resume``), and the
  ``FailureReport`` that ``--keep-going`` collects;
- :mod:`repro.runner.chaos` — env-armed deterministic fault injection
  (raise / hang / hard-exit) into the executor's per-trial entry
  point, so the resilience layer is itself tested by fault injection;
- :mod:`repro.runner.artifacts` — ``SWEEP_*.json`` artifact output with
  a deterministic ``tables`` section (identical for any worker count,
  cache state, retry schedule, or resume point).

The CLI entry points are ``python -m repro sweep`` and ``python -m
repro report`` (see :mod:`repro.cli`).
"""

from repro.runner.artifacts import sweep_artifact_payload, write_sweep_artifact
from repro.runner.cache import (
    DEFAULT_CACHE_DIR,
    CacheStats,
    TrialCache,
    code_version_salt,
    trial_cache_key,
)
from repro.runner.chaos import ChaosError, ChaosSpec, chaos_from_env
from repro.runner.executor import SweepError, SweepResult, TrialOutcome, run_sweep
from repro.runner.resilience import (
    FailureReport,
    RetryPolicy,
    SweepJournal,
    TrialFailure,
    TrialTimeoutError,
    trial_digest,
)
from repro.runner.specs import SweepSpec, TrialSpec, derive_seed
from repro.runner.trials import (
    aggregate_sweep,
    execute_trial,
    plan_catalog,
    sweep_from_experiments,
    sweep_from_grid,
)

__all__ = [
    "DEFAULT_CACHE_DIR",
    "CacheStats",
    "ChaosError",
    "ChaosSpec",
    "FailureReport",
    "RetryPolicy",
    "SweepError",
    "SweepJournal",
    "SweepResult",
    "SweepSpec",
    "TrialCache",
    "TrialFailure",
    "TrialOutcome",
    "TrialSpec",
    "TrialTimeoutError",
    "aggregate_sweep",
    "chaos_from_env",
    "code_version_salt",
    "derive_seed",
    "execute_trial",
    "plan_catalog",
    "run_sweep",
    "sweep_artifact_payload",
    "sweep_from_experiments",
    "sweep_from_grid",
    "trial_cache_key",
    "trial_digest",
    "write_sweep_artifact",
]
