"""Spec constructors and worker-side trial execution.

Two trial kinds:

- **experiment** — one trial of an E-series :class:`ExperimentPlan`
  (:data:`repro.analysis.experiments.TRIAL_PLANS`); the spec carries the
  plan's id plus the trial kwargs, and the worker resolves the plan *by
  name* in its own process, so nothing but primitives crosses the pipe;
- **solve** — one seeded ``(graph family, n, problem, algorithm)`` run,
  with the graph seed derived content-addressed from the sweep's master
  seed (:func:`repro.runner.specs.derive_seed`). Families, problems,
  and algorithms all resolve through the scenario registries
  (:data:`repro.graphs.families.GRAPH_FAMILIES`,
  :data:`repro.olocal.PROBLEMS`,
  :data:`repro.core.algorithms.ALGORITHMS`), so registered plugins get
  grid lanes — and content-addressed cache keys — for free.

Aggregation (:func:`aggregate_sweep`) folds ordered payloads back
through the plans' aggregators — the same code path the serial
``experiment_*`` wrappers use — so a sweep's tables are byte-identical
for any worker count.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.analysis.experiments import TRIAL_PLANS, ExperimentResult
from repro.runner.specs import (
    KIND_EXPERIMENT,
    KIND_SOLVE,
    SweepSpec,
    TrialSpec,
    derive_seed,
)

#: Cheap experiments for CI smoke sweeps (a few seconds serial).
QUICK_EXPERIMENTS = ("E1", "E2", "E4", "E5", "E6", "E10")

SOLVE_HEADERS = (
    "family",
    "n",
    "problem",
    "algorithm",
    "seed",
    "Δ",
    "awake",
    "avg awake",
    "rounds",
    "messages",
)


# -- spec construction -------------------------------------------------------


def plan_catalog() -> list[tuple[str, str, int]]:
    """``(experiment id, title, trial count)`` for every registered plan,
    in registry order — what ``repro sweep --list`` prints. Enumerating
    trials is cheap (no trial is executed)."""
    return [
        (exp_id, plan.title, len(plan.trials()))
        for exp_id, plan in TRIAL_PLANS.items()
    ]


def validate_experiments(experiments: Sequence[str]) -> None:
    """Reject unknown or duplicated experiment ids (KeyError listing
    the valid ids) — shared by sweep and report id validation."""
    unknown = [e for e in experiments if e not in TRIAL_PLANS]
    if unknown:
        raise KeyError(
            f"unknown experiment(s) {unknown}; choose from "
            f"{sorted(TRIAL_PLANS)}"
        )
    ids = list(experiments)
    duplicates = sorted({e for e in ids if ids.count(e) > 1})
    if duplicates:
        # aggregate_sweep groups payloads by experiment id, so a
        # duplicated id would fold twice the payloads into one table.
        raise KeyError(f"duplicate experiment id(s) {duplicates}")


def sweep_from_experiments(
    experiments: Sequence[str] | None = None,
    name: str = "eseries",
    quick: bool = False,
) -> SweepSpec:
    """Shard the selected E-series experiments into a sweep spec."""
    if experiments is None:
        experiments = QUICK_EXPERIMENTS if quick else tuple(TRIAL_PLANS)
    validate_experiments(experiments)
    trials = []
    for exp_id in experiments:
        plan = TRIAL_PLANS[exp_id]
        for label, kwargs in plan.trials():
            trials.append(
                TrialSpec(
                    index=len(trials),
                    kind=KIND_EXPERIMENT,
                    key=exp_id,
                    label=f"{exp_id}[{label}]",
                    kwargs=tuple(kwargs.items()),
                )
            )
    return SweepSpec(name=name, trials=tuple(trials))


def sweep_from_grid(
    families: Iterable[str],
    sizes: Iterable[int],
    problems: Iterable[str],
    algorithms: Iterable[str] = ("theorem1",),
    trials_per_config: int = 1,
    master_seed: int = 0,
    name: str = "grid",
    engines: Iterable[str] = (),
    fault_drop: float = 0.0,
    fault_corrupt: float = 0.0,
    fault_seed: int = 0,
    immune_rounds: Iterable[int] = (),
) -> SweepSpec:
    """Enumerate a seeded (family, n, problem, algorithm) solve grid.

    Families, problems, algorithms — and, when the ``engines`` axis is
    used, every (algorithm, engine) pair — are validated against the
    registries up front (like experiment ids in
    :func:`sweep_from_experiments`), so a typo fails at
    spec-construction time rather than inside a worker.

    A non-empty ``engines`` runs every grid cell once per engine. The
    per-trial seed is engine-*independent* (the same graph under every
    engine — an engine sweep doubles as a differential test), and the
    engine kwarg is appended **only when the axis is active**, so plain
    sweeps keep their pre-existing trial cache keys byte for byte —
    the same contract as the fault kwargs below.

    Nonzero ``fault_drop``/``fault_corrupt`` put every trial on the
    ``faulty-simulator`` engine; each trial's fault RNG seed is derived
    content-addressed from its trial seed (and ``fault_seed``), so the
    fault stream is as reproducible as the graph itself. Fault kwargs
    are appended to the trial kwargs **only when the fault axis is
    active**, so fault-free sweeps keep their pre-existing trial cache
    keys byte for byte. The fault axis forces the ``faulty-simulator``
    engine, so combining it with an ``engines`` axis is rejected.
    """
    from repro.core.algorithms import ALGORITHMS
    from repro.graphs.families import GRAPH_FAMILIES
    from repro.olocal import PROBLEMS
    from repro.registry import load_plugins

    load_plugins()
    bad = [f for f in families if f not in GRAPH_FAMILIES]
    if bad:
        raise KeyError(
            f"unknown famil{'ies' if len(bad) > 1 else 'y'} {bad}; "
            f"choose from {sorted(GRAPH_FAMILIES)}"
        )
    bad = [p for p in problems if p not in PROBLEMS]
    if bad:
        raise KeyError(
            f"unknown problem(s) {bad}; choose from "
            f"{sorted(PROBLEMS.alias_map())} or {sorted(PROBLEMS)}"
        )
    bad = [a for a in algorithms if a not in ALGORITHMS]
    if bad:
        raise KeyError(
            f"unknown algorithm(s) {bad}; choose from "
            f"{sorted(ALGORITHMS)} (aliases: {sorted(ALGORITHMS.alias_map())})"
        )
    # Canonicalize algorithm names so an alias ("bm21") and its target
    # ("baseline") derive the same seeds, cache keys, and table rows.
    # Problem names stay as given: they were (alias-)accepted verbatim
    # before the registry existed, and canonicalizing them now would
    # shift every pre-existing trial's derived seed and cache key.
    algorithms = [ALGORITHMS.resolve(a) for a in algorithms]
    faults_active = fault_drop > 0 or fault_corrupt > 0
    engine_list = list(engines)
    if engine_list and faults_active:
        raise KeyError(
            "the engines axis cannot be combined with fault injection "
            "(faults force the 'faulty-simulator' engine)"
        )
    for algorithm in algorithms:
        for engine in engine_list:
            # UnknownNameError is a KeyError: same failure mode as the
            # name checks above.
            ALGORITHMS.get(algorithm).validate_engine(engine)
    engine_axis: list[str | None] = engine_list or [None]
    immune = tuple(sorted(set(immune_rounds)))
    trials = []
    for family in families:
        for n in sizes:
            for problem in problems:
                for algorithm in algorithms:
                    for engine in engine_axis:
                        for t in range(trials_per_config):
                            seed = derive_seed(
                                master_seed, family, n, problem, algorithm, t
                            )
                            kwargs = [
                                ("family", family),
                                ("n", n),
                                ("problem", problem),
                                ("algorithm", algorithm),
                                ("seed", seed),
                            ]
                            label = (
                                f"{family}/n={n}/{problem}/{algorithm}#{t}"
                            )
                            if engine is not None:
                                kwargs.append(("engine", engine))
                                label += f"@{engine}"
                            if faults_active:
                                kwargs += [
                                    ("fault_drop", fault_drop),
                                    ("fault_corrupt", fault_corrupt),
                                    (
                                        "fault_seed",
                                        derive_seed(seed, "fault", fault_seed),
                                    ),
                                    ("immune_rounds", immune),
                                ]
                                label += (
                                    f"!d={fault_drop:g},c={fault_corrupt:g}"
                                )
                            trials.append(
                                TrialSpec(
                                    index=len(trials),
                                    kind=KIND_SOLVE,
                                    key=problem,
                                    label=label,
                                    kwargs=tuple(kwargs),
                                    seed=seed,
                                )
                            )
    return SweepSpec(name=name, trials=tuple(trials), master_seed=master_seed)


# -- worker-side execution ---------------------------------------------------


def solve_trial(
    family: str,
    n: int,
    problem: str,
    algorithm: str,
    seed: int,
    p: float = 0.15,
    degree: int = 4,
    engine: str | None = None,
    fault_drop: float = 0.0,
    fault_corrupt: float = 0.0,
    fault_seed: int = 0,
    immune_rounds: Sequence[int] = (),
) -> dict[str, Any]:
    """One seeded solve run, dispatched through the scenario registries;
    returns a single table row.

    Runs worker-side: plugins are (re)loaded here so spawned workers —
    which do not inherit the parent's registrations — resolve the same
    names the parent validated at spec time. An explicit ``engine``
    (from the sweep's engines axis) is forwarded to the adapter and
    echoed in an extra trailing row column. Nonzero fault
    probabilities run on the ``faulty-simulator`` engine; protocols are
    expected to raise (``ProtocolError``/``ValidationError``) when a
    fault actually breaks them, which surfaces as a trial failure.
    """
    from repro.core.algorithms import ALGORITHMS, ENGINE_FAULTY
    from repro.graphs.families import build_family_graph
    from repro.obs.spans import span
    from repro.olocal import PROBLEMS
    from repro.registry import load_plugins

    load_plugins()
    # Stage spans reuse the scenario.* names from repro.api.run_scenario
    # so `repro trace` aggregates both entry points into the same rows.
    with span("scenario.build_graph", family=family, n=n):
        graph = build_family_graph(family, n, seed=seed, p=p, degree=degree)
    if fault_drop > 0 or fault_corrupt > 0:
        from repro.model.faults import FaultPlan

        plan = FaultPlan(
            drop_probability=fault_drop,
            corrupt_probability=fault_corrupt,
            seed=fault_seed if fault_seed else seed,
            immune_rounds=frozenset(immune_rounds),
        )
        with span(
            "scenario.solve", algorithm=algorithm, engine=ENGINE_FAULTY
        ):
            outcome = ALGORITHMS.get(algorithm).solve(
                graph,
                PROBLEMS.get(problem),
                engine=ENGINE_FAULTY,
                fault_plan=plan,
            )
    else:
        with span("scenario.solve", algorithm=algorithm, engine=engine):
            outcome = ALGORITHMS.get(algorithm).solve(
                graph, PROBLEMS.get(problem), engine=engine
            )
    row = (
        family,
        graph.n,
        problem,
        algorithm,
        seed,
        graph.max_degree,
        outcome.awake_complexity,
        round(outcome.average_awake, 2),
        outcome.round_complexity,
        outcome.messages_sent,
    )
    if engine is not None:
        row += (engine,)
    return {"rows": [row]}


def execute_trial(spec: TrialSpec) -> Any:
    """Run one trial in the current process (worker- and serial-side)."""
    kwargs = spec.kwargs_dict()
    if spec.kind == KIND_EXPERIMENT:
        return TRIAL_PLANS[spec.key].run(**kwargs)
    if spec.kind == KIND_SOLVE:
        return solve_trial(**kwargs)
    raise KeyError(f"unknown trial kind {spec.kind!r} ({spec.label})")


# -- ordered aggregation -----------------------------------------------------


def aggregate_sweep(
    trials: Sequence[TrialSpec], payloads: Sequence[Any]
) -> dict[str, ExperimentResult]:
    """Fold ordered trial payloads into per-experiment results.

    ``payloads[i]`` must be the payload of ``trials[i]`` — the executor
    guarantees spec order regardless of completion order. Solve trials
    aggregate into a single ``GRID`` table.
    """
    if len(trials) != len(payloads):
        raise ValueError(f"{len(trials)} trials but {len(payloads)} payloads")
    by_experiment: dict[str, list[Any]] = {}
    grid_rows: list[Sequence[Any]] = []
    for spec, payload in zip(trials, payloads):
        if spec.kind == KIND_EXPERIMENT:
            by_experiment.setdefault(spec.key, []).append(payload)
        else:
            grid_rows.extend(payload["rows"])
    results: dict[str, ExperimentResult] = {}
    for exp_id, group in by_experiment.items():
        results[exp_id] = TRIAL_PLANS[exp_id].aggregate(group)
    if grid_rows:
        headers = list(SOLVE_HEADERS)
        if any(len(row) > len(SOLVE_HEADERS) for row in grid_rows):
            # Engine-axis sweeps carry a trailing engine column; pad the
            # rows of any engine-less trials mixed into the same sweep.
            headers.append("engine")
            grid_rows = [
                tuple(row) + ("",) * (len(headers) - len(row))
                for row in grid_rows
            ]
        results["GRID"] = ExperimentResult(
            exp_id="GRID",
            title="Seeded solve sweep (family × n × problem × algorithm)",
            headers=headers,
            rows=grid_rows,
        )
    return results
