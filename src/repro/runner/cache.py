"""Content-addressed on-disk cache of trial results.

A sweep's unit of work — one :class:`~repro.runner.specs.TrialSpec` —
is deterministic given its *identity*: the trial kind, the plan or
problem key, the kwargs, and the derived seed. The cache keys each
stored result by the SHA-256 of exactly that identity plus a
**code-version salt** (a digest of the ``repro`` package's source
files), so

- repeating a sweep, or regenerating EXPERIMENTS.md, skips every trial
  already computed — including heavy reference trials such as E8a at
  n=8192;
- a trial's position (``index``) and display ``label`` are *not* part
  of the key: reordering a sweep, or sharing trials between ``repro
  sweep`` and ``repro report``, still hits;
- any change to the package source invalidates everything (the salt
  changes), so a stale cache can never smuggle results produced by old
  code into a new run.

Storage is one pickle file per trial under ``<cache_dir>/<key[:2]>/
<key>.pkl`` (the two-hex-char fan-out keeps directories small), written
atomically (temp file + ``os.replace``), so a concurrent or killed
writer can never leave a half-written record where a reader expects a
whole one. Reads are fail-open: a missing, corrupt, or wrong-format
file is a **miss** (the bad file is dropped and the trial recomputed),
never an error.

Only trials whose kwargs are built from primitives (str/int/float/
bool/None, nested in tuples or lists) are cacheable: an object kwarg's
``repr`` may embed a memory address, which could alias two different
trials across runs. Uncacheable trials simply execute every time.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path
from typing import Any

from repro.obs import counters
from repro.obs.spans import event
from repro.runner.specs import TrialSpec

#: Default cache directory, relative to the working directory (see
#: ``--cache-dir``); listed in .gitignore.
DEFAULT_CACHE_DIR = ".repro-cache"

#: On-disk record layout version — bump when the record dict changes
#: shape; old records then read as misses.
CACHE_FORMAT = 1

_PRIMITIVES = (str, int, float, bool, type(None))


def _has_stable_repr(value: Any) -> bool:
    if isinstance(value, _PRIMITIVES):
        return True
    if isinstance(value, (tuple, list)):
        return all(_has_stable_repr(item) for item in value)
    return False


def is_cacheable(spec: TrialSpec) -> bool:
    """Whether the spec's identity can be hashed reliably (all kwargs
    primitive, so their ``repr`` is stable across processes)."""
    return all(_has_stable_repr(value) for _name, value in spec.kwargs)


@lru_cache(maxsize=1)
def code_version_salt() -> str:
    """Digest of every ``repro/**/*.py`` source file (paths + bytes).

    Computed once per process; any source change — an experiment
    tweak, an engine fix, a renamed module — yields a new salt and
    therefore a cold cache. Deliberately eager: recomputing a few
    already-valid trials is cheap, serving results from changed code
    is not.
    """
    import repro

    package_root = Path(repro.__file__).resolve().parent
    digest = hashlib.sha256()
    for source in sorted(package_root.rglob("*.py")):
        digest.update(source.relative_to(package_root).as_posix().encode())
        digest.update(b"\0")
        digest.update(source.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()[:16]


def trial_cache_key(spec: TrialSpec, salt: str) -> str | None:
    """SHA-256 key of (salt, trial identity), or None if uncacheable.

    The identity is (kind, key, kwargs, seed) — everything that
    determines the payload, and nothing (index, label) that does not.
    """
    if not is_cacheable(spec):
        return None
    material = repr((salt, spec.kind, spec.key, spec.kwargs, spec.seed))
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class CachedTrial:
    """A cache hit: the stored payload plus the original compute time."""

    payload: Any
    seconds: float


@dataclass(frozen=True)
class CacheStats:
    """Per-sweep hit/miss accounting (surfaced in CLI output and the
    artifact's provenance layer)."""

    hits: int = 0
    misses: int = 0
    seconds_saved: float = 0.0

    def describe(self) -> dict[str, Any]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "seconds_saved": self.seconds_saved,
        }

    def summary(self) -> str:
        """The one-line accounting both CLIs print."""
        return (
            f"{self.hits} hit(s), {self.misses} miss(es), "
            f"~{self.seconds_saved:.2f}s saved"
        )


class TrialCache:
    """The on-disk store: ``load`` before running, ``store`` after.

    Reads fail open (corrupt or alien files are misses); writes are
    atomic and best-effort (a full disk degrades to "no cache", never
    to a failed sweep).
    """

    def __init__(
        self, cache_dir: str | Path = DEFAULT_CACHE_DIR, salt: str | None = None
    ) -> None:
        self.cache_dir = Path(cache_dir)
        self.salt = code_version_salt() if salt is None else str(salt)

    def key(self, spec: TrialSpec) -> str | None:
        return trial_cache_key(spec, self.salt)

    def path_for(self, spec: TrialSpec) -> Path | None:
        key = self.key(spec)
        return None if key is None else self._path(key)

    def _path(self, key: str) -> Path:
        return self.cache_dir / key[:2] / f"{key}.pkl"

    def load(self, spec: TrialSpec) -> CachedTrial | None:
        """The stored result for this trial identity, or None (miss).

        Emits ``cache.hit`` / ``cache.miss`` into the observability
        stream (counter always, trace event when tracing is armed).
        """
        found = self._load(spec)
        if found is not None:
            counters.add("cache.hit")
            event("cache.hit", label=spec.label, seconds=found.seconds)
        else:
            counters.add("cache.miss")
            event("cache.miss", label=spec.label)
        return found

    def _load(self, spec: TrialSpec) -> CachedTrial | None:
        key = self.key(spec)
        if key is None:
            return None
        path = self._path(key)
        try:
            with open(path, "rb") as handle:
                record = pickle.load(handle)
        except OSError:
            # Missing, or transiently unreadable (permissions, flaky
            # mount): a miss, but the file may be fine — keep it.
            return None
        except Exception:
            # Corrupt, truncated, or unpicklable in this interpreter:
            # drop the bad file and recompute.
            self._discard(path)
            return None
        if (
            not isinstance(record, dict)
            or record.get("format") != CACHE_FORMAT
            or "payload" not in record
            or not isinstance(record.get("seconds", 0.0), (int, float))
        ):
            self._discard(path)
            return None
        return CachedTrial(
            payload=record["payload"],
            seconds=float(record.get("seconds", 0.0)),
        )

    def store(self, spec: TrialSpec, payload: Any, seconds: float) -> bool:
        """Persist one trial result; returns False (and leaves no
        partial file) if the trial is uncacheable or the write fails."""
        key = self.key(spec)
        if key is None:
            return False
        path = self._path(key)
        record = {
            "format": CACHE_FORMAT,
            "label": spec.label,
            "seconds": seconds,
            "payload": payload,
        }
        scratch = path.with_name(f"{path.name}.tmp{os.getpid()}")
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            with open(scratch, "wb") as handle:
                pickle.dump(record, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(scratch, path)
        except Exception:
            self._discard(scratch)
            return False
        counters.add("cache.store")
        return True

    @staticmethod
    def _discard(path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass
