"""The sweep executor: serial reference path and the sharded pool path.

``run_sweep(spec, workers=1)`` executes every trial in-process, in spec
order — this is the bit-identical reference the parallel path is judged
against. With ``workers > 1`` trials are distributed over a
``concurrent.futures.ProcessPoolExecutor`` (fork start method where the
platform offers it, spawn otherwise) and collected as they finish, then
**re-ordered by spec index** before aggregation, so the aggregate is
independent of scheduling.

Failure surfacing: an exception inside a trial is wrapped into
:class:`SweepError` naming the trial (the remote traceback stays chained
as ``__cause__``); a worker process that dies without raising (signal,
``os._exit``) surfaces as a :class:`SweepError` listing the trials that
had no result when the pool broke.

With a :class:`~repro.runner.cache.TrialCache`, every trial is looked
up before execution — hits become :class:`TrialOutcome`\\ s directly
(``cached=True``, carrying the original compute time) and only misses
are executed (and then stored, parent-side, so there is exactly one
writer per sweep). The cache never changes *what* a sweep computes,
only whether it recomputes it: the aggregate stays byte-identical
across cold, warm, serial, and sharded runs.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable

from repro.analysis.experiments import ExperimentResult
from repro.runner.cache import CacheStats, TrialCache
from repro.runner.specs import SweepSpec, TrialSpec
from repro.runner.trials import aggregate_sweep, execute_trial


class SweepError(RuntimeError):
    """A trial failed or a worker process died during a sweep."""


@dataclass(frozen=True)
class TrialOutcome:
    """One executed trial: its spec, payload, and (non-deterministic)
    execution metadata kept out of the aggregate.

    ``cached`` marks a cache hit; ``seconds`` is then the *original*
    compute time (what the hit saved), and ``worker`` is 0.
    """

    spec: TrialSpec
    payload: Any
    seconds: float
    worker: int
    cached: bool = False


@dataclass(frozen=True)
class SweepResult:
    """All trial outcomes of a sweep, in spec order."""

    spec: SweepSpec
    outcomes: tuple[TrialOutcome, ...]
    workers: int
    wall_seconds: float
    cache_stats: CacheStats | None = None

    def payloads(self) -> list[Any]:
        return [outcome.payload for outcome in self.outcomes]

    def experiments(self) -> dict[str, ExperimentResult]:
        """Aggregate, in spec order — byte-identical for any worker count."""
        return aggregate_sweep(self.spec.trials, self.payloads())

    def render(self) -> str:
        return "\n\n".join(r.render() for r in self.experiments().values())


def _run_one(spec: TrialSpec) -> TrialOutcome:
    """Execute one trial, timing it; runs in the worker (or serially)."""
    start = time.perf_counter()
    payload = execute_trial(spec)
    return TrialOutcome(
        spec=spec,
        payload=payload,
        seconds=time.perf_counter() - start,
        worker=os.getpid(),
    )


def pool_start_method() -> str:
    """The start method sweeps use: fork on Linux (cheap, inherits the
    parent's imports), the platform default elsewhere (fork is unsafe
    under macOS system frameworks — CPython switched its default to
    spawn there for that reason)."""
    if sys.platform == "linux":
        return "fork"
    return multiprocessing.get_start_method(allow_none=False)


def _pool_context() -> multiprocessing.context.BaseContext:
    return multiprocessing.get_context(pool_start_method())


def run_sweep(
    spec: SweepSpec,
    workers: int = 1,
    progress: Callable[[TrialOutcome], None] | None = None,
    cache: TrialCache | None = None,
) -> SweepResult:
    """Execute a sweep; ``workers=1`` is serial and in-process.

    With a ``cache``, trials whose results are already stored are not
    re-executed; the aggregate is identical either way.

    Raises:
        SweepError: a trial raised (cause chained) or a worker died.
    """
    start = time.perf_counter()
    hits: dict[int, TrialOutcome] = {}
    if cache is not None:
        for trial in spec.trials:
            found = cache.load(trial)
            if found is not None:
                hits[trial.index] = TrialOutcome(
                    spec=trial,
                    payload=found.payload,
                    seconds=found.seconds,
                    worker=0,
                    cached=True,
                )
    if workers <= 1:
        outcomes = []
        for trial in spec.trials:
            outcome = hits.get(trial.index)
            if outcome is None:
                outcome = _run_trial_checked(trial, _run_one)
                if cache is not None:
                    cache.store(trial, outcome.payload, outcome.seconds)
            outcomes.append(outcome)
            if progress is not None:
                progress(outcome)
    else:
        outcomes = _run_pool(spec, workers, progress, hits, cache)
    stats = None
    if cache is not None:
        stats = CacheStats(
            hits=len(hits),
            misses=len(spec.trials) - len(hits),
            seconds_saved=sum(o.seconds for o in hits.values()),
        )
    return SweepResult(
        spec=spec,
        outcomes=tuple(outcomes),
        workers=max(1, workers),
        wall_seconds=time.perf_counter() - start,
        cache_stats=stats,
    )


def _run_trial_checked(
    trial: TrialSpec, runner: Callable[[TrialSpec], TrialOutcome]
) -> TrialOutcome:
    try:
        return runner(trial)
    except SweepError:
        raise
    except Exception as exc:
        raise SweepError(
            f"trial {trial.label!r} (index {trial.index}) failed: "
            f"{type(exc).__name__}: {exc}"
        ) from exc


def _run_pool(
    spec: SweepSpec,
    workers: int,
    progress: Callable[[TrialOutcome], None] | None,
    hits: dict[int, TrialOutcome],
    cache: TrialCache | None,
) -> list[TrialOutcome]:
    collected: dict[int, TrialOutcome] = dict(hits)
    if progress is not None:
        for trial in spec.trials:
            if trial.index in hits:
                progress(hits[trial.index])
    pending_trials = [t for t in spec.trials if t.index not in hits]
    if not pending_trials:
        return [collected[trial.index] for trial in spec.trials]
    with ProcessPoolExecutor(max_workers=workers, mp_context=_pool_context()) as pool:
        future_to_trial = {pool.submit(_run_one, t): t for t in pending_trials}
        pending = set(future_to_trial)
        while pending:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                trial = future_to_trial[future]
                try:
                    outcome = future.result()
                except BrokenProcessPool as exc:
                    pool.shutdown(wait=False, cancel_futures=True)
                    missing = sorted(
                        t.label
                        for t in spec.trials
                        if t.index not in collected
                    )
                    raise SweepError(
                        f"a worker process died without raising (crash or "
                        f"hard exit) while the sweep still owed "
                        f"{len(missing)} trial(s): {missing[:8]}"
                    ) from exc
                except Exception as exc:
                    # Don't sit through the rest of the sweep to report an
                    # error already in hand: drop the queued trials.
                    pool.shutdown(wait=False, cancel_futures=True)
                    raise SweepError(
                        f"trial {trial.label!r} (index {trial.index}) "
                        f"failed in a worker: {type(exc).__name__}: {exc}"
                    ) from exc
                collected[trial.index] = outcome
                if cache is not None:
                    cache.store(trial, outcome.payload, outcome.seconds)
                if progress is not None:
                    progress(outcome)
    return [collected[trial.index] for trial in spec.trials]
