"""The sweep executor: serial reference path and the sharded pool path.

``run_sweep(spec, workers=1)`` executes every trial in-process, in spec
order — this is the bit-identical reference the parallel path is judged
against. With ``workers > 1`` trials are distributed over a
``concurrent.futures.ProcessPoolExecutor`` (fork start method where the
platform offers it, spawn otherwise) and collected as they finish, then
**re-ordered by spec index** before aggregation, so the aggregate is
independent of scheduling.

Resilience (:mod:`repro.runner.resilience` has the pieces):

- a :class:`~repro.runner.resilience.RetryPolicy` re-executes failed
  trials (bounded attempts, deterministic jittered backoff seeded from
  the trial's content-addressed identity);
- a per-trial ``timeout`` arms a ``SIGALRM`` deadline inside the
  executing process, so a hung straggler surfaces as a retriable
  :class:`~repro.runner.resilience.TrialTimeoutError` and is requeued
  instead of stalling the sweep;
- a worker that dies without raising (signal, ``os._exit``) breaks the
  pool; the executor **rebuilds the pool and requeues only the
  unfinished trials**, bounded by ``max_pool_restarts`` — only an
  exhausted budget aborts the sweep;
- ``keep_going=True`` converts terminal per-trial failures into
  :class:`~repro.runner.resilience.TrialFailure` records on the
  result's :class:`~repro.runner.resilience.FailureReport` instead of
  raising; aggregation then refuses partial input unless explicitly
  allowed (``experiments(allow_partial=True)``);
- a :class:`~repro.runner.resilience.SweepJournal` checkpoints every
  completed trial, and prefills journaled trials on resume.

Chaos (:mod:`repro.runner.chaos`) injects raise/hang/exit faults at
the top of :func:`_run_one` when armed via the environment — the
resilience layer is itself gated by fault-injection tests.

Failure surfacing without ``keep_going``: an exception inside a trial
is wrapped into :class:`SweepError` naming the trial (the remote
traceback stays chained as ``__cause__``); an exhausted pool-restart
budget surfaces as a :class:`SweepError` listing the trials that had no
result when the pool last broke.

With a :class:`~repro.runner.cache.TrialCache`, every trial is looked
up before execution — hits become :class:`TrialOutcome`\\ s directly
(``cached=True``, carrying the original compute time) and only misses
are executed (and then stored, parent-side, so there is exactly one
writer per sweep). The cache never changes *what* a sweep computes,
only whether it recomputes it: the aggregate stays byte-identical
across cold, warm, serial, sharded, retried, restarted, and resumed
runs.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable

from repro.analysis.experiments import ExperimentResult
from repro.runner.cache import CacheStats, TrialCache
from repro.runner.chaos import maybe_inject
from repro.runner.resilience import (
    FailureReport,
    RetryPolicy,
    SweepJournal,
    TrialFailure,
    trial_deadline,
)
from repro.runner.specs import SweepSpec, TrialSpec
from repro.runner.trials import aggregate_sweep, execute_trial

#: Default pool-rebuild budget after hard worker deaths.
DEFAULT_MAX_POOL_RESTARTS = 2


class SweepError(RuntimeError):
    """A trial failed or a worker process died during a sweep."""


@dataclass(frozen=True)
class TrialOutcome:
    """One executed trial: its spec, payload, and (non-deterministic)
    execution metadata kept out of the aggregate.

    ``cached`` marks a cache hit and ``resumed`` a journal prefill; in
    both cases ``seconds`` is the *original* compute time (what the
    hit saved) and ``worker`` is 0.
    """

    spec: TrialSpec
    payload: Any
    seconds: float
    worker: int
    cached: bool = False
    resumed: bool = False


@dataclass(frozen=True)
class SweepResult:
    """A sweep's completed trial outcomes, in spec order.

    Without ``keep_going`` every trial is present; with it, trials
    that failed for good are absent from ``outcomes`` and recorded in
    ``failures`` instead.
    """

    spec: SweepSpec
    outcomes: tuple[TrialOutcome, ...]
    workers: int
    wall_seconds: float
    cache_stats: CacheStats | None = None
    failures: tuple[TrialFailure, ...] = ()
    pool_restarts: int = 0

    def payloads(self) -> list[Any]:
        return [outcome.payload for outcome in self.outcomes]

    @property
    def failure_report(self) -> FailureReport:
        return FailureReport(self.failures)

    def experiments(self, allow_partial: bool = False) -> dict[str, ExperimentResult]:
        """Aggregate, in spec order — byte-identical for any worker
        count, cache state, retry schedule, or resume point.

        Raises:
            SweepError: the sweep has failures and ``allow_partial`` is
                False — a partial aggregate must be asked for
                explicitly, never produced silently.
        """
        if self.failures and not allow_partial:
            raise SweepError(
                f"{len(self.failures)} trial(s) failed "
                f"({self.failure_report.summary()}); refusing to aggregate "
                f"partial input — pass allow_partial=True (CLI: "
                f"--allow-partial) to aggregate the "
                f"{len(self.outcomes)} completed trial(s)"
            )
        trials = tuple(outcome.spec for outcome in self.outcomes)
        return aggregate_sweep(trials, self.payloads())

    def render(self, allow_partial: bool = False) -> str:
        return "\n\n".join(
            r.render() for r in self.experiments(allow_partial).values()
        )


def _run_one(spec: TrialSpec, timeout: float | None = None) -> TrialOutcome:
    """Execute one trial, timing it; runs in the worker (or serially).

    Armed chaos fires here — inside the deadline, so an injected hang
    exercises the timeout exactly like a real straggler would.
    """
    start = time.perf_counter()
    with trial_deadline(spec, timeout):
        maybe_inject(spec)
        payload = execute_trial(spec)
    return TrialOutcome(
        spec=spec,
        payload=payload,
        seconds=time.perf_counter() - start,
        worker=os.getpid(),
    )


def pool_start_method() -> str:
    """The start method sweeps use: fork on Linux (cheap, inherits the
    parent's imports), the platform default elsewhere (fork is unsafe
    under macOS system frameworks — CPython switched its default to
    spawn there for that reason)."""
    if sys.platform == "linux":
        return "fork"
    return multiprocessing.get_start_method(allow_none=False)


def _pool_context() -> multiprocessing.context.BaseContext:
    return multiprocessing.get_context(pool_start_method())


def _trial_failure(
    trial: TrialSpec, exc: BaseException, attempts: int
) -> TrialFailure:
    """A failure record carrying the (possibly remote) traceback."""
    return TrialFailure(
        index=trial.index,
        label=trial.label,
        error_type=type(exc).__name__,
        message=str(exc),
        traceback="".join(
            traceback.format_exception(type(exc), exc, exc.__traceback__)
        ),
        attempts=attempts,
    )


def run_sweep(
    spec: SweepSpec,
    workers: int = 1,
    progress: Callable[[TrialOutcome], None] | None = None,
    cache: TrialCache | None = None,
    retry: RetryPolicy | None = None,
    timeout: float | None = None,
    max_pool_restarts: int = DEFAULT_MAX_POOL_RESTARTS,
    keep_going: bool = False,
    journal: SweepJournal | None = None,
) -> SweepResult:
    """Execute a sweep; ``workers=1`` is serial and in-process.

    With a ``cache``, trials whose results are already stored are not
    re-executed; with a resuming ``journal``, journaled trials are
    prefilled the same way. The aggregate is identical in every case.

    Raises:
        SweepError: a trial failed for good (and ``keep_going`` is
            off), or hard worker deaths exhausted ``max_pool_restarts``.
    """
    start = time.perf_counter()
    policy = retry if retry is not None else RetryPolicy()
    prefilled: dict[int, TrialOutcome] = {}
    if journal is not None:
        prefilled.update(journal.load_outcomes(spec.trials))
        journal.begin(spec.name, len(spec.trials))
    cache_hits = 0
    if cache is not None:
        for trial in spec.trials:
            if trial.index in prefilled:
                continue
            found = cache.load(trial)
            if found is not None:
                cache_hits += 1
                prefilled[trial.index] = TrialOutcome(
                    spec=trial,
                    payload=found.payload,
                    seconds=found.seconds,
                    worker=0,
                    cached=True,
                )
    failures: list[TrialFailure] = []
    pool_restarts = 0
    if workers <= 1:
        outcomes = _run_serial(
            spec, progress, prefilled, cache, policy, timeout, keep_going,
            journal, failures,
        )
    else:
        outcomes, pool_restarts = _run_pool(
            spec, workers, progress, prefilled, cache, policy, timeout,
            max_pool_restarts, keep_going, journal, failures,
        )
    stats = None
    if cache is not None:
        saved = sum(o.seconds for o in prefilled.values() if o.cached)
        stats = CacheStats(
            hits=cache_hits,
            misses=len(spec.trials) - len(prefilled),
            seconds_saved=saved,
        )
    failures.sort(key=lambda failure: failure.index)
    return SweepResult(
        spec=spec,
        outcomes=tuple(outcomes),
        workers=max(1, workers),
        wall_seconds=time.perf_counter() - start,
        cache_stats=stats,
        failures=tuple(failures),
        pool_restarts=pool_restarts,
    )


def _record(
    outcome: TrialOutcome,
    cache: TrialCache | None,
    journal: SweepJournal | None,
    progress: Callable[[TrialOutcome], None] | None,
) -> None:
    """Persist and report one freshly computed outcome (parent-side)."""
    if cache is not None:
        cache.store(outcome.spec, outcome.payload, outcome.seconds)
    if journal is not None:
        journal.append(outcome)
    if progress is not None:
        progress(outcome)


def _run_serial(
    spec: SweepSpec,
    progress: Callable[[TrialOutcome], None] | None,
    prefilled: dict[int, TrialOutcome],
    cache: TrialCache | None,
    policy: RetryPolicy,
    timeout: float | None,
    keep_going: bool,
    journal: SweepJournal | None,
    failures: list[TrialFailure],
) -> list[TrialOutcome]:
    outcomes: list[TrialOutcome] = []
    for trial in spec.trials:
        outcome = prefilled.get(trial.index)
        if outcome is not None:
            if journal is not None and not outcome.resumed:
                journal.append(outcome)
            if progress is not None:
                progress(outcome)
            outcomes.append(outcome)
            continue
        attempt = 1
        while True:
            try:
                outcome = _run_one(trial, timeout)
            except Exception as exc:
                if policy.should_retry(exc, attempt):
                    time.sleep(policy.backoff_seconds(trial, attempt))
                    attempt += 1
                    continue
                if keep_going:
                    failures.append(_trial_failure(trial, exc, attempt))
                    outcome = None
                    break
                raise SweepError(
                    f"trial {trial.label!r} (index {trial.index}) failed: "
                    f"{type(exc).__name__}: {exc}"
                ) from exc
            break
        if outcome is None:
            continue
        _record(outcome, cache, journal, progress)
        outcomes.append(outcome)
    return outcomes


def _run_pool(
    spec: SweepSpec,
    workers: int,
    progress: Callable[[TrialOutcome], None] | None,
    prefilled: dict[int, TrialOutcome],
    cache: TrialCache | None,
    policy: RetryPolicy,
    timeout: float | None,
    max_pool_restarts: int,
    keep_going: bool,
    journal: SweepJournal | None,
    failures: list[TrialFailure],
) -> tuple[list[TrialOutcome], int]:
    collected: dict[int, TrialOutcome] = dict(prefilled)
    for trial in spec.trials:
        outcome = prefilled.get(trial.index)
        if outcome is None:
            continue
        if journal is not None and not outcome.resumed:
            journal.append(outcome)
        if progress is not None:
            progress(outcome)
    attempts: dict[int, int] = {}
    failed: set[int] = set()
    restarts = 0
    while True:
        todo = [
            t for t in spec.trials
            if t.index not in collected and t.index not in failed
        ]
        if not todo:
            break
        try:
            with ProcessPoolExecutor(
                max_workers=workers, mp_context=_pool_context()
            ) as pool:
                _drain_pool(
                    pool, todo, collected, failed, attempts, cache, journal,
                    progress, policy, timeout, keep_going, failures,
                )
            break
        except BrokenProcessPool as exc:
            # A worker died without raising (signal, os._exit, OOM
            # kill). Everything already collected is safe; rebuild the
            # pool and requeue only the unfinished trials.
            restarts += 1
            if restarts > max_pool_restarts:
                missing = sorted(
                    t.label
                    for t in spec.trials
                    if t.index not in collected and t.index not in failed
                )
                raise SweepError(
                    f"a worker process died without raising (crash or "
                    f"hard exit) and the pool-restart budget "
                    f"(max_pool_restarts={max_pool_restarts}) is "
                    f"exhausted; the sweep still owed {len(missing)} "
                    f"trial(s): {missing[:8]}"
                ) from exc
    ordered = [
        collected[trial.index]
        for trial in spec.trials
        if trial.index in collected
    ]
    return ordered, restarts


def _drain_pool(
    pool: ProcessPoolExecutor,
    todo: list[TrialSpec],
    collected: dict[int, TrialOutcome],
    failed: set[int],
    attempts: dict[int, int],
    cache: TrialCache | None,
    journal: SweepJournal | None,
    progress: Callable[[TrialOutcome], None] | None,
    policy: RetryPolicy,
    timeout: float | None,
    keep_going: bool,
    failures: list[TrialFailure],
) -> None:
    """Submit ``todo`` and collect until done; failed trials retry into
    the same pool. Raises BrokenProcessPool through to the caller's
    restart loop, and SweepError on a terminal failure without
    ``keep_going``."""
    future_to_trial: dict[Future, TrialSpec] = {
        pool.submit(_run_one, t, timeout): t for t in todo
    }
    pending = set(future_to_trial)
    while pending:
        done, pending = wait(pending, return_when=FIRST_COMPLETED)
        for future in done:
            trial = future_to_trial.pop(future)
            try:
                outcome = future.result()
            except BrokenProcessPool:
                pool.shutdown(wait=False, cancel_futures=True)
                raise
            except Exception as exc:
                attempt = attempts[trial.index] = (
                    attempts.get(trial.index, 0) + 1
                )
                if policy.should_retry(exc, attempt):
                    time.sleep(policy.backoff_seconds(trial, attempt))
                    retry_future = pool.submit(_run_one, trial, timeout)
                    future_to_trial[retry_future] = trial
                    pending.add(retry_future)
                    continue
                if keep_going:
                    failures.append(_trial_failure(trial, exc, attempt))
                    failed.add(trial.index)
                    continue
                # Don't sit through the rest of the sweep to report an
                # error already in hand: drop the queued trials.
                pool.shutdown(wait=False, cancel_futures=True)
                raise SweepError(
                    f"trial {trial.label!r} (index {trial.index}) "
                    f"failed in a worker: {type(exc).__name__}: {exc}"
                ) from exc
            collected[trial.index] = outcome
            _record(outcome, cache, journal, progress)
