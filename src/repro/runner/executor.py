"""The sweep executor: serial reference path and the sharded pool path.

``run_sweep(spec, workers=1)`` executes every trial in-process, in spec
order — this is the bit-identical reference the parallel path is judged
against. With ``workers > 1`` trials are distributed over a
``concurrent.futures.ProcessPoolExecutor`` (fork start method where the
platform offers it, spawn otherwise) and collected as they finish, then
**re-ordered by spec index** before aggregation, so the aggregate is
independent of scheduling.

Resilience (:mod:`repro.runner.resilience` has the pieces):

- a :class:`~repro.runner.resilience.RetryPolicy` re-executes failed
  trials (bounded attempts, deterministic jittered backoff seeded from
  the trial's content-addressed identity);
- a per-trial ``timeout`` arms a ``SIGALRM`` deadline inside the
  executing process, so a hung straggler surfaces as a retriable
  :class:`~repro.runner.resilience.TrialTimeoutError` and is requeued
  instead of stalling the sweep;
- a worker that dies without raising (signal, ``os._exit``) breaks the
  pool; the executor **rebuilds the pool and requeues only the
  unfinished trials**, bounded by ``max_pool_restarts`` — only an
  exhausted budget aborts the sweep;
- ``keep_going=True`` converts terminal per-trial failures into
  :class:`~repro.runner.resilience.TrialFailure` records on the
  result's :class:`~repro.runner.resilience.FailureReport` instead of
  raising; aggregation then refuses partial input unless explicitly
  allowed (``experiments(allow_partial=True)``);
- a :class:`~repro.runner.resilience.SweepJournal` checkpoints every
  completed trial, and prefills journaled trials on resume.

Chaos (:mod:`repro.runner.chaos`) injects raise/hang/exit faults at
the top of :func:`_run_one` when armed via the environment — the
resilience layer is itself gated by fault-injection tests.

Failure surfacing without ``keep_going``: an exception inside a trial
is wrapped into :class:`SweepError` naming the trial (the remote
traceback stays chained as ``__cause__``); an exhausted pool-restart
budget surfaces as a :class:`SweepError` listing the trials that had no
result when the pool last broke.

With a :class:`~repro.runner.cache.TrialCache`, every trial is looked
up before execution — hits become :class:`TrialOutcome`\\ s directly
(``cached=True``, carrying the original compute time) and only misses
are executed (and then stored, parent-side, so there is exactly one
writer per sweep). The cache never changes *what* a sweep computes,
only whether it recomputes it: the aggregate stays byte-identical
across cold, warm, serial, sharded, retried, restarted, and resumed
runs.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.analysis.experiments import ExperimentResult
from repro.obs import counters as obs_counters
from repro.obs.spans import event, span
from repro.runner.cache import CacheStats, TrialCache
from repro.runner.chaos import maybe_inject
from repro.runner.resilience import (
    FailureReport,
    RetryPolicy,
    SweepJournal,
    TrialFailure,
    trial_deadline,
)
from repro.runner.specs import SweepSpec, TrialSpec
from repro.runner.trials import aggregate_sweep, execute_trial

#: Default pool-rebuild budget after hard worker deaths.
DEFAULT_MAX_POOL_RESTARTS = 2


class SweepError(RuntimeError):
    """A trial failed or a worker process died during a sweep."""


@dataclass(frozen=True)
class TrialOutcome:
    """One executed trial: its spec, payload, and (non-deterministic)
    execution metadata kept out of the aggregate.

    ``cached`` marks a cache hit and ``resumed`` a journal prefill; in
    both cases ``seconds`` is the *original* compute time (what the
    hit saved) and ``worker`` is 0.

    ``obs`` is the executing process's observability sidecar (counter
    deltas, peak RSS) shipped back for parent-side aggregation. It is
    execution metadata like ``seconds``/``worker``: never part of the
    payload, so cache entries and journal records are byte-for-byte
    unaffected by its presence.
    """

    spec: TrialSpec
    payload: Any
    seconds: float
    worker: int
    cached: bool = False
    resumed: bool = False
    obs: dict[str, Any] | None = None


@dataclass(frozen=True)
class SweepResult:
    """A sweep's completed trial outcomes, in spec order.

    Without ``keep_going`` every trial is present; with it, trials
    that failed for good are absent from ``outcomes`` and recorded in
    ``failures`` instead.
    """

    spec: SweepSpec
    outcomes: tuple[TrialOutcome, ...]
    workers: int
    wall_seconds: float
    cache_stats: CacheStats | None = None
    failures: tuple[TrialFailure, ...] = ()
    pool_restarts: int = 0
    #: Merged counters, per-worker aggregates, and the retry taxonomy
    #: (see :mod:`repro.obs`). Provenance, like ``wall_seconds`` — kept
    #: out of the deterministic artifact layer.
    observability: dict[str, Any] = field(default_factory=dict)

    def payloads(self) -> list[Any]:
        return [outcome.payload for outcome in self.outcomes]

    @property
    def failure_report(self) -> FailureReport:
        return FailureReport(self.failures)

    def experiments(self, allow_partial: bool = False) -> dict[str, ExperimentResult]:
        """Aggregate, in spec order — byte-identical for any worker
        count, cache state, retry schedule, or resume point.

        Raises:
            SweepError: the sweep has failures and ``allow_partial`` is
                False — a partial aggregate must be asked for
                explicitly, never produced silently.
        """
        if self.failures and not allow_partial:
            raise SweepError(
                f"{len(self.failures)} trial(s) failed "
                f"({self.failure_report.summary()}); refusing to aggregate "
                f"partial input — pass allow_partial=True (CLI: "
                f"--allow-partial) to aggregate the "
                f"{len(self.outcomes)} completed trial(s)"
            )
        trials = tuple(outcome.spec for outcome in self.outcomes)
        return aggregate_sweep(trials, self.payloads())

    def resilience_summary(self) -> str | None:
        """One line of retry/timeout taxonomy, or ``None`` for a sweep
        that never needed the resilience layer."""
        retries = self.observability.get("retries") or {}
        retried = int(retries.get("trials_retried", 0))
        deaths = int(retries.get("worker_deaths", self.pool_restarts))
        if not retried and not deaths:
            return None
        return (
            f"{retried} trial(s) retried "
            f"({int(retries.get('timeouts', 0))} timeout(s), "
            f"{deaths} worker death(s))"
        )

    def render(self, allow_partial: bool = False) -> str:
        """The aggregated tables; a sweep that survived via retries or
        pool restarts says so in a one-line footer (a clean sweep's
        render stays byte-identical to the pre-observability format)."""
        text = "\n\n".join(
            r.render() for r in self.experiments(allow_partial).values()
        )
        note = self.resilience_summary()
        if note is not None:
            text += f"\n\nresilience: {note}"
        return text


def _run_one(spec: TrialSpec, timeout: float | None = None) -> TrialOutcome:
    """Execute one trial, timing it; runs in the worker (or serially).

    Armed chaos fires here — inside the deadline, so an injected hang
    exercises the timeout exactly like a real straggler would.
    """
    before = obs_counters.snapshot()
    obs_counters.add("trial.run")
    start = time.perf_counter()
    with span("trial.run", label=spec.label, index=spec.index, kind=spec.kind):
        with trial_deadline(spec, timeout):
            maybe_inject(spec)
            payload = execute_trial(spec)
    return TrialOutcome(
        spec=spec,
        payload=payload,
        seconds=time.perf_counter() - start,
        worker=os.getpid(),
        obs={
            "counters": obs_counters.delta(before, obs_counters.snapshot()),
            "peak_rss_kib": obs_counters.peak_rss_kib(),
        },
    )


def pool_start_method() -> str:
    """The start method sweeps use: fork on Linux (cheap, inherits the
    parent's imports), the platform default elsewhere (fork is unsafe
    under macOS system frameworks — CPython switched its default to
    spawn there for that reason)."""
    if sys.platform == "linux":
        return "fork"
    return multiprocessing.get_start_method(allow_none=False)


def _pool_context() -> multiprocessing.context.BaseContext:
    return multiprocessing.get_context(pool_start_method())


def _trial_failure(
    trial: TrialSpec, exc: BaseException, attempts: int
) -> TrialFailure:
    """A failure record carrying the (possibly remote) traceback."""
    return TrialFailure(
        index=trial.index,
        label=trial.label,
        error_type=type(exc).__name__,
        message=str(exc),
        traceback="".join(
            traceback.format_exception(type(exc), exc, exc.__traceback__)
        ),
        attempts=attempts,
    )


def run_sweep(
    spec: SweepSpec,
    workers: int = 1,
    progress: Callable[[TrialOutcome], None] | None = None,
    cache: TrialCache | None = None,
    retry: RetryPolicy | None = None,
    timeout: float | None = None,
    max_pool_restarts: int = DEFAULT_MAX_POOL_RESTARTS,
    keep_going: bool = False,
    journal: SweepJournal | None = None,
) -> SweepResult:
    """Execute a sweep; ``workers=1`` is serial and in-process.

    With a ``cache``, trials whose results are already stored are not
    re-executed; with a resuming ``journal``, journaled trials are
    prefilled the same way. The aggregate is identical in every case.

    Raises:
        SweepError: a trial failed for good (and ``keep_going`` is
            off), or hard worker deaths exhausted ``max_pool_restarts``.
    """
    start = time.perf_counter()
    parent_before = obs_counters.snapshot()
    policy = retry if retry is not None else RetryPolicy()
    retry_stats: dict[str, Any] = {
        "retried": set(), "attempts": 0, "timeouts": 0,
    }
    failures: list[TrialFailure] = []
    pool_restarts = 0
    with span(
        "sweep", sweep=spec.name, trials=len(spec.trials),
        workers=max(1, workers),
    ):
        prefilled: dict[int, TrialOutcome] = {}
        if journal is not None:
            prefilled.update(journal.load_outcomes(spec.trials))
            journal.begin(spec.name, len(spec.trials))
        cache_hits = 0
        if cache is not None:
            with span("sweep.cache_scan", trials=len(spec.trials)):
                for trial in spec.trials:
                    if trial.index in prefilled:
                        continue
                    found = cache.load(trial)
                    if found is not None:
                        cache_hits += 1
                        prefilled[trial.index] = TrialOutcome(
                            spec=trial,
                            payload=found.payload,
                            seconds=found.seconds,
                            worker=0,
                            cached=True,
                        )
        if workers <= 1:
            outcomes = _run_serial(
                spec, progress, prefilled, cache, policy, timeout,
                keep_going, journal, failures, retry_stats,
            )
        else:
            outcomes, pool_restarts = _run_pool(
                spec, workers, progress, prefilled, cache, policy, timeout,
                max_pool_restarts, keep_going, journal, failures,
                retry_stats,
            )
    stats = None
    if cache is not None:
        saved = sum(o.seconds for o in prefilled.values() if o.cached)
        stats = CacheStats(
            hits=cache_hits,
            misses=len(spec.trials) - len(prefilled),
            seconds_saved=saved,
        )
    failures.sort(key=lambda failure: failure.index)
    return SweepResult(
        spec=spec,
        outcomes=tuple(outcomes),
        workers=max(1, workers),
        wall_seconds=time.perf_counter() - start,
        cache_stats=stats,
        failures=tuple(failures),
        pool_restarts=pool_restarts,
        observability=_assemble_observability(
            parent_before, outcomes, retry_stats, pool_restarts
        ),
    )


def _assemble_observability(
    parent_before: dict[str, float],
    outcomes: list[TrialOutcome],
    retry_stats: dict[str, Any],
    pool_restarts: int,
) -> dict[str, Any]:
    """Merge parent-side counters with the workers' shipped deltas.

    Serial trials ran in this process (their increments are already in
    the parent's delta); pool trials shipped theirs on ``outcome.obs``
    — the pid guard keeps the two paths from double-counting.
    """
    parent_pid = os.getpid()
    merged = obs_counters.delta(parent_before, obs_counters.snapshot())
    workers_agg: dict[int, dict[str, Any]] = {}
    for outcome in outcomes:
        if outcome.cached or outcome.resumed:
            continue
        if outcome.obs is not None and outcome.worker != parent_pid:
            obs_counters.merge(merged, outcome.obs.get("counters", {}))
        agg = workers_agg.setdefault(
            outcome.worker,
            {"trials": 0, "seconds": 0.0, "peak_rss_kib": 0},
        )
        agg["trials"] += 1
        agg["seconds"] += outcome.seconds
        if outcome.obs is not None:
            agg["peak_rss_kib"] = max(
                agg["peak_rss_kib"], outcome.obs.get("peak_rss_kib", 0)
            )
    peak = max(
        [obs_counters.peak_rss_kib()]
        + [agg["peak_rss_kib"] for agg in workers_agg.values()]
    )
    return {
        "counters": obs_counters.normalized(merged),
        "workers": {
            str(pid): {
                "trials": agg["trials"],
                "seconds": agg["seconds"],
                "peak_rss_kib": agg["peak_rss_kib"],
            }
            for pid, agg in sorted(workers_agg.items())
        },
        "retries": {
            "trials_retried": len(retry_stats["retried"]),
            "attempts": retry_stats["attempts"],
            "timeouts": retry_stats["timeouts"],
            "worker_deaths": pool_restarts,
        },
        "peak_rss_kib": peak,
    }


def _observe_trial_error(
    retry_stats: dict[str, Any],
    trial: TrialSpec,
    exc: BaseException,
    attempt: int,
    will_retry: bool,
) -> None:
    """Count a failed attempt into the retry taxonomy (parent-side —
    a failed attempt ships no counter delta back from its worker)."""
    from repro.runner.resilience import TrialTimeoutError

    if isinstance(exc, TrialTimeoutError):
        retry_stats["timeouts"] += 1
        obs_counters.add("trial.timeout")
    if will_retry:
        retry_stats["retried"].add(trial.index)
        retry_stats["attempts"] += 1
        obs_counters.add("trial.retry")
        event(
            "trial.retry",
            label=trial.label,
            attempt=attempt,
            error=type(exc).__name__,
        )
    else:
        obs_counters.add("trial.failed")
        event(
            "trial.failed",
            label=trial.label,
            attempts=attempt,
            error=type(exc).__name__,
        )


def _record(
    outcome: TrialOutcome,
    cache: TrialCache | None,
    journal: SweepJournal | None,
    progress: Callable[[TrialOutcome], None] | None,
) -> None:
    """Persist and report one freshly computed outcome (parent-side)."""
    if cache is not None:
        cache.store(outcome.spec, outcome.payload, outcome.seconds)
    if journal is not None:
        journal.append(outcome)
    _trial_result_event(outcome)
    if progress is not None:
        progress(outcome)


def _trial_result_event(outcome: TrialOutcome) -> None:
    """One ``trial.result`` event per outcome — executed, cached, or
    resumed — so a trace reconciles 1:1 with the artifact's trial list."""
    event(
        "trial.result",
        label=outcome.spec.label,
        index=outcome.spec.index,
        cached=outcome.cached,
        resumed=outcome.resumed,
        seconds=outcome.seconds,
        worker=outcome.worker,
    )


def _replay_prefilled(
    outcome: TrialOutcome,
    journal: SweepJournal | None,
    progress: Callable[[TrialOutcome], None] | None,
) -> None:
    """Report a cache-hit/journal prefill as if it had just completed
    (journaling cache hits so a later resume covers them too)."""
    if journal is not None and not outcome.resumed:
        journal.append(outcome)
    _trial_result_event(outcome)
    if progress is not None:
        progress(outcome)


def _run_serial(
    spec: SweepSpec,
    progress: Callable[[TrialOutcome], None] | None,
    prefilled: dict[int, TrialOutcome],
    cache: TrialCache | None,
    policy: RetryPolicy,
    timeout: float | None,
    keep_going: bool,
    journal: SweepJournal | None,
    failures: list[TrialFailure],
    retry_stats: dict[str, Any],
) -> list[TrialOutcome]:
    outcomes: list[TrialOutcome] = []
    for trial in spec.trials:
        outcome = prefilled.get(trial.index)
        if outcome is not None:
            _replay_prefilled(outcome, journal, progress)
            outcomes.append(outcome)
            continue
        attempt = 1
        while True:
            try:
                outcome = _run_one(trial, timeout)
            except Exception as exc:
                will_retry = policy.should_retry(exc, attempt)
                _observe_trial_error(
                    retry_stats, trial, exc, attempt, will_retry
                )
                if will_retry:
                    time.sleep(policy.backoff_seconds(trial, attempt))
                    attempt += 1
                    continue
                if keep_going:
                    failures.append(_trial_failure(trial, exc, attempt))
                    outcome = None
                    break
                raise SweepError(
                    f"trial {trial.label!r} (index {trial.index}) failed: "
                    f"{type(exc).__name__}: {exc}"
                ) from exc
            break
        if outcome is None:
            continue
        _record(outcome, cache, journal, progress)
        outcomes.append(outcome)
    return outcomes


def _run_pool(
    spec: SweepSpec,
    workers: int,
    progress: Callable[[TrialOutcome], None] | None,
    prefilled: dict[int, TrialOutcome],
    cache: TrialCache | None,
    policy: RetryPolicy,
    timeout: float | None,
    max_pool_restarts: int,
    keep_going: bool,
    journal: SweepJournal | None,
    failures: list[TrialFailure],
    retry_stats: dict[str, Any],
) -> tuple[list[TrialOutcome], int]:
    collected: dict[int, TrialOutcome] = dict(prefilled)
    for trial in spec.trials:
        outcome = prefilled.get(trial.index)
        if outcome is None:
            continue
        _replay_prefilled(outcome, journal, progress)
    attempts: dict[int, int] = {}
    failed: set[int] = set()
    restarts = 0
    while True:
        todo = [
            t for t in spec.trials
            if t.index not in collected and t.index not in failed
        ]
        if not todo:
            break
        try:
            with ProcessPoolExecutor(
                max_workers=workers, mp_context=_pool_context()
            ) as pool:
                _drain_pool(
                    pool, todo, collected, failed, attempts, cache, journal,
                    progress, policy, timeout, keep_going, failures,
                    retry_stats,
                )
            break
        except BrokenProcessPool as exc:
            # A worker died without raising (signal, os._exit, OOM
            # kill). Everything already collected is safe; rebuild the
            # pool and requeue only the unfinished trials.
            restarts += 1
            obs_counters.add("pool.restart")
            event("pool.restart", restarts=restarts)
            if restarts > max_pool_restarts:
                missing = sorted(
                    t.label
                    for t in spec.trials
                    if t.index not in collected and t.index not in failed
                )
                raise SweepError(
                    f"a worker process died without raising (crash or "
                    f"hard exit) and the pool-restart budget "
                    f"(max_pool_restarts={max_pool_restarts}) is "
                    f"exhausted; the sweep still owed {len(missing)} "
                    f"trial(s): {missing[:8]}"
                ) from exc
    ordered = [
        collected[trial.index]
        for trial in spec.trials
        if trial.index in collected
    ]
    return ordered, restarts


def _drain_pool(
    pool: ProcessPoolExecutor,
    todo: list[TrialSpec],
    collected: dict[int, TrialOutcome],
    failed: set[int],
    attempts: dict[int, int],
    cache: TrialCache | None,
    journal: SweepJournal | None,
    progress: Callable[[TrialOutcome], None] | None,
    policy: RetryPolicy,
    timeout: float | None,
    keep_going: bool,
    failures: list[TrialFailure],
    retry_stats: dict[str, Any],
) -> None:
    """Submit ``todo`` and collect until done; failed trials retry into
    the same pool. Raises BrokenProcessPool through to the caller's
    restart loop, and SweepError on a terminal failure without
    ``keep_going``."""
    future_to_trial: dict[Future, TrialSpec] = {
        pool.submit(_run_one, t, timeout): t for t in todo
    }
    pending = set(future_to_trial)
    while pending:
        done, pending = wait(pending, return_when=FIRST_COMPLETED)
        for future in done:
            trial = future_to_trial.pop(future)
            try:
                outcome = future.result()
            except BrokenProcessPool:
                pool.shutdown(wait=False, cancel_futures=True)
                raise
            except Exception as exc:
                attempt = attempts[trial.index] = (
                    attempts.get(trial.index, 0) + 1
                )
                will_retry = policy.should_retry(exc, attempt)
                _observe_trial_error(
                    retry_stats, trial, exc, attempt, will_retry
                )
                if will_retry:
                    time.sleep(policy.backoff_seconds(trial, attempt))
                    retry_future = pool.submit(_run_one, trial, timeout)
                    future_to_trial[retry_future] = trial
                    pending.add(retry_future)
                    continue
                if keep_going:
                    failures.append(_trial_failure(trial, exc, attempt))
                    failed.add(trial.index)
                    continue
                # Don't sit through the rest of the sweep to report an
                # error already in hand: drop the queued trials.
                pool.shutdown(wait=False, cancel_futures=True)
                raise SweepError(
                    f"trial {trial.label!r} (index {trial.index}) "
                    f"failed in a worker: {type(exc).__name__}: {exc}"
                ) from exc
            collected[trial.index] = outcome
            _record(outcome, cache, journal, progress)
