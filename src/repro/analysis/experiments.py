"""Experiment definitions E1–E10 (see DESIGN.md §4).

Each experiment returns an :class:`ExperimentResult` — a titled table plus
key/value findings — consumed by the benchmark harness (printed rows) and
by :mod:`repro.analysis.report` (EXPERIMENTS.md). The paper has no
empirical tables, so "reproduction" means regenerating its four figures and
empirically validating every stated bound.

Every experiment is declared as an :class:`ExperimentPlan`: an
enumeration of independent, picklable trials, a module-level per-trial
function, and an order-preserving aggregator. The ``experiment_*``
wrappers run the plan serially (the bit-identical reference path); the
sweep runner (:mod:`repro.runner`) runs the *same* plans sharded across
worker processes and aggregates in spec order, so the tables are
byte-identical for any worker count. Experiments whose phases are
sequentially dependent (E2, E3, E4, E11) are single-trial plans.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.analysis import bounds
from repro.core.bm21 import solve_with_baseline
from repro.core.cast import (
    broadcast_bfs,
    broadcast_labeled,
    convergecast_bfs,
    convergecast_labeled,
)
from repro.core.clustering import (
    ColoredBFSClustering,
    UniquelyLabeledBFSClustering,
)
from repro.core.lemma14 import lemma14_reference
from repro.core.lemma15 import lemma15_reference, singleton_palette
from repro.core.mapping import ColorScheduleMapping, render_figure1
from repro.core.theorem1 import solve
from repro.core.theorem9 import solve_with_clustering
from repro.core.theorem13 import (
    color_palette_bound,
    compute_clustering,
    default_b,
    num_phases,
    phase_label_space,
    theorem13_reference,
)
from repro.graphs import (
    complete_graph,
    gnp,
    path,
    preferential_attachment,
    random_regular,
    random_tree,
)
from repro.graphs.examples import figure2_instance, figure4_instance
from repro.model import SleepingSimulator
from repro.olocal import DeltaPlusOneColoring, MaximalIndependentSet
from repro.olocal.not_olocal import defeating_id_assignment, sink_collision
from repro.util.tables import format_table


@dataclass
class ExperimentResult:
    """A rendered experiment: table + headline findings + free-form notes."""

    exp_id: str
    title: str
    headers: Sequence[str]
    rows: list[Sequence[Any]]
    findings: dict[str, Any] = field(default_factory=dict)
    notes: str = ""

    def render(self) -> str:
        parts = [format_table(self.headers, self.rows, title=f"{self.exp_id} — {self.title}")]
        if self.findings:
            parts.append("")
            parts.extend(f"- **{k}**: {v}" for k, v in self.findings.items())
        if self.notes:
            parts.append("")
            parts.append(self.notes)
        return "\n".join(parts)


@dataclass(frozen=True)
class ExperimentPlan:
    """How one experiment shards into independent trials.

    Attributes:
        exp_id: the experiment id, e.g. ``"E9"``.
        trials: enumerates ``(label, kwargs)`` pairs; accepts the same
            keyword overrides as the ``experiment_*`` wrapper.
        run: the per-trial function — module-level (so worker processes
            resolve it by name) and deterministic given its kwargs.
        aggregate: folds the trial payloads, **in enumeration order**,
            into the final :class:`ExperimentResult`.
        title: static one-line description of the experiment, shown by
            ``repro sweep --list`` without running anything (result
            titles may add instance parameters on top of it).
    """

    exp_id: str
    trials: Callable[..., list[tuple[str, dict[str, Any]]]]
    run: Callable[..., Any]
    aggregate: Callable[[list[Any]], ExperimentResult]
    title: str = ""


def _run_plan(plan: ExperimentPlan, **overrides: Any) -> ExperimentResult:
    """Serial reference execution of a plan: enumerate, run, aggregate."""
    payloads = [plan.run(**kwargs) for _label, kwargs in plan.trials(**overrides)]
    return plan.aggregate(payloads)


def _merge_rows(payloads: list[Any]) -> list[Sequence[Any]]:
    return [row for payload in payloads for row in payload["rows"]]


# ---------------------------------------------------------------------------
# E1 — Figure 1 / Lemma 10.
# ---------------------------------------------------------------------------


def _e1_trials(max_log_q: int = 10) -> list[tuple[str, dict[str, Any]]]:
    return [(f"q=2^{k}", {"log_q": k}) for k in range(0, max_log_q + 1)]


def _e1_trial(log_q: int) -> dict[str, Any]:
    q = 2**log_q
    mapping = ColorScheduleMapping(q)
    mapping.verify()
    return {"rows": [(q, mapping.schedule_length, mapping.num_rounds, "ok")]}


def _e1_aggregate(payloads: list[Any]) -> ExperimentResult:
    m8 = ColorScheduleMapping(8)
    return ExperimentResult(
        exp_id="E1",
        title="Lemma 10 mappings φ and r (Figure 1)",
        headers=["q", "|r(c)| = 1+log q", "rounds 2q-1", "properties"],
        rows=_merge_rows(payloads),
        findings={
            "phi(2), r(2) at q=8 (paper)": f"{m8.phi(2)}, {sorted(m8.r(2))} "
            f"(paper: 3, [2, 3, 4, 8])",
            "phi(4), r(4) at q=8 (paper)": f"{m8.phi(4)}, {sorted(m8.r(4))} "
            f"(paper: 7, [4, 6, 7, 8])",
        },
        notes="```\n" + render_figure1(8) + "\n```",
    )


def experiment_e1(max_log_q: int = 10) -> ExperimentResult:
    """Regenerate Figure 1 and verify the mapping properties up to 2^10."""
    return _run_plan(TRIAL_PLANS["E1"], max_log_q=max_log_q)


# ---------------------------------------------------------------------------
# E2 — Figure 2 / Lemma 14.
# ---------------------------------------------------------------------------


def experiment_e2() -> ExperimentResult:
    """Flatten the Figure 2 instance and tabulate (ℓ, δ), (ℓ', δ'), (ℓ'', δ'')."""
    inst = figure2_instance()
    ref = lemma14_reference(
        inst.graph, inst.level1_label, inst.level1_dist,
        inst.level2_label, inst.level2_dist,
    )
    flattened = UniquelyLabeledBFSClustering(
        label={v: o.label for v, o in ref.items()},
        dist={v: o.dist for v, o in ref.items()},
    )
    flattened.validate(inst.graph)
    k = flattened.virtual_graph(inst.graph)
    rows = []
    for v in inst.graph.nodes:
        lab = inst.level1_label[v]
        rows.append(
            (v, lab, inst.level1_dist[v], inst.level2_label[lab],
             inst.level2_dist[lab], ref[v].label, ref[v].dist)
        )
    return ExperimentResult(
        exp_id="E2",
        title="Lemma 14 flattening on the Figure 2 instance",
        headers=["node", "ℓ", "δ", "ℓ'", "δ'", "ℓ''", "δ''"],
        rows=rows,
        findings={
            "(ℓ'', δ'') satisfies Definition 2": "yes (validated)",
            "virtual graph of (ℓ'', δ'') equals K": f"yes — {k.n} vertices, "
            f"edges {list(k.edges())}",
        },
    )


# ---------------------------------------------------------------------------
# E3 — Figure 3 / the Theorem 13 loop trace.
# ---------------------------------------------------------------------------


def experiment_e3(n: int = 96, seed: int = 7) -> ExperimentResult:
    """Trace |V(H_i)| across phases; check the /b decay of Lemma 15."""
    graph = gnp(n, 0.12, seed=seed)
    b = default_b(graph.n)
    rows = []
    label = {v: v for v in graph.nodes}
    active = set(graph.nodes)
    phase = 0
    while active:
        phase += 1
        ls = phase_label_space(graph.id_space, b, phase)
        h = _virtual_graph(graph, active, label, ls)
        ref = lemma15_reference(h, b)
        finished = sum(
            1 for lab in set(label[v] for v in active)
            if ref.outputs[lab].singleton
        )
        residual = ref.residual_clusters
        rows.append(
            (phase, h.n, finished, residual, h.n // b,
             "ok" if residual <= h.n // b else "VIOLATED")
        )
        new_active = {
            v for v in active if not ref.outputs[label[v]].singleton
        }
        label = {v: ref.outputs[label[v]].gamma for v in new_active}
        active = new_active
        if phase > num_phases(graph.n) + 2:
            break
    return ExperimentResult(
        exp_id="E3",
        title=f"Theorem 13 iteration trace (Figure 3), n={n}, b={b}",
        headers=["phase", "|V(H_{i-1})|", "finished", "residual",
                 "bound n_i/b", "≤ bound"],
        rows=rows,
        findings={
            "phases used": phase,
            "phase budget k = 2·sqrt(log n)": num_phases(graph.n),
            "palette bound": color_palette_bound(graph.n, b),
        },
    )


def _virtual_graph(graph, active, label, label_space):
    from repro.graphs.graph import StaticGraph

    edges = set()
    for u, v in graph.edges():
        if u in active and v in active and label[u] != label[v]:
            edges.add((min(label[u], label[v]), max(label[u], label[v])))
    return StaticGraph.from_edges(
        edges, nodes={label[v] for v in active}, id_space=label_space
    )


# ---------------------------------------------------------------------------
# E4 — Figure 4 / one Lemma 15 phase in detail.
# ---------------------------------------------------------------------------


def experiment_e4() -> ExperimentResult:
    """Parent selection and cluster decomposition on the Figure 4 instance."""
    inst = figure4_instance()
    ref = lemma15_reference(inst.graph, inst.b)
    rows = []
    for v in inst.graph.nodes:
        out = ref.outputs[v]
        rows.append(
            (v, inst.graph.degree(v), ref.c1[v],
             ref.p1[v] if ref.p1[v] is not None else "⊥",
             ref.c2[v],
             ref.p2[v] if ref.p2[v] is not None else "⊥",
             "singleton" if out.singleton else f"residual:{out.root}",
             out.gamma, out.delta)
        )
    clustering = ColoredBFSClustering(ref.gamma(), ref.delta())
    clustering.validate(inst.graph)
    return ExperimentResult(
        exp_id="E4",
        title=f"Lemma 15 on the Figure 4 instance (b={inst.b})",
        headers=["node", "deg", "c1", "p1", "c2", "p2", "cluster", "γ", "δ"],
        rows=rows,
        findings={
            "residual clusters": f"{ref.residual_clusters} "
            f"(bound n/b = {inst.graph.n // inst.b})",
            "singleton palette a·b²": singleton_palette(inst.b),
            "valid colored BFS-clustering": "yes (validated)",
        },
    )


# ---------------------------------------------------------------------------
# E5 — Lemma 6: cast awake complexities.
# ---------------------------------------------------------------------------


def _e5_tree(tree: str):
    if tree == "path-32":
        return path(32), 1
    if tree == "star-32":
        return _star(32), 1
    if tree == "random-tree-64":
        return random_tree(64, seed=3), 5
    raise KeyError(tree)


_E5_TREES = ("path-32", "star-32", "random-tree-64")


def _e5_trials() -> list[tuple[str, dict[str, Any]]]:
    return [(tree, {"tree": tree}) for tree in _E5_TREES]


def _e5_trial(tree: str) -> dict[str, Any]:
    graph, root = _e5_tree(tree)
    parent, depth = _bfs_tree(graph, root)
    rows = []
    for variant, runner, bound in [
        ("broadcast (BFS δ)", _run_broadcast_bfs, 2),
        ("convergecast (BFS δ)", _run_convergecast_bfs, 2),
        ("broadcast (labeled)", _run_broadcast_labeled, 3),
        ("convergecast (labeled)", _run_convergecast_labeled, 3),
    ]:
        res = runner(graph, parent, depth, root)
        rows.append(
            (tree, graph.n, variant, res.awake_complexity, bound,
             res.round_complexity,
             "ok" if res.awake_complexity <= bound else "VIOLATED")
        )
    return {"rows": rows}


def _e5_aggregate(payloads: list[Any]) -> ExperimentResult:
    return ExperimentResult(
        exp_id="E5",
        title="Lemma 6 broadcast/convergecast awake complexity",
        headers=["tree", "n", "variant", "awake (max)", "paper bound",
                 "rounds", "within"],
        rows=_merge_rows(payloads),
        findings={"paper": "awake complexity 3, round complexity O(N)"},
    )


def experiment_e5() -> ExperimentResult:
    """Measure awake complexity of all four cast variants on trees."""
    return _run_plan(TRIAL_PLANS["E5"])


def _star(n):
    from repro.graphs import star

    return star(n)


def _bfs_tree(graph, root):
    depth = graph.bfs_distances(root)
    parent = {
        v: (None if v == root else min(
            u for u in graph.neighbors(v) if depth[u] == depth[v] - 1
        ))
        for v in graph.nodes
    }
    return parent, depth


def _run_broadcast_bfs(graph, parent, depth, root):
    def program(info):
        value = yield from broadcast_bfs(
            info.id, info.neighbors, parent[info.id], depth[info.id],
            info.n, 1, "m" if info.id == root else None,
        )
        return value

    return SleepingSimulator(graph, program).run()


def _run_convergecast_bfs(graph, parent, depth, root):
    def program(info):
        value = yield from convergecast_bfs(
            info.id, info.neighbors, parent[info.id], depth[info.id],
            info.n, 1, (info.id,), lambda a, b: a + b,
        )
        return value

    return SleepingSimulator(graph, program).run()


def _run_broadcast_labeled(graph, parent, depth, root):
    bound = graph.n * 3

    def program(info):
        value = yield from broadcast_labeled(
            info.id, info.neighbors, parent[info.id], 3 * depth[info.id],
            bound, 1, "m" if info.id == root else None,
        )
        return value

    return SleepingSimulator(graph, program).run()


def _run_convergecast_labeled(graph, parent, depth, root):
    bound = graph.n * 3

    def program(info):
        value = yield from convergecast_labeled(
            info.id, info.neighbors, parent[info.id], 3 * depth[info.id],
            bound, 1, (info.id,), lambda a, b: a + b,
        )
        return value

    return SleepingSimulator(graph, program).run()


# ---------------------------------------------------------------------------
# E6 — Lemma 11 + the BM21 baseline.
# ---------------------------------------------------------------------------


def _e6_graph(name: str):
    if name == "path-64":
        return path(64)
    if name == "4-regular-64":
        return random_regular(64, 4, seed=1)
    if name == "gnp-64-dense":
        return gnp(64, 0.3, seed=2)
    if name == "complete-32":
        return complete_graph(32)
    if name == "complete-64":
        return complete_graph(64)
    raise KeyError(name)


_E6_GRAPHS = (
    "path-64", "4-regular-64", "gnp-64-dense", "complete-32", "complete-64",
)


def _e6_trials() -> list[tuple[str, dict[str, Any]]]:
    return [(name, {"graph_name": name}) for name in _E6_GRAPHS]


def _e6_trial(graph_name: str) -> dict[str, Any]:
    graph = _e6_graph(graph_name)
    result = solve_with_baseline(graph, MaximalIndependentSet())
    delta = graph.max_degree
    bound = bounds.baseline_awake_bound(graph.id_space, delta)
    return {
        "rows": [
            (graph_name, graph.n, delta, result.awake_complexity, bound,
             result.round_complexity,
             "ok" if result.awake_complexity <= bound else "VIOLATED")
        ]
    }


def _e6_aggregate(payloads: list[Any]) -> ExperimentResult:
    return ExperimentResult(
        exp_id="E6",
        title="BM21 baseline (Lemma 11 + Linial): awake O(log Δ + log* n)",
        headers=["graph", "n", "Δ", "awake", "bound", "rounds", "within"],
        rows=_merge_rows(payloads),
        findings={
            "shape": "awake grows with log Δ (complete-64 > complete-32 > "
            "sparse), the regime Theorem 1 improves",
        },
    )


def experiment_e6() -> ExperimentResult:
    """Baseline awake complexity across degree regimes."""
    return _run_plan(TRIAL_PLANS["E6"])


# ---------------------------------------------------------------------------
# E7 — Theorem 9: awake O(log c).
# ---------------------------------------------------------------------------


def _e7_trials(n: int = 32, seed: int = 3) -> list[tuple[str, dict[str, Any]]]:
    graph = gnp(n, 0.15, seed=seed)
    base_c = max(_greedy_coloring(graph).values())
    return [
        (f"c={c}", {"n": n, "seed": seed, "c": c})
        for c in [base_c, 8, 16, 64, 256, 1024]
        if c >= base_c
    ]


def _e7_trial(n: int, seed: int, c: int) -> dict[str, Any]:
    graph = gnp(n, 0.15, seed=seed)
    colors = _greedy_coloring(graph)
    clustering = ColoredBFSClustering(colors, {v: 0 for v in graph.nodes})
    result = solve_with_clustering(
        graph, DeltaPlusOneColoring(), clustering, palette=c
    )
    bound = bounds.theorem9_awake_bound(n, c)
    return {
        "n": n,
        "rows": [
            (c, result.awake_complexity, bound, result.round_complexity,
             "ok" if result.awake_complexity <= bound else "VIOLATED")
        ],
    }


def _e7_aggregate(payloads: list[Any]) -> ExperimentResult:
    return ExperimentResult(
        exp_id="E7",
        title=f"Theorem 9: awake vs palette c (n={payloads[0]['n']})",
        headers=["c", "awake", "bound O(log c)", "rounds", "within"],
        rows=_merge_rows(payloads),
        findings={
            "shape": "awake grows ~7 rounds per doubling of c (the ×7 "
            "Lemma 7 overhead on one extra calendar level)",
        },
    )


def experiment_e7(n: int = 32, seed: int = 3) -> ExperimentResult:
    """Fix a graph+clustering; widen the assumed palette c — awake grows
    logarithmically."""
    return _run_plan(TRIAL_PLANS["E7"], n=n, seed=seed)


def _greedy_coloring(graph):
    colors = {}
    for v in graph.nodes:
        used = {colors[u] for u in graph.neighbors(v) if u in colors}
        c = 1
        while c in used:
            c += 1
        colors[v] = c
    return colors


# ---------------------------------------------------------------------------
# E8 — Theorem 13: colors, decay, awake, and the ID-space remark.
# ---------------------------------------------------------------------------


def _e8a_trials(sizes=(64, 256, 1024, 4096, 8192)) -> list[tuple[str, dict[str, Any]]]:
    return [(f"n={n}", {"n": n}) for n in sizes]


def _e8a_trial(n: int) -> dict[str, Any]:
    graph = gnp(n, min(0.5, 3.0 / n) if n > 16 else 0.3, seed=n)
    ref = theorem13_reference(graph)
    return {
        "rows": [
            (n, graph.max_degree, ref.b, num_phases(n),
             ref.clustering.num_colors(), ref.clustering.max_color(),
             ref.palette_bound)
        ]
    }


def _e8a_aggregate(payloads: list[Any]) -> ExperimentResult:
    return ExperimentResult(
        exp_id="E8a",
        title="Theorem 13 structure at scale (centralized reference)",
        headers=["n", "Δ", "b", "phases", "colors used", "max color",
                 "bound k·a·b²"],
        rows=_merge_rows(payloads),
        findings={
            "paper": "2^{O(sqrt(log n))} colors; the bound column grows "
            "sub-polynomially",
        },
    )


def experiment_e8_structure(sizes=(64, 256, 1024, 4096, 8192)) -> ExperimentResult:
    """Reference-scale structure check: colors used vs the 2^{O(sqrt log n)}
    bound across n (no simulation — Definition 4 validated centrally)."""
    return _run_plan(TRIAL_PLANS["E8a"], sizes=sizes)


def _e8b_trials(sizes=(8, 16, 32, 64, 96, 128)) -> list[tuple[str, dict[str, Any]]]:
    return [(f"n={n}", {"n": n}) for n in sizes]


def _e8b_trial(n: int) -> dict[str, Any]:
    graph = gnp(n, 3.0 / n, seed=n + 1)
    res = compute_clustering(graph)
    bound = bounds.theorem13_awake_bound(graph.n, graph.id_space)
    return {
        "rows": [
            (n, res.b, res.awake_complexity, bound,
             res.round_complexity,
             "ok" if res.awake_complexity <= bound else "VIOLATED")
        ]
    }


def _e8b_aggregate(payloads: list[Any]) -> ExperimentResult:
    return ExperimentResult(
        exp_id="E8b",
        title="Theorem 13 measured awake complexity (Sleeping simulator)",
        headers=["n", "b", "awake", "bound", "rounds", "within"],
        rows=_merge_rows(payloads),
        findings={
            "paper": "awake O(sqrt(log n)·log* n), rounds O(n^5 sqrt(log n))",
        },
    )


def experiment_e8_distributed(sizes=(8, 16, 32, 64, 96, 128)) -> ExperimentResult:
    """Simulated awake complexity of the pipeline vs the closed-form bound."""
    return _run_plan(TRIAL_PLANS["E8b"], sizes=sizes)


def _e8c_trials(n: int = 12, seed: int = 9) -> list[tuple[str, dict[str, Any]]]:
    return [(f"s={s}", {"n": n, "seed": seed, "s": s}) for s in (1, 2, 3)]


def _e8c_trial(n: int, seed: int, s: int) -> dict[str, Any]:
    from repro.util.idspace import polynomial_ids

    ids = polynomial_ids(n, s, seed=seed) if s > 1 else None
    graph = gnp(n, 0.3, seed=seed, ids=ids)
    res = compute_clustering(graph)
    return {
        "n": n,
        "rows": [
            (f"n^{s}", graph.id_space, res.awake_complexity,
             res.round_complexity)
        ],
    }


def _e8c_aggregate(payloads: list[Any]) -> ExperimentResult:
    return ExperimentResult(
        exp_id="E8c",
        title=f"§5 Remark: ID range vs round/awake complexity "
        f"(n={payloads[0]['n']})",
        headers=["ID space", "|space|", "awake", "rounds"],
        rows=_merge_rows(payloads),
        findings={
            "paper": "rounds O(n^{1+s} sqrt(log n)) for IDs in [n^s]; awake "
            "unchanged — the rounds column grows with s, awake stays flat",
        },
    )


def experiment_e8_idspace(n: int = 12, seed: int = 9) -> ExperimentResult:
    """The §5 Remark: IDs from [n^s] change round complexity, not awake."""
    return _run_plan(TRIAL_PLANS["E8c"], n=n, seed=seed)


# ---------------------------------------------------------------------------
# E9 — the headline comparison: Theorem 1 vs the BM21 baseline.
# ---------------------------------------------------------------------------


def _e9_family(family: str, n: int):
    if family == "path":
        return "bounded-degree (path)", path(n)
    if family == "powerlaw":
        return "Δ=n^ε (power-law)", preferential_attachment(
            n, max(2, n // 16), seed=n
        )
    if family == "complete":
        return "Δ=n-1 (complete)", complete_graph(n)
    raise KeyError(family)


_E9_FAMILIES = ("path", "powerlaw", "complete")


def _e9_trials(
    sizes=(16, 32, 64, 128, 256), problem: Any = None
) -> list[tuple[str, dict[str, Any]]]:
    return [
        (f"{family}/n={n}", {"n": n, "family": family, "problem": problem})
        for n in sizes
        for family in _E9_FAMILIES
    ]


def _e9_trial(n: int, family: str, problem: Any = None) -> dict[str, Any]:
    problem = problem or MaximalIndependentSet()
    label, graph = _e9_family(family, n)
    base = solve_with_baseline(graph, problem)
    thm1 = solve(graph, problem)
    return {
        "rows": [
            (label, n, graph.max_degree,
             base.awake_complexity, thm1.awake_complexity,
             f"{thm1.awake_complexity / base.awake_complexity:.2f}",
             bounds.baseline_asymptotic(graph.max_degree, graph.id_space),
             bounds.theorem1_asymptotic(n, graph.id_space))
        ]
    }


def _e9_aggregate(payloads: list[Any]) -> ExperimentResult:
    return ExperimentResult(
        exp_id="E9",
        title="Theorem 1 vs BM21 baseline (headline comparison)",
        headers=["family", "n", "Δ", "awake BM21", "awake Thm1",
                 "Thm1/BM21", "~logΔ+log*n", "~√log n·log*n"],
        rows=_merge_rows(payloads),
        findings={
            "shape": "the baseline's awake grows with log Δ (doubling n on "
            "complete graphs adds ~2 awake rounds); Theorem 1's awake is "
            "flat in Δ and tracks sqrt(log n)·log* n. Constants favor the "
            "baseline at laptop scales — the crossover is asymptotic "
            "(n ≈ 2^{(C·sqrt(log n) log* n / log n)²}), exactly as the "
            "paper's 'polynomial improvement for Δ ≫ 2^{sqrt(log n)}' "
            "stipulates for the *exponent*, not the constant.",
        },
    )


def experiment_e9(
    sizes=(16, 32, 64, 128, 256), problem: Any = None
) -> ExperimentResult:
    """Awake complexity scaling of both algorithms on low- and high-degree
    families. The paper's claim: for Δ = n^ε the baseline pays Θ(log n)
    while Theorem 1 pays O(sqrt(log n)·log* n) — the *growth rates* must
    separate even where constants favor the baseline."""
    return _run_plan(TRIAL_PLANS["E9"], sizes=sizes, problem=problem)


# ---------------------------------------------------------------------------
# E10 — distance-2 coloring is not O-LOCAL.
# ---------------------------------------------------------------------------


def _e10_trials(num_rules: int = 8) -> list[tuple[str, dict[str, Any]]]:
    return [(f"rule#{seed}", {"seed": seed}) for seed in range(num_rules)]


def _e10_trial(seed: int) -> dict[str, Any]:
    import random

    rng = random.Random(seed)
    table = {i: rng.randint(1, 5) for i in range(1, 7)}
    f = table.__getitem__
    assignment = defeating_id_assignment(f, 6)
    pair = sink_collision(f, assignment)
    return {
        "rows": [
            (f"f#{seed}: {list(table.values())}",
             str(assignment), f"sinks {pair[0]} & {pair[1]}",
             f(assignment[pair[0] - 1]))
        ]
    }


def _e10_aggregate(payloads: list[Any]) -> ExperimentResult:
    return ExperimentResult(
        exp_id="E10",
        title="§2.2: every 5-color sink rule is defeated on P_6",
        headers=["rule f(1..6)", "ID placement", "colliding sinks",
                 "shared color"],
        rows=_merge_rows(payloads),
        findings={
            "paper": "distance-2 coloring ∉ O-LOCAL — sinks of the "
            "alternating orientation decide from their ID alone, and "
            "pigeonhole forces a distance-2 collision",
        },
    )


def experiment_e10(num_rules: int = 8) -> ExperimentResult:
    """Defeat a sample of sink rules f: {1..6} -> {1..5}."""
    return _run_plan(TRIAL_PLANS["E10"], num_rules=num_rules)


# ---------------------------------------------------------------------------
# E11 — average awake complexity (the conclusion's Open Question 3).
# ---------------------------------------------------------------------------


def experiment_e11(n: int = 48, seed: int = 21) -> ExperimentResult:
    """Max vs average awake rounds per algorithm: the paper asks whether
    o(sqrt(log n)) — or constant — *average* awake complexity is possible;
    we measure where the implementations actually stand."""
    graph = gnp(n, 0.12, seed=seed)
    problem = MaximalIndependentSet()
    rows = []

    base = solve_with_baseline(graph, problem)
    metrics = base.simulation.metrics
    rows.append(("BM21 baseline", metrics.awake_complexity,
                 round(metrics.average_awake, 2), metrics.total_awake))

    thm1 = solve(graph, problem)
    metrics = thm1.simulation.metrics
    rows.append(("Theorem 1", metrics.awake_complexity,
                 round(metrics.average_awake, 2), metrics.total_awake))

    clustering = compute_clustering(graph)
    metrics = clustering.simulation.metrics
    rows.append(("Theorem 13 (clustering only)", metrics.awake_complexity,
                 round(metrics.average_awake, 2), metrics.total_awake))

    from repro.olocal.luby import luby_mis

    luby = luby_mis(graph, seed=seed)
    metrics = luby.simulation.metrics
    rows.append(("Luby (randomized, always awake)", metrics.awake_complexity,
                 round(metrics.average_awake, 2), metrics.total_awake))

    return ExperimentResult(
        exp_id="E11",
        title=f"Average vs maximum awake complexity (n={n})",
        headers=["algorithm", "max awake", "avg awake", "total awake"],
        rows=rows,
        findings={
            "open question 3": "the paper asks for o(sqrt(log n)) or even "
            "constant *average* awake; in our runs the average sits close "
            "to the max for both algorithms (the wake calendars are "
            "data-independent), so closing the gap needs genuinely "
            "adaptive schedules — consistent with it being open. Luby's "
            "randomized MIS shows what adaptivity buys: most nodes decide in "
            "the first phases, so its average is far below its max",
        },
    )


# ---------------------------------------------------------------------------
# E12 — ablation: the parameter b of Theorem 13.
# ---------------------------------------------------------------------------


def _e12_trials(n: int = 40, seed: int = 23) -> list[tuple[str, dict[str, Any]]]:
    return [(f"b={b}", {"n": n, "seed": seed, "b": b}) for b in (2, 4, 8, 16)]


def _e12_trial(n: int, seed: int, b: int) -> dict[str, Any]:
    graph = gnp(n, 0.15, seed=seed)
    ref = theorem13_reference(graph, b=b)
    phases_used = max(a.phase for a in ref.assignments.values())
    res = compute_clustering(graph, b=b)
    return {
        "n": graph.n,
        "rows": [
            (b, singleton_palette(b), phases_used,
             ref.clustering.num_colors(), ref.clustering.max_color(),
             res.awake_complexity, res.round_complexity)
        ],
    }


def _e12_aggregate(payloads: list[Any]) -> ExperimentResult:
    n = payloads[0]["n"]
    marker = default_b(n)
    return ExperimentResult(
        exp_id="E12",
        title=f"Ablation: the phase parameter b (n={n}, paper's b={marker})",
        headers=["b", "a·b²", "phases used", "colors used", "max color",
                 "awake", "rounds"],
        rows=_merge_rows(payloads),
        findings={
            "trade-off": "b controls the split between per-phase palette "
            "(a·b², grows with b) and phase count (shrinks with b); the "
            "paper's b = 2^{sqrt(log n)} balances the product at "
            "2^{O(sqrt(log n))} total colors and O(sqrt(log n)) phases",
        },
    )


def experiment_e12(n: int = 40, seed: int = 23) -> ExperimentResult:
    """The paper fixes b = 2^{sqrt(log n)}; the ablation shows the
    trade-off: larger b dissolves more nodes per phase (fewer phases,
    more colors), smaller b needs more phases with fewer colors each."""
    return _run_plan(TRIAL_PLANS["E12"], n=n, seed=seed)


# ---------------------------------------------------------------------------
# Plan registry — the sweep runner executes these same plans sharded.
# ---------------------------------------------------------------------------


def _single_plan(
    exp_id: str, fn: Callable[[], ExperimentResult], title: str = ""
) -> ExperimentPlan:
    """A one-trial plan for experiments with sequentially dependent phases."""
    return ExperimentPlan(
        exp_id=exp_id,
        trials=lambda: [(exp_id, {})],
        run=fn,
        aggregate=lambda payloads: payloads[0],
        title=title,
    )


TRIAL_PLANS: dict[str, ExperimentPlan] = {
    "E1": ExperimentPlan(
        "E1", _e1_trials, _e1_trial, _e1_aggregate,
        title="Lemma 10 mappings φ and r (Figure 1)",
    ),
    "E2": _single_plan(
        "E2", experiment_e2,
        title="Lemma 14 flattening on the Figure 2 instance",
    ),
    "E3": _single_plan(
        "E3", experiment_e3,
        title="Theorem 13 iteration trace (Figure 3)",
    ),
    "E4": _single_plan(
        "E4", experiment_e4,
        title="Lemma 15 on the Figure 4 instance",
    ),
    "E5": ExperimentPlan(
        "E5", _e5_trials, _e5_trial, _e5_aggregate,
        title="Lemma 6 broadcast/convergecast awake complexity",
    ),
    "E6": ExperimentPlan(
        "E6", _e6_trials, _e6_trial, _e6_aggregate,
        title="BM21 baseline (Lemma 11 + Linial): awake O(log Δ + log* n)",
    ),
    "E7": ExperimentPlan(
        "E7", _e7_trials, _e7_trial, _e7_aggregate,
        title="Theorem 9: awake vs palette c",
    ),
    "E8a": ExperimentPlan(
        "E8a", _e8a_trials, _e8a_trial, _e8a_aggregate,
        title="Theorem 13 structure at scale (centralized reference)",
    ),
    "E8b": ExperimentPlan(
        "E8b", _e8b_trials, _e8b_trial, _e8b_aggregate,
        title="Theorem 13 measured awake complexity (Sleeping simulator)",
    ),
    "E8c": ExperimentPlan(
        "E8c", _e8c_trials, _e8c_trial, _e8c_aggregate,
        title="§5 Remark: ID range vs round/awake complexity",
    ),
    "E9": ExperimentPlan(
        "E9", _e9_trials, _e9_trial, _e9_aggregate,
        title="Theorem 1 vs BM21 baseline (headline comparison)",
    ),
    "E10": ExperimentPlan(
        "E10", _e10_trials, _e10_trial, _e10_aggregate,
        title="§2.2: every 5-color sink rule is defeated on P_6",
    ),
    "E11": _single_plan(
        "E11", experiment_e11,
        title="Average vs maximum awake complexity",
    ),
    "E12": ExperimentPlan(
        "E12", _e12_trials, _e12_trial, _e12_aggregate,
        title="Ablation: the phase parameter b of Theorem 13",
    ),
}


ALL_EXPERIMENTS: dict[str, Callable[[], ExperimentResult]] = {
    "E1": experiment_e1,
    "E2": experiment_e2,
    "E3": experiment_e3,
    "E4": experiment_e4,
    "E5": experiment_e5,
    "E6": experiment_e6,
    "E7": experiment_e7,
    "E8a": experiment_e8_structure,
    "E8b": experiment_e8_distributed,
    "E8c": experiment_e8_idspace,
    "E9": experiment_e9,
    "E10": experiment_e10,
    "E11": experiment_e11,
    "E12": experiment_e12,
}
