"""Experiment harness: closed-form bounds, experiment runners, reporting."""

from repro.analysis.bounds import (
    baseline_awake_bound,
    lemma6_awake_bound,
    lemma11_awake_bound,
    theorem1_awake_bound,
    theorem9_awake_bound,
    theorem13_awake_bound,
    theorem13_color_bound,
)

__all__ = [
    "baseline_awake_bound",
    "lemma6_awake_bound",
    "lemma11_awake_bound",
    "theorem1_awake_bound",
    "theorem9_awake_bound",
    "theorem13_awake_bound",
    "theorem13_color_bound",
]
