"""Closed-form awake-complexity bounds with explicit constants.

The paper states its results asymptotically; these functions pin concrete
constants (derived from our implementation's accounting, documented per
function) so that tests and benchmarks can assert *measured ≤ bound* on
every run. The constants are implementation facts, not claims about the
paper's optimal constants.
"""

from __future__ import annotations

from repro.core.linial import final_palette, num_steps
from repro.core.theorem13 import color_palette_bound, default_b, num_phases
from repro.util.mathx import ceil_log2, iterated_log, next_pow2, sqrt_log_ceil


def lemma6_awake_bound(labeled: bool = True) -> int:
    """Broadcast/convergecast: 3 awake rounds (2 for BFS labels)."""
    return 3 if labeled else 2


def linial_awake_bound(id_space: int, conflict_degree: int, distance: int = 1) -> int:
    """One awake round per reduction step (two at distance 2)."""
    return distance * num_steps(id_space, conflict_degree)


def lemma11_awake_bound(palette: int) -> int:
    """|r(c)| = 1 + log₂ q with q = next_pow2(palette)."""
    return 1 + ceil_log2(next_pow2(palette))


def baseline_awake_bound(id_space: int, delta: int) -> int:
    """BM21: Linial's steps + the Lemma 11 calendar on an O(Δ²) palette —
    the O(log Δ + log* n) bound."""
    reduced = final_palette(id_space, max(delta, 1))
    return linial_awake_bound(id_space, max(delta, 1)) + lemma11_awake_bound(
        reduced
    )


def lemma15_awake_bound(n: int, id_space: int, b: int) -> int:
    """Distance-2 Linial (2/step) + 2 exchange + 4 casts × 3 + 1 membership
    + Linial on G[U] (1/step)."""
    from repro.core.lemma15 import distance2_conflict_degree

    d2_steps = num_steps(id_space, distance2_conflict_degree(n))
    u_steps = num_steps(id_space, b)
    return 2 * d2_steps + 2 + 12 + 1 + u_steps


def lemma7_overhead() -> int:
    """Awake rounds per awake virtual round: 1 exchange + 4 gather ≤ 5
    (the paper budgets 7)."""
    return 5


def virtual_setup_awake() -> int:
    """The setup of a virtual execution: 1 exchange + 4 gather."""
    return 5


def lemma14_awake_bound() -> int:
    """Constant: setup (5) + 5 awake virtual rounds × 5."""
    return virtual_setup_awake() + 5 * lemma7_overhead()


def theorem13_awake_bound(n: int, id_space: int, b: int | None = None) -> int:
    """Sum over phases of (virtual Lemma 15 + Lemma 14)."""
    from repro.core.theorem13 import phase_label_space

    b = b if b is not None else default_b(n)
    total = 0
    for i in range(1, num_phases(n) + 1):
        ls = phase_label_space(id_space, b, i)
        lemma15 = lemma15_awake_bound(n, ls, b)
        total += (
            virtual_setup_awake()
            + lemma7_overhead() * lemma15
            + lemma14_awake_bound()
        )
    return total


def theorem13_color_bound(n: int, b: int | None = None) -> int:
    """k · a·b² = 2^{O(sqrt(log n))} colors."""
    return color_palette_bound(n, b)


def theorem9_awake_bound(n: int, palette: int) -> int:
    """Rooting (3) + virtual setup (5) + 5 × Lemma 11 calendar on c colors."""
    return 3 + virtual_setup_awake() + lemma7_overhead() * lemma11_awake_bound(
        palette
    )


def theorem1_awake_bound(n: int, id_space: int, b: int | None = None) -> int:
    """Theorem 13 followed by Theorem 9 — O(sqrt(log n)·log* n) total."""
    b = b if b is not None else default_b(n)
    palette = color_palette_bound(n, b)
    return theorem13_awake_bound(n, id_space, b) + theorem9_awake_bound(
        n, palette
    )


def theorem1_asymptotic(n: int, id_space: int | None = None) -> int:
    """The paper's asymptotic form sqrt(log n) · log*(n) (no constant) —
    used to plot measured/asymptotic ratios in the benches."""
    space = id_space if id_space is not None else n
    return max(1, sqrt_log_ceil(n)) * max(1, iterated_log(space))


def baseline_asymptotic(delta: int, id_space: int) -> int:
    """The BM21 asymptotic form log Δ + log* n (no constant)."""
    return max(1, ceil_log2(max(delta, 2))) + max(1, iterated_log(id_space))
