"""Generic named registries — the extension seam of the scenario API.

Every axis of a runnable scenario (graph family, problem, algorithm) is
a :class:`Registry`: an ordered mapping from canonical names to values,
with

- **decorator registration** (``@REGISTRY.register("name", ...)``) or
  direct :meth:`Registry.add` calls;
- **aliases** — short user-facing names (``mis`` for
  ``maximal_independent_set``) resolved everywhere a canonical name is
  accepted;
- **metadata** — a human-readable ``title`` and a ``params`` schema
  (parameter name → description) that the CLI catalog and
  :func:`repro.api.run_scenario` validation consume;
- **duplicate-name errors** — registering a name or alias twice raises
  :class:`RegistryError` instead of silently shadowing;
- **dict-compatible access** — iteration, ``in``, ``len``,
  ``registry[name]``, ``.items()/.keys()/.values()`` all behave like
  the plain dicts the registries replaced, so pre-registry call sites
  keep working unchanged.

Third-party packages extend the scenario space without touching repro
source by advertising a ``repro.plugins`` entry point whose target is a
callable; :func:`load_plugins` imports and invokes each one (the
callable then registers into ``repro.GRAPH_FAMILIES`` /
``repro.PROBLEMS`` / ``repro.ALGORITHMS`` with the same decorators).
Registered names become valid immediately in ``repro solve``,
``repro sweep --grid``, :class:`repro.api.Scenario`, and the trial
cache key space.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Any, Callable, Generic, Iterator, Mapping, TypeVar

from repro.errors import ReproError

T = TypeVar("T")

#: Entry-point group scanned by :func:`load_plugins`.
PLUGIN_GROUP = "repro.plugins"

_MISSING = object()


class RegistryError(ReproError):
    """A registration conflict.

    Raised for a duplicate name, a colliding alias, or a value wired up
    with parameters its schema does not declare.
    """


class UnknownNameError(RegistryError, KeyError):
    """A lookup failed; the message lists the valid registered names.

    Subclasses :class:`KeyError` so pre-registry call sites (``except
    KeyError`` around spec construction, ``pytest.raises(KeyError)``)
    keep working.
    """


@dataclass(frozen=True)
class RegistryEntry(Generic[T]):
    """One registered value plus its presentation metadata.

    Attributes:
        name: canonical registry key.
        value: the registered object (builder, problem, adapter, ...).
        title: one-line human description (CLI catalogs, docs).
        aliases: alternative lookup names resolving to ``name``.
        params: parameter schema — accepted parameter name → one-line
            description; consumed by scenario validation.
    """

    name: str
    value: T
    title: str = ""
    aliases: tuple[str, ...] = ()
    params: Mapping[str, str] = field(default_factory=dict)


class Registry(Generic[T]):
    """An ordered name → value mapping with aliases and metadata.

    ``kind`` names what the registry holds ("family", "problem",
    "algorithm") and is interpolated into error messages, so an unknown
    lookup reads ``unknown family 'nope'; choose from [...]``.
    """

    def __init__(self, kind: str) -> None:
        """Create an empty registry holding ``kind``-labelled values."""
        self.kind = kind
        self._entries: dict[str, RegistryEntry[T]] = {}
        self._aliases: dict[str, str] = {}

    # -- registration --------------------------------------------------------

    def add(
        self,
        name: str,
        value: T,
        title: str = "",
        aliases: tuple[str, ...] | list[str] = (),
        params: Mapping[str, str] | None = None,
    ) -> RegistryEntry[T]:
        """Register ``value`` under ``name``.

        Raises :class:`RegistryError` on any duplicate name or alias
        (including duplicates within this call).
        """
        entry = RegistryEntry(
            name=name,
            value=value,
            title=title,
            aliases=tuple(aliases),
            params=dict(params or {}),
        )
        for candidate in (name, *entry.aliases):
            if candidate in self._entries or candidate in self._aliases:
                raise RegistryError(
                    f"duplicate {self.kind} name {candidate!r}: already "
                    f"registered as "
                    f"{self._aliases.get(candidate, candidate)!r}"
                )
        if len(set(entry.aliases)) != len(entry.aliases) or name in entry.aliases:
            raise RegistryError(
                f"{self.kind} {name!r}: aliases {list(entry.aliases)} "
                f"collide with each other or with the name"
            )
        self._entries[name] = entry
        for alias in entry.aliases:
            self._aliases[alias] = name
        return entry

    def register(
        self,
        name: str,
        title: str = "",
        aliases: tuple[str, ...] | list[str] = (),
        params: Mapping[str, str] | None = None,
    ) -> Callable[[T], T]:
        """Decorator form of :meth:`add`; returns the value unchanged."""

        def decorator(value: T) -> T:
            self.add(name, value, title=title, aliases=aliases, params=params)
            return value

        return decorator

    def unregister(self, name: str) -> None:
        """Remove a registration and its aliases (plugin teardown, tests)."""
        canonical = self.resolve(name)
        entry = self._entries.pop(canonical)
        for alias in entry.aliases:
            self._aliases.pop(alias, None)

    # -- lookup --------------------------------------------------------------

    def resolve(self, name: str) -> str:
        """Canonical name for ``name`` (which may be an alias).

        Raises :class:`UnknownNameError` listing the valid names.
        """
        if name in self._entries:
            return name
        if name in self._aliases:
            return self._aliases[name]
        raise UnknownNameError(self._unknown_message(name))

    def entry(self, name: str) -> RegistryEntry[T]:
        """The full :class:`RegistryEntry` for a name or alias."""
        return self._entries[self.resolve(name)]

    def get(self, name: str, default: Any = _MISSING) -> T:
        """The registered value for a name or alias.

        Without ``default`` an unknown name raises
        :class:`UnknownNameError` (listing valid names); with one, it is
        returned instead — the dict-``get`` compatibility path.
        """
        try:
            return self._entries[self.resolve(name)].value
        except UnknownNameError:
            if default is _MISSING:
                raise
            return default

    def _unknown_message(self, name: str) -> str:
        message = (
            f"unknown {self.kind} {name!r}; choose from "
            f"{sorted(self._entries)}"
        )
        if self._aliases:
            message += f" (aliases: {sorted(self._aliases)})"
        return message

    # -- dict-compatible views ----------------------------------------------

    def __getitem__(self, name: str) -> T:
        """``registry[name]`` — :meth:`get` without a default."""
        return self.get(name)

    def __contains__(self, name: object) -> bool:
        """Whether ``name`` is a registered name or alias."""
        return name in self._entries or name in self._aliases

    def __iter__(self) -> Iterator[str]:
        """Iterate canonical names in registration order."""
        return iter(self._entries)

    def __len__(self) -> int:
        """Number of registered entries (aliases not counted)."""
        return len(self._entries)

    def __repr__(self) -> str:
        """Kind plus the registered names, for debugging."""
        return f"Registry({self.kind!r}, names={list(self._entries)})"

    def names(self) -> tuple[str, ...]:
        """Canonical names, in registration order."""
        return tuple(self._entries)

    def keys(self) -> tuple[str, ...]:
        """Alias of :meth:`names` (dict compatibility)."""
        return self.names()

    def values(self) -> tuple[T, ...]:
        """Registered values, in registration order."""
        return tuple(e.value for e in self._entries.values())

    def items(self) -> tuple[tuple[str, T], ...]:
        """``(name, value)`` pairs, in registration order."""
        return tuple((n, e.value) for n, e in self._entries.items())

    def entries(self) -> tuple[RegistryEntry[T], ...]:
        """All entries with metadata, in registration order."""
        return tuple(self._entries.values())

    def alias_map(self) -> dict[str, str]:
        """``alias → canonical name`` for every registered alias."""
        return dict(self._aliases)


# ---------------------------------------------------------------------------
# Entry-point plugin loading.
# ---------------------------------------------------------------------------

_loaded_groups: set[str] = set()


def load_plugins(group: str = PLUGIN_GROUP, force: bool = False) -> list[str]:
    """Load third-party scenario plugins advertised as entry points.

    Scans installed distributions for entry points in ``group``, imports
    each target, and — when the target is callable — calls it with no
    arguments so it can register families/problems/algorithms. Runs at
    most once per group per process (``force=True`` rescans, e.g. after
    installing a distribution mid-process).

    A plugin that fails to import or register is skipped with a
    :class:`RuntimeWarning` — one broken plugin must not take down the
    CLI or the API for everyone else.

    Returns the entry-point names loaded by *this* call.
    """
    if group in _loaded_groups and not force:
        return []
    _loaded_groups.add(group)
    from importlib.metadata import entry_points

    loaded: list[str] = []
    for point in entry_points(group=group):
        try:
            target = point.load()
            if callable(target):
                target()
        except Exception as exc:  # fail open: warn, keep the rest
            warnings.warn(
                f"repro plugin {point.name!r} ({point.value}) failed to "
                f"load: {type(exc).__name__}: {exc}",
                RuntimeWarning,
                stacklevel=2,
            )
            continue
        loaded.append(point.name)
    return loaded
