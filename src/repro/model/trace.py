"""Execution tracing: per-node awake timelines and energy diagrams.

The Sleeping model's whole point is *when* radios are on; this module
records the awake rounds of every node during a simulation and renders
them as compact ASCII timelines — the natural "figure" for a Sleeping-model
run. Tracing is opt-in (it stores one list per node) and is consumed by
tests, examples and the EXPERIMENTS.md appendix.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.types import NodeId


@dataclass
class ExecutionTrace:
    """Awake rounds per node, recorded by :class:`TracingSimulator`."""

    awake_rounds: dict[NodeId, list[int]] = field(default_factory=dict)

    def record(self, node: NodeId, round_number: int) -> None:
        self.awake_rounds.setdefault(node, []).append(round_number)

    # -- queries -----------------------------------------------------------

    def awake_count(self, node: NodeId) -> int:
        return len(self.awake_rounds.get(node, ()))

    def last_round(self) -> int:
        return max(
            (rounds[-1] for rounds in self.awake_rounds.values() if rounds),
            default=0,
        )

    def active_rounds(self) -> list[int]:
        """Rounds during which at least one node was awake, sorted."""
        merged: set[int] = set()
        for rounds in self.awake_rounds.values():
            merged.update(rounds)
        return sorted(merged)

    def co_awake(self, u: NodeId, v: NodeId) -> list[int]:
        """Rounds in which both nodes were awake (communication was
        possible between them, if adjacent)."""
        a = set(self.awake_rounds.get(u, ()))
        b = set(self.awake_rounds.get(v, ()))
        return sorted(a & b)

    def energy_histogram(self) -> dict[int, int]:
        """#nodes per awake-count — the energy distribution."""
        histogram: dict[int, int] = {}
        for rounds in self.awake_rounds.values():
            histogram[len(rounds)] = histogram.get(len(rounds), 0) + 1
        return dict(sorted(histogram.items()))

    # -- rendering -----------------------------------------------------------

    def render_timeline(
        self,
        nodes: Iterable[NodeId] | None = None,
        width: int = 72,
    ) -> str:
        """ASCII awake/asleep timeline, one row per node.

        The active rounds (globally non-silent ones) are compressed onto
        ``width`` columns; ``#`` marks an awake round in the bucket, ``.``
        sleep. Long silent gaps therefore do not waste columns — matching
        the time-skipping execution.
        """
        chosen = sorted(nodes) if nodes is not None else sorted(self.awake_rounds)
        active = self.active_rounds()
        if not active:
            return "(no awake rounds recorded)"
        columns = min(width, len(active))
        bucket_of = {
            r: min(i * columns // len(active), columns - 1)
            for i, r in enumerate(active)
        }
        label_width = max(len(str(v)) for v in chosen)
        lines = [
            f"{'node'.rjust(label_width)} | timeline of {len(active)} active "
            f"rounds (last: {self.last_round()})"
        ]
        for v in chosen:
            cells = ["."] * columns
            for r in self.awake_rounds.get(v, ()):
                cells[bucket_of[r]] = "#"
            lines.append(f"{str(v).rjust(label_width)} | {''.join(cells)}")
        return "\n".join(lines)

    def render_energy_summary(self) -> str:
        histogram = self.energy_histogram()
        total = sum(histogram.values())
        lines = ["awake-rounds  #nodes"]
        for count, nodes in histogram.items():
            bar = "█" * max(1, round(40 * nodes / total))
            lines.append(f"{count:>12}  {nodes:>6}  {bar}")
        return "\n".join(lines)


def traced_simulation(graph, program, inputs=None):
    """Run a simulation with tracing enabled; returns (result, trace)."""
    from repro.model.simulator import SleepingSimulator

    trace = ExecutionTrace()

    def tracing_program(info):
        gen = program(info)
        try:
            action = next(gen)
            while True:
                trace.record(info.id, action.round)
                inbox = yield action
                action = gen.send(inbox)
        except StopIteration as stop:
            return stop.value

    result = SleepingSimulator(graph, tracing_program, inputs=inputs).run()
    return result, trace
