"""The vectorized bulk-synchronous engine: lockstep rounds as array ops.

The paper's lockstep algorithms (the greedy strawman, BM21's Linial +
Lemma 11 calendar) are bulk-synchronous by construction: in every round
the *same* small computation runs at every awake node. The per-node
engines (:class:`~repro.model.simulator.SleepingSimulator`,
:func:`~repro.model.lockstep.run_local`) dispatch one Python
object/generator per node per round; this module replaces that with a
handful of numpy operations over *all* nodes at once, pushing feasible
instance sizes from n ≈ 10⁴ to n ≥ 10⁶.

The engine contract (see docs/ARCHITECTURE.md): an engine may schedule
work however it likes, but outputs and the full
:class:`~repro.model.metrics.SimulationMetrics` accounting — per-node
awake rounds, per-node termination rounds, ``messages_sent``,
``active_rounds``, ``last_round`` — must be **bit-identical** to the
simulator engine. The differential suite in
``tests/test_engine_equivalence.py`` is the gate.

How a lockstep execution vectorizes (greedy-by-ID case): node v decides
once every smaller-ID neighbor has decided *and broadcast* — so its
decide round is ``D(v) = 1 + max D(u)`` over smaller neighbors u
(``D = 1`` with none), the length of the longest increasing-ID path
into v. The decide rounds are computed as Kahn waves over the
increasing-ID orientation: a frontier of ready slots, a per-node count
of undecided smaller neighbors decremented by scattered subtraction,
segment reductions over the CSR neighbor array for the decisions
themselves. Each wave is an independent set (two adjacent nodes cannot
both have all smaller neighbors decided while the smaller of the two is
undecided), so a whole wave decides in one batched kernel. The
finish round replays :func:`~repro.model.lockstep.run_local`'s
announce/finish handshake in closed form: v finishes one round after
both its own decision and its last larger neighbor's
(``F(v) = 1 + max(D(v), max D(w))`` over larger neighbors w), it is
awake and broadcasting to all ``deg(v)`` neighbors in rounds
``1..F(v)``, so ``awake(v) = termination(v) = F(v)`` and
``messages_sent = Σ_v deg(v)·F(v)``.

Problem decisions run as array kernels for the built-in O-LOCAL
problems (MIS, (Δ+1)-coloring, vertex cover) and fall back to one
:meth:`~repro.olocal.problem.OLocalProblem.decide` call per node for
everything else — still exactly one call per node total, with exactly
the decided-neighbor mapping the sequential engines would pass, so
plugin problems are automatically supported (their ``decide`` must be a
pure, order-insensitive function of that mapping, which the O-LOCAL
definition already requires).
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.graphs.arrays import (
    ragged_gather,
    require_numpy,
    segment_any,
    sorted_unique,
)
from repro.graphs.graph import StaticGraph
from repro.model.metrics import SimulationMetrics
from repro.model.simulator import SimulationResult
from repro.obs import counters
from repro.obs.spans import span
from repro.olocal.problem import OLocalProblem
from repro.types import NodeId

#: Row budget for the coloring kernel's (wave × palette-window) boolean
#: scatter matrix; waves whose matrix would exceed it are split (the
#: wave is an independent set, so any split decides identically).
_MEX_MATRIX_BUDGET = 1 << 24


# ---------------------------------------------------------------------------
# Wave deciders: batched problem.decide over an independent set of nodes.
# ---------------------------------------------------------------------------


class _WaveDecider:
    """Base class: decide independent-set waves, slot-addressed.

    Subclasses batch one problem's greedy rule over a *wave* — a set of
    slots that (a) is independent and (b) has every decided neighbor
    already processed in an earlier wave. Under any increasing-priority
    schedule the decided neighbors of a deciding node are exactly its
    smaller-priority neighbors, so ``decided`` flags plus the CSR
    adjacency reconstruct the exact mapping ``problem.decide`` sees.
    """

    def __init__(
        self,
        graph: StaticGraph,
        problem: OLocalProblem,
        node_inputs: Mapping[NodeId, Any],
    ) -> None:
        """Bind the graph's CSR arrays and an all-undecided state."""
        np = require_numpy()
        self.graph = graph
        self.arrays = graph.arrays
        self.problem = problem
        self.node_inputs = node_inputs
        self.decided = np.zeros(self.arrays.n, dtype=bool)

    def decide_wave(self, ready: Any) -> None:
        """Decide every slot in ``ready`` and mark them decided."""
        raise NotImplementedError

    def outputs(self) -> dict[NodeId, Any]:
        """Per-node outputs as plain Python objects, keyed by ID."""
        raise NotImplementedError


class _MISDecider(_WaveDecider):
    """Greedy MIS: join iff no decided neighbor joined."""

    def __init__(self, graph, problem, node_inputs) -> None:
        """Add the per-slot joined flags to the base state."""
        np = require_numpy()
        super().__init__(graph, problem, node_inputs)
        self.joined = np.zeros(self.arrays.n, dtype=bool)

    def decide_wave(self, ready: Any) -> None:
        """Join each ready slot iff no neighbor joined before it."""
        nbrs, counts = ragged_gather(
            self.arrays.offsets, self.arrays.flat, ready
        )
        # Only decided nodes can have joined, so no decided-mask needed.
        blocked = segment_any(self.joined[nbrs], counts)
        self.joined[ready] = ~blocked
        self.decided[ready] = True

    def outputs(self) -> dict[NodeId, Any]:
        """ID → joined (bool), matching the sequential greedy MIS."""
        return dict(zip(self.arrays.ids.tolist(), self.joined.tolist()))


class _VertexCoverDecider(_WaveDecider):
    """Greedy minimal vertex cover: the MIS complement rule — enter the
    cover iff some decided neighbor stayed out of it."""

    def __init__(self, graph, problem, node_inputs) -> None:
        """Add the per-slot cover flags to the base state."""
        np = require_numpy()
        super().__init__(graph, problem, node_inputs)
        self.cover = np.zeros(self.arrays.n, dtype=bool)

    def decide_wave(self, ready: Any) -> None:
        """Cover each ready slot iff a decided neighbor stayed out."""
        nbrs, counts = ragged_gather(
            self.arrays.offsets, self.arrays.flat, ready
        )
        exposed = self.decided[nbrs] & ~self.cover[nbrs]
        self.cover[ready] = segment_any(exposed, counts)
        self.decided[ready] = True

    def outputs(self) -> dict[NodeId, Any]:
        """ID → in-cover (bool), matching the sequential greedy rule."""
        return dict(zip(self.arrays.ids.tolist(), self.cover.tolist()))


class _ColoringDecider(_WaveDecider):
    """Greedy (Δ+1)-coloring: the mex over decided neighbors' colors.

    The wave's mex is computed with one boolean scatter matrix of shape
    (wave, max_mex_window): row i marks the colors used around the
    wave's i-th node, and the first unmarked column ≥ 1 is its color.
    """

    def __init__(self, graph, problem, node_inputs) -> None:
        """Add the per-slot color array (0 = undecided) to the state."""
        np = require_numpy()
        super().__init__(graph, problem, node_inputs)
        self.color = np.zeros(self.arrays.n, dtype=np.int64)  # 0 = undecided

    def decide_wave(self, ready: Any) -> None:
        """Color each ready slot with the mex of its decided neighbors."""
        np = require_numpy()
        nbrs, counts = ragged_gather(
            self.arrays.offsets, self.arrays.flat, ready
        )
        # mex(v) <= #decided neighbors + 1 <= deg(v) + 1, so a window of
        # max(counts) + 2 columns always contains the answer.
        width = int(counts.max()) + 2 if len(counts) else 2
        if len(ready) * width > _MEX_MATRIX_BUDGET and len(ready) > 1:
            half = len(ready) // 2
            self.decide_wave(ready[:half])
            self.decide_wave(ready[half:])
            return
        used = np.zeros((len(ready), width), dtype=bool)
        rows = np.repeat(np.arange(len(ready)), counts)
        vals = self.color[nbrs]  # undecided neighbors contribute 0
        # Colors beyond the window cannot affect the mex; fold them onto
        # the ignored column 0.
        used[rows, np.where(vals < width, vals, 0)] = True
        self.color[ready] = used[:, 1:].argmin(axis=1) + 1
        self.decided[ready] = True

    def outputs(self) -> dict[NodeId, Any]:
        """ID → color (1-based int), matching the sequential mex rule."""
        return dict(zip(self.arrays.ids.tolist(), self.color.tolist()))


class _GenericDecider(_WaveDecider):
    """Fallback for any O-LOCAL problem: one ``decide`` call per node.

    Still vastly faster than the per-round engines — ``decide`` runs
    exactly once per node instead of the node being re-dispatched every
    round — and exact by construction: each call receives precisely the
    decided-neighbor mapping the sequential engines would build.
    """

    def __init__(self, graph, problem, node_inputs) -> None:
        """Add the per-slot output list to the base state."""
        super().__init__(graph, problem, node_inputs)
        self._out: list[Any] = [None] * self.arrays.n
        from repro.olocal.problem import NodeView

        self._view = NodeView

    def decide_wave(self, ready: Any) -> None:
        """Call ``problem.decide`` once per ready slot, in slot order."""
        index = self.graph._index
        nodes, offsets, flat = index.nodes, index.offsets, index.flat_slots
        decided, out, inputs = self.decided, self._out, self.node_inputs
        decide, NodeView = self.problem.decide, self._view
        for s in ready.tolist():
            lo, hi = offsets[s], offsets[s + 1]
            decided_neighbors = {
                nodes[t]: out[t] for t in flat[lo:hi] if decided[t]
            }
            view = NodeView(
                id=nodes[s], degree=hi - lo, input=inputs.get(nodes[s])
            )
            out[s] = decide(view, decided_neighbors)
        decided[ready] = True

    def outputs(self) -> dict[NodeId, Any]:
        """ID → whatever ``problem.decide`` returned for that node."""
        return dict(zip(self.arrays.ids.tolist(), self._out))


def make_wave_decider(
    graph: StaticGraph,
    problem: OLocalProblem,
    node_inputs: Mapping[NodeId, Any],
) -> _WaveDecider:
    """Pick the fastest exact decider for ``problem``.

    Array kernels are keyed on the *exact* problem class — a subclass
    may override ``decide``, so anything unrecognized (plugins included)
    gets the generic per-node fallback, which is always exact.
    """
    from repro.olocal.coloring import DeltaPlusOneColoring
    from repro.olocal.mis import MaximalIndependentSet
    from repro.olocal.vertex_cover import MinimalVertexCover

    kernel = {
        MaximalIndependentSet: _MISDecider,
        DeltaPlusOneColoring: _ColoringDecider,
        MinimalVertexCover: _VertexCoverDecider,
    }.get(type(problem), _GenericDecider)
    return kernel(graph, problem, node_inputs)


def decide_by_priority(
    graph: StaticGraph,
    problem: OLocalProblem,
    node_inputs: Mapping[NodeId, Any],
    rank: Any,
) -> _WaveDecider:
    """Run the greedy decision process in ``rank`` order, as Kahn waves.

    ``rank`` is a per-slot permutation of ``0..n-1``; the decisions are
    bit-identical to a sequential greedy pass visiting slots by
    ascending rank (the Theorem 9 priority order ``(color, -dist,
    -ID)``, say). Waves peel the rank orientation of the CSR exactly
    like :func:`greedy_by_id_vectorized` peels the ID orientation: a
    wave is an independent set whose decided neighbors are precisely
    its smaller-rank neighbors, so each wave decides in one batched
    kernel regardless of within-wave order.

    Args:
        graph: the substrate graph (its CSR mirror is used).
        problem: the O-LOCAL problem whose greedy rule decides nodes.
        node_inputs: per-node problem inputs, keyed by node ID.
        rank: int64 array of shape ``(n,)``; ``rank[s]`` is slot s's
            position in the sequential decision order.

    Returns:
        The finished :class:`_WaveDecider`; call ``outputs()`` for the
        per-node results.
    """
    np = require_numpy()
    from repro.graphs.arrays import segment_sum

    ga = graph.arrays
    decider = make_wave_decider(graph, problem, node_inputs)
    if ga.n == 0:
        return decider
    # The rank-up CSR: per slot, its neighbors of strictly larger rank.
    mask = rank[ga.flat] > rank[ga.edge_sources]
    up_counts = segment_sum(mask.astype(np.int64), ga.offsets)
    up_offsets = np.empty(ga.n + 1, dtype=np.int64)
    up_offsets[0] = 0
    np.cumsum(up_counts, out=up_offsets[1:])
    up_flat = ga.flat[mask]

    remaining = ga.degrees - up_counts  # undecided smaller-rank neighbors
    ready = np.flatnonzero(remaining == 0)
    while ready.size:
        decider.decide_wave(ready)
        targets, _ = ragged_gather(up_offsets, up_flat, ready)
        np.subtract.at(remaining, targets, 1)
        candidates = sorted_unique(targets)
        ready = candidates[remaining[candidates] == 0]
    return decider


# ---------------------------------------------------------------------------
# The vectorized greedy-by-ID lockstep engine.
# ---------------------------------------------------------------------------


def greedy_by_id_vectorized(
    graph: StaticGraph,
    problem: OLocalProblem,
    inputs: Mapping[NodeId, Any] | None = None,
) -> SimulationResult:
    """The always-awake greedy strawman as array kernels.

    Bit-identical to :func:`repro.model.lockstep.greedy_by_id_local`
    (outputs and every metric) — see the module docstring for the
    closed-form round accounting — but with O(V + E) total array work
    instead of O(V · rounds) Python dispatch.
    """
    np = require_numpy()
    node_inputs = inputs if inputs is not None else problem.make_inputs(graph)
    metrics = SimulationMetrics()
    if graph.n == 0:
        return SimulationResult(outputs={}, metrics=metrics, graph=graph)

    ga = graph.arrays
    up_offsets, up_flat = ga.up
    # Undecided smaller-ID neighbors: total degree minus up-degree.
    remaining = ga.degrees - (up_offsets[1:] - up_offsets[:-1])
    decide_round = np.zeros(ga.n, dtype=np.int64)
    decider = make_wave_decider(graph, problem, node_inputs)

    ready = np.flatnonzero(remaining == 0)
    wave = 0
    with span("vectorized.waves", n=ga.n):
        while ready.size:
            wave += 1
            decider.decide_wave(ready)
            decide_round[ready] = wave
            # Release the larger neighbors; those hitting zero form the
            # next wave. Work is proportional to the wave's out-edges,
            # so the whole loop is O(E) regardless of the wave count.
            targets, _ = ragged_gather(up_offsets, up_flat, ready)
            np.subtract.at(remaining, targets, 1)
            candidates = sorted_unique(targets)
            ready = candidates[remaining[candidates] == 0]

    with span("vectorized.accounting", n=ga.n, waves=wave):
        # F(v) = 1 + max(D(v), max over larger neighbors w of D(w)).
        finish = decide_round.copy()
        if up_flat.size:
            up_counts = up_offsets[1:] - up_offsets[:-1]
            up_sources = np.repeat(
                np.arange(ga.n, dtype=np.int64), up_counts
            )
            np.maximum.at(finish, up_sources, decide_round[up_flat])
        finish += 1

        ids = ga.ids.tolist()
        finish_list = finish.tolist()
        metrics.awake_rounds = dict(zip(ids, finish_list))
        metrics.termination_round = dict(zip(ids, finish_list))
        metrics.messages_sent = int(ga.degrees @ finish)
        metrics.last_round = int(finish.max())
        metrics.active_rounds = metrics.last_round
    counters.add("sim.run")
    counters.add("sim.messages", metrics.messages_sent)
    counters.add("sim.rounds", metrics.active_rounds)
    return SimulationResult(
        outputs=decider.outputs(), metrics=metrics, graph=graph
    )
