"""The pre-optimization (seed) event loop, kept as a reference oracle.

This is the original ``SleepingSimulator.run`` verbatim: one heap entry
per node per wake-up, eagerly allocated inboxes, and messages expanded
through :func:`repro.model.simulator._expand_outgoing`. It exists for two
reasons:

- **differential testing** — ``tests/test_engine_equivalence.py`` runs
  both loops on seeded random graphs and asserts outputs and metrics
  (awake/round complexity, messages_sent, per-node accounting) are
  bit-identical;
- **benchmarking** — ``benchmarks/bench_engine.py`` measures the
  fast-path speedup against this loop on the same machine, which makes
  the committed speedup ratios hardware-independent.

Do not use it in algorithms; it is O(log n) per node wake-up where the
main loop is O(1) amortized.
"""

from __future__ import annotations

import heapq
from typing import Any, Generator

from repro.errors import SimulationError
from repro.model.actions import AwakeAt
from repro.model.api import NodeInfo
from repro.model.metrics import SimulationMetrics, payload_weight
from repro.model.simulator import (
    SimulationResult,
    SleepingSimulator,
    _check_action,
    _expand_outgoing,
)
from repro.types import NodeId, Payload


class ReferenceSleepingSimulator(SleepingSimulator):
    """The seed implementation of the Sleeping-LOCAL event loop."""

    def run(self) -> SimulationResult:
        graph = self._graph
        metrics = SimulationMetrics()
        outputs: dict[NodeId, Any] = {}
        generators: dict[NodeId, Generator] = {}
        pending: dict[NodeId, AwakeAt] = {}
        heap: list[tuple[int, NodeId]] = []

        for v in graph.nodes:
            info = NodeInfo(
                id=v,
                n=graph.n,
                id_space=graph.id_space,
                neighbors=graph.neighbors(v),
                input=self._inputs.get(v),
            )
            gen = self._program(info)
            try:
                action = next(gen)
            except StopIteration as stop:
                outputs[v] = stop.value
                metrics.termination_round[v] = 0
                metrics.awake_rounds.setdefault(v, 0)
                continue
            _check_action(v, action, previous_round=0)
            generators[v] = gen
            pending[v] = action
            heapq.heappush(heap, (action.round, v))

        while heap:
            current_round = heap[0][0]
            awake: list[NodeId] = []
            while heap and heap[0][0] == current_round:
                _, v = heapq.heappop(heap)
                awake.append(v)
            awake.sort()
            awake_set = set(awake)
            metrics.active_rounds += 1
            metrics.last_round = current_round

            # Phase 1: collect outgoing messages of all awake nodes.
            inboxes: dict[NodeId, dict[NodeId, Payload]] = {v: {} for v in awake}
            for v in awake:
                outgoing = _expand_outgoing(v, pending[v].messages, graph)
                metrics.messages_sent += len(outgoing)
                for target, payload in outgoing.items():
                    if self._measure_sizes:
                        metrics.charge_message_weight(payload_weight(payload))
                    # Delivery only if the target is awake *this* round.
                    if target in awake_set:
                        inboxes[target][v] = payload

            # Phase 2: advance every awake node with its inbox.
            for v in awake:
                metrics.charge_awake(v)
                if metrics.awake_rounds[v] > self._max_awake_each:
                    raise SimulationError(
                        f"node {v} exceeded {self._max_awake_each} awake "
                        f"rounds at round {current_round}; runaway protocol?"
                    )
                gen = generators[v]
                try:
                    action = gen.send(inboxes[v])
                except StopIteration as stop:
                    outputs[v] = stop.value
                    metrics.termination_round[v] = current_round
                    del generators[v]
                    del pending[v]
                    continue
                _check_action(v, action, previous_round=current_round)
                pending[v] = action
                heapq.heappush(heap, (action.round, v))

        missing = set(graph.nodes) - set(outputs)
        if missing:
            raise SimulationError(
                f"{len(missing)} nodes never terminated: {sorted(missing)[:5]}"
            )
        return SimulationResult(outputs=outputs, metrics=metrics, graph=graph)
