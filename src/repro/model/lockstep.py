"""Classic LOCAL-model execution on the Sleeping simulator.

A LOCAL algorithm is a Sleeping algorithm that never sleeps: awake
complexity = round complexity. This adapter runs round-callback algorithms
(the textbook LOCAL style) on the same simulator, giving the "no sleeping"
strawman used in comparisons and a convenient way to port classic
algorithms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping

from repro.graphs.graph import StaticGraph
from repro.model.actions import AwakeAt
from repro.model.api import NodeInfo
from repro.model.simulator import SimulationResult, SleepingSimulator
from repro.types import NodeId, Payload


@dataclass
class LocalNodeState:
    """Mutable per-node state handed to the round callback."""

    info: NodeInfo
    memory: dict[str, Any]
    output: Any = None
    done: bool = False

    def finish(self, output: Any) -> None:
        self.output = output
        self.done = True


#: round callback: (state, round_number, inbox) -> messages to send next
#: round (dict neighbor -> payload, or None). Call ``state.finish(out)``
#: to terminate after the current round.
RoundFn = Callable[[LocalNodeState, int, dict[NodeId, Payload]], Any]


def run_local(
    graph: StaticGraph,
    first_messages: Callable[[LocalNodeState], Any],
    on_round: RoundFn,
    inputs: Mapping[NodeId, Any] | None = None,
    max_rounds: int = 10_000,
) -> SimulationResult:
    """Run a lockstep LOCAL algorithm until every node finishes.

    ``first_messages(state)`` produces round 1's outgoing messages;
    ``on_round(state, r, inbox)`` consumes round r's inbox and returns the
    messages for round r+1 (ignored once the node finished).
    """

    def program(info: NodeInfo):
        state = LocalNodeState(info=info, memory={})
        outgoing = first_messages(state)
        round_number = 0
        while not state.done:
            round_number += 1
            if round_number > max_rounds:
                raise RuntimeError(
                    f"node {info.id}: LOCAL algorithm exceeded "
                    f"{max_rounds} rounds"
                )
            inbox = yield AwakeAt(round_number, outgoing)
            outgoing = on_round(state, round_number, inbox)
        return state.output

    return SleepingSimulator(graph, program, inputs=inputs).run()


def greedy_by_id_local(graph: StaticGraph, problem, inputs=None) -> SimulationResult:
    """The textbook always-awake greedy: node v decides once all
    smaller-ID neighbors have, re-broadcasting its (possibly undecided)
    output every round. Awake complexity Θ(longest increasing-ID path) —
    the strawman that motivates the Sleeping model."""
    from repro.olocal.problem import NodeView

    node_inputs = inputs if inputs is not None else problem.make_inputs(graph)

    def first_messages(state):
        state.memory["decided"] = {}
        return {u: None for u in state.info.neighbors}

    def on_round(state, round_number, inbox):
        info = state.info
        decided = state.memory["decided"]
        for u, payload in inbox.items():
            if payload is not None:
                decided[u] = payload
        pending = [
            u for u in info.neighbors if u < info.id and u not in decided
        ]
        if state.output is None and not pending:
            view = NodeView(
                id=info.id, degree=info.degree, input=node_inputs.get(info.id)
            )
            state.output = problem.decide(
                view, {u: decided[u] for u in decided if u < info.id}
            )
        # Finish only after (a) the output went out in a previous round
        # (larger neighbors are still awake — they need it to decide) and
        # (b) every larger neighbor has decided and no longer needs us.
        if state.output is not None and state.memory.get("announced"):
            larger_pending = [
                u for u in info.neighbors
                if u > info.id and u not in decided
            ]
            if not larger_pending:
                state.finish(state.output)
        state.memory["announced"] = state.output is not None
        return {u: state.output for u in info.neighbors}

    return run_local(graph, first_messages, on_round, inputs=node_inputs)
