"""Classic LOCAL-model execution on the Sleeping simulator.

A LOCAL algorithm is a Sleeping algorithm that never sleeps: awake
complexity = round complexity. This adapter runs round-callback algorithms
(the textbook LOCAL style) on the same semantics, giving the "no sleeping"
strawman used in comparisons and a convenient way to port classic
algorithms.

Because a lockstep execution has *every* node awake in *every* round, the
adapter ships its own *native* engine: a plain round loop over the live
nodes with no generators, no :class:`AwakeAt` allocations and no wake
queue — the extreme case of the simulator's lockstep fast path. The
generator-based route through :class:`SleepingSimulator` is kept (pass
``engine="simulator"``) and the differential tests in
``tests/test_engine_equivalence.py`` assert both produce bit-identical
outputs and metrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping

from repro.errors import SimulationError
from repro.graphs.graph import StaticGraph
from repro.model.actions import AwakeAt, Broadcast
from repro.model.api import NodeInfo
from repro.model.metrics import SimulationMetrics
from repro.model.simulator import SimulationResult, SleepingSimulator
from repro.types import NodeId, Payload


@dataclass
class LocalNodeState:
    """Mutable per-node state handed to the round callback."""

    info: NodeInfo
    memory: dict[str, Any]
    output: Any = None
    done: bool = False

    def finish(self, output: Any) -> None:
        self.output = output
        self.done = True


#: round callback: (state, round_number, inbox) -> messages to send next
#: round (dict neighbor -> payload, Broadcast, or None). Call
#: ``state.finish(out)`` to terminate after the current round.
RoundFn = Callable[[LocalNodeState, int, dict[NodeId, Payload]], Any]


def run_local(
    graph: StaticGraph,
    first_messages: Callable[[LocalNodeState], Any],
    on_round: RoundFn,
    inputs: Mapping[NodeId, Any] | None = None,
    max_rounds: int = 10_000,
    engine: str = "native",
) -> SimulationResult:
    """Run a lockstep LOCAL algorithm until every node finishes.

    ``first_messages(state)`` produces round 1's outgoing messages;
    ``on_round(state, r, inbox)`` consumes round r's inbox and returns the
    messages for round r+1 (ignored once the node finished).

    ``engine="native"`` (default) runs the dedicated lockstep loop;
    ``engine="simulator"`` routes through :class:`SleepingSimulator` via a
    generator program — identical semantics, kept for differential testing.
    """
    if engine == "simulator":
        return _run_local_via_simulator(
            graph, first_messages, on_round, inputs, max_rounds
        )
    if engine != "native":
        raise ValueError(f"unknown engine {engine!r}")

    inputs = dict(inputs) if inputs else {}
    metrics = SimulationMetrics()
    awake_rounds = metrics.awake_rounds
    termination_round = metrics.termination_round
    outputs: dict[NodeId, Any] = {}
    states: dict[NodeId, LocalNodeState] = {}
    outgoing: dict[NodeId, Any] = {}
    neighbors = graph.neighbors
    messages_sent = 0

    for v in graph.nodes:
        info = NodeInfo(
            id=v,
            n=graph.n,
            id_space=graph.id_space,
            neighbors=neighbors(v),
            input=inputs.get(v),
        )
        state = LocalNodeState(info=info, memory={})
        out = first_messages(state)
        if state.done:
            outputs[v] = state.output
            termination_round[v] = 0
            awake_rounds.setdefault(v, 0)
            continue
        states[v] = state
        outgoing[v] = out

    active = list(states)  # graph.nodes order: ascending
    nbr_sets: dict[NodeId, frozenset[NodeId]] = {}
    inboxes: dict[NodeId, dict[NodeId, Payload]] = {}
    round_number = 0
    while active:
        round_number += 1
        if round_number > max_rounds:
            raise RuntimeError(
                f"node {active[0]}: LOCAL algorithm exceeded "
                f"{max_rounds} rounds"
            )
        metrics.active_rounds += 1

        # Phase 1: every live node is awake — deliver to live targets only.
        inboxes.clear()
        for v in active:
            messages = outgoing[v]
            if messages is None:
                continue
            if isinstance(messages, Broadcast):
                nbrs = neighbors(v)
                messages_sent += len(nbrs)
                payload = messages.payload
                for target in nbrs:
                    if target in states:
                        box = inboxes.get(target)
                        if box is None:
                            inboxes[target] = {v: payload}
                        else:
                            box[v] = payload
            else:
                nbr_set = nbr_sets.get(v)
                if nbr_set is None:
                    nbr_set = nbr_sets[v] = frozenset(neighbors(v))
                messages_sent += len(messages)
                for target, payload in messages.items():
                    if target not in nbr_set:
                        raise SimulationError(
                            f"node {v} tried to send to non-neighbor "
                            f"{target}"
                        )
                    if target in states:
                        box = inboxes.get(target)
                        if box is None:
                            inboxes[target] = {v: payload}
                        else:
                            box[v] = payload

        # Phase 2: advance every node; drop the finished ones.
        finished_any = False
        for v in active:
            awake_rounds[v] = awake_rounds.get(v, 0) + 1
            state = states[v]
            out = on_round(state, round_number, inboxes.get(v) or {})
            if state.done:
                outputs[v] = state.output
                termination_round[v] = round_number
                del states[v]
                del outgoing[v]
                finished_any = True
            else:
                outgoing[v] = out
        if finished_any:
            active = [v for v in active if v in states]

    metrics.messages_sent = messages_sent
    metrics.last_round = round_number
    return SimulationResult(outputs=outputs, metrics=metrics, graph=graph)


def _run_local_via_simulator(
    graph: StaticGraph,
    first_messages: Callable[[LocalNodeState], Any],
    on_round: RoundFn,
    inputs: Mapping[NodeId, Any] | None,
    max_rounds: int,
) -> SimulationResult:
    """The generator-program route (reference semantics for the native
    engine above)."""

    def program(info: NodeInfo):
        state = LocalNodeState(info=info, memory={})
        outgoing = first_messages(state)
        round_number = 0
        while not state.done:
            round_number += 1
            if round_number > max_rounds:
                raise RuntimeError(
                    f"node {info.id}: LOCAL algorithm exceeded "
                    f"{max_rounds} rounds"
                )
            inbox = yield AwakeAt(round_number, outgoing)
            outgoing = on_round(state, round_number, inbox)
        return state.output

    return SleepingSimulator(graph, program, inputs=inputs).run()


def greedy_by_id_callbacks(graph: StaticGraph, problem, inputs=None):
    """Build the (first_messages, on_round, node_inputs) triple of the
    always-awake greedy strawman — shared by :func:`greedy_by_id_local`
    and the engine benchmark so the regression baseline always measures
    the shipped algorithm."""
    from repro.olocal.problem import NodeView

    node_inputs = inputs if inputs is not None else problem.make_inputs(graph)

    def first_messages(state):
        state.memory["decided"] = {}
        return Broadcast(None)

    def on_round(state, round_number, inbox):
        info = state.info
        decided = state.memory["decided"]
        for u, payload in inbox.items():
            if payload is not None:
                decided[u] = payload
        pending = [
            u for u in info.neighbors if u < info.id and u not in decided
        ]
        if state.output is None and not pending:
            view = NodeView(
                id=info.id, degree=info.degree, input=node_inputs.get(info.id)
            )
            state.output = problem.decide(
                view, {u: decided[u] for u in decided if u < info.id}
            )
        # Finish only after (a) the output went out in a previous round
        # (larger neighbors are still awake — they need it to decide) and
        # (b) every larger neighbor has decided and no longer needs us.
        if state.output is not None and state.memory.get("announced"):
            larger_pending = [
                u for u in info.neighbors
                if u > info.id and u not in decided
            ]
            if not larger_pending:
                state.finish(state.output)
        state.memory["announced"] = state.output is not None
        return Broadcast(state.output)

    return first_messages, on_round, node_inputs


def greedy_by_id_local(graph: StaticGraph, problem, inputs=None) -> SimulationResult:
    """The textbook always-awake greedy: node v decides once all
    smaller-ID neighbors have, re-broadcasting its (possibly undecided)
    output every round. Awake complexity Θ(longest increasing-ID path) —
    the strawman that motivates the Sleeping model."""
    first_messages, on_round, node_inputs = greedy_by_id_callbacks(
        graph, problem, inputs
    )
    return run_local(graph, first_messages, on_round, inputs=node_inputs)
