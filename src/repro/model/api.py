"""Static per-node information handed to node programs and protocols."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.types import NodeId


@dataclass(frozen=True)
class NodeInfo:
    """Everything a node knows at round 0 in the (Sleeping) LOCAL model.

    Attributes:
        id: the node's globally unique identifier.
        n: the number of nodes of the network (known to all nodes, §2.1).
        id_space: upper bound of the ID range ``[1, id_space]``; the paper's
            ``n^c``. Used as the initial palette for Linial's algorithm.
        neighbors: IDs of adjacent nodes. The LOCAL model reveals the ports;
            since messages carry IDs anyway, we expose neighbor IDs directly.
        input: optional problem-specific input (e.g. a color list).
    """

    id: NodeId
    n: int
    id_space: int
    neighbors: tuple[NodeId, ...]
    input: Any = None

    @property
    def degree(self) -> int:
        return len(self.neighbors)


#: Node programs are written against this same static view; ``NodeAPI`` is an
#: alias kept for symmetry with the design document.
NodeAPI = NodeInfo
