"""The Sleeping LOCAL model substrate.

A node program is a Python generator that yields :class:`AwakeAt` actions
("sleep until round r, be awake during it, send these messages") and receives
its inbox — the messages sent *in that same round* by awake neighbors.
Messages sent to sleeping nodes are lost, exactly as in the model.

The simulator is *time-skipping*: it advances directly to the next round in
which at least one node is awake, so the paper's O(n^5)-round schedules run
in time proportional to the total number of awake node-rounds.
"""

from repro.model.actions import AwakeAt, Broadcast
from repro.model.api import NodeAPI, NodeInfo
from repro.model.metrics import SimulationMetrics
from repro.model.simulator import SimulationResult, SleepingSimulator

__all__ = [
    "AwakeAt",
    "Broadcast",
    "NodeAPI",
    "NodeInfo",
    "SimulationMetrics",
    "SimulationResult",
    "SleepingSimulator",
]
