"""Fault injection for robustness testing.

The Sleeping model is fault-free, so these faults model *implementation*
hazards rather than adversarial networks: dropped messages (e.g. a buggy
wake calendar making a sender miss its slot) and payload corruption. A
production-quality protocol should fail **loudly** (raise ProtocolError)
rather than return silently wrong outputs; the fault-injection tests in
``tests/test_faults.py`` assert exactly that for every protocol in the
repo.

Fault scenarios are a first-class axis of the scenario API: a
:class:`~repro.api.Scenario` with ``fault_drop``/``fault_corrupt`` set
runs on the ``faulty-simulator`` engine
(:data:`repro.core.algorithms.ENGINE_FAULTY`), which wraps the
algorithm's node program in a :class:`FaultySimulator` — so fault runs
flow through ``run_scenario``, grid sweeps, the trial cache, and the
CLI like any other scenario.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Mapping

from repro.graphs.graph import StaticGraph
from repro.model.actions import AwakeAt, Broadcast
from repro.model.simulator import NodeProgram, SleepingSimulator
from repro.types import NodeId, Payload


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic message-fault policy.

    Attributes:
        drop_probability: chance an individual message is silently dropped.
        corrupt_probability: chance a payload is replaced by garbage.
        seed: RNG seed — fault runs are reproducible.
        immune_rounds: rounds in which no fault fires (e.g. to let setup
            complete before stressing a later stage).
    """

    drop_probability: float = 0.0
    corrupt_probability: float = 0.0
    seed: int = 0
    immune_rounds: frozenset[int] = frozenset()

    def __post_init__(self) -> None:
        for name in ("drop_probability", "corrupt_probability"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")

    @property
    def is_active(self) -> bool:
        """Whether this plan can fire at all."""
        return self.drop_probability > 0 or self.corrupt_probability > 0

    def describe(self) -> dict[str, Any]:
        """JSON-able identity (artifact / extras provenance)."""
        return {
            "drop_probability": self.drop_probability,
            "corrupt_probability": self.corrupt_probability,
            "seed": self.seed,
            "immune_rounds": sorted(self.immune_rounds),
        }


class FaultySimulator(SleepingSimulator):
    """A simulator whose message delivery is filtered by a FaultPlan."""

    def __init__(
        self,
        graph: StaticGraph,
        program: NodeProgram,
        plan: FaultPlan,
        inputs: Mapping[NodeId, Any] | None = None,
    ) -> None:
        self._plan = plan
        self._rng = random.Random(plan.seed)
        self.dropped = 0
        self.corrupted = 0
        faulty_program = self._wrap(program)
        super().__init__(graph, faulty_program, inputs=inputs)

    def _wrap(self, program: NodeProgram) -> NodeProgram:
        def wrapped(info):
            gen = program(info)
            try:
                action = next(gen)
                while True:
                    action = self._filter(action, info)
                    inbox = yield action
                    action = gen.send(inbox)
            except StopIteration as stop:
                return stop.value

        return wrapped

    def _filter(self, action: AwakeAt, info) -> AwakeAt:
        plan, rng = self._plan, self._rng
        if action.messages is None or action.round in plan.immune_rounds:
            return action
        if not plan.is_active:
            return action
        messages = action.messages
        broadcast = isinstance(messages, Broadcast)
        if broadcast:
            items = ((u, messages.payload) for u in info.neighbors)
        else:
            items = messages.items()
        filtered: dict[NodeId, Payload] = {}
        clean = True
        for target, payload in items:
            # Independent draws per fault event: dropping and corrupting
            # are separate coins, not two slices of one uniform draw
            # (which made corruption conditional on not dropping). Both
            # coins are always drawn so the stream stays aligned per
            # message regardless of outcomes.
            drop = rng.random() < plan.drop_probability
            corrupt = rng.random() < plan.corrupt_probability
            if drop:
                self.dropped += 1
                clean = False
                continue
            if corrupt:
                self.corrupted += 1
                clean = False
                filtered[target] = ("corrupted", rng.getrandbits(32))
                continue
            filtered[target] = payload
        if clean:
            # Every copy survived intact: keep the original action — in
            # particular a ``Broadcast`` stays a ``Broadcast``, so the
            # simulator's batched zero-copy delivery path (and its
            # per-edge accounting) is not silently defeated on rounds
            # where no fault fires.
            return action
        return AwakeAt(action.round, filtered)
