"""Fault injection for robustness testing.

The Sleeping model is fault-free, so these faults model *implementation*
hazards rather than adversarial networks: dropped messages (e.g. a buggy
wake calendar making a sender miss its slot) and payload corruption. A
production-quality protocol should fail **loudly** (raise ProtocolError)
rather than return silently wrong outputs; the fault-injection tests in
``tests/test_faults.py`` assert exactly that for every protocol in the
repo.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Mapping

from repro.graphs.graph import StaticGraph
from repro.model.actions import AwakeAt, Broadcast
from repro.model.simulator import NodeProgram, SleepingSimulator
from repro.types import NodeId, Payload


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic message-fault policy.

    Attributes:
        drop_probability: chance an individual message is silently dropped.
        corrupt_probability: chance a payload is replaced by garbage.
        seed: RNG seed — fault runs are reproducible.
        immune_rounds: rounds in which no fault fires (e.g. to let setup
            complete before stressing a later stage).
    """

    drop_probability: float = 0.0
    corrupt_probability: float = 0.0
    seed: int = 0
    immune_rounds: frozenset[int] = frozenset()


class FaultySimulator(SleepingSimulator):
    """A simulator whose message delivery is filtered by a FaultPlan."""

    def __init__(
        self,
        graph: StaticGraph,
        program: NodeProgram,
        plan: FaultPlan,
        inputs: Mapping[NodeId, Any] | None = None,
    ) -> None:
        self._plan = plan
        self._rng = random.Random(plan.seed)
        self.dropped = 0
        self.corrupted = 0
        faulty_program = self._wrap(program)
        super().__init__(graph, faulty_program, inputs=inputs)

    def _wrap(self, program: NodeProgram) -> NodeProgram:
        plan = self._plan
        rng = self._rng

        def wrapped(info):
            gen = program(info)
            try:
                action = next(gen)
                while True:
                    action = self._filter(action, info)
                    inbox = yield action
                    action = gen.send(inbox)
            except StopIteration as stop:
                return stop.value

        return wrapped

    def _filter(self, action: AwakeAt, info) -> AwakeAt:
        plan, rng = self._plan, self._rng
        if action.messages is None or action.round in plan.immune_rounds:
            return action
        messages = action.messages
        if isinstance(messages, Broadcast):
            messages = {u: messages.payload for u in info.neighbors}
        filtered: dict[NodeId, Payload] = {}
        for target, payload in messages.items():
            roll = rng.random()
            if roll < plan.drop_probability:
                self.dropped += 1
                continue
            if roll < plan.drop_probability + plan.corrupt_probability:
                self.corrupted += 1
                filtered[target] = ("corrupted", rng.getrandbits(32))
                continue
            filtered[target] = payload
        return AwakeAt(action.round, filtered)
