"""The time-skipping Sleeping-LOCAL simulator.

Faithfulness to §2.1 of the paper:

- computation proceeds in synchronous rounds starting at round 1;
- an awake node sends messages to neighbors and receives, *in the same
  round*, the messages sent by neighbors that are awake in that round;
- messages addressed to sleeping nodes are silently lost (enforced here:
  inboxes are assembled only from co-awake senders);
- a sleeping node does nothing; nodes choose their own wake-up rounds;
- all nodes know ``n`` (and the ID-space bound) initially.

The simulator skips rounds in which every node sleeps, keeping the *round
counter* exact, so executions with round complexity Θ(n^5) complete in time
proportional to the number of awake node-rounds.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Any, Callable, Generator, Mapping

from repro.errors import SimulationError
from repro.graphs.graph import StaticGraph
from repro.model.actions import AwakeAt, Broadcast
from repro.model.api import NodeInfo
from repro.model.metrics import SimulationMetrics, payload_weight
from repro.types import NodeId, Payload

#: A node program: takes the node's static info, yields AwakeAt actions,
#: receives inboxes (dict sender -> payload), returns the node's output.
NodeProgram = Callable[[NodeInfo], Generator[AwakeAt, dict[NodeId, Payload], Any]]


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of a completed simulation."""

    outputs: dict[NodeId, Any]
    metrics: SimulationMetrics
    graph: StaticGraph

    @property
    def awake_complexity(self) -> int:
        return self.metrics.awake_complexity

    @property
    def round_complexity(self) -> int:
        return self.metrics.round_complexity


class SleepingSimulator:
    """Runs one node program (factory) per node of a graph to completion."""

    def __init__(
        self,
        graph: StaticGraph,
        program: NodeProgram,
        inputs: Mapping[NodeId, Any] | None = None,
        max_awake_each: int = 1_000_000,
        measure_message_sizes: bool = False,
    ) -> None:
        self._graph = graph
        self._program = program
        self._inputs = dict(inputs) if inputs else {}
        self._max_awake_each = max_awake_each
        self._measure_sizes = measure_message_sizes

    def run(self) -> SimulationResult:
        graph = self._graph
        metrics = SimulationMetrics()
        outputs: dict[NodeId, Any] = {}
        generators: dict[NodeId, Generator] = {}
        pending: dict[NodeId, AwakeAt] = {}
        heap: list[tuple[int, NodeId]] = []

        for v in graph.nodes:
            info = NodeInfo(
                id=v,
                n=graph.n,
                id_space=graph.id_space,
                neighbors=graph.neighbors(v),
                input=self._inputs.get(v),
            )
            gen = self._program(info)
            try:
                action = next(gen)
            except StopIteration as stop:
                outputs[v] = stop.value
                metrics.termination_round[v] = 0
                metrics.awake_rounds.setdefault(v, 0)
                continue
            _check_action(v, action, previous_round=0)
            generators[v] = gen
            pending[v] = action
            heapq.heappush(heap, (action.round, v))

        while heap:
            current_round = heap[0][0]
            awake: list[NodeId] = []
            while heap and heap[0][0] == current_round:
                _, v = heapq.heappop(heap)
                awake.append(v)
            awake.sort()
            awake_set = set(awake)
            metrics.active_rounds += 1
            metrics.last_round = current_round

            # Phase 1: collect outgoing messages of all awake nodes.
            inboxes: dict[NodeId, dict[NodeId, Payload]] = {v: {} for v in awake}
            for v in awake:
                outgoing = _expand_outgoing(v, pending[v].messages, graph)
                metrics.messages_sent += len(outgoing)
                for target, payload in outgoing.items():
                    if self._measure_sizes:
                        metrics.charge_message_weight(payload_weight(payload))
                    # Delivery only if the target is awake *this* round.
                    if target in awake_set:
                        inboxes[target][v] = payload

            # Phase 2: advance every awake node with its inbox.
            for v in awake:
                metrics.charge_awake(v)
                if metrics.awake_rounds[v] > self._max_awake_each:
                    raise SimulationError(
                        f"node {v} exceeded {self._max_awake_each} awake "
                        f"rounds at round {current_round}; runaway protocol?"
                    )
                gen = generators[v]
                try:
                    action = gen.send(inboxes[v])
                except StopIteration as stop:
                    outputs[v] = stop.value
                    metrics.termination_round[v] = current_round
                    del generators[v]
                    del pending[v]
                    continue
                _check_action(v, action, previous_round=current_round)
                pending[v] = action
                heapq.heappush(heap, (action.round, v))

        missing = set(graph.nodes) - set(outputs)
        if missing:
            raise SimulationError(
                f"{len(missing)} nodes never terminated: {sorted(missing)[:5]}"
            )
        return SimulationResult(outputs=outputs, metrics=metrics, graph=graph)


def _check_action(node: NodeId, action: Any, previous_round: int) -> None:
    if not isinstance(action, AwakeAt):
        raise SimulationError(
            f"node {node} yielded {type(action).__name__}; programs must "
            f"yield AwakeAt actions"
        )
    if action.round <= previous_round:
        raise SimulationError(
            f"node {node} requested awake round {action.round} but its "
            f"previous awake round was {previous_round}; time must advance"
        )


def _expand_outgoing(
    sender: NodeId,
    messages: Mapping[NodeId, Payload] | Broadcast | None,
    graph: StaticGraph,
) -> dict[NodeId, Payload]:
    if messages is None:
        return {}
    if isinstance(messages, Broadcast):
        return {u: messages.payload for u in graph.neighbors(sender)}
    neighbors = set(graph.neighbors(sender))
    for target in messages:
        if target not in neighbors:
            raise SimulationError(
                f"node {sender} tried to send to non-neighbor {target}"
            )
    return dict(messages)
