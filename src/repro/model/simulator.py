"""The time-skipping Sleeping-LOCAL simulator.

Faithfulness to §2.1 of the paper:

- computation proceeds in synchronous rounds starting at round 1;
- an awake node sends messages to neighbors and receives, *in the same
  round*, the messages sent by neighbors that are awake in that round;
- messages addressed to sleeping nodes are silently lost (enforced here:
  inboxes are assembled only from co-awake senders);
- a sleeping node does nothing; nodes choose their own wake-up rounds;
- all nodes know ``n`` (and the ID-space bound) initially.

The simulator skips rounds in which every node sleeps, keeping the *round
counter* exact, so executions with round complexity Θ(n^5) complete in time
proportional to the number of awake node-rounds.

Event-loop engineering (PERFORMANCE.md has the measurements):

- the wake queue is **round-bucketed**: a ``{round: [(node, action)]}``
  map plus a heap of *distinct* rounds, so scheduling a wake-up is O(1)
  amortized instead of one heap operation per node per round;
- a **lockstep carry** fast path: when every live node is awake in round
  r and asks to wake in round r+1, the next round's awake list is carried
  over directly and the wake queue is not touched at all;
- **zero-copy broadcasts**: a ``Broadcast`` payload is delivered straight
  from the action to co-awake neighbors without materializing the
  per-neighbor message dict;
- **lazy inboxes**: an inbox dict is allocated only for nodes that
  actually receive a message this round (pure wake/sleep phases allocate
  nothing); outer scratch structures are reused across rounds;
- **batched delivery**: rounds whose sends are all broadcasts are
  delivered receiver-centrically — one inbox comprehension per awake
  receiver over its neighbor tuple — instead of one dict update per
  edge; with every node awake and broadcasting (the delivery-bound
  lockstep pattern) the co-awake membership filter drops out entirely.
  Rounds with dict-addressed sends keep the per-edge path, which also
  validates targets. Inbox *insertion order* stays identical to the
  reference loop (ascending sender id) because batched inboxes iterate
  ``StaticGraph.adjacency``'s neighbor tuples, which the graph
  constructors keep sorted — the per-edge path reads senders off the
  sorted awake list, which yields the same ascending order.

The pre-optimization event loop is preserved verbatim in
:mod:`repro.model.reference` and the differential tests in
``tests/test_engine_equivalence.py`` assert bit-identical metrics.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Any, Callable, Generator, Mapping

from repro.errors import SimulationError
from repro.graphs.graph import StaticGraph
from repro.model.actions import AwakeAt, Broadcast
from repro.model.api import NodeInfo
from repro.model.metrics import SimulationMetrics, payload_weight
from repro.obs import counters as obs_counters
from repro.obs.spans import enabled as obs_enabled
from repro.obs.spans import event as obs_event
from repro.obs.spans import sample_stride as obs_sample_stride
from repro.obs.spans import span as obs_span
from repro.types import NodeId, Payload

#: A node program: takes the node's static info, yields AwakeAt actions,
#: receives inboxes (dict sender -> payload), returns the node's output.
NodeProgram = Callable[[NodeInfo], Generator[AwakeAt, dict[NodeId, Payload], Any]]


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of a completed simulation."""

    outputs: dict[NodeId, Any]
    metrics: SimulationMetrics
    graph: StaticGraph

    @property
    def awake_complexity(self) -> int:
        return self.metrics.awake_complexity

    @property
    def round_complexity(self) -> int:
        return self.metrics.round_complexity


class SleepingSimulator:
    """Runs one node program (factory) per node of a graph to completion."""

    def __init__(
        self,
        graph: StaticGraph,
        program: NodeProgram,
        inputs: Mapping[NodeId, Any] | None = None,
        max_awake_each: int = 1_000_000,
        measure_message_sizes: bool = False,
    ) -> None:
        self._graph = graph
        self._program = program
        self._inputs = dict(inputs) if inputs else {}
        self._max_awake_each = max_awake_each
        self._measure_sizes = measure_message_sizes

    def run(self) -> SimulationResult:
        """Drive every node to termination; one span per simulation and
        (with tracing armed) one sampled ``simulator.round`` event per
        :func:`~repro.obs.spans.sample_stride` active rounds. The
        disabled path costs one bool check per round."""
        with obs_span(
            "simulator.run", n=self._graph.n, edges=self._graph.num_edges
        ):
            result = self._run()
        metrics = result.metrics
        obs_counters.add("sim.run")
        obs_counters.add("sim.messages", metrics.messages_sent)
        obs_counters.add("sim.rounds", metrics.active_rounds)
        return result

    def _run(self) -> SimulationResult:
        graph = self._graph
        metrics = SimulationMetrics()
        outputs: dict[NodeId, Any] = {}
        generators: dict[NodeId, Generator] = {}
        #: round -> [(node, pending action)], plus a heap of distinct rounds.
        buckets: dict[int, list[tuple[NodeId, AwakeAt]]] = {}
        rounds_heap: list[int] = []
        neighbors = graph.neighbors

        for v in graph.nodes:
            info = NodeInfo(
                id=v,
                n=graph.n,
                id_space=graph.id_space,
                neighbors=neighbors(v),
                input=self._inputs.get(v),
            )
            gen = self._program(info)
            try:
                action = next(gen)
            except StopIteration as stop:
                outputs[v] = stop.value
                metrics.termination_round[v] = 0
                metrics.awake_rounds.setdefault(v, 0)
                continue
            _check_action(v, action, previous_round=0)
            generators[v] = gen
            bucket = buckets.get(action.round)
            if bucket is None:
                buckets[action.round] = [(v, action)]
                heapq.heappush(rounds_heap, action.round)
            else:
                bucket.append((v, action))

        awake_rounds = metrics.awake_rounds
        termination_round = metrics.termination_round
        max_awake = self._max_awake_each
        measure_sizes = self._measure_sizes
        messages_sent = 0
        active_rounds = 0
        current_round = 0
        #: outer scratch reused across rounds; the per-node inner dicts are
        #: handed to programs (which may retain them) and stay fresh.
        inboxes: dict[NodeId, dict[NodeId, Payload]] = {}
        nbr_sets: dict[NodeId, frozenset[NodeId]] = {}
        plist: list[Payload | None] | None = None
        carry: list[tuple[NodeId, AwakeAt]] | None = None
        #: 0 when tracing is off: the sampling branch below reduces to
        #: one falsy check per round (the zero-overhead contract).
        trace_stride = obs_sample_stride() if obs_enabled() else 0

        while rounds_heap or carry is not None:
            if carry is not None:
                awake = carry
                carry = None
                current_round += 1
            else:
                current_round = heapq.heappop(rounds_heap)
                awake = buckets.pop(current_round)
                awake.sort()
            active_rounds += 1
            if trace_stride and active_rounds % trace_stride == 0:
                obs_event(
                    "simulator.round",
                    round=current_round,
                    awake=len(awake),
                    live=len(generators),
                    messages=messages_sent,
                )

            # Phase 1: deliver messages between co-awake neighbors.
            inboxes.clear()
            # One classification pass (a C-speed comprehension): pure
            # wake/sleep rounds skip delivery outright, broadcast-only
            # rounds take the batched receiver-centric path, and any
            # dict-addressed send (no ``.payload``) falls back to the
            # per-edge path, which also validates targets.
            try:
                bpayloads: dict[NodeId, Payload] | None = {
                    v: m.payload
                    for v, action in awake
                    if (m := action.messages) is not None
                }
            except AttributeError:
                bpayloads = None
            if bpayloads is None or 2 * len(bpayloads) < len(awake):
                if bpayloads is None or bpayloads:
                    messages_sent += self._deliver_per_edge(
                        awake, inboxes, nbr_sets, metrics
                    )
            else:
                adj = graph.adjacency
                full = len(bpayloads) == graph.n
                if measure_sizes:
                    for v, payload in bpayloads.items():
                        deg = len(adj[v])
                        messages_sent += deg
                        metrics.charge_message_weight_bulk(
                            payload_weight(payload), deg
                        )
                elif full:
                    messages_sent += 2 * graph.num_edges
                else:
                    for v in bpayloads:
                        messages_sent += len(adj[v])
                if full:
                    # Every node is awake and broadcasting: each neighbor
                    # is a co-awake sender — the membership filter drops
                    # out and the inbox is one comprehension per receiver.
                    # With dense IDs the payloads are staged in a flat
                    # list so the per-edge fetch is an index, not a hash.
                    top = graph.nodes[-1]
                    if top <= 2 * graph.n:
                        if plist is None or len(plist) <= top:
                            plist = [None] * (top + 1)
                        for v, payload in bpayloads.items():
                            plist[v] = payload
                        for v in bpayloads:
                            inboxes[v] = {u: plist[u] for u in adj[v]}
                    else:
                        for v in bpayloads:
                            inboxes[v] = {u: bpayloads[u] for u in adj[v]}
                else:
                    for v, _ in awake:
                        box = {
                            u: bpayloads[u]
                            for u in adj[v]
                            if u in bpayloads
                        }
                        if box:
                            inboxes[v] = box

            # Phase 2: advance every awake node with its inbox.
            next_round = current_round + 1
            lockstep = True
            next_awake: list[tuple[NodeId, AwakeAt]] = []
            for v, _ in awake:
                count = awake_rounds.get(v, 0) + 1
                awake_rounds[v] = count
                if count > max_awake:
                    raise SimulationError(
                        f"node {v} exceeded {max_awake} awake "
                        f"rounds at round {current_round}; runaway protocol?"
                    )
                gen = generators[v]
                try:
                    action = gen.send(inboxes.get(v) or {})
                except StopIteration as stop:
                    outputs[v] = stop.value
                    termination_round[v] = current_round
                    del generators[v]
                    continue
                if not isinstance(action, AwakeAt):
                    raise SimulationError(
                        f"node {v} yielded {type(action).__name__}; programs "
                        f"must yield AwakeAt actions"
                    )
                requested = action.round
                if requested <= current_round:
                    raise SimulationError(
                        f"node {v} requested awake round {requested} but its "
                        f"previous awake round was {current_round}; time must "
                        f"advance"
                    )
                if requested == next_round:
                    next_awake.append((v, action))
                else:
                    lockstep = False
                    bucket = buckets.get(requested)
                    if bucket is None:
                        buckets[requested] = [(v, action)]
                        heapq.heappush(rounds_heap, requested)
                    else:
                        bucket.append((v, action))

            if next_awake:
                if lockstep and not rounds_heap:
                    # Lockstep fast path: every live node wakes next round —
                    # carry the (still sorted) list; skip the wake queue.
                    carry = next_awake
                else:
                    bucket = buckets.get(next_round)
                    if bucket is None:
                        buckets[next_round] = next_awake
                        heapq.heappush(rounds_heap, next_round)
                    else:
                        bucket.extend(next_awake)

        metrics.messages_sent = messages_sent
        metrics.active_rounds = active_rounds
        metrics.last_round = current_round

        if len(outputs) != graph.n:
            missing = graph.node_set - set(outputs)
            raise SimulationError(
                f"{len(missing)} nodes never terminated: {sorted(missing)[:5]}"
            )
        return SimulationResult(outputs=outputs, metrics=metrics, graph=graph)

    def _deliver_per_edge(
        self,
        awake: list[tuple[NodeId, AwakeAt]],
        inboxes: dict[NodeId, dict[NodeId, Payload]],
        nbr_sets: dict[NodeId, frozenset[NodeId]],
        metrics: SimulationMetrics,
    ) -> int:
        """Sender-centric per-edge delivery: the general path, taken when a
        round mixes dict-addressed sends with broadcasts (it preserves the
        sender-interleaved inbox insertion order and validates targets) or
        when too few awake nodes broadcast for receiver-centric batching to
        pay off. Returns the number of messages sent."""
        graph = self._graph
        neighbors = graph.neighbors
        measure_sizes = self._measure_sizes
        messages_sent = 0
        awake_set: set[NodeId] | None = None
        for v, action in awake:
            messages = action.messages
            if messages is None:
                continue
            if awake_set is None:
                awake_set = {node for node, _ in awake}
            if isinstance(messages, Broadcast):
                # Zero-copy: no per-neighbor dict is materialized.
                nbrs = neighbors(v)
                messages_sent += len(nbrs)
                payload = messages.payload
                if measure_sizes:
                    weight = payload_weight(payload)
                    for _ in nbrs:
                        metrics.charge_message_weight(weight)
                for target in nbrs:
                    if target in awake_set:
                        box = inboxes.get(target)
                        if box is None:
                            inboxes[target] = {v: payload}
                        else:
                            box[v] = payload
            else:
                nbr_set = nbr_sets.get(v)
                if nbr_set is None:
                    nbr_set = nbr_sets[v] = frozenset(neighbors(v))
                messages_sent += len(messages)
                for target, payload in messages.items():
                    if target not in nbr_set:
                        raise SimulationError(
                            f"node {v} tried to send to non-neighbor "
                            f"{target}"
                        )
                    if measure_sizes:
                        metrics.charge_message_weight(
                            payload_weight(payload)
                        )
                    if target in awake_set:
                        box = inboxes.get(target)
                        if box is None:
                            inboxes[target] = {v: payload}
                        else:
                            box[v] = payload
        return messages_sent


def _check_action(node: NodeId, action: Any, previous_round: int) -> None:
    if not isinstance(action, AwakeAt):
        raise SimulationError(
            f"node {node} yielded {type(action).__name__}; programs must "
            f"yield AwakeAt actions"
        )
    if action.round <= previous_round:
        raise SimulationError(
            f"node {node} requested awake round {action.round} but its "
            f"previous awake round was {previous_round}; time must advance"
        )


def _expand_outgoing(
    sender: NodeId,
    messages: Mapping[NodeId, Payload] | Broadcast | None,
    graph: StaticGraph,
) -> dict[NodeId, Payload]:
    """Materialize an action's outgoing messages (reference semantics;
    the main loop above uses the zero-copy paths instead)."""
    if messages is None:
        return {}
    if isinstance(messages, Broadcast):
        return {u: messages.payload for u in graph.neighbors(sender)}
    neighbors = set(graph.neighbors(sender))
    for target in messages:
        if target not in neighbors:
            raise SimulationError(
                f"node {sender} tried to send to non-neighbor {target}"
            )
    return dict(messages)
