"""Complexity accounting for Sleeping-model executions.

The two measures of the paper:

- **awake complexity** — max over nodes of the number of awake rounds;
- **round complexity** — max over nodes of the termination round.

We additionally record averages, totals and message counts, which back the
"average awake complexity" discussion in the paper's conclusion.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.types import NodeId


@dataclass
class SimulationMetrics:
    """Mutable accounting updated by the simulator while it runs."""

    awake_rounds: dict[NodeId, int] = field(default_factory=dict)
    termination_round: dict[NodeId, int] = field(default_factory=dict)
    messages_sent: int = 0
    active_rounds: int = 0  # rounds in which at least one node was awake
    last_round: int = 0
    #: largest single message, in atomic payload items (only populated when
    #: the simulator runs with measure_message_sizes=True; the LOCAL model
    #: allows unbounded messages and the paper's protocols ship whole
    #: subgraph structures — this quantifies how unbounded).
    max_message_weight: int = 0
    total_message_weight: int = 0

    def charge_awake(self, node: NodeId) -> None:
        self.awake_rounds[node] = self.awake_rounds.get(node, 0) + 1

    def charge_message_weight(self, weight: int) -> None:
        self.total_message_weight += weight
        if weight > self.max_message_weight:
            self.max_message_weight = weight

    def charge_message_weight_bulk(self, weight: int, count: int) -> None:
        """Charge ``count`` messages of the same ``weight`` in one step —
        identical totals to ``count`` single charges (used by the batched
        broadcast delivery path)."""
        if count:
            self.total_message_weight += weight * count
            if weight > self.max_message_weight:
                self.max_message_weight = weight

    # -- headline numbers --------------------------------------------------

    @property
    def awake_complexity(self) -> int:
        """max_v #awake rounds of v (0 for an empty network)."""
        return max(self.awake_rounds.values(), default=0)

    @property
    def average_awake(self) -> float:
        if not self.awake_rounds:
            return 0.0
        return sum(self.awake_rounds.values()) / len(self.awake_rounds)

    @property
    def total_awake(self) -> int:
        return sum(self.awake_rounds.values())

    @property
    def round_complexity(self) -> int:
        """max_v termination round of v."""
        return max(self.termination_round.values(), default=0)

    def summary(self) -> dict[str, float | int]:
        summary = {
            "awake_complexity": self.awake_complexity,
            "average_awake": self.average_awake,
            "total_awake": self.total_awake,
            "round_complexity": self.round_complexity,
            "active_rounds": self.active_rounds,
            "messages_sent": self.messages_sent,
        }
        if self.max_message_weight:
            summary["max_message_weight"] = self.max_message_weight
        return summary


def payload_weight(payload: object, _depth: int = 0) -> int:
    """Approximate message size as the number of atomic items it carries.

    Containers contribute the sum of their items (dicts count keys and
    values); everything else counts 1. Recursion is depth-capped — the
    protocols here never nest payloads deeply, and a runaway structure
    should surface as a huge weight, not a RecursionError.
    """
    if _depth > 12:
        return 1
    if isinstance(payload, dict):
        return sum(
            payload_weight(k, _depth + 1) + payload_weight(v, _depth + 1)
            for k, v in payload.items()
        ) or 1
    if isinstance(payload, (list, tuple, set, frozenset)):
        return sum(payload_weight(item, _depth + 1) for item in payload) or 1
    return 1
