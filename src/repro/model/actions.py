"""Actions a node program can yield to the Sleeping-model runtime."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Union

from repro.types import NodeId, Payload


@dataclass(frozen=True)
class Broadcast:
    """Send the same payload to every neighbor (LOCAL-style broadcast)."""

    payload: Payload


#: Either an explicit per-neighbor message map or a broadcast.
Outgoing = Union[Mapping[NodeId, Payload], Broadcast, None]


@dataclass(frozen=True)
class AwakeAt:
    """Sleep until ``round`` (exclusive), be awake during it, send
    ``messages``, and receive the inbox for that round.

    ``round`` must be strictly greater than the node's previous awake round;
    the runtime enforces this (a node cannot travel back in time, and being
    awake in consecutive rounds means yielding consecutive ``AwakeAt``).
    """

    round: int
    messages: Outgoing = None

    def __post_init__(self) -> None:
        if self.round < 1:
            raise ValueError(f"rounds are 1-indexed, got {self.round}")
