"""Actions a node program can yield to the Sleeping-model runtime.

Both action types are plain ``__slots__`` classes rather than dataclasses:
programs construct one per awake round, so construction cost is on the
simulator's hottest path (a frozen dataclass pays ~3x per instance for
``object.__setattr__``). Treat instances as immutable — the runtime reads
them after the yielding program has resumed.
"""

from __future__ import annotations

from typing import Mapping, Union

from repro.types import NodeId, Payload


class Broadcast:
    """Send the same payload to every neighbor (LOCAL-style broadcast)."""

    __slots__ = ("payload",)

    def __init__(self, payload: Payload) -> None:
        self.payload = payload

    def __repr__(self) -> str:
        return f"Broadcast(payload={self.payload!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Broadcast):
            return NotImplemented
        return self.payload == other.payload

    def __hash__(self) -> int:
        return hash((self.payload,))


#: Either an explicit per-neighbor message map or a broadcast.
Outgoing = Union[Mapping[NodeId, Payload], Broadcast, None]


class AwakeAt:
    """Sleep until ``round`` (exclusive), be awake during it, send
    ``messages``, and receive the inbox for that round.

    ``round`` must be strictly greater than the node's previous awake round;
    the runtime enforces this (a node cannot travel back in time, and being
    awake in consecutive rounds means yielding consecutive ``AwakeAt``).
    """

    __slots__ = ("round", "messages")

    def __init__(self, round: int, messages: Outgoing = None) -> None:
        if round < 1:
            raise ValueError(f"rounds are 1-indexed, got {round}")
        self.round = round
        self.messages = messages

    def __repr__(self) -> str:
        return f"AwakeAt(round={self.round!r}, messages={self.messages!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AwakeAt):
            return NotImplemented
        return self.round == other.round and self.messages == other.messages

    def __hash__(self) -> int:
        # Matches the old frozen-dataclass semantics: hashable whenever the
        # fields are (dict messages raise TypeError, as before).
        return hash((self.round, self.messages))
