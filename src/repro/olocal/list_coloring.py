"""(deg+1)-list-coloring: each node gets a private list of deg(v)+1 colors.

A strictly more general problem than (Δ+1)-coloring, still in O-LOCAL: at
decision time at most deg(v) list entries are blocked by decided neighbors,
so one list color is always free.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.graphs.graph import StaticGraph
from repro.olocal.problem import NodeView, OLocalProblem
from repro.types import NodeId


class DegreePlusOneListColoring(OLocalProblem):
    """Greedy list coloring from per-node palettes of size deg(v)+1."""

    name = "degree_plus_one_list_coloring"
    locality = "neighbors"

    def decide(
        self, node: NodeView, decided_neighbors: Mapping[NodeId, Any]
    ) -> Any:
        palette = node.input
        if palette is None or len(palette) < node.degree + 1:
            raise ValueError(
                f"node {node.id} needs a palette of >= deg+1 = "
                f"{node.degree + 1} colors, got {palette!r}"
            )
        used = set(decided_neighbors.values())
        for color in palette:
            if color not in used:
                return color
        raise AssertionError(
            "unreachable: a (deg+1)-size list cannot be exhausted by "
            "<= deg decided neighbors"
        )

    def default_input(self, graph: StaticGraph, v: NodeId) -> tuple[int, ...]:
        """A deterministic, node-dependent palette: deg(v)+1 colors spread
        over a window starting at (v mod 7), exercising heterogeneous lists."""
        offset = v % 7
        return tuple(range(offset + 1, offset + graph.degree(v) + 2))

    def validate(
        self,
        graph: StaticGraph,
        outputs: Mapping[NodeId, Any],
        inputs: Mapping[NodeId, Any] | None = None,
    ) -> list[str]:
        violations = []
        palettes = inputs if inputs is not None else self.make_inputs(graph)
        for v in graph.nodes:
            if v not in outputs:
                violations.append(f"node {v} has no color")
                continue
            palette = palettes.get(v)
            if palette is not None and outputs[v] not in palette:
                violations.append(
                    f"node {v} color {outputs[v]!r} not in its list {palette!r}"
                )
        for u, v in graph.edges():
            if u in outputs and v in outputs and outputs[u] == outputs[v]:
                violations.append(
                    f"edge ({u}, {v}) is monochromatic (color {outputs[u]!r})"
                )
        return violations
