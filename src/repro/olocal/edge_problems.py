"""Edge problems via the line-graph reduction — the paper's Open Question 5.

Maximal matching is *not* in O-LOCAL as a node-labeling problem on G (the
paper's acknowledgements credit W. K. Moses Jr. for the observation), and
extending the class to edge problems is Open Question 5. The classical
workaround applies the *node* machinery to the line graph L(G):

- a maximal independent set of L(G) **is** a maximal matching of G;
- a (Δ_L+1)-coloring of L(G) with Δ_L ≤ 2Δ-2 **is** a proper
  (2Δ-1)-edge-coloring of G.

In a real network each vertex of L(G) (an edge of G) is simulated by its
higher-ID endpoint: the simulating nodes are adjacent in G whenever the
edges share an endpoint, so every L(G)-round costs O(1) G-rounds and O(1)
awake rounds, and n_L = |E| ≤ n² only doubles the sqrt(log n) term. This
module constructs L(G) explicitly and runs the repo's Sleeping algorithms
on it — the awake complexities reported are those of the L(G) execution,
which transfer to G up to that constant simulation overhead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.errors import ValidationError
from repro.graphs.graph import StaticGraph
from repro.types import NodeId


@dataclass(frozen=True)
class LineGraph:
    """L(G) plus the vertex ↔ edge correspondence."""

    graph: StaticGraph
    edge_of_vertex: Mapping[int, tuple[NodeId, NodeId]]
    vertex_of_edge: Mapping[tuple[NodeId, NodeId], int]


def line_graph(graph: StaticGraph) -> LineGraph:
    """Construct L(G): one vertex per edge; vertices adjacent iff the
    edges share an endpoint. Vertices are numbered 1..m in sorted edge
    order (IDs in [1, m] — the tight ID regime of the §5 Remark)."""
    edges = list(graph.edges())
    vertex_of_edge = {edge: i + 1 for i, edge in enumerate(edges)}
    edge_of_vertex = {i + 1: edge for i, edge in enumerate(edges)}
    incident: dict[NodeId, list[int]] = {}
    for vertex, (u, v) in edge_of_vertex.items():
        incident.setdefault(u, []).append(vertex)
        incident.setdefault(v, []).append(vertex)
    l_edges = set()
    for vertices in incident.values():
        for i, a in enumerate(vertices):
            for b in vertices[i + 1 :]:
                l_edges.add((min(a, b), max(a, b)))
    lg = StaticGraph.from_edges(
        l_edges, nodes=edge_of_vertex, id_space=max(len(edges), 1)
    )
    return LineGraph(lg, edge_of_vertex, vertex_of_edge)


@dataclass(frozen=True)
class EdgeSolveResult:
    """Outcome of an edge problem solved on L(G)."""

    outputs: dict[tuple[NodeId, NodeId], object]
    awake_complexity: int
    round_complexity: int
    line: LineGraph


def maximal_matching(
    graph: StaticGraph, method: str = "theorem1"
) -> EdgeSolveResult:
    """A maximal matching of G = MIS of L(G).

    ``method`` is ``"theorem1"`` (the paper's pipeline) or ``"baseline"``
    (BM21). Disconnected line graphs (G a star has connected L(G); G a
    single edge has a 1-vertex L(G)) are handled per component.
    """
    from repro.olocal.mis import MaximalIndependentSet

    lg = line_graph(graph)
    outputs = _solve_on_line_graph(lg, MaximalIndependentSet(), method)
    result = {lg.edge_of_vertex[x]: bool(flag) for x, flag in outputs[0].items()}
    validate_maximal_matching(graph, result)
    return EdgeSolveResult(result, outputs[1], outputs[2], lg)


def edge_coloring(
    graph: StaticGraph, method: str = "theorem1"
) -> EdgeSolveResult:
    """A proper edge coloring with at most 2Δ-1 colors = (Δ_L+1)-coloring
    of L(G)."""
    from repro.olocal.coloring import DeltaPlusOneColoring

    lg = line_graph(graph)
    outputs = _solve_on_line_graph(lg, DeltaPlusOneColoring(), method)
    result = {lg.edge_of_vertex[x]: color for x, color in outputs[0].items()}
    validate_edge_coloring(graph, result)
    return EdgeSolveResult(result, outputs[1], outputs[2], lg)


def _solve_on_line_graph(lg: LineGraph, problem, method: str):
    if lg.graph.n == 0:
        return {}, 0, 0
    if method == "theorem1":
        from repro.core.theorem1 import solve

        res = solve(lg.graph, problem)
        return res.outputs, res.awake_complexity, res.round_complexity
    if method == "baseline":
        from repro.core.bm21 import solve_with_baseline

        res = solve_with_baseline(lg.graph, problem)
        return res.outputs, res.awake_complexity, res.round_complexity
    raise ValueError(f"unknown method {method!r}")


# ---------------------------------------------------------------------------
# Validators.
# ---------------------------------------------------------------------------


def validate_maximal_matching(
    graph: StaticGraph, matching: Mapping[tuple[NodeId, NodeId], bool]
) -> None:
    """Raise ValidationError unless ``matching`` is a maximal matching."""
    matched_nodes: set[NodeId] = set()
    for (u, v), flag in matching.items():
        if not flag:
            continue
        if u in matched_nodes or v in matched_nodes:
            raise ValidationError(
                f"edges sharing node: ({u}, {v}) conflicts with the matching"
            )
        matched_nodes.add(u)
        matched_nodes.add(v)
    for u, v in graph.edges():
        if not matching.get((u, v)):
            if u not in matched_nodes and v not in matched_nodes:
                raise ValidationError(
                    f"matching not maximal: edge ({u}, {v}) is addable"
                )


def validate_edge_coloring(
    graph: StaticGraph, colors: Mapping[tuple[NodeId, NodeId], int]
) -> None:
    """Raise ValidationError unless ``colors`` is a proper (2Δ-1)-edge
    coloring."""
    limit = max(2 * graph.max_degree - 1, 1)
    for edge, color in colors.items():
        if not 1 <= color <= limit:
            raise ValidationError(
                f"edge {edge} color {color} outside [1, 2Δ-1 = {limit}]"
            )
    for v in graph.nodes:
        seen: dict[int, tuple] = {}
        for u in graph.neighbors(v):
            edge = (min(u, v), max(u, v))
            color = colors.get(edge)
            if color is None:
                raise ValidationError(f"edge {edge} has no color")
            if color in seen:
                raise ValidationError(
                    f"edges {seen[color]} and {edge} at node {v} share "
                    f"color {color}"
                )
            seen[color] = edge
