"""(Δ+1)-vertex coloring — the paper's first running example of O-LOCAL."""

from __future__ import annotations

from typing import Any, Mapping

from repro.graphs.graph import StaticGraph
from repro.olocal.problem import NodeView, OLocalProblem
from repro.types import NodeId


class DeltaPlusOneColoring(OLocalProblem):
    """Greedy proper coloring with colors in {1, ..., Δ+1}.

    The greedy rule assigns the minimum color unused by decided neighbors;
    since a node has at most ``deg(v) <= Δ`` neighbors, the chosen color
    never exceeds ``deg(v) + 1`` — a per-node bound stronger than Δ+1.
    """

    name = "delta_plus_one_coloring"
    locality = "neighbors"

    def decide(
        self, node: NodeView, decided_neighbors: Mapping[NodeId, Any]
    ) -> int:
        used = set(decided_neighbors.values())
        color = 1
        while color in used:
            color += 1
        return color

    def validate(
        self,
        graph: StaticGraph,
        outputs: Mapping[NodeId, Any],
        inputs: Mapping[NodeId, Any] | None = None,
    ) -> list[str]:
        violations = []
        for v in graph.nodes:
            if v not in outputs:
                violations.append(f"node {v} has no color")
                continue
            color = outputs[v]
            if not isinstance(color, int) or color < 1:
                violations.append(f"node {v} has invalid color {color!r}")
                continue
            if color > graph.degree(v) + 1:
                violations.append(
                    f"node {v} has color {color} > deg+1 = {graph.degree(v) + 1}"
                )
        for u, v in graph.edges():
            if u in outputs and v in outputs and outputs[u] == outputs[v]:
                violations.append(
                    f"edge ({u}, {v}) is monochromatic (color {outputs[u]})"
                )
        return violations
