"""The O-LOCAL class of graph problems (§2.2) and concrete members.

:data:`PROBLEMS` is the problem registry — previously a plain dict; the
registry keeps dict-style access (``PROBLEMS[name]``, ``name in
PROBLEMS``, iteration over canonical names) as a compatibility shim and
adds aliases (``mis`` → ``maximal_independent_set``), titles, and
duplicate-name protection. New problems — including third-party ones
via the ``repro.plugins`` entry-point group — register with::

    from repro.olocal import PROBLEMS

    PROBLEMS.add(MyProblem().name, MyProblem(), title="...", aliases=("mine",))
"""

from repro.olocal.problem import (
    NodeView,
    OLocalProblem,
    orientation_from_priority,
    sequential_greedy,
)
from repro.olocal.coloring import DeltaPlusOneColoring
from repro.olocal.list_coloring import DegreePlusOneListColoring
from repro.olocal.mis import MaximalIndependentSet
from repro.olocal.vertex_cover import MinimalVertexCover
from repro.registry import Registry

#: Registry of O-LOCAL problems, keyed by ``problem.name``.
PROBLEMS: Registry[OLocalProblem] = Registry("problem")

for _problem, _title, _aliases in (
    (DeltaPlusOneColoring(), "(Δ+1)-coloring", ("coloring",)),
    (MaximalIndependentSet(), "Maximal independent set", ("mis",)),
    (
        DegreePlusOneListColoring(),
        "(deg+1)-list-coloring",
        ("list-coloring",),
    ),
    (MinimalVertexCover(), "Minimal vertex cover", ("vertex-cover",)),
):
    PROBLEMS.add(_problem.name, _problem, title=_title, aliases=_aliases)

__all__ = [
    "DegreePlusOneListColoring",
    "DeltaPlusOneColoring",
    "MaximalIndependentSet",
    "MinimalVertexCover",
    "NodeView",
    "OLocalProblem",
    "PROBLEMS",
    "orientation_from_priority",
    "sequential_greedy",
]
