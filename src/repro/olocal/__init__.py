"""The O-LOCAL class of graph problems (§2.2) and concrete members."""

from repro.olocal.problem import (
    NodeView,
    OLocalProblem,
    orientation_from_priority,
    sequential_greedy,
)
from repro.olocal.coloring import DeltaPlusOneColoring
from repro.olocal.list_coloring import DegreePlusOneListColoring
from repro.olocal.mis import MaximalIndependentSet
from repro.olocal.vertex_cover import MinimalVertexCover

PROBLEMS = {
    problem.name: problem
    for problem in (
        DeltaPlusOneColoring(),
        MaximalIndependentSet(),
        DegreePlusOneListColoring(),
        MinimalVertexCover(),
    )
}

__all__ = [
    "DegreePlusOneListColoring",
    "DeltaPlusOneColoring",
    "MaximalIndependentSet",
    "MinimalVertexCover",
    "NodeView",
    "OLocalProblem",
    "PROBLEMS",
    "orientation_from_priority",
    "sequential_greedy",
]
