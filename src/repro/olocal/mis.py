"""Maximal independent set — the paper's second running example."""

from __future__ import annotations

from typing import Any, Mapping

from repro.graphs.graph import StaticGraph
from repro.olocal.problem import NodeView, OLocalProblem
from repro.types import NodeId


class MaximalIndependentSet(OLocalProblem):
    """Greedy MIS: join unless some decided neighbor already joined.

    Output per node: ``True`` (in the set) or ``False``.
    """

    name = "maximal_independent_set"
    locality = "neighbors"

    def decide(
        self, node: NodeView, decided_neighbors: Mapping[NodeId, Any]
    ) -> bool:
        return not any(decided_neighbors.values())

    def validate(
        self,
        graph: StaticGraph,
        outputs: Mapping[NodeId, Any],
        inputs: Mapping[NodeId, Any] | None = None,
    ) -> list[str]:
        violations = []
        for v in graph.nodes:
            if v not in outputs:
                violations.append(f"node {v} has no output")
            elif not isinstance(outputs[v], bool):
                violations.append(f"node {v} output {outputs[v]!r} not bool")
        for u, v in graph.edges():
            if outputs.get(u) and outputs.get(v):
                violations.append(f"edge ({u}, {v}) has both endpoints in MIS")
        for v in graph.nodes:
            if not outputs.get(v) and not any(
                outputs.get(u) for u in graph.neighbors(v)
            ):
                violations.append(
                    f"node {v} is outside the MIS with no neighbor inside "
                    f"(not maximal)"
                )
        return violations
