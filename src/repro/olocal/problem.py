"""The O-LOCAL problem interface and the sequential greedy engine.

A problem Π is in O-LOCAL (§2.2) when, for *every* acyclic orientation µ of
the input graph, a node's output is computable from the outputs of its
descendants (the nodes reachable along outgoing edges). The problems we
implement — like the paper's running examples — only consult the *adjacent*
descendants' outputs, which is the 1-hop projection of that definition;
:attr:`OLocalProblem.locality` records whether the general form is needed.

Orientations are represented by injective *priority keys*: the edge {u, v}
is directed from the higher-priority endpoint to the lower, so a node's
descendants have strictly smaller keys and the greedy engine processes nodes
in increasing key order. Any acyclic orientation extends to such a total
order (topological sort), so this loses no generality for validation.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Callable, Mapping

from repro.errors import ValidationError
from repro.graphs.graph import StaticGraph
from repro.types import NodeId


@dataclass(frozen=True)
class NodeView:
    """What a node contributes to its own greedy decision."""

    id: NodeId
    degree: int
    input: Any = None


class OLocalProblem(ABC):
    """A graph problem solvable greedily under any acyclic orientation."""

    #: unique problem name (registry key)
    name: str = "abstract"

    #: "neighbors" — decide() needs only adjacent descendants' outputs;
    #: "full" — decide() may consult the whole reachable subgraph.
    locality: str = "neighbors"

    @abstractmethod
    def decide(
        self, node: NodeView, decided_neighbors: Mapping[NodeId, Any]
    ) -> Any:
        """Compute the node's output given the outputs of its *descendant
        neighbors* (neighbors with smaller priority, already decided)."""

    @abstractmethod
    def validate(
        self,
        graph: StaticGraph,
        outputs: Mapping[NodeId, Any],
        inputs: Mapping[NodeId, Any] | None = None,
    ) -> list[str]:
        """Return a list of violation descriptions (empty = valid)."""

    def default_input(self, graph: StaticGraph, v: NodeId) -> Any:
        """Problem-specific per-node input (e.g. a color list); None if the
        problem takes no input."""
        return None

    def make_inputs(self, graph: StaticGraph) -> dict[NodeId, Any]:
        return {v: self.default_input(graph, v) for v in graph.nodes}

    def check(
        self,
        graph: StaticGraph,
        outputs: Mapping[NodeId, Any],
        inputs: Mapping[NodeId, Any] | None = None,
    ) -> None:
        """Validate and raise :class:`ValidationError` on the first failure."""
        violations = self.validate(graph, outputs, inputs)
        if violations:
            raise ValidationError(
                f"{self.name}: {len(violations)} violations, first: "
                f"{violations[0]}"
            )


PriorityKey = Callable[[NodeId], Any]


def sequential_greedy(
    graph: StaticGraph,
    problem: OLocalProblem,
    priority: PriorityKey,
    inputs: Mapping[NodeId, Any] | None = None,
) -> dict[NodeId, Any]:
    """The definitional sequential greedy: process nodes by increasing
    priority; each decision sees exactly the decided adjacent descendants.

    This is the ground-truth oracle for every distributed solver in the
    repo: a distributed O-LOCAL algorithm is correct iff its output equals a
    sequential greedy run for *some* acyclic orientation.
    """
    keys = {v: priority(v) for v in graph.nodes}
    if len(set(keys.values())) != len(keys):
        raise ValidationError("priority keys must be injective")
    outputs: dict[NodeId, Any] = {}
    node_inputs = inputs if inputs is not None else problem.make_inputs(graph)
    for v in sorted(graph.nodes, key=keys.__getitem__):
        decided = {
            u: outputs[u]
            for u in graph.neighbors(v)
            if keys[u] < keys[v]
        }
        view = NodeView(id=v, degree=graph.degree(v), input=node_inputs.get(v))
        outputs[v] = problem.decide(view, decided)
    return outputs


def orientation_from_priority(
    graph: StaticGraph, priority: PriorityKey
) -> dict[tuple[NodeId, NodeId], tuple[NodeId, NodeId]]:
    """Materialize the acyclic orientation induced by a priority key:
    maps each undirected edge (u, v) with u < v to its directed version
    (tail, head), tail → head with priority(tail) > priority(head)."""
    oriented = {}
    for u, v in graph.edges():
        if priority(u) > priority(v):
            oriented[(u, v)] = (u, v)
        else:
            oriented[(u, v)] = (v, u)
    return oriented


def id_priority(v: NodeId) -> Any:
    """The simplest injective priority: the node ID itself."""
    return v
