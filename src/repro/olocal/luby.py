"""Luby's randomized MIS — the classic LOCAL-model comparison point.

The paper's related work contrasts deterministic Sleeping algorithms with
randomized ones (MIS in O(log log n) awake complexity [DJP23, DFRZ24], vs
Luby's O(log n) *rounds* in plain LOCAL). We implement Luby's algorithm on
the Sleeping simulator in always-awake mode: it terminates in O(log n)
rounds with high probability, and since it never sleeps its awake
complexity equals its round complexity — the quantitative gap the Sleeping
model is designed to close.

Per round, every undecided node draws a uniform value; strict local minima
join the MIS and their neighbors leave. Randomness is seeded per node from
``(seed, node, round)`` so runs are reproducible and nodes never need
shared randomness.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.errors import SimulationError
from repro.graphs.graph import StaticGraph
from repro.model.actions import AwakeAt
from repro.model.simulator import SimulationResult, SleepingSimulator
from repro.olocal.mis import MaximalIndependentSet
from repro.types import NodeId


def _draw(seed: int, node: NodeId, round_number: int) -> int:
    """A deterministic 64-bit 'random' value per (seed, node, round)."""
    digest = hashlib.blake2b(
        f"{seed}:{node}:{round_number}".encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


@dataclass(frozen=True)
class LubyResult:
    outputs: dict[NodeId, bool]
    simulation: SimulationResult
    phases: int

    @property
    def awake_complexity(self) -> int:
        return self.simulation.awake_complexity

    @property
    def round_complexity(self) -> int:
        return self.simulation.round_complexity


def luby_mis(
    graph: StaticGraph, seed: int = 0, max_phases: int | None = None
) -> LubyResult:
    """Run Luby's MIS; validates the result before returning.

    Each phase costs two rounds: (1) exchange draws, local minima join;
    (2) joiners announce, neighbors retire. All undecided nodes stay awake
    — awake complexity = 2 × phases = Θ(log n) w.h.p.
    """
    limit = max_phases if max_phases is not None else 16 * max(
        graph.n.bit_length(), 1
    )

    def program(info):
        status: bool | None = None
        undecided = set(info.neighbors)
        round_number = 0
        phase = 0
        while status is None:
            phase += 1
            if phase > limit:
                raise SimulationError(
                    f"node {info.id}: Luby exceeded {limit} phases"
                )
            round_number += 1
            my_draw = _draw(seed, info.id, phase)
            inbox = yield AwakeAt(
                round_number, {u: ("draw", my_draw) for u in undecided}
            )
            draws = {
                u: msg[1] for u, msg in inbox.items() if msg[0] == "draw"
            }
            # Ties are broken by ID, so 'strict minimum' is well defined
            # even if two draws collide.
            joins = all(
                (my_draw, info.id) < (draw, u) for u, draw in draws.items()
            )
            round_number += 1
            inbox = yield AwakeAt(
                round_number,
                {u: ("joined", joins) for u in undecided},
            )
            if joins:
                return True
            neighbor_joined = any(
                msg[0] == "joined" and msg[1] for msg in inbox.values()
            )
            if neighbor_joined:
                return False
            # drop retired neighbors: they are decided and asleep now
            undecided = {
                u for u in undecided
                if u in draws
            }
        return status

    result = SleepingSimulator(graph, program).run()
    MaximalIndependentSet().check(graph, result.outputs)
    return LubyResult(
        outputs=result.outputs,
        simulation=result,
        phases=result.round_complexity // 2,
    )
