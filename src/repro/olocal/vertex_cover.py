"""Minimal vertex cover via MIS complementation.

The complement of a maximal independent set is a minimal vertex cover, and
the complementation is a local output relabeling, so the problem inherits
O-LOCAL membership from MIS.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.graphs.graph import StaticGraph
from repro.olocal.mis import MaximalIndependentSet
from repro.olocal.problem import NodeView, OLocalProblem
from repro.types import NodeId


class MinimalVertexCover(OLocalProblem):
    """Greedy minimal vertex cover: v enters the cover iff it does *not*
    enter the greedy MIS. Output: ``True`` = in the cover."""

    name = "minimal_vertex_cover"
    locality = "neighbors"

    def __init__(self) -> None:
        self._mis = MaximalIndependentSet()

    def decide(
        self, node: NodeView, decided_neighbors: Mapping[NodeId, Any]
    ) -> bool:
        # A decided neighbor is in the cover iff it is NOT in the MIS.
        mis_neighbors = {u: not in_cover for u, in_cover in decided_neighbors.items()}
        return not self._mis.decide(node, mis_neighbors)

    def validate(
        self,
        graph: StaticGraph,
        outputs: Mapping[NodeId, Any],
        inputs: Mapping[NodeId, Any] | None = None,
    ) -> list[str]:
        violations = []
        for u, v in graph.edges():
            if not outputs.get(u) and not outputs.get(v):
                violations.append(f"edge ({u}, {v}) is uncovered")
        # Minimality: removing any cover vertex must expose an edge, which
        # for this construction is equivalent to V \ cover being a maximal
        # independent set.
        mis = {v: not outputs.get(v, False) for v in graph.nodes}
        for msg in self._mis.validate(graph, mis):
            violations.append(f"complement not a maximal IS: {msg}")
        return violations
