"""Distance-2 coloring is *not* in O-LOCAL — the §2.2 counterexample.

On the path P_n (n >= 6) with the acyclic orientation µ that directs every
two incident edges oppositely, the *sinks* (out-degree-0 nodes) must output
a color knowing nothing but their own ID. Any sink rule
``f : {1..n} -> {1..5}`` therefore behaves like a fixed function of the ID;
by pigeonhole two IDs collide under f, and placing them on two sinks at
distance 2 breaks the distance-2 coloring. This module makes that argument
executable.
"""

from __future__ import annotations

from typing import Callable, Mapping

from repro.graphs.graph import StaticGraph
from repro.types import NodeId


def alternating_orientation_sinks(n: int) -> list[int]:
    """Positions (1-indexed along the path) that are sinks under the
    alternating orientation: every odd position."""
    return list(range(1, n + 1, 2))


def validate_distance2_coloring(
    graph: StaticGraph, colors: Mapping[NodeId, int]
) -> list[str]:
    """Violations of properness at distance <= 2."""
    violations = []
    for v in graph.nodes:
        conflicts = set(graph.neighbors(v)) | set(graph.distance_2_neighbors(v))
        for u in conflicts:
            if u > v and colors.get(u) == colors.get(v):
                violations.append(
                    f"nodes {v} and {u} at distance <= 2 share color "
                    f"{colors.get(v)!r}"
                )
    return violations


def defeating_id_assignment(
    f: Callable[[int], int], n: int = 6
) -> tuple[int, ...] | None:
    """Given a sink rule ``f`` on IDs {1..n}, return an assignment of the
    IDs to path positions under which two sinks at distance 2 collide, or
    ``None`` if ``f`` is injective enough to survive (impossible for n >= 6
    with a 5-color range — pigeonhole).

    The returned tuple maps path position i (0-indexed) to the node ID
    placed there; the colliding pair sits at positions 1 and 3 (both sinks
    of the alternating orientation, at distance 2).
    """
    by_color: dict[int, list[int]] = {}
    for node_id in range(1, n + 1):
        by_color.setdefault(f(node_id), []).append(node_id)
    collision = next(
        (ids for ids in by_color.values() if len(ids) >= 2), None
    )
    if collision is None:
        return None
    a, b = collision[0], collision[1]
    rest = [i for i in range(1, n + 1) if i not in (a, b)]
    # positions: 0 1 2 3 4 ... — sinks at odd 1-indexed = even 0-indexed?
    # We use 1-indexed positions 1..n; sinks at odd positions. Place the
    # colliding IDs at positions 1 and 3.
    assignment = [0] * n
    assignment[0] = a  # position 1
    assignment[2] = b  # position 3
    it = iter(rest)
    for pos in range(n):
        if assignment[pos] == 0:
            assignment[pos] = next(it)
    return tuple(assignment)


def sink_collision(
    f: Callable[[int], int], assignment: tuple[int, ...]
) -> tuple[int, int] | None:
    """Return a pair of 1-indexed sink positions at distance 2 whose IDs
    collide under ``f``, if any."""
    n = len(assignment)
    for pos in range(1, n - 1, 2):  # 1-indexed odd positions 1, 3, ...
        p1, p2 = pos, pos + 2
        if p2 > n:
            break
        id1, id2 = assignment[p1 - 1], assignment[p2 - 1]
        if f(id1) == f(id2):
            return (p1, p2)
    return None
