"""Lemma 15 — one phase of the clustering construction.

Given a parameter b, the protocol partitions any n-node graph into

- **singleton clusters** colored from a palette of ``a·b²`` colors
  (a = 16, fixed by Linial's fixed point on degree-b graphs), and
- at most **n/b residual clusters**, each a uniquely-labeled BFS cluster
  whose label is its root's ID shifted above the singleton palette.

Pipeline (Figure 4):

1. distance-2 coloring c0 (Linial on G²; zero rounds when the ID space is
   already within the O(n⁴) fixed point — the §5 Remark);
2. low-degree shift: c1 = c0 + k for nodes of degree ≤ b;
3. two all-awake rounds to learn c1 on N(v) and N²(v);
4. local computation of parent pointers p1 (toward the 2-hop color
   minimum), shifts b(v), colors c2 and pointers p2 (Claim 16 makes the
   p2-forest F2 monotone in c2 and a subgraph of G);
5. per-tree convergecast + broadcast with labels c2 (Lemma 6) to learn the
   tree: members, root, root degree;
6. a second convergecast + broadcast collecting the *induced* intra-cluster
   edges, so every member computes true BFS distances from the root
   (Definition 2 requires induced distances, not tree distances);
7. clusters whose root has degree ≤ b dissolve into U; one round announces
   U membership, then Linial's distance-1 reduction on G[U] (degree ≤ b)
   yields the singleton colors in [1, a·b²].

Awake complexity O(log* n); round complexity O(k) where k is the
distance-2 palette (O(n⁴) in general, O(n^s) for IDs from [n^s]).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Generator, Iterable, Mapping

from repro.core.cast import (
    broadcast_labeled,
    convergecast_labeled,
    labeled_cast_duration,
)
from repro.core.linial import (
    final_palette,
    linial_coloring,
    linial_duration,
)
from repro.errors import ProtocolError
from repro.graphs.graph import StaticGraph
from repro.model.actions import AwakeAt
from repro.types import NodeId, Payload

Proto = Generator[AwakeAt, dict[NodeId, Payload], Any]

#: The constant ``a`` of Lemma 15. Linial's reduction with conflict degree
#: b halts on a palette k iff no (d, q) with q > b·d, q^{d+1} >= k and
#: q² < k exists; any such "stuck" palette satisfies k <= 4·(3b+1)² <= 64 b²
#: (take the smallest d with ceil_root(k, d+1) <= b·d + 1 and apply
#: Bertrand's postulate), which fixes a = 64.
A_CONSTANT = 64

from functools import lru_cache  # noqa: E402  (kept near its single user)

from repro.core.linial import _ceil_root  # noqa: E402
from repro.util.mathx import next_prime  # noqa: E402


def _has_progress(k: int, b: int) -> bool:
    """True iff some Linial step shrinks palette k at conflict degree b."""
    for d in range(1, max(1, k.bit_length()) + 1):
        q = next_prime(max(b * d + 1, _ceil_root(k, d + 1)))
        if q * q < k:
            return True
    return False


@lru_cache(maxsize=None)
def singleton_palette(b: int) -> int:
    """The exact number of colors reserved for singleton clusters: the
    largest palette on which Linial's reduction with conflict degree b can
    halt. Guaranteed <= A_CONSTANT · b²; computed exactly so that the color
    range is as tight as the construction allows for every ID space.

    Empirically this equals next_prime(2b+1)², but the scan (bounded by
    the proven 4(3b+1)² limit) keeps the value correct unconditionally.
    """
    limit = 4 * (3 * b + 1) ** 2
    for k in range(limit, 0, -1):
        if not _has_progress(k, b):
            return k
    raise AssertionError("unreachable: palette 1 is always terminal")


@dataclass(frozen=True)
class Lemma15Output:
    """Per-node result of one Lemma 15 phase.

    ``singleton`` nodes carry γ = gamma ∈ [1, a·b²] and δ = 0. Residual
    nodes carry γ = label = root ID + a·b² (unique) and δ = the induced
    BFS distance to the root.
    """

    singleton: bool
    gamma: int
    delta: int
    root: NodeId
    root_degree: int
    members: tuple[NodeId, ...]

    @property
    def label(self) -> int:
        """The residual cluster's unique label (= gamma for non-singletons)."""
        if self.singleton:
            raise ProtocolError("singleton clusters have colors, not labels")
        return self.gamma


# ---------------------------------------------------------------------------
# Deterministic timing (common knowledge from n, id_space, b).
# ---------------------------------------------------------------------------


def distance2_conflict_degree(n: int) -> int:
    """Bound on |N(v) ∪ N²(v)|: Δ² <= n² (the nodes only know n)."""
    return max(1, n * n)


def distance2_palette(n: int, id_space: int) -> int:
    """Palette of the distance-2 coloring c0 — ``k`` in the paper.

    Equals ``id_space`` when the IDs already fit (zero Linial rounds, the
    §5 Remark), otherwise the O(n⁴) fixed point.
    """
    return final_palette(id_space, distance2_conflict_degree(n))


def c2_bound(n: int, id_space: int) -> int:
    """Upper bound on the tree labels c2 = 2·c1 + shift with c1 in [1, 2k]
    (c1 is 1-indexed so that the root sentinel c2 = 0 is never collided)."""
    return 4 * distance2_palette(n, id_space) + 1


def lemma15_duration(n: int, id_space: int, b: int) -> int:
    """Reserved window length of one Lemma 15 phase."""
    d2 = linial_duration(id_space, distance2_conflict_degree(n), distance=2)
    casts = 4 * labeled_cast_duration(c2_bound(n, id_space))
    membership = 1
    coloring_u = linial_duration(id_space, b)
    return d2 + 2 + casts + membership + coloring_u


# ---------------------------------------------------------------------------
# The distributed protocol (level-agnostic: runs on G or on a virtual H).
# ---------------------------------------------------------------------------


def lemma15_protocol(
    me: NodeId,
    peers: Iterable[NodeId],
    n: int,
    id_space: int,
    b: int,
    t0: int,
) -> Proto:
    """One phase of Lemma 15; returns :class:`Lemma15Output` for ``me``."""
    peers = tuple(peers)
    if b < 1:
        raise ProtocolError(f"b must be >= 1, got {b}")
    degree = len(peers)
    d2_degree = distance2_conflict_degree(n)
    k = distance2_palette(n, id_space)
    label_bound = c2_bound(n, id_space)

    # -- step 1: distance-2 coloring ---------------------------------------
    c0 = yield from linial_coloring(
        me, peers, color=me - 1, palette=id_space,
        conflict_degree=d2_degree, t0=t0, distance=2,
    )
    clock = t0 + linial_duration(id_space, d2_degree, distance=2)

    # -- step 2: low-degree shift (1-indexed: c1 in [1, 2k]) ----------------
    c1 = (c0 + 1) + k if degree <= b else (c0 + 1)

    # -- step 3: learn c1 on N(v) and N²(v) ---------------------------------
    inbox = yield AwakeAt(clock, {u: ("c1", c1) for u in peers})
    nbr_c1 = {u: msg[1] for u, msg in inbox.items() if msg[0] == "c1"}
    inbox = yield AwakeAt(clock + 1, {u: ("nbrs", nbr_c1) for u in peers})
    nbr_maps = {u: msg[1] for u, msg in inbox.items() if msg[0] == "nbrs"}
    clock += 2
    two_hop_c1: dict[NodeId, int] = {}
    for u, colormap in sorted(nbr_maps.items()):
        for w, cw in colormap.items():
            if w != me and w not in nbr_c1:
                two_hop_c1[w] = cw

    # -- step 4: parents p1/p2, shift, color c2 -----------------------------
    p1, shift = _select_p1(me, c1, nbr_c1, two_hop_c1)
    if p1 is None:
        c2, p2 = 0, None
    else:
        parent_c1 = nbr_c1.get(p1, two_hop_c1.get(p1))
        c2 = 2 * parent_c1 + shift
        if shift == 0:
            p2 = p1
        else:
            # any common neighbor of me and p1 (deterministic: smallest ID)
            candidates = [u for u in peers if p1 in nbr_maps.get(u, {})]
            if not candidates:
                raise ProtocolError(
                    f"node {me}: 2-hop parent {p1} shares no common neighbor"
                )
            p2 = min(candidates)
    if c2 > label_bound:
        raise ProtocolError(f"node {me}: c2 = {c2} exceeds bound {label_bound}")

    # -- step 5: learn the whole F2 tree ------------------------------------
    record = {me: (p2, degree)}
    cast_len = labeled_cast_duration(label_bound)
    folded = yield from convergecast_labeled(
        me, peers, p2, c2, label_bound, clock, record, _merge_dicts
    )
    tree = yield from broadcast_labeled(
        me, peers, p2, c2, label_bound, clock + cast_len, folded
    )
    clock += 2 * cast_len
    members = frozenset(tree)
    roots = [v for v, (parent, _) in tree.items() if parent is None]
    if len(roots) != 1:
        raise ProtocolError(
            f"node {me}: tree has {len(roots)} roots; F2 is not a forest"
        )
    root = roots[0]
    root_degree = tree[root][1]

    # -- step 6: induced BFS distances --------------------------------------
    my_edges = {me: tuple(u for u in peers if u in members)}
    folded = yield from convergecast_labeled(
        me, peers, p2, c2, label_bound, clock, my_edges, _merge_dicts
    )
    all_edges = yield from broadcast_labeled(
        me, peers, p2, c2, label_bound, clock + cast_len, folded
    )
    clock += 2 * cast_len
    delta_aux = _bfs_over(all_edges, root)
    if set(delta_aux) != set(members):
        raise ProtocolError(
            f"node {me}: cluster of root {root} is not connected in G"
        )

    # -- step 7: dissolve low-degree-rooted clusters into singletons --------
    ab2 = singleton_palette(b)
    if root_degree > b:
        # Residual cluster: unique label = root ID shifted above [1, a·b²].
        return Lemma15Output(
            singleton=False,
            gamma=root + ab2,
            delta=delta_aux[me],
            root=root,
            root_degree=root_degree,
            members=tuple(sorted(members)),
        )

    if degree > b:
        raise ProtocolError(
            f"node {me}: in a low-degree-rooted cluster but deg = {degree} "
            f"> b = {b} — contradicts Lemma 15"
        )
    inbox = yield AwakeAt(clock, {u: ("inU", None) for u in peers})
    u_peers = tuple(sorted(u for u, msg in inbox.items() if msg[0] == "inU"))
    clock += 1
    if len(u_peers) > b:
        raise ProtocolError(
            f"node {me}: {len(u_peers)} U-neighbors > b = {b}"
        )
    color = yield from linial_coloring(
        me, u_peers, color=me - 1, palette=id_space,
        conflict_degree=b, t0=clock,
    )
    gamma = color + 1
    if not 1 <= gamma <= ab2:
        raise ProtocolError(
            f"node {me}: singleton color {gamma} outside [1, {ab2}]"
        )
    return Lemma15Output(
        singleton=True,
        gamma=gamma,
        delta=0,
        root=root,
        root_degree=root_degree,
        members=tuple(sorted(members)),
    )


def _select_p1(
    me: NodeId,
    c1: int,
    nbr_c1: Mapping[NodeId, int],
    two_hop_c1: Mapping[NodeId, int],
) -> tuple[NodeId | None, int | None]:
    """The three-case parent rule of Lemma 15 (colors are unique on the
    2-ball because c1 is a distance-2 coloring; ties broken by ID anyway)."""
    ball = list(nbr_c1.values()) + list(two_hop_c1.values())
    if all(c > c1 for c in ball):
        return None, None
    if any(c < c1 for c in nbr_c1.values()):
        parent = min(nbr_c1, key=lambda u: (nbr_c1[u], u))
        return parent, 0
    parent = min(two_hop_c1, key=lambda u: (two_hop_c1[u], u))
    return parent, 1


def _merge_dicts(a: dict, b: dict) -> dict:
    merged = dict(a)
    merged.update(b)
    return merged


def _bfs_over(edges: Mapping[NodeId, tuple[NodeId, ...]], root: NodeId) -> dict[NodeId, int]:
    dist = {root: 0}
    queue = deque([root])
    while queue:
        v = queue.popleft()
        for u in edges.get(v, ()):
            if u not in dist:
                dist[u] = dist[v] + 1
                queue.append(u)
    return dist


# ---------------------------------------------------------------------------
# Centralized reference (oracle for tests; fast path for large-n statistics).
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Lemma15Reference:
    """Centralized re-computation of a Lemma 15 phase."""

    outputs: dict[NodeId, Lemma15Output]
    c1: dict[NodeId, int]
    c2: dict[NodeId, int]
    p1: dict[NodeId, NodeId | None]
    p2: dict[NodeId, NodeId | None]
    residual_clusters: int
    palette: int

    def gamma(self) -> dict[NodeId, int]:
        return {v: out.gamma for v, out in self.outputs.items()}

    def delta(self) -> dict[NodeId, int]:
        return {v: out.delta for v, out in self.outputs.items()}


def lemma15_reference(graph: StaticGraph, b: int) -> Lemma15Reference:
    """Compute the same phase centrally, with identical tie-breaking.

    Used as the equality oracle for the distributed protocol and to gather
    large-n statistics (cluster-count decay) without simulation overhead.
    """
    n, id_space = graph.n, graph.id_space
    d2_degree = distance2_conflict_degree(n)
    k = distance2_palette(n, id_space)

    # The distance-2 balls are the hot data of the whole phase: compute
    # them once and share across the coloring iterations and parent rule.
    two_hop = {v: graph.distance_2_neighbors(v) for v in graph.nodes}

    c0 = _reference_distance2_coloring(graph, d2_degree, two_hop)
    c1 = {
        v: (c0[v] + 1) + k if graph.degree(v) <= b else (c0[v] + 1)
        for v in graph.nodes
    }

    p1: dict[NodeId, NodeId | None] = {}
    shift: dict[NodeId, int | None] = {}
    for v in graph.nodes:
        nbr = {u: c1[u] for u in graph.neighbors(v)}
        two = {u: c1[u] for u in two_hop[v]}
        p1[v], shift[v] = _select_p1(v, c1[v], nbr, two)

    c2: dict[NodeId, int] = {}
    p2: dict[NodeId, NodeId | None] = {}
    for v in graph.nodes:
        if p1[v] is None:
            c2[v], p2[v] = 0, None
        else:
            c2[v] = 2 * c1[p1[v]] + shift[v]
            if shift[v] == 0:
                p2[v] = p1[v]
            else:
                common = [
                    u for u in graph.neighbors(v)
                    if graph.has_edge(u, p1[v])
                ]
                p2[v] = min(common)

    # Trees of F2 → clusters.
    children: dict[NodeId, list[NodeId]] = {v: [] for v in graph.nodes}
    for v in graph.nodes:
        if p2[v] is not None:
            children[p2[v]].append(v)
    outputs: dict[NodeId, Lemma15Output] = {}
    ab2 = singleton_palette(b)
    residual = 0
    u_nodes: set[NodeId] = set()
    for root in graph.nodes:
        if p2[root] is not None:
            continue
        members = []
        stack = [root]
        while stack:
            x = stack.pop()
            members.append(x)
            stack.extend(children[x])
        member_set = frozenset(members)
        if graph.degree(root) <= b:
            u_nodes |= member_set
            for v in members:
                outputs[v] = Lemma15Output(
                    singleton=True, gamma=-1, delta=0, root=root,
                    root_degree=graph.degree(root),
                    members=tuple(sorted(member_set)),
                )
            continue
        residual += 1
        dist = _induced_bfs_distances(graph, member_set, root)
        for v in members:
            outputs[v] = Lemma15Output(
                singleton=False, gamma=root + ab2, delta=dist[v], root=root,
                root_degree=graph.degree(root),
                members=tuple(sorted(member_set)),
            )

    if u_nodes:
        u_colors = _reference_u_coloring(graph, u_nodes, b)
        for v in u_nodes:
            old = outputs[v]
            outputs[v] = Lemma15Output(
                singleton=True, gamma=u_colors[v] + 1, delta=0, root=old.root,
                root_degree=old.root_degree, members=old.members,
            )

    return Lemma15Reference(
        outputs=outputs, c1=c1, c2=c2, p1=p1, p2=p2,
        residual_clusters=residual, palette=k,
    )


def _reference_distance2_coloring(
    graph: StaticGraph,
    conflict_degree: int,
    two_hop: Mapping[NodeId, tuple[NodeId, ...]] | None = None,
) -> dict[NodeId, int]:
    """Replays the distributed Linial distance-2 reduction centrally
    (identical (d, q) schedule and evaluation-point choices)."""
    from repro.core.linial import _reduce_one, step_parameters

    if two_hop is None:
        two_hop = {v: graph.distance_2_neighbors(v) for v in graph.nodes}
    ball = {v: graph.neighbors(v) + two_hop[v] for v in graph.nodes}
    colors = {v: v - 1 for v in graph.nodes}
    k = graph.id_space
    while True:
        params = step_parameters(k, conflict_degree)
        if params is None:
            return colors
        d, q = params
        new = {}
        for v in graph.nodes:
            conflicts = {colors[u] for u in ball[v]}
            new[v] = _reduce_one(v, colors[v], conflicts, d, q)
        colors = new
        k = q * q


def _reference_u_coloring(
    graph: StaticGraph, u_nodes: set[NodeId], b: int
) -> dict[NodeId, int]:
    """Replays Linial's distance-1 reduction on G[U] centrally."""
    from repro.core.linial import _reduce_one, step_parameters

    members = sorted(u_nodes)
    u_nbrs = {
        v: tuple(u for u in graph.neighbors(v) if u in u_nodes)
        for v in members
    }
    colors = {v: v - 1 for v in u_nodes}
    k = graph.id_space
    while True:
        params = step_parameters(k, b)
        if params is None:
            return colors
        d, q = params
        new = {}
        for v in members:
            conflicts = {colors[u] for u in u_nbrs[v]}
            new[v] = _reduce_one(v, colors[v], conflicts, d, q)
        colors = new
        k = q * q


def _induced_bfs_distances(
    graph: StaticGraph, members: frozenset[NodeId], root: NodeId
) -> dict[NodeId, int]:
    dist = {root: 0}
    queue = deque([root])
    while queue:
        v = queue.popleft()
        for u in graph.neighbors(v):
            if u in members and u not in dist:
                dist[u] = dist[v] + 1
                queue.append(u)
    missing = members - set(dist)
    if missing:
        raise ProtocolError(
            f"cluster of root {root} is disconnected: {sorted(missing)[:5]}"
        )
    return dist
