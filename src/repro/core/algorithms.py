"""The algorithm registry: uniform adapters over the paper's solvers.

Every entry of :data:`ALGORITHMS` is an :class:`AlgorithmAdapter` whose
``solve`` runs one algorithm end to end on one graph and returns a
uniform :class:`SolveOutcome` — outputs plus awake/round/message
accounting plus an algorithm-specific ``extras`` dict. The CLI
(``repro solve``), the sweep runner's grid trials, and
:func:`repro.api.run_scenario` all dispatch through this registry, so
registering an adapter once makes it runnable everywhere (and gives it
a lane in the trial-cache key space for free).

Dispatch is resolved **once per run** — registry lookups never appear
in the simulator's per-round hot path (see PERFORMANCE.md; the engine
benchmark gates this).

Built-in adapters:

- ``theorem1`` — the headline pipeline (Theorem 13 clustering + the
  Theorem 9 clustered solver), awake O(√log n · log* n);
- ``baseline`` — BM21 (Linial + Lemma 11), awake O(log Δ + log* n);
- ``theorem9`` — the clustered solver alone, on a Theorem 13 clustering
  computed out-of-band: its metrics isolate the solving stage (awake
  O(log c)); the clustering stage's accounting rides in ``extras``;
- ``greedy`` — the definitional *sequential* greedy (increasing-ID
  priority), the centralized reference the distributed solvers are
  validated against. Its Sleeping-model accounting is the sequential
  schedule itself: every node is awake exactly once (awake = 1, average
  = 1.0), one decision per round (rounds = n), and each edge carries
  the earlier endpoint's output to the later one (messages = |E|).

Engines: ``simulator`` runs on the Sleeping-LOCAL event loop
(:class:`repro.model.simulator.SleepingSimulator`) or, for lockstep
algorithms, the equivalent native loop of
:func:`repro.model.lockstep.run_local`; ``reference`` is a centralized
oracle with deterministic synthetic accounting; ``vectorized`` replaces
per-node dispatch with whole-graph numpy kernels
(:mod:`repro.model.vectorized` for the greedy/baseline solvers,
:mod:`repro.core.clustering_vectorized` +
:mod:`repro.core.theorem1_vectorized` for the clustered pipeline) —
bit-identical outputs and metrics,
built for n ≥ 10⁵ (requires numpy); ``faulty-simulator`` is the event
loop behind a deterministic message-fault filter
(:class:`repro.model.faults.FaultySimulator`) — the fault-injection
axis of the scenario space. Fault runs are expected to **fail loudly**
(``ProtocolError`` / ``ValidationError``) when a fault actually breaks
the protocol; a run that survives reports its ``dropped``/``corrupted``
counts in ``extras``. Each adapter declares which engines it supports;
the first is its default. Unknown or unsupported engine names raise
:class:`~repro.registry.UnknownNameError` listing the valid choices,
exactly like family/problem/algorithm name lookups.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.graphs.graph import StaticGraph
from repro.obs.spans import span
from repro.olocal.problem import OLocalProblem
from repro.registry import Registry, RegistryError, UnknownNameError
from repro.types import NodeId

#: Engine names (see module docstring).
ENGINE_SIMULATOR = "simulator"
ENGINE_REFERENCE = "reference"
ENGINE_FAULTY = "faulty-simulator"
ENGINE_VECTORIZED = "vectorized"
ENGINES = (ENGINE_SIMULATOR, ENGINE_REFERENCE, ENGINE_FAULTY, ENGINE_VECTORIZED)

#: Parameter schema of the fault axis — what ``catalog()`` and ``repro
#: sweep --list`` surface for the ``faulty-simulator`` engine.
FAULT_PARAMS: dict[str, str] = {
    "fault_drop": "per-message drop probability in [0, 1]",
    "fault_corrupt": "per-message corruption probability in [0, 1]",
    "fault_seed": "fault RNG seed (0: derived from the scenario seed)",
    "immune_rounds": "rounds in which no fault fires (tuple of ints)",
}


@dataclass(frozen=True)
class SolveOutcome:
    """What every algorithm adapter returns: one uniform result record.

    Attributes:
        algorithm: canonical registry name of the algorithm that ran.
        engine: engine that produced the accounting.
        outputs: per-node problem outputs (validated).
        awake_complexity: max awake rounds over all nodes.
        average_awake: mean awake rounds per node.
        round_complexity: last round in which any node was awake.
        messages_sent: total messages delivered.
        extras: algorithm-specific additions (clustering stats, palette
            bounds, stage metrics, ...) — never required by callers.
    """

    algorithm: str
    engine: str
    outputs: dict[NodeId, Any]
    awake_complexity: int
    average_awake: float
    round_complexity: int
    messages_sent: int
    extras: dict[str, Any] = field(default_factory=dict)


#: Adapter run signature: ``run(graph, problem, engine, **params)``.
RunFn = Callable[..., SolveOutcome]

#: Trace-program factory signature: ``trace(graph, problem, b)``.
TraceFn = Callable[[StaticGraph, OLocalProblem, int | None], Any]


@dataclass(frozen=True)
class AlgorithmAdapter:
    """One registered algorithm: the run callable plus its capabilities.

    Attributes:
        name: canonical registry name.
        run: ``run(graph, problem, engine, **params) -> SolveOutcome``.
        engines: engines the adapter supports; ``engines[0]`` is the
            default when a scenario leaves the engine unspecified.
        trace_program: optional factory returning the node program for
            ``repro solve --trace`` (``None`` — tracing unsupported).
    """

    name: str
    run: RunFn
    engines: tuple[str, ...] = (ENGINE_SIMULATOR,)
    trace_program: TraceFn | None = None

    @property
    def default_engine(self) -> str:
        """The engine used when a scenario does not pick one."""
        return self.engines[0]

    def validate_engine(self, engine: str) -> None:
        """Reject unknown or unsupported engine names.

        Raises :class:`~repro.registry.UnknownNameError` — a name not in
        :data:`ENGINES` at all lists every engine; a known engine this
        adapter does not run lists the adapter's supported ones. Both
        stay catchable as ``RegistryError`` and ``KeyError``, matching
        the registries' own unknown-name behavior.
        """
        if engine not in ENGINES:
            raise UnknownNameError(
                f"unknown engine {engine!r}; choose from {list(ENGINES)}"
            )
        if engine not in self.engines:
            raise UnknownNameError(
                f"algorithm {self.name!r} does not support engine "
                f"{engine!r}; supported: {list(self.engines)}"
            )

    def solve(
        self,
        graph: StaticGraph,
        problem: OLocalProblem,
        engine: str | None = None,
        **params: Any,
    ) -> SolveOutcome:
        """Run the algorithm; ``engine=None`` selects the default."""
        chosen = self.default_engine if engine is None else engine
        self.validate_engine(chosen)
        return self.run(graph, problem, chosen, **params)


#: The algorithm registry — what ``--algorithm`` names resolve through.
ALGORITHMS: Registry[AlgorithmAdapter] = Registry("algorithm")


def register_algorithm(
    name: str,
    title: str = "",
    aliases: tuple[str, ...] = (),
    params: Mapping[str, str] | None = None,
    engines: tuple[str, ...] = (ENGINE_SIMULATOR,),
    trace_program: TraceFn | None = None,
) -> Callable[[RunFn], AlgorithmAdapter]:
    """Decorator: wrap a run callable into a registered adapter.

    The decorated function is replaced by its :class:`AlgorithmAdapter`
    so importers get the registered object either way.
    """

    def decorator(run: RunFn) -> AlgorithmAdapter:
        adapter = AlgorithmAdapter(
            name=name, run=run, engines=engines, trace_program=trace_program
        )
        ALGORITHMS.add(name, adapter, title=title, aliases=aliases, params=params)
        return adapter

    return decorator


def _simulation_outcome(
    algorithm: str,
    outputs: dict[NodeId, Any],
    simulation: Any,
    extras: dict[str, Any],
    engine: str = ENGINE_SIMULATOR,
) -> SolveOutcome:
    """Fold a :class:`SimulationResult`'s metrics into a SolveOutcome."""
    metrics = simulation.metrics
    return SolveOutcome(
        algorithm=algorithm,
        engine=engine,
        outputs=outputs,
        awake_complexity=metrics.awake_complexity,
        average_awake=metrics.average_awake,
        round_complexity=metrics.round_complexity,
        messages_sent=metrics.messages_sent,
        extras=extras,
    )


class _FaultInjector:
    """Per-run fault wiring for simulator-backed adapters.

    When the chosen engine is :data:`ENGINE_FAULTY`, acts as the
    ``simulator`` factory the core solvers accept, constructing a
    :class:`~repro.model.faults.FaultySimulator` and remembering it so
    the adapter can report ``dropped``/``corrupted`` counts. On the
    plain engines it resolves to ``None`` (solver default) and rejects
    a stray ``fault_plan``.
    """

    def __init__(self, engine: str, fault_plan: Any) -> None:
        """Resolve the fault plan for ``engine`` (None on plain engines)."""
        if engine != ENGINE_FAULTY and fault_plan is not None:
            raise RegistryError(
                f"fault_plan requires engine {ENGINE_FAULTY!r}, "
                f"not {engine!r}"
            )
        self.engine = engine
        self.simulator: Any = None
        if engine == ENGINE_FAULTY:
            from repro.model.faults import FaultPlan

            self.plan = fault_plan if fault_plan is not None else FaultPlan()
        else:
            self.plan = None

    @property
    def factory(self) -> Any:
        """What the core solvers' ``simulator`` parameter receives."""
        return self if self.plan is not None else None

    @contextmanager
    def guarding(self) -> Any:
        """Normalize a faulty run's crash into :class:`ProtocolError`.

        A corrupted payload can detonate anywhere in a node program
        (``TypeError``, ``ValueError``, ``KeyError``, ...). Under the
        faulty engine all of those mean the same thing — the protocol
        failed loudly under faults — so they surface uniformly as
        ``ProtocolError`` with the original exception chained. Repro
        errors (``ProtocolError``/``SimulationError``/...) pass through
        untouched; plain engines are never wrapped.
        """
        if self.plan is None:
            yield
            return
        from repro.errors import ProtocolError, ReproError

        try:
            yield
        except ReproError:
            raise
        except Exception as exc:
            raise ProtocolError(
                f"fault run crashed: {type(exc).__name__}: {exc}"
            ) from exc

    def __call__(self, graph: StaticGraph, program: Any, inputs: Any = None):
        """Construct (and remember) the FaultySimulator for this run."""
        from repro.model.faults import FaultySimulator

        self.simulator = FaultySimulator(
            graph, program, self.plan, inputs=inputs
        )
        return self.simulator

    def extras(self) -> dict[str, Any]:
        """Fault provenance for the outcome's ``extras``."""
        if self.plan is None:
            return {}
        extras: dict[str, Any] = {"fault_plan": self.plan.describe()}
        if self.simulator is not None:
            extras["dropped"] = self.simulator.dropped
            extras["corrupted"] = self.simulator.corrupted
        return extras


# ---------------------------------------------------------------------------
# Built-in adapters.
# ---------------------------------------------------------------------------


def _trace_theorem1(
    graph: StaticGraph, problem: OLocalProblem, b: int | None
) -> Any:
    """Node program for ``--trace`` (Theorem 1 pipeline)."""
    from repro.core.theorem1 import theorem1_program

    return theorem1_program(problem, b)


def _trace_baseline(
    graph: StaticGraph, problem: OLocalProblem, b: int | None
) -> Any:
    """Node program for ``--trace`` (BM21 baseline; ``b`` unused)."""
    from repro.core.bm21 import baseline_program

    return baseline_program(problem, max(graph.max_degree, 1))


@register_algorithm(
    "theorem1",
    title="Theorem 1 — clustering pipeline + clustered solver, "
    "awake O(√log n · log* n)",
    aliases=("t1",),
    params={"b": "override the paper's b = 2^√(log n) (ablations)"},
    engines=(ENGINE_SIMULATOR, ENGINE_FAULTY, ENGINE_VECTORIZED),
    trace_program=_trace_theorem1,
)
def _run_theorem1(
    graph: StaticGraph,
    problem: OLocalProblem,
    engine: str,
    b: int | None = None,
    fault_plan: Any = None,
) -> SolveOutcome:
    """Theorem 1 end to end.

    The ``simulator``/``faulty-simulator`` engines run the per-node
    generator pipeline on the Sleeping event loop; ``vectorized`` runs
    the array-kernel twin
    (:func:`repro.core.theorem1_vectorized.solve_vectorized`) with
    bit-identical outputs and metrics.
    """
    faults = _FaultInjector(engine, fault_plan)
    if engine == ENGINE_VECTORIZED:
        from repro.core.theorem1_vectorized import solve_vectorized

        result = solve_vectorized(graph, problem, b=b)
    else:
        from repro.core.theorem1 import solve

        with faults.guarding():
            result = solve(graph, problem, b=b, simulator=faults.factory)
    return _simulation_outcome(
        "theorem1",
        result.outputs,
        result.simulation,
        extras={
            "b": result.b,
            "clustering": result.clustering,
            "clustering_colors": result.clustering.num_colors(),
            "palette_bound": result.palette_bound,
            **faults.extras(),
        },
        engine=engine,
    )


@register_algorithm(
    "baseline",
    title="BM21 baseline — Linial + Lemma 11, awake O(log Δ + log* n)",
    aliases=("bm21",),
    engines=(ENGINE_SIMULATOR, ENGINE_FAULTY, ENGINE_VECTORIZED),
    trace_program=_trace_baseline,
)
def _run_baseline(
    graph: StaticGraph,
    problem: OLocalProblem,
    engine: str,
    fault_plan: Any = None,
) -> SolveOutcome:
    """The BM21 baseline end to end.

    The ``simulator``/``faulty-simulator`` engines run the per-node
    generator program on the Sleeping event loop; ``vectorized`` runs
    the array-kernel twin (:mod:`repro.core.bm21_vectorized`) with
    bit-identical outputs and metrics.
    """
    faults = _FaultInjector(engine, fault_plan)
    if engine == ENGINE_VECTORIZED:
        from repro.core.bm21_vectorized import solve_with_baseline_vectorized

        result = solve_with_baseline_vectorized(graph, problem)
    else:
        from repro.core.bm21 import solve_with_baseline

        with faults.guarding():
            result = solve_with_baseline(
                graph, problem, simulator=faults.factory
            )
    return _simulation_outcome(
        "baseline",
        result.outputs,
        result.simulation,
        extras={"palette": result.palette, **faults.extras()},
        engine=engine,
    )


@register_algorithm(
    "theorem9",
    title="Theorem 9 — clustered solver on a Theorem 13 clustering, "
    "awake O(log c) (solving stage)",
    aliases=("t9", "clustered"),
    params={"b": "override the paper's b = 2^√(log n) (ablations)"},
    engines=(ENGINE_SIMULATOR, ENGINE_FAULTY, ENGINE_VECTORIZED),
)
def _run_theorem9(
    graph: StaticGraph,
    problem: OLocalProblem,
    engine: str,
    b: int | None = None,
    fault_plan: Any = None,
) -> SolveOutcome:
    """Theorem 9 on a freshly computed Theorem 13 clustering.

    The returned metrics cover the Theorem 9 solving stage only — the
    point of this adapter is to isolate the awake O(log c) stage the
    composed ``theorem1`` pipeline amortizes; the clustering stage's
    accounting is reported in ``extras``. On the ``vectorized`` engine
    both stages run as array kernels
    (:mod:`repro.core.clustering_vectorized`,
    :mod:`repro.core.theorem1_vectorized`) with bit-identical metrics.
    """
    faults = _FaultInjector(engine, fault_plan)
    if engine == ENGINE_VECTORIZED:
        from repro.core.clustering_vectorized import (
            compute_clustering_vectorized,
        )
        from repro.core.theorem1_vectorized import (
            solve_with_clustering_vectorized,
        )

        with span("theorem9.clustering", n=graph.n):
            clustering = compute_clustering_vectorized(graph, b=b)
        result = solve_with_clustering_vectorized(
            graph, problem, clustering.clustering
        )
    else:
        from repro.core.theorem9 import solve_with_clustering
        from repro.core.theorem13 import compute_clustering

        with span("theorem9.clustering", n=graph.n):
            clustering = compute_clustering(graph, b=b)
        with faults.guarding():
            result = solve_with_clustering(
                graph, problem, clustering.clustering,
                simulator=faults.factory,
            )
    return _simulation_outcome(
        "theorem9",
        result.outputs,
        result.simulation,
        extras={
            "b": clustering.b,
            "palette": result.palette,
            "clustering": clustering.clustering,
            "clustering_colors": clustering.num_colors_used,
            "palette_bound": clustering.palette_bound,
            "clustering_awake": clustering.awake_complexity,
            "clustering_rounds": clustering.round_complexity,
            **faults.extras(),
        },
        engine=engine,
    )


@register_algorithm(
    "greedy",
    title="Sequential greedy reference (increasing-ID priority), "
    "centralized oracle",
    aliases=("reference",),
    engines=(ENGINE_REFERENCE, ENGINE_SIMULATOR, ENGINE_VECTORIZED),
)
def _run_greedy(
    graph: StaticGraph, problem: OLocalProblem, engine: str
) -> SolveOutcome:
    """The greedy-by-ID algorithm, as oracle or as distributed strawman.

    ``reference`` (the default) is the definitional *sequential* greedy
    whose accounting is the sequential schedule itself (see the module
    docstring): awake = 1, average = 1.0, rounds = n, messages = |E|.

    ``simulator`` runs the distributed always-awake lockstep strawman
    (:func:`repro.model.lockstep.greedy_by_id_local`) — same outputs,
    but *measured* Sleeping-model accounting with awake complexity
    Θ(longest increasing-ID path), the cost the paper's algorithms
    undercut. ``vectorized`` is its array-kernel twin
    (:func:`repro.model.vectorized.greedy_by_id_vectorized`),
    bit-identical metrics at n ≥ 10⁶ scale.
    """
    inputs = problem.make_inputs(graph)
    if engine != ENGINE_REFERENCE:
        if engine == ENGINE_VECTORIZED:
            from repro.model.vectorized import greedy_by_id_vectorized

            result = greedy_by_id_vectorized(graph, problem, inputs=inputs)
        else:
            from repro.model.lockstep import greedy_by_id_local

            result = greedy_by_id_local(graph, problem, inputs=inputs)
        problem.check(graph, result.outputs, inputs)
        return _simulation_outcome(
            "greedy",
            result.outputs,
            result,
            extras={"priority": "increasing ID", "schedule": "lockstep"},
            engine=engine,
        )
    from repro.olocal.problem import id_priority, sequential_greedy

    outputs = sequential_greedy(graph, problem, priority=id_priority, inputs=inputs)
    problem.check(graph, outputs, inputs)
    return SolveOutcome(
        algorithm="greedy",
        engine=ENGINE_REFERENCE,
        outputs=outputs,
        awake_complexity=1,
        average_awake=1.0,
        round_complexity=graph.n,
        messages_sent=graph.num_edges,
        extras={"priority": "increasing ID"},
    )
