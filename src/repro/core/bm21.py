"""Lemma 11 and the Barenboim–Maimon baseline algorithm.

Lemma 11: given a proper k-coloring, any O-LOCAL problem is solvable with
awake complexity O(log k) in O(k) rounds. The wake calendar is the Lemma 10
mapping: a node of color c is awake exactly at the rounds in r(c); it
*receives* at rounds in r<(c), *decides* at round φ(c), and *sends* its
state at rounds in r>(c).

The full BM21 algorithm ("the baseline" of experiment E9) prepends Linial's
reduction to an O(Δ²) palette, for total awake complexity
O(log Δ + log* n) — the bound Theorem 1 improves on for large Δ.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator, Iterable, Mapping

from repro.core.linial import (
    final_palette,
    linial_coloring,
    linial_duration,
)
from repro.core.mapping import ColorScheduleMapping
from repro.errors import ProtocolError
from repro.graphs.graph import StaticGraph
from repro.model.actions import AwakeAt
from repro.model.api import NodeInfo
from repro.model.simulator import SimulationResult, SleepingSimulator
from repro.olocal.problem import NodeView, OLocalProblem
from repro.types import NodeId, Payload

Proto = Generator[AwakeAt, dict[NodeId, Payload], Any]

#: decide(accumulated) -> (output, payload_to_send); ``accumulated`` maps
#: each sender to the latest payload received from it before φ(c).
DecideFn = Callable[[dict[NodeId, Payload]], tuple[Any, Payload]]


def schedule_solve_duration(palette: int) -> int:
    """Window length of :func:`schedule_solve`: 2q - 1 rounds."""
    return ColorScheduleMapping.for_palette(palette).num_rounds


def schedule_solve(
    me: NodeId,
    peers: Iterable[NodeId],
    color: int,
    palette: int,
    t0: int,
    decide: DecideFn,
) -> Proto:
    """The Lemma 10/11 wake calendar, generic in the decision rule.

    This is the engine of both Lemma 11 (decide = greedy step of Π) and
    Theorem 9 (decide = sequential greedy sweep over a whole cluster, run
    on the virtual graph). Colors are 1-based, ``1 <= color <= palette``.

    Awake rounds: |r(c)| = 1 + log₂ q where q = next_pow2(palette).
    """
    peers = tuple(peers)
    if not 1 <= color <= palette:
        raise ProtocolError(f"color {color} outside palette [1, {palette}]")
    mapping = ColorScheduleMapping.for_palette(palette)
    phi = mapping.phi(color)
    accumulated: dict[NodeId, Payload] = {}
    output: Any = None
    to_send: Payload = None
    for x in mapping.r(color):
        if x < phi:
            inbox = yield AwakeAt(t0 + x - 1)
            accumulated.update(inbox)
        elif x == phi:
            output, to_send = decide(dict(accumulated))
            inbox = yield AwakeAt(t0 + x - 1, {u: to_send for u in peers})
            accumulated.update(inbox)
        else:
            inbox = yield AwakeAt(t0 + x - 1, {u: to_send for u in peers})
            accumulated.update(inbox)
    return output


# ---------------------------------------------------------------------------
# Lemma 11 instantiation for a concrete O-LOCAL problem.
# ---------------------------------------------------------------------------


def solve_given_coloring_duration(palette: int) -> int:
    """Window length of :func:`solve_given_coloring` (= the calendar's)."""
    return schedule_solve_duration(palette)


def solve_given_coloring(
    me: NodeId,
    peers: Iterable[NodeId],
    color: int,
    palette: int,
    problem: OLocalProblem,
    t0: int,
    my_input: Any = None,
) -> Proto:
    """Lemma 11: solve Π given a proper coloring with colors in [1, palette].

    Nodes of lower colors decide first (φ is increasing), so the decided
    descendants of a node are exactly its lower-colored neighbors — the
    orientation from higher to lower colors, as in the paper.

    In ``"neighbors"`` locality the forwarded state is just (id → output);
    in ``"full"`` locality nodes forward everything they know about the
    already-decided subgraph G_µ(v), matching the general O-LOCAL
    definition (heavier messages, same schedule).
    """
    peers = tuple(peers)
    view = NodeView(id=me, degree=len(peers), input=my_input)
    full = problem.locality == "full"

    def decide(accumulated: dict[NodeId, Payload]) -> tuple[Any, Payload]:
        known: dict[NodeId, Any] = {}
        for payload in accumulated.values():
            known.update(payload)
        decided_neighbors = {u: known[u] for u in peers if u in known}
        output = problem.decide(view, decided_neighbors)
        if full:
            return output, {**known, me: output}
        return output, {me: output}

    result = yield from schedule_solve(me, peers, color, palette, t0, decide)
    return result


# ---------------------------------------------------------------------------
# The full BM21 baseline: Linial + Lemma 11.
# ---------------------------------------------------------------------------


def baseline_duration(id_space: int, delta: int) -> int:
    """Window length of the full baseline: Linial then the calendar."""
    reduced = final_palette(id_space, delta)
    return linial_duration(id_space, delta) + schedule_solve_duration(reduced)


def baseline_program(
    problem: OLocalProblem, delta: int
) -> Callable[[NodeInfo], Proto]:
    """Node program for the BM21 baseline: awake O(log Δ + log* n).

    ``delta`` (the maximum degree) is assumed common knowledge, as in
    [BM21]; the Linial fixed point gives an O(Δ²) palette.
    """

    def program(info: NodeInfo) -> Proto:
        palette = final_palette(info.id_space, delta)
        color0 = info.id - 1  # IDs are a proper coloring with palette id_space
        color = yield from linial_coloring(
            me=info.id,
            peers=info.neighbors,
            color=color0,
            palette=info.id_space,
            conflict_degree=delta,
            t0=1,
        )
        t1 = 1 + linial_duration(info.id_space, delta)
        output = yield from solve_given_coloring(
            me=info.id,
            peers=info.neighbors,
            color=color + 1,  # schedule_solve colors are 1-based
            palette=palette,
            problem=problem,
            t0=t1,
            my_input=info.input,
        )
        return output

    return program


@dataclass(frozen=True)
class BaselineResult:
    outputs: dict[NodeId, Any]
    simulation: SimulationResult
    palette: int

    @property
    def awake_complexity(self) -> int:
        return self.simulation.awake_complexity

    @property
    def round_complexity(self) -> int:
        return self.simulation.round_complexity


def solve_with_baseline(
    graph: StaticGraph,
    problem: OLocalProblem,
    inputs: Mapping[NodeId, Any] | None = None,
    simulator: Any = None,
) -> BaselineResult:
    """Run the BM21 baseline end to end on the Sleeping simulator.

    ``simulator`` optionally replaces :class:`SleepingSimulator` with a
    ``(graph, program, inputs=...)`` factory (fault injection)."""
    delta = max(graph.max_degree, 1)
    node_inputs = dict(inputs) if inputs is not None else problem.make_inputs(graph)
    make_simulator = simulator if simulator is not None else SleepingSimulator
    sim = make_simulator(
        graph, baseline_program(problem, delta), inputs=node_inputs
    )
    result = sim.run()
    problem.check(graph, result.outputs, node_inputs)
    return BaselineResult(
        outputs=result.outputs,
        simulation=result,
        palette=final_palette(graph.id_space, delta),
    )
