"""Theorem 13 on the array engine — the clustering pipeline in closed form.

The simulator executes the Theorem 13 pipeline by dispatching one
generator per node per round through ``k = 2·⌈sqrt(log n)⌉`` phases of
Lemma 15 (on the virtual graph) plus Lemma 14 (flattening).  Every phase
is lockstep: the vround calendar of each member is a closed-form function
of a handful of per-cluster integers (the tree label c2, its parent's
c2, the BFS depths δ and δ', and the deterministic Linial/cast
durations).  This module replays the whole pipeline as numpy kernels
over the :class:`~repro.graphs.arrays.GraphArrays` CSR mirror:

- **the virtual graph H** of each phase is a cluster-level CSR built
  with ``np.unique`` over inter-cluster edge keys;
- **Linial reductions** (the distance-2 prologue, and the distance-1
  coloring of G[U]) run whole-frontier over explicit conflict-pair
  CSRs — the distance-2 conflicts are the direct edges plus the relayed
  triples ``(v, mid, w)`` with ``w != v``, exactly the colors
  :func:`repro.core.linial.linial_coloring` collects;
- **the F2 forest** (parents p2) roots via pointer doubling, and all
  BFS distances (induced cluster distances, Lemma 14 merges) run as
  masked frontier waves;
- **accounting** — per-member awake rounds, messages, termination
  rounds and the global active-round set are evaluated in closed form
  from the per-cluster event counts, **bit-identical** to the
  :class:`~repro.model.simulator.SleepingSimulator` run of
  :func:`repro.core.theorem13.compute_clustering` — the differential
  suite in ``tests/test_engine_equivalence.py`` is the gate.

Per-phase work is O(n + m + Σ deg_H²) array time (the triples), and the
virtual graph shrinks geometrically, so the whole clustering runs at
n = 10⁶ in seconds where the simulator needs hours.
"""

from __future__ import annotations

from typing import Any

from repro.core.lemma14 import lemma14_duration
from repro.core.lemma15 import (
    c2_bound,
    distance2_conflict_degree,
    distance2_palette,
    lemma15_duration,
    singleton_palette,
)
from repro.core.linial import reduction_schedule
from repro.core.theorem1_vectorized import _member_offsets
from repro.core.theorem13 import (
    ClusteringResult,
    Theorem13Assignment,
    _package,
    default_b,
    num_phases,
    phase_label_space,
)
from repro.core.virtual import virtual_duration
from repro.errors import ProtocolError, ReproError
from repro.graphs.arrays import (
    ragged_gather,
    require_numpy,
    segment_any,
    segment_sum,
    sorted_unique,
)
from repro.graphs.graph import StaticGraph
from repro.model.metrics import SimulationMetrics
from repro.model.simulator import SimulationResult
from repro.obs import counters
from repro.obs.spans import span

#: Sentinel larger than any color, label or slot index that can occur.
_BIG = 1 << 62


def _segment_min(np: Any, values: Any, offsets: Any, fill: int) -> Any:
    """Per-segment minima of ``values`` delimited by CSR ``offsets``.

    Args:
        np: the numpy module.
        values: int64 data, segment-contiguous in ``offsets`` order.
        offsets: CSR row pointers (length ``num_segments + 1``).
        fill: value returned for empty segments.

    Returns:
        int64 array of per-segment minima (``fill`` where empty).
    """
    num = len(offsets) - 1
    out = np.full(num, fill, dtype=np.int64)
    nonempty = offsets[:-1] < offsets[1:]
    if values.size and nonempty.any():
        # With empty segments dropped the next start equals this
        # segment's end, so reduceat reduces exactly each segment.
        out[nonempty] = np.minimum.reduceat(values, offsets[:-1][nonempty])
    return out


def _linial_step_pairs(
    np: Any,
    colors: Any,
    labels: Any,
    csrs: list[tuple[Any, Any]],
    d: int,
    q: int,
) -> Any:
    """One Linial reduction step over explicit conflict-pair CSRs.

    The generic twin of
    :func:`repro.core.bm21_vectorized._linial_step_vectorized`: conflicts
    come from one or more CSR pair lists instead of the graph adjacency,
    so the same kernel serves the distance-2 prologue (direct ∪ relayed
    pairs) and the distance-1 coloring of an induced subgraph.

    Args:
        np: the numpy module.
        colors: current int64 colors, one per vertex.
        labels: per-vertex IDs, for error messages only.
        csrs: list of ``(offsets, dst)`` conflict CSRs; a vertex clashes
            at x iff any listed conflict partner evaluates equal.
        d: the step's polynomial degree.
        q: the step's field size.

    Returns:
        The new int64 colors (``x·q + p(x)`` at the first safe x).
    """
    nv = colors.shape[0]
    width = d + 1
    digits = np.empty((nv, width), dtype=np.int64)
    rest = colors.copy()
    for j in range(width):
        digits[:, j] = rest % q
        rest //= q
    if rest.any():
        bad = int(labels[np.flatnonzero(rest)[0]])
        raise ReproError(
            f"node {bad}: color does not fit in {width} base-{q} digits"
        )

    values = np.zeros(nv, dtype=np.int64)
    new_colors = np.empty(nv, dtype=np.int64)
    undecided = np.arange(nv, dtype=np.int64)
    for x in range(q):
        if not undecided.size:
            return new_colors
        gathered = [ragged_gather(off, dst, undecided) for off, dst in csrs]
        needed = sorted_unique(
            np.concatenate([undecided] + [nbrs for nbrs, _ in gathered])
        )
        acc = np.zeros(len(needed), dtype=np.int64)
        for j in range(width - 1, -1, -1):
            acc = (acc * x + digits[needed, j]) % q
        values[needed] = acc
        conflicted = np.zeros(len(undecided), dtype=bool)
        for nbrs, counts in gathered:
            clash = values[nbrs] == np.repeat(values[undecided], counts)
            conflicted |= segment_any(clash, counts)
        safe = undecided[~conflicted]
        new_colors[safe] = x * q + values[safe]
        undecided = undecided[conflicted]
    if undecided.size:
        me = int(labels[undecided[0]])
        raise ProtocolError(
            f"node {me}: no safe evaluation point in F_{q} — the input "
            f"coloring was not proper or the degree bound was violated"
        )
    return new_colors


def _masked_bfs(
    np: Any, offsets: Any, flat: Any, sources: Any, group: Any, member: Any
) -> Any:
    """Multi-source BFS restricted to same-group member vertices.

    Every source starts its own wave; a vertex joins a wave only if it
    is a ``member`` and shares the source's ``group`` key, so disjoint
    clusters flood concurrently without interfering.

    Args:
        np: the numpy module.
        offsets: CSR row pointers.
        flat: CSR neighbor slots.
        sources: int64 slots at distance 0.
        group: int64 per-slot partition keys.
        member: boolean per-slot eligibility mask.

    Returns:
        int64 per-slot distances, -1 where unreached.
    """
    dist = np.full(len(group), -1, dtype=np.int64)
    dist[sources] = 0
    frontier = sources
    level = 0
    while frontier.size:
        level += 1
        nbrs, counts = ragged_gather(offsets, flat, frontier)
        if not nbrs.size:
            break
        srcs = np.repeat(frontier, counts)
        mask = member[nbrs] & (dist[nbrs] < 0) & (group[nbrs] == group[srcs])
        cand = sorted_unique(nbrs[mask])
        if not cand.size:
            break
        dist[cand] = level
        frontier = cand
    return dist


def _clustering_kernel(
    graph: StaticGraph, b: int
) -> tuple[dict, SimulationResult, tuple[Any, Any, Any]]:
    """Run the Theorem 13 pipeline as array kernels.

    Args:
        graph: the network.
        b: the phase parameter (clusters with root degree ≤ b dissolve).

    Returns:
        ``(assignments, simulation, arrays)`` — per-node
        :class:`~repro.core.theorem13.Theorem13Assignment` outputs, a
        :class:`SimulationResult` whose metrics are bit-identical to the
        :func:`~repro.core.theorem13.compute_clustering` simulator run,
        and the raw per-slot ``(phase, gamma, dist)`` int64 columns so
        downstream kernels can derive colors without walking the dict.
    """
    np = require_numpy()
    metrics = SimulationMetrics()
    if graph.n == 0:
        empty = np.zeros(0, dtype=np.int64)
        return (
            {},
            SimulationResult(outputs={}, metrics=metrics, graph=graph),
            (empty, empty, empty),
        )

    ga = graph.arrays
    n, id_space = graph.n, graph.id_space
    phases = num_phases(n)

    label = ga.ids.copy()
    delta = np.zeros(ga.n, dtype=np.int64)
    active = np.ones(ga.n, dtype=bool)

    awake = np.zeros(ga.n, dtype=np.int64)
    msgs = np.zeros(ga.n, dtype=np.int64)
    termination = np.zeros(ga.n, dtype=np.int64)
    out_phase = np.zeros(ga.n, dtype=np.int64)
    out_gamma = np.zeros(ga.n, dtype=np.int64)
    out_dist = np.zeros(ga.n, dtype=np.int64)
    round_chunks: list[Any] = []

    clock = 1
    for i in range(1, phases + 1):
        ls = phase_label_space(id_space, b, i)
        window15 = virtual_duration(n, lemma15_duration(n, ls, b))
        if active.any():
            clock_14 = clock + window15
            label, delta, active = _run_phase(
                np, graph, b, i, ls, clock, clock_14,
                label, delta, active,
                awake, msgs, termination,
                out_phase, out_gamma, out_dist, round_chunks,
            )
        clock += window15 + lemma14_duration(n)

    if active.any():
        raise ProtocolError(
            f"{int(active.sum())} nodes unassigned after {phases} phases"
        )

    ids = ga.ids.tolist()
    assignments = {
        v: Theorem13Assignment(phase=p, gamma=g, dist=d)
        for v, p, g, d in zip(
            ids, out_phase.tolist(), out_gamma.tolist(), out_dist.tolist()
        )
    }
    metrics.awake_rounds = dict(zip(ids, awake.tolist()))
    metrics.termination_round = dict(zip(ids, termination.tolist()))
    metrics.messages_sent = int(msgs.sum())
    metrics.last_round = int(termination.max())
    metrics.active_rounds = int(
        sorted_unique(np.concatenate(round_chunks)).size if round_chunks else 0
    )
    simulation = SimulationResult(
        outputs=assignments, metrics=metrics, graph=graph
    )
    return assignments, simulation, (out_phase, out_gamma, out_dist)


def _run_phase(
    np: Any,
    graph: StaticGraph,
    b: int,
    i: int,
    ls: int,
    clock: int,
    clock_14: int,
    label: Any,
    delta: Any,
    active: Any,
    awake: Any,
    msgs: Any,
    termination: Any,
    out_phase: Any,
    out_gamma: Any,
    out_dist: Any,
    round_chunks: list[Any],
) -> tuple[Any, Any, Any]:
    """One Theorem 13 phase: Lemma 15 on H, then the Lemma 14 merge.

    Mutates the accounting accumulators in place and returns the next
    phase's ``(label, delta, active)`` G-state.

    Args:
        np: the numpy module.
        graph: the network.
        b: the phase parameter.
        i: the 1-indexed phase number.
        ls: the phase's cluster-label space.
        clock: first round of the phase's Lemma 15 window.
        clock_14: first round of the phase's Lemma 14 window.
        label: per-slot cluster labels ℓ entering the phase.
        delta: per-slot BFS depths δ entering the phase.
        active: per-slot participation mask.
        awake: per-slot awake-round accumulator (mutated).
        msgs: per-slot message accumulator (mutated).
        termination: per-slot termination rounds (mutated).
        out_phase: per-slot assignment phase (mutated).
        out_gamma: per-slot assignment color γ' (mutated).
        out_dist: per-slot assignment depth (mutated).
        round_chunks: global active-round chunks (appended to).

    Returns:
        ``(label, delta, active)`` for the next phase.
    """
    ga = graph.arrays
    n = graph.n
    ab2 = singleton_palette(b)
    window = 2 * n + 3
    esrc, edst = ga.edge_sources, ga.flat

    # ---- the virtual graph H of the current clustering -------------------
    hlabels = sorted_unique(label[active])
    num_h = hlabels.size
    hidx = np.zeros(ga.n, dtype=np.int64)
    hidx[active] = np.searchsorted(hlabels, label[active])
    e_act = active[esrc] & active[edst]
    same_lab = label[esrc] == label[edst]
    e_x = e_act & ~same_lab
    hkey = hidx[esrc[e_x]] * np.int64(num_h) + hidx[edst[e_x]]
    ukey = sorted_unique(hkey)
    hdeg = np.bincount(ukey // num_h, minlength=num_h).astype(np.int64)
    hoff = np.zeros(num_h + 1, dtype=np.int64)
    np.cumsum(hdeg, out=hoff[1:])
    hflat = ukey % num_h

    # ---- Lemma 15, steps 1-4: colors c1/c2 and parents p1/p2 -------------
    k = distance2_palette(n, ls)
    big_b = c2_bound(n, ls)
    cast_len = big_b + 2  # labeled_cast_duration
    sched2 = reduction_schedule(ls, distance2_conflict_degree(n))
    steps2 = len(sched2)
    sched_u = reduction_schedule(ls, b)
    steps_u = len(sched_u)

    # Relayed triples (src, mid, w): what the distance-2 rounds deliver.
    hes = np.repeat(np.arange(num_h, dtype=np.int64), hdeg)
    w2, _ = ragged_gather(hoff, hflat, hflat)
    rep = hdeg[hflat]
    src2 = np.repeat(hes, rep)
    mid2 = np.repeat(hflat, rep)
    relay = w2 != src2
    rsrc, rmid, rw = src2[relay], mid2[relay], w2[relay]
    del w2, src2, mid2, relay, rep
    rcnt = np.bincount(rsrc, minlength=num_h).astype(np.int64)
    roff = np.zeros(num_h + 1, dtype=np.int64)
    np.cumsum(rcnt, out=roff[1:])

    c0 = hlabels - 1
    for d, q in sched2:
        c0 = _linial_step_pairs(
            np, c0, hlabels, [(hoff, hflat), (roff, rw)], d, q
        )
    c1 = np.where(hdeg <= b, c0 + 1 + k, c0 + 1)

    # The three-case parent rule: c1 is unique on every 2-ball, so the
    # color minimum pins a single vertex and a second segment-min finds
    # it; the relayed set may repeat direct neighbors, which can never
    # win case 3 (all direct colors exceed c1 there).
    rc = c1[rw]
    dmin_c = _segment_min(np, c1[hflat], hoff, _BIG)
    rmin_c = _segment_min(np, rc, roff, _BIG)
    root_h = (dmin_c > c1) & (rmin_c > c1)
    case2 = ~root_h & (dmin_c < c1)
    case3 = ~root_h & ~case2
    darg = _segment_min(
        np, np.where(c1[hflat] == dmin_c[hes], hflat, _BIG), hoff, _BIG
    )
    rarg = _segment_min(np, np.where(rc == rmin_c[rsrc], rw, _BIG), roff, _BIG)
    p1 = np.where(case2, darg, np.where(case3, rarg, -1))
    parent_c1 = np.where(root_h, 0, np.where(case2, dmin_c, rmin_c))
    c2 = np.where(root_h, 0, 2 * parent_c1 + case3)
    p2 = np.where(case2, p1, np.int64(-1))
    if case3.any():
        common = _segment_min(
            np,
            np.where(case3[rsrc] & (rw == p1[rsrc]), rmid, _BIG),
            roff,
            _BIG,
        )
        bad = case3 & (common >= _BIG)
        if bad.any():
            v = int(hlabels[np.flatnonzero(bad)[0]])
            raise ProtocolError(
                f"node {v}: 2-hop parent shares no common neighbor"
            )
        p2 = np.where(case3, common, p2)
    del rc, rsrc, rmid, rw, rcnt, roff
    if int(c2.max(initial=0)) > big_b:
        v = int(hlabels[int(np.argmax(c2))])
        raise ProtocolError(
            f"node {v}: c2 = {int(c2.max())} exceeds bound {big_b}"
        )

    # ---- steps 5-7: the F2 forest, induced distances, U coloring ---------
    ptr = np.where(p2 >= 0, p2, np.arange(num_h, dtype=np.int64))
    for _ in range(max(1, num_h).bit_length() + 1):
        nxt = ptr[ptr]
        if np.array_equal(nxt, ptr):
            break
        ptr = nxt
    rootidx = ptr
    if (p2[rootidx] >= 0).any():
        v = int(hlabels[np.flatnonzero(p2[rootidx] >= 0)[0]])
        raise ProtocolError(f"node {v}: F2 is not a forest")
    singleton_h = hdeg[rootidx] <= b
    bad = singleton_h & (hdeg > b)
    if bad.any():
        v = np.flatnonzero(bad)[0]
        raise ProtocolError(
            f"node {int(hlabels[v])}: in a low-degree-rooted cluster but "
            f"deg = {int(hdeg[v])} > b = {b} — contradicts Lemma 15"
        )
    d_h = _masked_bfs(
        np, hoff, hflat, np.flatnonzero(p2 < 0), rootidx,
        np.ones(num_h, dtype=bool),
    )
    if (d_h < 0).any():
        v = np.flatnonzero(d_h < 0)[0]
        raise ProtocolError(
            f"node {int(hlabels[v])}: cluster of root "
            f"{int(hlabels[rootidx[v]])} is not connected in G"
        )

    gamma_h = np.zeros(num_h, dtype=np.int64)
    uid = np.flatnonzero(singleton_h)
    if uid.size:
        upair = singleton_h[hes] & singleton_h[hflat]
        udeg = segment_sum(upair.astype(np.int64), hoff)
        if (udeg[uid] > b).any():
            v = uid[np.flatnonzero(udeg[uid] > b)[0]]
            raise ProtocolError(
                f"node {int(hlabels[v])}: {int(udeg[v])} U-neighbors "
                f"> b = {b}"
            )
        uofv = np.zeros(num_h, dtype=np.int64)
        uofv[uid] = np.arange(uid.size, dtype=np.int64)
        ucnt = np.bincount(uofv[hes[upair]], minlength=uid.size)
        uoff = np.zeros(uid.size + 1, dtype=np.int64)
        np.cumsum(ucnt, out=uoff[1:])
        ucol = hlabels[uid] - 1
        for d, q in sched_u:
            ucol = _linial_step_pairs(
                np, ucol, hlabels[uid], [(uoff, uofv[hflat[upair]])], d, q
            )
        gamma_u = ucol + 1
        if (gamma_u > ab2).any() or (gamma_u < 1).any():
            v = uid[np.flatnonzero((gamma_u > ab2) | (gamma_u < 1))[0]]
            raise ProtocolError(
                f"node {int(hlabels[v])}: singleton color outside [1, {ab2}]"
            )
        gamma_h[uid] = gamma_u

    # ---- Lemma 15 accounting over the G-members --------------------------
    hv = hidx  # per-slot H-vertex (garbage where inactive; always masked)
    intra = segment_sum((e_act & same_lab).astype(np.int64), ga.offsets)
    foreign = segment_sum(e_x.astype(np.int64), ga.offsets)
    nev_a = (
        2 * steps2 + 2
        + np.where(root_h, 8, 12)
        + np.where(singleton_h, 1 + steps_u, 0)
    )
    n_all = 2 * steps2 + 8 + singleton_h.astype(np.int64)
    plab_h = np.where(p2 >= 0, hlabels[np.maximum(p2, 0)], np.int64(-1))
    pd_edge = e_x & (label[edst] == plab_h[hv][esrc])
    parent_deg = segment_sum(pd_edge.astype(np.int64), ga.offsets)
    sing_dst = np.zeros(ga.n, dtype=bool)
    sing_dst[active] = singleton_h[hidx[active]]
    deg_u = segment_sum((e_x & sing_dst[edst]).astype(np.int64), ga.offsets)

    sing_s = active & sing_dst
    s_flag = (delta > 0).astype(np.int64)
    w15_awake = (1 + nev_a[hv]) * np.where(delta == 0, 3, 5)
    w15_msgs = (
        ga.degrees
        + (1 + nev_a[hv]) * (s_flag + intra)
        + n_all[hv] * foreign
        + 2 * (~root_h[hv]).astype(np.int64) * parent_deg
        + singleton_h[hv].astype(np.int64) * steps_u * deg_u
    )
    awake[active] += w15_awake[active]
    msgs[active] += w15_msgs[active]

    # Active rounds: the fixed calendar (setup, Linial, c1 exchange, the
    # four cast anchors, and the singleton tail) plus the c2/c2p-keyed
    # cast rounds, expanded per distinct depth δ — absolute rounds are
    # deduplicated globally, never summed per category (the δ = 0 and
    # δ = 1 gather offsets collide).
    vc2 = 3 + 2 * steps2
    vc4 = vc2 + 4 * cast_len
    betas = np.array([vc2, vc2 + 2 * cast_len], dtype=np.int64)
    fixed = np.concatenate((
        np.arange(vc2, dtype=np.int64),
        betas,
        betas + cast_len,
    ))
    sing_rounds = np.concatenate((
        np.array([vc4], dtype=np.int64),
        vc4 + 1 + np.arange(steps_u, dtype=np.int64),
    ))
    c2_s = c2[hv]
    c2p_s = np.where(p2 >= 0, c2[np.maximum(p2, 0)], 0)[hv]
    for dd in sorted_unique(delta[active]).tolist():
        sel = active & (delta == dd)
        parts = [fixed]
        cset = sorted_unique(c2_s[sel])
        parts.append((betas[None, :] + 1 + big_b - cset[:, None]).ravel())
        parts.append((betas[None, :] + cast_len + 1 + cset[:, None]).ravel())
        nonroot_sel = sel & ~root_h[hv]
        if nonroot_sel.any():
            pset = sorted_unique(c2p_s[nonroot_sel])
            parts.append((betas[None, :] + 1 + big_b - pset[:, None]).ravel())
            parts.append(
                (betas[None, :] + cast_len + 1 + pset[:, None]).ravel()
            )
        if (sel & sing_s).any():
            parts.append(sing_rounds)
        vrs = sorted_unique(np.concatenate(parts))
        offs = _member_offsets(np, n, int(dd))
        round_chunks.append(
            (clock + vrs[:, None] * window + offs[None, :]).ravel()
        )

    # ---- singleton members finish: γ = (i, γ'), δ kept -------------------
    out_phase[sing_s] = i
    out_gamma[sing_s] = gamma_h[hv[sing_s]]
    out_dist[sing_s] = delta[sing_s]
    termination[sing_s] = (
        clock + (vc4 + steps_u) * window + n + delta[sing_s] + 2
    )

    # ---- Lemma 14: merge the residual clusters ---------------------------
    residual = active & ~sing_s
    if not residual.any():
        return label, delta, residual

    res_h = ~singleton_h
    hres_e = res_h[hes] & res_h[hflat]
    same_super = hres_e & (rootidx[hes] == rootidx[hflat])
    parent2_h = _segment_min(
        np,
        np.where(same_super & (d_h[hflat] == d_h[hes] - 1), hflat, _BIG),
        hoff,
        _BIG,
    )
    bad = res_h & (d_h > 0) & (parent2_h >= _BIG)
    if bad.any():
        v = np.flatnonzero(bad)[0]
        raise ProtocolError(
            f"cluster {int(hlabels[v])}: δ' = {int(d_h[v])} but no "
            f"super-cluster neighbor at δ' = {int(d_h[v]) - 1}"
        )
    nev_b = 3 + 2 * (d_h > 0).astype(np.int64)

    e_res = residual[esrc] & residual[edst]
    intra_r = segment_sum((e_res & same_lab).astype(np.int64), ga.offsets)
    e_rx = e_res & ~same_lab
    foreign_r = segment_sum(e_rx.astype(np.int64), ga.offsets)
    p2lab_h = np.where(
        parent2_h < _BIG,
        hlabels[np.minimum(parent2_h, num_h - 1)],
        np.int64(-1),
    )
    parent2_deg = segment_sum(
        (e_rx & (label[edst] == p2lab_h[hv][esrc])).astype(np.int64),
        ga.offsets,
    )
    rt_s = rootidx[hv]
    samesuper_deg = segment_sum(
        (e_rx & (rt_s[edst] == rt_s[esrc])).astype(np.int64), ga.offsets
    )
    d2_s = d_h[hv]
    w14_awake = (1 + nev_b[hv]) * np.where(delta == 0, 3, 5)
    w14_msgs = (
        ga.degrees
        + (1 + nev_b[hv]) * (s_flag + intra_r)
        + foreign_r
        + (d2_s > 0).astype(np.int64) * parent2_deg
        + samesuper_deg
    )
    awake[residual] += w14_awake[residual]
    msgs[residual] += w14_msgs[residual]

    for dd in sorted_unique(delta[residual]).tolist():
        sel = residual & (delta == dd)
        d2set = sorted_unique(d2_s[sel])
        parts = [
            np.array([0, 1], dtype=np.int64),
            n - d2set + 1,
            n + d2set + 3,
        ]
        pos = d2set[d2set > 0]
        if pos.size:
            parts += [n - pos + 2, n + pos + 2]
        vrs = sorted_unique(np.concatenate(parts))
        offs = _member_offsets(np, n, int(dd))
        round_chunks.append(
            (clock_14 + vrs[:, None] * window + offs[None, :]).ravel()
        )

    # Merge roots (δ = 0 and δ' = 0, unique per merged cluster), new
    # labels ℓ'' = root ID + a·b², and induced BFS distances in G.
    is_root = residual & (delta == 0) & (d2_s == 0)
    root_counts = np.bincount(rt_s[is_root], minlength=num_h)
    merged = sorted_unique(rt_s[residual])
    if (root_counts[merged] != 1).any():
        h = merged[np.flatnonzero(root_counts[merged] != 1)[0]]
        raise ProtocolError(
            f"merged cluster {int(hlabels[h]) + ab2} has "
            f"{int(root_counts[h])} roots"
        )
    dist_new = _masked_bfs(
        np, ga.offsets, ga.flat, np.flatnonzero(is_root), rt_s, residual
    )
    if (dist_new[residual] < 0).any():
        v = np.flatnonzero(residual & (dist_new < 0))[0]
        raise ProtocolError(
            f"merged cluster ℓ'' = {int(hlabels[rt_s[v]]) + ab2} is "
            f"disconnected"
        )
    label = np.where(residual, hlabels[rt_s] + ab2, label)
    delta = np.where(residual, dist_new, delta)
    return label, delta, residual


def compute_clustering_vectorized(
    graph: StaticGraph, b: int | None = None, validate: bool = True
) -> ClusteringResult:
    """Theorem 13 on the vectorized engine.

    The drop-in array twin of
    :func:`repro.core.theorem13.compute_clustering`: same assignments,
    same validation, and metrics bit-identical to the simulator run.

    Args:
        graph: the network (connected, unique IDs in [1, id_space]).
        b: override the paper's b = 2^{sqrt(log n)} (for ablations).
        validate: check the clustering against Definition 4 and the
            color bound before returning.

    Returns:
        :class:`~repro.core.theorem13.ClusteringResult` with the
        clustering, the per-node assignments and the simulated metrics.
    """
    chosen_b = b if b is not None else default_b(graph.n)
    with span("theorem13.vectorized", n=graph.n, b=chosen_b):
        assignments, simulation, columns = _clustering_kernel(graph, chosen_b)
        counters.add("sim.run")
        counters.add("sim.messages", simulation.metrics.messages_sent)
        counters.add("sim.rounds", simulation.metrics.active_rounds)
        # Definition 4 is checked on the kernel's own columns (array
        # validation, ~BFS cost) instead of _package's per-node Python
        # walk — same acceptance, same error taxonomy, differentially
        # tested in tests/test_clustering_validation.py.
        result = _package(graph, assignments, simulation, chosen_b, False)
        if validate:
            np = require_numpy()
            out_phase, out_gamma, out_dist = columns
            sp = singleton_palette(chosen_b)
            col = (out_phase - 1) * np.int64(sp) + out_gamma
            validate_clustering_arrays(graph, col, out_dist)
            bound = result.palette_bound
            max_color = int(col.max()) if col.size else 0
            if max_color > bound:
                raise ProtocolError(
                    f"used color {max_color} exceeds the bound {bound}"
                )
    return result


def validate_clustering_arrays(graph: StaticGraph, color: Any, dist: Any) -> None:
    """Check Definition 4 with whole-graph array kernels.

    The drop-in twin of
    :meth:`repro.core.clustering.ColoredBFSClustering.validate` for
    clusterings already in columnar form: every connected component of
    every color class must contain exactly one root (δ = 0) and carry
    the exact induced BFS distances from it. Disconnected color classes
    are legal (each connected component is its own cluster), exactly as
    in the per-node validator.

    Components are found by scatter-min label propagation with pointer
    doubling (O((n + m)·log n) array work); depths by one multi-source
    masked BFS — versus the per-node validator's Python walk, which
    costs about twice the clustering kernel itself at n = 2¹⁷.

    Args:
        graph: the network the clustering lives on.
        color: int64 per-slot colors, in :attr:`GraphArrays.ids` order.
        dist: int64 per-slot root distances (δ), same order.

    Raises:
        ClusteringError: on any Definition 4 violation, with the same
            message vocabulary as the per-node validator.
    """
    from repro.core.clustering import ClusteringError

    np = require_numpy()
    ga = graph.arrays
    n = len(ga.ids)
    if len(color) != n:
        raise ClusteringError("coloring does not cover exactly the node set")
    if len(dist) != n:
        raise ClusteringError("dist does not cover exactly the node set")
    if n == 0:
        return
    color = np.asarray(color, dtype=np.int64)
    dist = np.asarray(dist, dtype=np.int64)

    # Connected components of each color class: iterate scatter-min of
    # neighbor labels over monochromatic edges + full path compression
    # until a fixpoint; every slot ends labeled with the smallest slot
    # index of its component.
    esrc = ga.edge_sources
    edst = ga.flat
    mono = color[esrc] == color[edst]
    msrc = esrc[mono]
    mdst = edst[mono]
    comp = np.arange(n, dtype=np.int64)
    while True:
        prev = comp.copy()
        np.minimum.at(comp, mdst, comp[msrc])
        np.minimum.at(comp, msrc, comp[mdst])
        while True:
            hopped = comp[comp]
            if np.array_equal(hopped, comp):
                break
            comp = hopped
        if np.array_equal(comp, prev):
            break

    # Exactly one root (δ = 0) per component.
    roots = dist == 0
    root_count = np.bincount(comp[roots], minlength=n)
    labels = sorted_unique(comp)
    bad = labels[root_count[labels] != 1]
    if bad.size:
        slot = int(bad[0])
        raise ClusteringError(
            f"color {int(color[slot])!r} component has "
            f"{int(root_count[slot])} roots (δ=0 nodes); expected exactly 1"
        )

    # δ must be the induced BFS distance from the component's root: one
    # multi-source wave, each root flooding only its own component.
    depth = _masked_bfs(
        np, ga.offsets, ga.flat, np.flatnonzero(roots), comp,
        np.ones(n, dtype=bool),
    )
    mismatch = np.flatnonzero(depth != dist)
    if mismatch.size:
        slot = int(mismatch[0])
        root_slot = int(np.flatnonzero(roots & (comp == comp[slot]))[0])
        raise ClusteringError(
            f"color {int(color[slot])!r} component: δ({int(ga.ids[slot])}) "
            f"= {int(dist[slot])} but induced BFS distance from root "
            f"{int(ga.ids[root_slot])} is {int(depth[slot])}"
        )


def validate_clustering_vectorized(graph: StaticGraph, clustering: Any) -> None:
    """Array-validate a dict-form :class:`ColoredBFSClustering`.

    Converts the clustering's ``color``/``dist`` maps to columnar form
    and dispatches to :func:`validate_clustering_arrays`; non-integer
    palettes (which the array kernels cannot represent) fall back to the
    per-node :meth:`~repro.core.clustering.ColoredBFSClustering.validate`.
    Coverage mismatches raise before any conversion, with the per-node
    validator's messages.

    Args:
        graph: the network the clustering lives on.
        clustering: a :class:`~repro.core.clustering.ColoredBFSClustering`.

    Raises:
        ClusteringError: on any Definition 4 violation.
    """
    from repro.core.clustering import ClusteringError

    np = require_numpy()
    if set(clustering.color) != graph.node_set:
        raise ClusteringError("coloring does not cover exactly the node set")
    if set(clustering.dist) != set(clustering.color):
        raise ClusteringError("dist does not cover exactly the node set")
    if not all(
        isinstance(c, int) and not isinstance(c, bool)
        for c in clustering.color.values()
    ):
        clustering.validate(graph)
        return
    ids = graph.arrays.ids.tolist()
    color = np.array([clustering.color[v] for v in ids], dtype=np.int64)
    dist = np.array([clustering.dist[v] for v in ids], dtype=np.int64)
    validate_clustering_arrays(graph, color, dist)
