"""Lemma 10 — the Barenboim–Maimon color-scheduling mappings φ and r.

For a power of two ``q``, consider the complete binary tree on the label set
{1, ..., 2q-1} labeled by an in-order traversal (Figure 1). Then:

- φ(c) = label of the c-th smallest leaf = ``2c - 1``;
- r(c) = labels on the root-to-leaf path of φ(c), so |r(c)| = 1 + log₂ q;
- for distinct colors c₁, c₂ there is a common element x ∈ r(c₁) ∩ r(c₂)
  strictly between φ(c₁) and φ(c₂) — the label of the lowest common
  ancestor of the two leaves.

These three properties drive the wake-up schedule of Lemma 11: a node of
color c is awake exactly at the rounds in r(c), receives before φ(c),
decides at φ(c), and sends after φ(c).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.errors import MappingError
from repro.util.mathx import int_log2, next_pow2


@dataclass(frozen=True)
class ColorScheduleMapping:
    """The (φ, r) pair of Lemma 10 for palette {1, ..., q}, q a power of 2."""

    q: int

    def __post_init__(self) -> None:
        if self.q < 1 or self.q & (self.q - 1):
            raise MappingError(f"q must be a positive power of two, got {self.q}")

    @staticmethod
    def for_palette(num_colors: int) -> "ColorScheduleMapping":
        """Mapping for the smallest power-of-two palette covering
        ``num_colors`` colors (the paper's choice of q)."""
        if num_colors < 1:
            raise MappingError(f"palette must be non-empty, got {num_colors}")
        return ColorScheduleMapping(next_pow2(num_colors))

    # -- the mappings -------------------------------------------------------

    @property
    def schedule_length(self) -> int:
        """|r(c)| = 1 + log₂ q, the awake budget per color."""
        return 1 + int_log2(self.q)

    @property
    def num_rounds(self) -> int:
        """All schedule values lie in {1, ..., 2q - 1}."""
        return 2 * self.q - 1

    def phi(self, c: int) -> int:
        """φ(c): the label of the c-th smallest leaf, i.e. 2c - 1."""
        self._check(c)
        return 2 * c - 1

    def r(self, c: int) -> tuple[int, ...]:
        """r(c): labels on the path from the root to leaf φ(c), sorted."""
        self._check(c)
        return _root_to_leaf_labels(self.q, self.phi(c))

    def r_less(self, c: int) -> tuple[int, ...]:
        """r<(c) = {x ∈ r(c) : x < φ(c)} — the *receiving* rounds."""
        phi = self.phi(c)
        return tuple(x for x in self.r(c) if x < phi)

    def r_greater(self, c: int) -> tuple[int, ...]:
        """r>(c) = {x ∈ r(c) : x > φ(c)} — the *sending* rounds."""
        phi = self.phi(c)
        return tuple(x for x in self.r(c) if x > phi)

    def meeting_point(self, c1: int, c2: int) -> int:
        """The x ∈ r(c1) ∩ r(c2) with min φ < x < max φ (the LCA label)."""
        if c1 == c2:
            raise MappingError("meeting point needs distinct colors")
        common = set(self.r(c1)) & set(self.r(c2))
        lo, hi = sorted((self.phi(c1), self.phi(c2)))
        between = [x for x in common if lo < x < hi]
        if not between:
            raise MappingError(
                f"Lemma 10 property violated for colors ({c1}, {c2})"
            )  # pragma: no cover - the construction guarantees existence
        return min(between)

    # -- verification (used by tests and bench E1) ---------------------------

    def verify(self) -> None:
        """Exhaustively check the three properties of Lemma 10."""
        expected_len = self.schedule_length
        for c in range(1, self.q + 1):
            rc = self.r(c)
            if len(rc) != expected_len:
                raise MappingError(f"|r({c})| = {len(rc)} != {expected_len}")
            if self.phi(c) not in rc:
                raise MappingError(f"φ({c}) = {self.phi(c)} not in r({c})")
        for c1 in range(1, self.q + 1):
            for c2 in range(c1 + 1, self.q + 1):
                self.meeting_point(c1, c2)  # raises if missing

    def _check(self, c: int) -> None:
        if not 1 <= c <= self.q:
            raise MappingError(f"color {c} outside palette [1, {self.q}]")


@lru_cache(maxsize=None)
def _root_to_leaf_labels(q: int, leaf: int) -> tuple[int, ...]:
    """In-order labels on the path from the root of the complete binary tree
    on {1, .., 2q-1} down to the (odd) leaf label ``leaf``."""
    lo, hi = 1, 2 * q - 1
    path = []
    while True:
        mid = (lo + hi) // 2
        path.append(mid)
        if mid == leaf and lo == hi:
            break
        if leaf < mid:
            hi = mid - 1
        elif leaf > mid:
            lo = mid + 1
        else:  # leaf == mid but span not exhausted: impossible for odd leaves
            break
    return tuple(sorted(path))


def render_figure1(q: int = 8) -> str:
    """ASCII rendering of the Figure 1 tree (level order with in-order
    labels), used by bench E1 to regenerate the figure."""
    mapping = ColorScheduleMapping(q)
    levels: list[list[int]] = []
    frontier = [(1, 2 * q - 1)]
    while frontier:
        labels = [(lo + hi) // 2 for lo, hi in frontier]
        levels.append(labels)
        nxt = []
        for lo, hi in frontier:
            mid = (lo + hi) // 2
            if lo < mid:
                nxt.append((lo, mid - 1))
            if mid < hi:
                nxt.append((mid + 1, hi))
        frontier = nxt
    width = len(str(2 * q - 1)) + 1
    total = (2 * q - 1) * width
    lines = []
    for depth, labels in enumerate(levels):
        slots = len(labels)
        cell = total // slots
        lines.append(
            "".join(str(lab).center(cell) for lab in labels).rstrip()
        )
    lines.append("")
    lines.append(f"phi: {[mapping.phi(c) for c in range(1, q + 1)]}")
    return "\n".join(lines)
