"""The BM21 baseline (Linial + Lemma 11) as array kernels.

Vectorized counterpart of :func:`repro.core.bm21.solve_with_baseline`,
bit-identical in outputs and metrics (the differential suite in
``tests/test_engine_equivalence.py`` is the gate) but with per-round
work replaced by whole-frontier numpy operations:

- **Linial phase** — every reduction step evaluates all nodes' color
  polynomials (Horner over the little-endian base-q digit matrix) at
  x = 0, 1, ... and retires the frontier of nodes whose value differs
  from every neighbor's (a segment-any over the CSR gather); identical
  to :func:`repro.core.linial._reduce_one` picking the first safe x.
- **Lemma 11 phase** — nodes decide in increasing color order. On the
  simulator, a node of color c accumulates payloads at its receiving
  rounds r<(c) and decides at φ(c); by the Lemma 10 meeting-point
  property the accumulated senders are then *exactly* its lower-colored
  neighbors (in both ``neighbors`` and ``full`` locality — relays can
  only ever carry already-decided, i.e. lower-colored, outputs), so
  batching each color class through a
  :func:`~repro.model.vectorized.make_wave_decider` kernel reproduces
  every decision exactly (a color class is an independent set).
- **Accounting in closed form** — with distance-1 Linial every node is
  awake for the ``steps`` reduction rounds and then exactly at rounds
  ``steps + x`` for x in r(c): ``awake(v) = steps + |r(c_v)|``,
  ``termination(v) = steps + max r(c_v)``, per-node sends are
  ``deg(v)`` dict messages per Linial round plus ``deg(v)`` at φ(c)
  and each x in r>(c) (the simulator counts *sent* messages, delivered
  or not), and ``active_rounds`` adds one per distinct x over the
  *present* colors' calendars.

Everything per-color is computed once per distinct color via
:class:`~repro.core.mapping.ColorScheduleMapping` — O(palette · log q)
Python work — then scattered to nodes with one ``searchsorted``.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.core.bm21 import BaselineResult
from repro.core.linial import final_palette, reduction_schedule
from repro.core.mapping import ColorScheduleMapping
from repro.errors import ProtocolError, ReproError
from repro.graphs.arrays import (
    ragged_gather,
    require_numpy,
    segment_any,
    sorted_unique,
)
from repro.graphs.graph import StaticGraph
from repro.model.metrics import SimulationMetrics
from repro.model.simulator import SimulationResult
from repro.model.vectorized import make_wave_decider
from repro.obs import counters
from repro.obs.spans import span
from repro.olocal.problem import OLocalProblem
from repro.types import NodeId


def _linial_step_vectorized(graph: StaticGraph, colors: Any, d: int, q: int) -> Any:
    """One Linial reduction step over all nodes at once.

    For each node, the new color is ``x·q + p(x)`` for the *first*
    x ∈ F_q where its degree-d color polynomial differs from every
    neighbor's — the exact rule of
    :func:`repro.core.linial._reduce_one`, with the per-x safety check
    batched over the still-undecided frontier.
    """
    np = require_numpy()
    ga = graph.arrays
    width = d + 1
    digits = np.empty((ga.n, width), dtype=np.int64)
    rest = colors.copy()
    for j in range(width):
        digits[:, j] = rest % q
        rest //= q
    if rest.any():
        bad = int(ga.ids[np.flatnonzero(rest)[0]])
        raise ReproError(
            f"node {bad}: color does not fit in {width} base-{q} digits"
        )

    values = np.zeros(ga.n, dtype=np.int64)
    new_colors = np.empty(ga.n, dtype=np.int64)
    undecided = np.arange(ga.n, dtype=np.int64)
    for x in range(q):
        if not undecided.size:
            return new_colors
        nbrs, counts = ragged_gather(ga.offsets, ga.flat, undecided)
        # Evaluate only the rows this iteration reads (frontier ∪ its
        # neighborhood); stale entries elsewhere are never consulted.
        needed = sorted_unique(np.concatenate((undecided, nbrs)))
        acc = np.zeros(len(needed), dtype=np.int64)
        for j in range(width - 1, -1, -1):
            acc = (acc * x + digits[needed, j]) % q
        values[needed] = acc
        clash = values[nbrs] == np.repeat(values[undecided], counts)
        conflicted = segment_any(clash, counts)
        safe = undecided[~conflicted]
        new_colors[safe] = x * q + values[safe]
        undecided = undecided[conflicted]
    if undecided.size:
        me = int(ga.ids[undecided[0]])
        raise ProtocolError(
            f"node {me}: no safe evaluation point in F_{q} — the input "
            f"coloring was not proper or the degree bound was violated"
        )
    return new_colors


def solve_with_baseline_vectorized(
    graph: StaticGraph,
    problem: OLocalProblem,
    inputs: Mapping[NodeId, Any] | None = None,
    check: bool = True,
) -> BaselineResult:
    """Run the BM21 baseline end to end on the vectorized engine.

    Drop-in for :func:`repro.core.bm21.solve_with_baseline` (same result
    type, same validation) minus the ``simulator`` hook — fault
    injection stays a per-node-engine feature. ``check=False`` skips the
    O(V + E) Python output validation, for throughput measurements at
    n ≥ 10⁶ where validation would dominate the vectorized runtime.
    """
    np = require_numpy()
    delta = max(graph.max_degree, 1)
    node_inputs = (
        dict(inputs) if inputs is not None else problem.make_inputs(graph)
    )
    metrics = SimulationMetrics()
    palette = final_palette(graph.id_space, delta)
    if graph.n == 0:
        simulation = SimulationResult(outputs={}, metrics=metrics, graph=graph)
        return BaselineResult(outputs={}, simulation=simulation, palette=palette)

    ga = graph.arrays
    schedule = reduction_schedule(graph.id_space, delta)
    steps = len(schedule)
    colors = ga.ids - 1  # IDs are a proper coloring with palette id_space
    with span("bm21.linial", n=ga.n, steps=steps):
        for d, q in schedule:
            colors = _linial_step_vectorized(graph, colors, d, q)
    colors = colors + 1  # the Lemma 11 calendar is 1-based

    # Decide color classes in increasing color order — each class is an
    # independent set whose decided neighbors are exactly the
    # lower-colored ones, matching the simulator's φ-ordered decisions.
    with span("bm21.calendar", n=ga.n, palette=palette):
        decider = make_wave_decider(graph, problem, node_inputs)
        order = np.argsort(colors, kind="stable")
        sorted_colors = colors[order]
        bounds = np.flatnonzero(np.diff(sorted_colors)) + 1
        starts = np.concatenate(([0], bounds))
        ends = np.concatenate((bounds, [ga.n]))
        for lo, hi in zip(starts.tolist(), ends.tolist()):
            decider.decide_wave(order[lo:hi])
        outputs = decider.outputs()
        if check:
            problem.check(graph, outputs, node_inputs)

    # Closed-form accounting, one mapping evaluation per distinct color.
    with span("bm21.accounting", n=ga.n):
        mapping = ColorScheduleMapping.for_palette(palette)
        present = sorted_colors[starts].tolist()
        awake_by_color, term_by_color, sends_by_color = [], [], []
        phase2_rounds: set[int] = set()
        for c in present:
            r = mapping.r(c)
            phi = mapping.phi(c)
            awake_by_color.append(steps + len(r))
            term_by_color.append(steps + r[-1])
            sends_by_color.append(1 + sum(1 for x in r if x > phi))
            phase2_rounds.update(r)
        lookup = np.searchsorted(np.asarray(present, dtype=np.int64), colors)
        awake = np.asarray(awake_by_color, dtype=np.int64)[lookup]
        term = np.asarray(term_by_color, dtype=np.int64)[lookup]
        sends = np.asarray(sends_by_color, dtype=np.int64)[lookup]

        ids = ga.ids.tolist()
        metrics.awake_rounds = dict(zip(ids, awake.tolist()))
        metrics.termination_round = dict(zip(ids, term.tolist()))
        metrics.messages_sent = steps * 2 * graph.num_edges + int(
            sends @ ga.degrees
        )
        metrics.active_rounds = steps + len(phase2_rounds)
        metrics.last_round = steps + max(max(mapping.r(c)) for c in present)
    counters.add("sim.run")
    counters.add("sim.messages", metrics.messages_sent)
    counters.add("sim.rounds", metrics.active_rounds)
    simulation = SimulationResult(outputs=outputs, metrics=metrics, graph=graph)
    return BaselineResult(
        outputs=outputs, simulation=simulation, palette=palette
    )
