"""The paper's contribution: clustering constructions and O-LOCAL solvers
in the Sleeping LOCAL model.

Public entry points:

- :func:`repro.core.theorem1.solve` — Theorem 1: solve any O-LOCAL problem
  with awake complexity O(sqrt(log n) * log* n).
- :func:`repro.core.theorem13.compute_clustering` — Theorem 13: colored
  BFS-clustering with 2^{O(sqrt(log n))} colors.
- :func:`repro.core.bm21.solve_with_baseline` — the BM21 baseline with awake
  complexity O(log Δ + log* n).
- :data:`repro.core.algorithms.ALGORITHMS` — the registry of uniform
  algorithm adapters (``theorem1``, ``baseline``, ``theorem9``,
  ``greedy``) every entry point dispatches through.
"""

from repro.core.algorithms import ALGORITHMS, AlgorithmAdapter, SolveOutcome
from repro.core.clustering import (
    ColoredBFSClustering,
    UniquelyLabeledBFSClustering,
)
from repro.core.mapping import ColorScheduleMapping

__all__ = [
    "ALGORITHMS",
    "AlgorithmAdapter",
    "ColoredBFSClustering",
    "ColorScheduleMapping",
    "SolveOutcome",
    "UniquelyLabeledBFSClustering",
]
