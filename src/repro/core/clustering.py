"""BFS-clusterings — Definitions 2–5 of the paper.

Both decompositions assign each node a pair: a cluster identifier and a BFS
distance to the cluster's root.

- :class:`UniquelyLabeledBFSClustering` (Definition 2): each label induces a
  *connected* subgraph with a unique root; labels are globally unique, which
  enables recursion on the virtual graph (Definition 3).
- :class:`ColoredBFSClustering` (Definition 4): a color class may induce
  several components (clusters); two clusters may share a color only if no
  edge joins them — which is implied by components of the same color class
  being distinct, so *any* (γ, δ) with per-component BFS roots qualifies.
  Its virtual graph (Definition 5) has one vertex per cluster.

Validators raise :class:`ClusteringError` with a precise reason; algorithms
call them in tests and benchmarks after every construction step.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Hashable, Mapping

from repro.errors import ClusteringError
from repro.graphs.graph import StaticGraph
from repro.types import ClusterLabel, Color, NodeId


@dataclass(frozen=True)
class Cluster:
    """One cluster: its identifier, root and members."""

    key: Hashable
    root: NodeId
    members: frozenset[NodeId]


@dataclass(frozen=True)
class UniquelyLabeledBFSClustering:
    """Definition 2: (ℓ, δ) with connected, uniquely-labeled clusters."""

    label: Mapping[NodeId, ClusterLabel]
    dist: Mapping[NodeId, int]

    # -- construction ------------------------------------------------------

    @staticmethod
    def trivial(graph: StaticGraph) -> "UniquelyLabeledBFSClustering":
        """Every node its own cluster, labeled by its ID (Theorem 13's
        starting point (ℓ₀, δ₀))."""
        return UniquelyLabeledBFSClustering(
            label={v: v for v in graph.nodes},
            dist={v: 0 for v in graph.nodes},
        )

    @staticmethod
    def from_roots(
        graph: StaticGraph, assignment: Mapping[NodeId, ClusterLabel]
    ) -> "UniquelyLabeledBFSClustering":
        """Build (ℓ, δ) from a membership map by rooting each cluster at its
        minimum-ID node and computing induced BFS distances."""
        dist: dict[NodeId, int] = {}
        for members in _group(assignment).values():
            root = min(members)
            dist.update(_induced_bfs(graph, members, root))
        return UniquelyLabeledBFSClustering(dict(assignment), dist)

    # -- queries -----------------------------------------------------------

    def clusters(self) -> list[Cluster]:
        out = []
        for key, members in sorted(_group(self.label).items()):
            roots = [v for v in members if self.dist[v] == 0]
            root = roots[0] if len(roots) == 1 else min(members)
            out.append(Cluster(key=key, root=root, members=frozenset(members)))
        return out

    def cluster_count(self) -> int:
        return len(set(self.label.values()))

    def members_of(self, key: ClusterLabel) -> frozenset[NodeId]:
        return frozenset(v for v, l in self.label.items() if l == key)

    # -- Definition 3: the virtual graph ------------------------------------

    def virtual_graph(self, graph: StaticGraph) -> StaticGraph:
        """Vertices = cluster labels; edges between labels joined by any
        G-edge. Labels must be positive ints (they are root IDs in all our
        constructions), so the result is again a :class:`StaticGraph` and
        algorithms recurse on it unchanged."""
        labels = set(self.label.values())
        for lab in labels:
            if not isinstance(lab, int) or lab < 1:
                raise ClusteringError(
                    f"virtual graphs need positive integer labels, got {lab!r}"
                )
        edges = set()
        for u, v in graph.edges():
            lu, lv = self.label[u], self.label[v]
            if lu != lv:
                edges.add((min(lu, lv), max(lu, lv)))
        space = max(graph.id_space, max(labels, default=1))
        return StaticGraph.from_edges(edges, nodes=labels, id_space=space)

    # -- validation ---------------------------------------------------------

    def validate(self, graph: StaticGraph) -> None:
        """Check Definition 2 exactly; raise ClusteringError on violation."""
        covered = set(self.label)
        if covered != graph.node_set:
            raise ClusteringError(
                "labeling does not cover exactly the node set "
                f"(missing {len(graph.node_set - covered)}, "
                f"extra {len(covered - graph.node_set)})"
            )
        if set(self.dist) != covered:
            raise ClusteringError("dist does not cover exactly the node set")
        for key, members in _group(self.label).items():
            _validate_bfs_component(
                graph, members, self.dist, f"cluster {key!r}", require_connected=True
            )


@dataclass(frozen=True)
class ColoredBFSClustering:
    """Definition 4: (γ, δ) — per-color-class components are BFS clusters."""

    color: Mapping[NodeId, Color]
    dist: Mapping[NodeId, int]

    # -- queries -----------------------------------------------------------

    def palette(self) -> list[Color]:
        """Colors in canonical order: numerically for integers (and within
        tuples of integers), by repr only for exotic palettes — so that
        ``canonical()`` preserves the intended color order."""
        return sorted(set(self.color.values()), key=_color_sort_key)

    def num_colors(self) -> int:
        return len(set(self.color.values()))

    def max_color(self) -> int:
        """max_v γ(v) for integer palettes — the ``c`` of Theorem 9."""
        colors = set(self.color.values())
        if not all(isinstance(c, int) for c in colors):
            raise ClusteringError(
                "max_color needs an integer palette; call canonical() first"
            )
        return max(colors, default=0)

    def canonical(self) -> "ColoredBFSClustering":
        """Re-map arbitrary hashable colors to 1..c (order-preserving by
        repr), so Theorem 9's O(log c) schedule applies directly."""
        mapping = {c: i + 1 for i, c in enumerate(self.palette())}
        return ColoredBFSClustering(
            color={v: mapping[c] for v, c in self.color.items()},
            dist=dict(self.dist),
        )

    def clusters(self, graph: StaticGraph) -> list[Cluster]:
        """All clusters: connected components of each color class."""
        out = []
        for color, members in sorted(_group(self.color).items(), key=lambda kv: repr(kv[0])):
            for comp in _components(graph, members):
                roots = [v for v in comp if self.dist[v] == 0]
                root = roots[0] if len(roots) == 1 else min(comp)
                out.append(Cluster(key=color, root=root, members=frozenset(comp)))
        return out

    # -- Definition 5: the virtual graph ------------------------------------

    def virtual_graph(
        self, graph: StaticGraph
    ) -> tuple[StaticGraph, dict[NodeId, int]]:
        """One vertex per *cluster* (numbered 1..m in deterministic order);
        returns the virtual graph and the node→cluster-vertex map."""
        clusters = self.clusters(graph)
        vertex_of: dict[NodeId, int] = {}
        for i, cluster in enumerate(clusters, start=1):
            for v in cluster.members:
                vertex_of[v] = i
        edges = set()
        for u, v in graph.edges():
            cu, cv = vertex_of[u], vertex_of[v]
            if cu != cv:
                edges.add((min(cu, cv), max(cu, cv)))
        h = StaticGraph.from_edges(
            edges,
            nodes=range(1, len(clusters) + 1),
            id_space=max(len(clusters), 1),
        )
        return h, vertex_of

    # -- validation ---------------------------------------------------------

    def validate(self, graph: StaticGraph) -> None:
        """Check Definition 4 exactly; raise ClusteringError on violation."""
        covered = set(self.color)
        if covered != graph.node_set:
            raise ClusteringError("coloring does not cover exactly the node set")
        if set(self.dist) != covered:
            raise ClusteringError("dist does not cover exactly the node set")
        for color, members in _group(self.color).items():
            for comp in _components(graph, members):
                _validate_bfs_component(
                    graph,
                    comp,
                    self.dist,
                    f"color {color!r} component",
                    require_connected=False,
                )


# -- shared internals --------------------------------------------------------


def _color_sort_key(color: Color) -> tuple:
    if isinstance(color, bool):
        return (2, repr(color))
    if isinstance(color, int):
        return (0, color)
    if isinstance(color, tuple) and all(
        isinstance(part, int) and not isinstance(part, bool) for part in color
    ):
        return (1, color)
    return (2, repr(color))


def _group(mapping: Mapping[NodeId, Hashable]) -> dict[Hashable, set[NodeId]]:
    grouped: dict[Hashable, set[NodeId]] = {}
    for v, key in mapping.items():
        grouped.setdefault(key, set()).add(v)
    return grouped


def _components(graph: StaticGraph, members: set[NodeId]) -> list[set[NodeId]]:
    remaining = set(members)
    comps = []
    while remaining:
        start = min(remaining)
        comp = {start}
        queue = deque([start])
        while queue:
            v = queue.popleft()
            for u in graph.neighbors(v):
                if u in remaining and u not in comp:
                    comp.add(u)
                    queue.append(u)
        remaining -= comp
        comps.append(comp)
    return comps


def _induced_bfs(
    graph: StaticGraph, members: set[NodeId] | frozenset[NodeId], root: NodeId
) -> dict[NodeId, int]:
    """BFS distances from ``root`` inside the subgraph induced by members."""
    dist = {root: 0}
    queue = deque([root])
    while queue:
        v = queue.popleft()
        for u in graph.neighbors(v):
            if u in members and u not in dist:
                dist[u] = dist[v] + 1
                queue.append(u)
    return dist


def _validate_bfs_component(
    graph: StaticGraph,
    members: set[NodeId],
    dist: Mapping[NodeId, int],
    what: str,
    require_connected: bool,
) -> None:
    roots = [v for v in members if dist[v] == 0]
    if len(roots) != 1:
        raise ClusteringError(
            f"{what} has {len(roots)} roots (δ=0 nodes); expected exactly 1"
        )
    root = roots[0]
    bfs = _induced_bfs(graph, members, root)
    if require_connected and set(bfs) != set(members):
        raise ClusteringError(
            f"{what} is disconnected: {len(members) - len(bfs)} nodes "
            f"unreachable from root {root}"
        )
    for v in members:
        expected = bfs.get(v)
        if expected is None:
            raise ClusteringError(f"{what}: node {v} unreachable from root")
        if dist[v] != expected:
            raise ClusteringError(
                f"{what}: δ({v}) = {dist[v]} but induced BFS distance from "
                f"root {root} is {expected}"
            )
