"""Lemma 14 — flattening a two-level clustering.

Input: a uniquely-labeled BFS-clustering (ℓ, δ) of G and a uniquely-labeled
BFS-clustering (ℓ', δ') of its virtual graph H (every node knows its own
pairs). Output: the uniquely-labeled BFS-clustering (ℓ'', δ'') of G whose
virtual graph is K — clusters of G are merged along the clusters of H:

    ℓ''(v) = ℓ'(ℓ(v)),
    δ''(v) = induced-BFS distance to the unique node that is root of its
             cluster inside the root cluster of its super-cluster.

Distributed realization (constant awake, O(n²) rounds): each cluster of
(ℓ, δ) acts as a vertex of H (Lemma 7, :mod:`repro.core.virtual`); inside H
the super-cluster gathers, via one convergecast+broadcast along its BFS
tree (δ' labels), the complete structure of the merged cluster — every
member cluster's nodes, δ values and incident edges — after which every
replica computes the new BFS distances locally.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Generator, Iterable, Mapping

from repro.core.cast import gather_bfs, gather_duration
from repro.core.virtual import run_on_virtual_graph, virtual_duration
from repro.errors import ProtocolError
from repro.model.actions import AwakeAt
from repro.model.api import NodeInfo
from repro.types import ClusterLabel, NodeId, Payload

Proto = Generator[AwakeAt, dict[NodeId, Payload], Any]


@dataclass(frozen=True)
class Lemma14Output:
    """The flattened pair of one node, plus the new root for diagnostics."""

    label: ClusterLabel  # ℓ''(v) = ℓ'(ℓ(v))
    dist: int  # δ''(v)
    root: NodeId  # the δ''-0 node of the merged cluster


def lemma14_virtual_rounds(n: int) -> int:
    """Virtual round budget: 1 exchange + 1 gather over the super-cluster."""
    return 1 + gather_duration(n)


def lemma14_duration(n: int) -> int:
    """Concrete window: O(n) virtual rounds × O(n) rounds each = O(n²)."""
    return virtual_duration(n, lemma14_virtual_rounds(n))


def lemma14_protocol(
    me: NodeId,
    peers: Iterable[NodeId],
    label: ClusterLabel,
    delta: int,
    label2: ClusterLabel,
    dist2: int,
    n: int,
    t0: int,
    label_space: int,
) -> Proto:
    """Flatten (ℓ, δ) + (ℓ', δ') into (ℓ'', δ'') for this node.

    Args:
        label/delta: the node's pair in (ℓ, δ).
        label2/dist2: the node's cluster's pair in (ℓ', δ') — every member
            of a cluster holds the same values.
        label_space: bound on ℓ' labels (virtual ID space).
    """

    def contribution(
        neighbor_setup: Mapping[NodeId, tuple[ClusterLabel, int, Any]]
    ) -> dict[str, Any]:
        return {
            "delta": delta,
            "l2": label2,
            "d2": dist2,
            "edges": tuple(
                (u, lab) for u, (lab, _, _) in sorted(neighbor_setup.items())
            ),
        }

    outcome = yield from run_on_virtual_graph(
        me=me,
        peers=peers,
        label=label,
        delta=delta,
        n=n,
        t0=t0,
        vprogram=_flatten_vprogram,
        label_space=label_space,
        max_virtual_rounds=lemma14_virtual_rounds(n),
        contribution_fn=contribution,
    )
    dist_map = outcome.output["dist"]
    if me not in dist_map:
        raise ProtocolError(
            f"node {me}: absent from the merged cluster of ℓ'' = {label2}"
        )
    return Lemma14Output(
        label=label2, dist=dist_map[me], root=outcome.output["root"]
    )


def _flatten_vprogram(vinfo: NodeInfo) -> Proto:
    """Virtual program of one H-vertex (cluster of G)."""
    contributions: dict[NodeId, dict] = vinfo.input
    l2, d2 = _consistent_pair(vinfo.id, contributions)

    # Virtual round 1: exchange (ℓ', δ') with H-neighbors to find the
    # super-cluster peers and the BFS parent inside the super-cluster.
    inbox = yield AwakeAt(
        1, {lab: ("l2", l2, d2) for lab in vinfo.neighbors}
    )
    same_super = {
        lab: msg[2]
        for lab, msg in sorted(inbox.items())
        if msg[0] == "l2" and msg[1] == l2
    }
    if d2 == 0:
        parent = None
    else:
        candidates = [lab for lab, dd in same_super.items() if dd == d2 - 1]
        if not candidates:
            raise ProtocolError(
                f"cluster {vinfo.id}: δ' = {d2} but no super-cluster "
                f"neighbor at δ' = {d2 - 1}"
            )
        parent = min(candidates)

    # Gather the full merged-cluster structure along the super-cluster tree.
    merged = yield from gather_bfs(
        me=vinfo.id,
        peers=tuple(same_super),
        parent=parent,
        depth=d2,
        depth_bound=vinfo.n,
        t0=2,
        payload={vinfo.id: contributions},
        merge=_merge_cluster_maps,
    )

    # Replica computation: BFS in the merged induced subgraph.
    member_labels = set(merged)
    nodes: dict[NodeId, dict] = {}
    for cluster_nodes in merged.values():
        nodes.update(cluster_nodes)
    adjacency: dict[NodeId, list[NodeId]] = {v: [] for v in nodes}
    for v, data in nodes.items():
        for u, lab in data["edges"]:
            if lab in member_labels and u in nodes:
                adjacency[v].append(u)

    root_cluster = [
        lab for lab, cluster_nodes in merged.items()
        if any(d["d2"] == 0 for d in cluster_nodes.values())
    ]
    roots = [
        v
        for lab in root_cluster
        for v, d in merged[lab].items()
        if d["delta"] == 0 and d["d2"] == 0
    ]
    if len(roots) != 1:
        raise ProtocolError(
            f"cluster {vinfo.id}: merged cluster for ℓ'' = {l2} has "
            f"{len(roots)} roots"
        )
    root = roots[0]
    dist = {root: 0}
    queue = deque([root])
    while queue:
        v = queue.popleft()
        for u in sorted(adjacency[v]):
            if u not in dist:
                dist[u] = dist[v] + 1
                queue.append(u)
    missing = set(nodes) - set(dist)
    if missing:
        raise ProtocolError(
            f"merged cluster ℓ'' = {l2} is disconnected: missing "
            f"{sorted(missing)[:5]}"
        )
    return {"dist": dist, "root": root}


def _consistent_pair(
    label: ClusterLabel, contributions: Mapping[NodeId, dict]
) -> tuple[ClusterLabel, int]:
    pairs = {(d["l2"], d["d2"]) for d in contributions.values()}
    if len(pairs) != 1:
        raise ProtocolError(
            f"cluster {label}: members disagree on (ℓ', δ'): {sorted(pairs)[:3]}"
        )
    return next(iter(pairs))


def _merge_cluster_maps(a: dict, b: dict) -> dict:
    merged = dict(a)
    merged.update(b)
    return merged


# ---------------------------------------------------------------------------
# Centralized reference.
# ---------------------------------------------------------------------------


def lemma14_reference(
    graph,
    level1_label: Mapping[NodeId, ClusterLabel],
    level1_dist: Mapping[NodeId, int],
    level2_label: Mapping[ClusterLabel, ClusterLabel],
    level2_dist: Mapping[ClusterLabel, int],
) -> dict[NodeId, Lemma14Output]:
    """Centralized flattening with the same root rule as the protocol."""
    outputs: dict[NodeId, Lemma14Output] = {}
    merged_members: dict[ClusterLabel, set[NodeId]] = {}
    for v, lab in level1_label.items():
        merged_members.setdefault(level2_label[lab], set()).add(v)
    for l2, members in merged_members.items():
        roots = [
            v
            for v in members
            if level1_dist[v] == 0 and level2_dist[level1_label[v]] == 0
        ]
        if len(roots) != 1:
            raise ProtocolError(
                f"merged cluster {l2} has {len(roots)} roots"
            )
        root = roots[0]
        dist = {root: 0}
        queue = deque([root])
        while queue:
            v = queue.popleft()
            for u in graph.neighbors(v):
                if u in members and u not in dist:
                    dist[u] = dist[v] + 1
                    queue.append(u)
        missing = members - set(dist)
        if missing:
            raise ProtocolError(
                f"merged cluster {l2} is disconnected: {sorted(missing)[:5]}"
            )
        for v in members:
            outputs[v] = Lemma14Output(label=l2, dist=dist[v], root=root)
    return outputs
