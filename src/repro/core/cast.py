"""Lemma 6 — energy-efficient broadcast and convergecast on rooted trees.

Given a rooted spanning structure where every node knows its parent and a
label strictly increasing away from the root, both primitives run with
**awake complexity 3** (general labels) or **2** (BFS labels, where the
parent's label is implied), in O(label bound) rounds.

All protocols here are *driver-agnostic generators*: they yield
:class:`AwakeAt` actions and receive inboxes, so the same code runs on the
concrete simulator and, via :mod:`repro.core.virtual`, on cluster-level
virtual graphs (this is how Lemma 7 reuses Lemma 6 verbatim).

Window discipline: every protocol takes the first round ``t0`` of its
reserved window and never wakes at or after ``t0 + duration(...)``; callers
compose protocols by adding durations (Lemma 8).
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Iterable

from repro.errors import ProtocolError
from repro.model.actions import AwakeAt
from repro.types import NodeId, Payload

Proto = Generator[AwakeAt, dict[NodeId, Payload], Any]


# ---------------------------------------------------------------------------
# General labeled version (Lemma 6 verbatim): awake complexity 3.
# ---------------------------------------------------------------------------


def labeled_cast_duration(label_bound: int) -> int:
    """Window length of the labeled broadcast/convergecast: N + 2 rounds."""
    return label_bound + 2


def broadcast_labeled(
    me: NodeId,
    peers: Iterable[NodeId],
    parent: NodeId | None,
    label: int,
    label_bound: int,
    t0: int,
    payload: Payload,
) -> Proto:
    """Broadcast from the root down a tree with monotone labels.

    Every node learns the payload held by the root (the root passes its
    own). ``label`` must satisfy ``label(v) > label(parent(v))`` and lie in
    ``[0, label_bound]``. Awake rounds per node: at most 3.

    Round schedule (offsets within the window):
      - 0: all nodes awake; exchange labels so v learns L(p(v));
      - 1 + L(p(v)): v receives the payload (its parent sends then);
      - 1 + L(v): v forwards the payload to all peers.
    """
    peers = tuple(peers)
    _check_label(label, label_bound)
    inbox = yield AwakeAt(t0, {u: ("label", label) for u in peers})
    if parent is None:
        value = payload
    else:
        parent_label = _expect_label(inbox, parent, me)
        if parent_label >= label:
            raise ProtocolError(
                f"node {me}: parent label {parent_label} >= own label {label}"
            )
        receive_round = t0 + 1 + parent_label
        inbox = yield AwakeAt(receive_round)
        if parent not in inbox:
            raise ProtocolError(
                f"node {me}: no broadcast payload from parent {parent} at "
                f"round {receive_round}"
            )
        value = inbox[parent]
    yield AwakeAt(t0 + 1 + label, {u: value for u in peers})
    return value


def convergecast_labeled(
    me: NodeId,
    peers: Iterable[NodeId],
    parent: NodeId | None,
    label: int,
    label_bound: int,
    t0: int,
    payload: Payload,
    merge: Callable[[Payload, Payload], Payload],
) -> Proto:
    """Convergecast to the root of a tree with monotone labels.

    The root returns the merge (an associative fold) of all payloads in its
    tree; other nodes return ``None``. Uses the reversed labels
    ``L'(v) = label_bound - L(v)``. Awake rounds per node: at most 3.
    """
    peers = tuple(peers)
    _check_label(label, label_bound)
    reversed_label = label_bound - label
    inbox = yield AwakeAt(t0, {u: ("label", label) for u in peers})
    parent_reversed = None
    if parent is not None:
        parent_label = _expect_label(inbox, parent, me)
        if parent_label >= label:
            raise ProtocolError(
                f"node {me}: parent label {parent_label} >= own label {label}"
            )
        parent_reversed = label_bound - parent_label

    # Receive the folds of all child subtrees.
    inbox = yield AwakeAt(t0 + 1 + reversed_label)
    value = _fold_sorted(payload, inbox, merge)

    if parent is None:
        return value
    yield AwakeAt(t0 + 1 + parent_reversed, {parent: value})
    return None


# ---------------------------------------------------------------------------
# BFS version: labels are BFS distances, parent label = own - 1 is implied,
# saving the discovery round. Awake complexity 2.
# ---------------------------------------------------------------------------


def bfs_cast_duration(depth_bound: int) -> int:
    """Window length of BFS broadcast/convergecast: depth_bound + 1."""
    return depth_bound + 1


def broadcast_bfs(
    me: NodeId,
    peers: Iterable[NodeId],
    parent: NodeId | None,
    depth: int,
    depth_bound: int,
    t0: int,
    payload: Payload,
) -> Proto:
    """Root-to-leaves broadcast along a BFS tree (δ labels).

    v receives at offset δ(v) - 1 (its parent sends then) and forwards at
    offset δ(v). Awake rounds: 2 (root: 1).
    """
    peers = tuple(peers)
    _check_label(depth, depth_bound)
    if parent is None:
        if depth != 0:
            raise ProtocolError(f"node {me}: no parent but depth {depth}")
        value = payload
    else:
        inbox = yield AwakeAt(t0 + depth - 1)
        if parent not in inbox:
            raise ProtocolError(
                f"node {me}: no broadcast payload from parent {parent} at "
                f"offset {depth - 1}"
            )
        value = inbox[parent]
    yield AwakeAt(t0 + depth, {u: value for u in peers})
    return value


def convergecast_bfs(
    me: NodeId,
    peers: Iterable[NodeId],
    parent: NodeId | None,
    depth: int,
    depth_bound: int,
    t0: int,
    payload: Payload,
    merge: Callable[[Payload, Payload], Payload],
) -> Proto:
    """Leaves-to-root convergecast along a BFS tree (δ labels).

    v receives child folds at offset depth_bound - δ(v) - 1 and sends its
    own fold at offset depth_bound - δ(v). The root returns the full fold;
    other nodes return ``None``. Awake rounds: 2 (root: 1).
    """
    _check_label(depth, depth_bound)
    receive_offset = depth_bound - depth - 1
    value = payload
    if receive_offset >= 0:
        inbox = yield AwakeAt(t0 + receive_offset)
        value = _fold_sorted(value, inbox, merge)
    if parent is None:
        return value
    yield AwakeAt(t0 + depth_bound - depth, {parent: value})
    return None


def gather_duration(depth_bound: int) -> int:
    """Window length of :func:`gather_bfs`."""
    return 2 * bfs_cast_duration(depth_bound)


def gather_bfs(
    me: NodeId,
    peers: Iterable[NodeId],
    parent: NodeId | None,
    depth: int,
    depth_bound: int,
    t0: int,
    payload: Payload,
    merge: Callable[[Payload, Payload], Payload],
) -> Proto:
    """Convergecast then broadcast: *every* node learns the tree-wide fold.

    The workhorse of Lemma 7's cluster simulation: 4 awake rounds
    (root: 2)."""
    peers = tuple(peers)
    folded = yield from convergecast_bfs(
        me, peers, parent, depth, depth_bound, t0, payload, merge
    )
    t1 = t0 + bfs_cast_duration(depth_bound)
    result = yield from broadcast_bfs(
        me, peers, parent, depth, depth_bound, t1, folded
    )
    return result


# ---------------------------------------------------------------------------


def _fold_sorted(
    value: Payload,
    inbox: dict[NodeId, Payload],
    merge: Callable[[Payload, Payload], Payload],
) -> Payload:
    """Fold the inbox into ``value`` in ascending sender order; the sort
    is skipped when at most one message arrived (the common case deep in
    cluster trees)."""
    if len(inbox) <= 1:
        for payload in inbox.values():
            value = merge(value, payload)
        return value
    for sender in sorted(inbox):
        value = merge(value, inbox[sender])
    return value


def _check_label(label: int, bound: int) -> None:
    if not 0 <= label <= bound:
        raise ProtocolError(f"label {label} outside [0, {bound}]")


def _expect_label(
    inbox: dict[NodeId, Payload], parent: NodeId, me: NodeId
) -> int:
    if parent not in inbox:
        raise ProtocolError(f"node {me}: parent {parent} silent in label round")
    tag, value = inbox[parent]
    if tag != "label":
        raise ProtocolError(f"node {me}: expected label message, got {tag!r}")
    return value
