"""Linial's color reduction [Lin92], distance-1 and distance-2 variants.

One reduction step maps a proper k-coloring to a proper q²-coloring in one
communication round (two for distance-2 conflicts), where q is a prime with
``q > D·d`` and ``q^{d+1} >= k`` (D = conflict degree, d = polynomial
degree). A node's color is read as the coefficient vector of a degree-d
polynomial over F_q; the node picks an evaluation point x where it differs
from *all* conflicting polynomials — at most D·d < q points are bad — and
adopts the pair (x, p(x)) as its new color.

Iterating reaches the fixed-point palette ``q*² = next_prime(D+1)²`` in
O(log* k) steps; the step parameters depend only on (k, D), so all nodes
compute identical schedules — crucial in the Sleeping model where the wake
calendar must be agreed upon without communication.
"""

from __future__ import annotations

from typing import Any, Generator, Iterable

from repro.errors import ProtocolError
from repro.model.actions import AwakeAt
from repro.types import NodeId, Payload
from repro.util.mathx import base_q_digits, eval_poly_mod, next_prime

Proto = Generator[AwakeAt, dict[NodeId, Payload], Any]


def fixed_point_palette(conflict_degree: int) -> int:
    """The smallest terminal palette: next_prime(D+1)² = O(D²).

    This is where the reduction lands when it can take d=1 steps all the
    way down. From awkward intermediate palettes it may halt earlier —
    :func:`repro.core.lemma15.singleton_palette` computes the *largest*
    possible terminal palette (≤ 64·D²), which is what Lemma 15's color
    bound must use.
    """
    q = next_prime(conflict_degree + 1)
    return q * q


def _ceil_root(k: int, e: int) -> int:
    """Smallest r >= 1 with r^e >= k (exact integer arithmetic; no floats,
    so arbitrarily large palettes are handled)."""
    if k <= 1:
        return 1
    # Binary search on r; k.bit_length() bounds the answer comfortably.
    lo, hi = 1, 1 << (k.bit_length() // e + 1)
    while lo < hi:
        mid = (lo + hi) // 2
        if mid**e >= k:
            hi = mid
        else:
            lo = mid + 1
    return lo


def step_parameters(palette: int, conflict_degree: int) -> tuple[int, int] | None:
    """The (d, q) minimizing the next palette q², or None at the fixed point.

    Deterministic in (palette, conflict_degree) so every node agrees.
    """
    d_max = max(1, palette.bit_length())
    best: tuple[int, int] | None = None
    for d in range(1, d_max + 1):
        q = next_prime(max(conflict_degree * d + 1, _ceil_root(palette, d + 1)))
        if best is None or q * q < best[1] ** 2:
            best = (d, q)
    assert best is not None
    d, q = best
    if q * q >= palette:
        return None
    return d, q


def reduction_schedule(palette: int, conflict_degree: int) -> list[tuple[int, int]]:
    """The full deterministic sequence of (d, q) steps until fixed point."""
    schedule = []
    k = palette
    while True:
        params = step_parameters(k, conflict_degree)
        if params is None:
            return schedule
        schedule.append(params)
        k = params[1] ** 2


def num_steps(palette: int, conflict_degree: int) -> int:
    """Number of reduction steps to the fixed point — O(log* palette)."""
    return len(reduction_schedule(palette, conflict_degree))


def final_palette(palette: int, conflict_degree: int) -> int:
    """Palette size after running the reduction to its fixed point."""
    schedule = reduction_schedule(palette, conflict_degree)
    return schedule[-1][1] ** 2 if schedule else palette


def linial_duration(palette: int, conflict_degree: int, distance: int = 1) -> int:
    """Window length: ``distance`` rounds per step (1-hop or 2-hop)."""
    return num_steps(palette, conflict_degree) * distance


def linial_coloring(
    me: NodeId,
    peers: Iterable[NodeId],
    color: int,
    palette: int,
    conflict_degree: int,
    t0: int,
    distance: int = 1,
    conflict_peers: frozenset[NodeId] | None = None,
) -> Proto:
    """Reduce a proper ``palette``-coloring to the fixed-point palette.

    Args:
        me: this node's ID.
        peers: neighbors participating in the protocol (messages go to all
            of them; with ``distance=2`` they also relay second-hop colors).
        color: current color in ``[0, palette)``; must be proper at the
            required distance w.r.t. the conflict set.
        palette: common knowledge palette bound.
        conflict_degree: common upper bound D on the number of conflicting
            nodes per node (Δ for distance 1, Δ² for distance 2).
        t0: first round of the reserved window.
        distance: 1 (proper coloring) or 2 (distance-2 coloring).
        conflict_peers: optional restriction — only colors of these nodes
            (and their relayed 2-hop colors) are treated as conflicts. Used
            when running on an induced subgraph such as G[U] in Lemma 15.

    Returns:
        The final color in ``[0, final_palette(palette, conflict_degree))``.

    Awake rounds: ``distance`` per reduction step, O(log* palette) total.
    """
    if distance not in (1, 2):
        raise ProtocolError(f"distance must be 1 or 2, got {distance}")
    peers = tuple(peers)
    if color < 0 or color >= palette:
        raise ProtocolError(f"color {color} outside palette [0, {palette})")

    round_now = t0
    k = palette
    while True:
        params = step_parameters(k, conflict_degree)
        if params is None:
            return color
        d, q = params

        inbox = yield AwakeAt(round_now, {u: ("linial1", color) for u in peers})
        neighbor_colors = {
            u: msg[1]
            for u, msg in inbox.items()
            if msg[0] == "linial1"
            and (conflict_peers is None or u in conflict_peers)
        }
        conflict_colors = set(neighbor_colors.values())
        if distance == 2:
            relay = dict(neighbor_colors)
            inbox = yield AwakeAt(
                round_now + 1, {u: ("linial2", relay) for u in peers}
            )
            for u, msg in inbox.items():
                if msg[0] != "linial2":
                    continue
                if conflict_peers is not None and u not in conflict_peers:
                    continue
                for w, w_color in msg[1].items():
                    if w != me and (
                        conflict_peers is None or w in conflict_peers
                    ):
                        conflict_colors.add(w_color)
        round_now += distance

        color = _reduce_one(me, color, conflict_colors, d, q)
        k = q * q


def _reduce_one(
    me: NodeId, color: int, conflict_colors: set[int], d: int, q: int
) -> int:
    """Pick x with p_me(x) != p_u(x) for all conflicting polynomials."""
    mine = base_q_digits(color, q, d + 1)
    others = [base_q_digits(c, q, d + 1) for c in conflict_colors]
    for x in range(q):
        yx = eval_poly_mod(mine, x, q)
        if all(eval_poly_mod(other, x, q) != yx for other in others):
            return x * q + yx
    raise ProtocolError(
        f"node {me}: no safe evaluation point in F_{q} — the input coloring "
        f"was not proper or the degree bound was violated"
    )
