"""Theorem 1 — the paper's headline result.

Any O-LOCAL problem is solvable deterministically with awake complexity
O(sqrt(log n) · log* n): compute the Theorem 13 colored BFS-clustering
(2^{O(sqrt(log n))} colors, awake O(sqrt(log n)·log* n)), then apply
Theorem 9 (awake O(log c) = O(sqrt(log n))). The two stages compose by
Lemma 8 — every node knows the exact round at which stage two begins.

:func:`solve` is the package's main public entry point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Mapping

from repro.core.clustering import ColoredBFSClustering
from repro.core.theorem9 import theorem9_duration, theorem9_protocol
from repro.core.theorem13 import (
    Theorem13Assignment,
    color_palette_bound,
    default_b,
    theorem13_duration,
    theorem13_subprotocol,
)
from repro.graphs.graph import StaticGraph
from repro.model.actions import AwakeAt
from repro.model.api import NodeInfo
from repro.model.simulator import SimulationResult, SleepingSimulator
from repro.olocal.problem import OLocalProblem
from repro.types import NodeId, Payload

Proto = Generator[AwakeAt, dict[NodeId, Payload], Any]


def theorem1_duration(n: int, id_space: int, b: int | None = None) -> int:
    """Total reserved rounds: Theorem 13 followed by Theorem 9."""
    b = b if b is not None else default_b(n)
    palette = color_palette_bound(n, b)
    return theorem13_duration(n, id_space, b) + theorem9_duration(n, palette)


def theorem1_program(problem: OLocalProblem, b: int | None = None):
    """Node program: clustering pipeline, then the clustered solver."""

    def program(info: NodeInfo) -> Proto:
        chosen_b = b if b is not None else default_b(info.n)
        assignment: Theorem13Assignment = yield from theorem13_subprotocol(
            info, t0=1, b=chosen_b
        )
        t9_start = 1 + theorem13_duration(info.n, info.id_space, chosen_b)
        palette = color_palette_bound(info.n, chosen_b)
        output = yield from theorem9_protocol(
            me=info.id,
            peers=info.neighbors,
            color=assignment.canonical_color(chosen_b),
            delta=assignment.dist,
            palette=palette,
            problem=problem,
            t0=t9_start,
            n=info.n,
            my_input=info.input,
        )
        return (output, assignment)

    return program


@dataclass(frozen=True)
class Theorem1Result:
    """Outputs plus the intermediate clustering and the run's metrics."""

    outputs: dict[NodeId, Any]
    clustering: ColoredBFSClustering
    simulation: SimulationResult
    b: int
    palette_bound: int

    @property
    def awake_complexity(self) -> int:
        return self.simulation.awake_complexity

    @property
    def round_complexity(self) -> int:
        return self.simulation.round_complexity


def solve(
    graph: StaticGraph,
    problem: OLocalProblem,
    inputs: Mapping[NodeId, Any] | None = None,
    b: int | None = None,
    validate: bool = True,
    simulator: Any = None,
) -> Theorem1Result:
    """Solve an O-LOCAL problem on the Sleeping simulator (Theorem 1).

    Args:
        graph: the network (connected, unique IDs in [1, graph.id_space]).
        problem: any :class:`OLocalProblem` (e.g. (Δ+1)-coloring, MIS).
        inputs: optional per-node inputs (defaults to the problem's own).
        b: override the paper's b = 2^{sqrt(log n)} (for ablations).
        validate: check the solution and the clustering before returning.
        simulator: optional ``(graph, program, inputs=...)`` factory
            replacing :class:`SleepingSimulator` (e.g. a fault-injecting
            :class:`~repro.model.faults.FaultySimulator`).

    Returns:
        :class:`Theorem1Result` with outputs, the intermediate clustering,
        and measured awake/round complexities.
    """
    chosen_b = b if b is not None else default_b(graph.n)
    node_inputs = (
        dict(inputs) if inputs is not None else problem.make_inputs(graph)
    )
    make_simulator = simulator if simulator is not None else SleepingSimulator
    sim = make_simulator(
        graph, theorem1_program(problem, chosen_b), inputs=node_inputs
    )
    result = sim.run()
    outputs = {v: out for v, (out, _) in result.outputs.items()}
    assignments = {v: a for v, (_, a) in result.outputs.items()}
    clustering = ColoredBFSClustering(
        color={v: a.canonical_color(chosen_b) for v, a in assignments.items()},
        dist={v: a.dist for v, a in assignments.items()},
    )
    if validate:
        clustering.validate(graph)
        problem.check(graph, outputs, node_inputs)
    return Theorem1Result(
        outputs=outputs,
        clustering=clustering,
        simulation=result,
        b=chosen_b,
        palette_bound=color_palette_bound(graph.n, chosen_b),
    )
