"""Lemma 7 — executing protocols on the virtual graph of a clustering.

Given a uniquely-labeled BFS-clustering (ℓ, δ) of G, any protocol written
for the generic node API can be executed *by the clusters*: every member of
a cluster runs a deterministic **replica** of the cluster's virtual-node
program, and the phase structure guarantees all replicas observe identical
inboxes, hence stay in lockstep:

- one *exchange* round: all members of clusters that are awake in this
  virtual round wake up and swap virtual messages across inter-cluster
  edges (two adjacent awake clusters are co-awake by construction — the
  phase calendar is global);
- one *gather* (convergecast + broadcast along the cluster's BFS tree,
  Lemma 6): the union of everything received from neighboring clusters is
  assembled at the root and redistributed, so every replica feeds its
  virtual program the same inbox.

Costs per awake virtual round: ≤ 1 + 4 = 5 awake rounds per member (the
paper budgets 7) inside a phase of 2n + 3 concrete rounds; a virtual
protocol with awake complexity α and round complexity ϱ therefore costs
O(α) awake and O(ϱ·n) rounds — Lemma 7's statement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator, Iterable, Mapping

from repro.core.cast import gather_bfs, gather_duration
from repro.errors import ProtocolError
from repro.model.actions import AwakeAt, Broadcast
from repro.model.api import NodeInfo
from repro.types import ClusterLabel, NodeId, Payload

Proto = Generator[AwakeAt, dict[NodeId, Payload], Any]

#: Builds the per-member contribution to the virtual node's input, given
#: what the setup round revealed about the neighbors:
#: ``{neighbor: (label, delta, extra)}``.
ContributionFn = Callable[[Mapping[NodeId, tuple[ClusterLabel, int, Any]]], Any]

#: The virtual program factory: receives the virtual node's view (id = the
#: cluster label, neighbors = adjacent cluster labels, input = the merged
#: member contributions ``{member: contribution}``) and yields AwakeAt
#: actions in *virtual* rounds. It must be deterministic: every member runs
#: one replica.
VirtualProgram = Callable[[NodeInfo], Proto]


def setup_duration(n: int) -> int:
    """Setup window: 1 exchange round + 1 gather over the cluster."""
    return 1 + gather_duration(n)


def phase_duration(n: int) -> int:
    """Each virtual round occupies 1 exchange round + 1 gather."""
    return 1 + gather_duration(n)


def virtual_duration(n: int, virtual_rounds: int) -> int:
    """Concrete window length to simulate ``virtual_rounds`` rounds."""
    return setup_duration(n) + virtual_rounds * phase_duration(n)


@dataclass(frozen=True)
class VirtualOutcome:
    """What every member of a cluster learns when the virtual program ends."""

    label: ClusterLabel
    output: Any
    members: tuple[NodeId, ...]
    virtual_neighbors: tuple[ClusterLabel, ...]
    parent: NodeId | None
    contributions: dict[NodeId, Any]


def run_on_virtual_graph(
    me: NodeId,
    peers: Iterable[NodeId],
    label: ClusterLabel,
    delta: int,
    n: int,
    t0: int,
    vprogram: VirtualProgram,
    label_space: int,
    max_virtual_rounds: int,
    contribution_fn: ContributionFn | None = None,
    setup_extra: Any = None,
) -> Proto:
    """Run ``vprogram`` as this node's cluster on the virtual graph.

    Every node of every cluster calls this with its own (label, delta);
    clusters whose nodes do *not* call it (e.g. terminated nodes) simply
    do not exist in the virtual graph — their silence in the setup round
    excludes them.

    Args:
        me/peers: this node and its graph neighbors.
        label/delta: the node's pair in the uniquely-labeled BFS-clustering.
        n: global bound on cluster depth and phase arithmetic (the paper
            uses the network size n).
        t0: start of the reserved window.
        vprogram: deterministic virtual program (replica-executed).
        label_space: bound on cluster labels, exposed as ``id_space`` of
            the virtual node (Linial's initial palette on the virtual graph).
        max_virtual_rounds: round-complexity bound of ``vprogram``; fixes
            the reserved window length (Lemma 8 composition).
        contribution_fn: builds this member's share of the virtual input
            from the setup-round exchange; defaults to ``None`` shares.
        setup_extra: payload piggy-backed on the setup exchange so that
            ``contribution_fn`` can see neighbors' extra data.

    Returns:
        :class:`VirtualOutcome` — in particular ``outcome.output`` is the
        virtual program's return value, identical across the cluster.
    """
    peers = tuple(peers)

    # ---- setup: discover cluster-mates, parent, and adjacent clusters ----
    inbox = yield AwakeAt(
        t0, {u: ("vsetup", label, delta, setup_extra) for u in peers}
    )
    neighbor_setup: dict[NodeId, tuple[ClusterLabel, int, Any]] = {}
    for u, msg in sorted(inbox.items()):
        if isinstance(msg, tuple) and msg and msg[0] == "vsetup":
            neighbor_setup[u] = (msg[1], msg[2], msg[3])

    intra = {u for u, (lab, _, _) in neighbor_setup.items() if lab == label}
    foreign_label = {
        u: lab for u, (lab, _, _) in neighbor_setup.items() if lab != label
    }
    if delta == 0:
        parent = None
    else:
        candidates = [
            u
            for u in intra
            if neighbor_setup[u][1] == delta - 1
        ]
        if not candidates:
            raise ProtocolError(
                f"node {me}: δ={delta} but no cluster-mate at δ={delta - 1}; "
                f"(ℓ, δ) is not a BFS-clustering"
            )
        parent = min(candidates)

    contribution = (
        contribution_fn(neighbor_setup) if contribution_fn is not None else None
    )
    local_view = (
        {me: contribution},
        frozenset(foreign_label.values()),
    )
    intra_sorted = tuple(sorted(intra))
    merged = yield from gather_bfs(
        me,
        intra_sorted,
        parent,
        delta,
        n,
        t0 + 1,
        local_view,
        _merge_setup,
    )
    contributions, vneighbors = merged
    members = tuple(sorted(contributions))

    vinfo = NodeInfo(
        id=label,
        n=n,
        id_space=label_space,
        neighbors=tuple(sorted(vneighbors)),
        input=dict(contributions),
    )

    # ---- drive the replica ----------------------------------------------
    gen = vprogram(vinfo)
    base = t0 + setup_duration(n)
    phase_len = phase_duration(n)
    try:
        vaction = next(gen)
    except StopIteration as stop:
        return _outcome(stop.value, vinfo, members, parent, contributions)

    while True:
        _check_virtual_action(label, vaction, max_virtual_rounds)
        vround = vaction.round
        phase_start = base + (vround - 1) * phase_len

        outgoing_virtual = _expand_virtual(vaction.messages, vinfo.neighbors)
        exchange_out = {}
        for u, lab in foreign_label.items():
            if lab in outgoing_virtual:
                exchange_out[u] = ("vmsg", label, outgoing_virtual[lab])
        inbox = yield AwakeAt(phase_start, exchange_out)
        collected: dict[ClusterLabel, Payload] = {}
        for u, msg in sorted(inbox.items()):
            if not (isinstance(msg, tuple) and msg and msg[0] == "vmsg"):
                continue
            _, sender_label, payload = msg
            _merge_one(collected, sender_label, payload, label)

        vinbox = yield from gather_bfs(
            me,
            intra_sorted,
            parent,
            delta,
            n,
            phase_start + 1,
            collected,
            lambda a, b: _merge_vmsgs(a, b, label),
        )
        try:
            vaction = gen.send(vinbox)
        except StopIteration as stop:
            return _outcome(stop.value, vinfo, members, parent, contributions)


def _outcome(value, vinfo, members, parent, contributions) -> VirtualOutcome:
    return VirtualOutcome(
        label=vinfo.id,
        output=value,
        members=members,
        virtual_neighbors=vinfo.neighbors,
        parent=parent,
        contributions=dict(contributions),
    )


def _check_virtual_action(
    label: ClusterLabel, action: Any, max_virtual_rounds: int
) -> None:
    if not isinstance(action, AwakeAt):
        raise ProtocolError(
            f"cluster {label}: virtual program yielded "
            f"{type(action).__name__}, expected AwakeAt"
        )
    if action.round > max_virtual_rounds:
        raise ProtocolError(
            f"cluster {label}: virtual round {action.round} exceeds the "
            f"reserved bound {max_virtual_rounds} (window overrun)"
        )


def _expand_virtual(
    messages: Mapping[ClusterLabel, Payload] | Broadcast | None,
    vneighbors: tuple[ClusterLabel, ...],
) -> dict[ClusterLabel, Payload]:
    if messages is None:
        return {}
    if isinstance(messages, Broadcast):
        return {lab: messages.payload for lab in vneighbors}
    unknown = set(messages) - set(vneighbors)
    if unknown:
        raise ProtocolError(
            f"virtual program addressed non-neighbor clusters {sorted(unknown)[:3]}"
        )
    return dict(messages)


def _merge_setup(a, b):
    contributions_a, labels_a = a
    contributions_b, labels_b = b
    merged = dict(contributions_a)
    merged.update(contributions_b)
    return merged, labels_a | labels_b


def _merge_one(
    into: dict[ClusterLabel, Payload],
    lab: ClusterLabel,
    payload: Payload,
    me_label: ClusterLabel,
) -> None:
    if lab in into and into[lab] != payload:
        raise ProtocolError(
            f"cluster {me_label}: inconsistent replicas of cluster {lab} "
            f"sent different payloads"
        )
    into[lab] = payload


def _merge_vmsgs(a, b, me_label):
    out = dict(a)
    for lab, payload in b.items():
        _merge_one(out, lab, payload, me_label)
    return out
