"""Theorem 13 — a colored BFS-clustering with 2^{O(sqrt(log n))} colors.

The construction iterates k = 2·⌈sqrt(log n)⌉ phases with b = 2^⌈sqrt(log n)⌉
(Figure 3). Phase i maintains a uniquely-labeled BFS-clustering
(ℓ_{i-1}, δ_{i-1}) of the still-active subgraph G_{i-1}:

1. run Lemma 15 with parameter b *on the virtual graph* H_{i-1}
   (Lemma 7 / :mod:`repro.core.virtual`);
2. clusters of H_{i-1} that received a singleton color γ' ≤ a·b² finish:
   their nodes take the final color γ = (i, γ') and keep δ = δ_{i-1};
3. residual clusters (at most |V(H_{i-1})|/b of them) merge along Lemma
   15's uniquely-labeled part and flatten via Lemma 14 into (ℓ_i, δ_i).

After k phases |V(H_k)| ≤ n / b^k < 1, so every node has finished. The
number of colors is k·a·b² = 2^{O(sqrt(log n))}; awake complexity is
O(sqrt(log n)·log* n); round complexity O(n^5 sqrt(log n)) in general and
O(n^{1+s} sqrt(log n)) for IDs from [n^s] (the §5 Remark — realized here
automatically because Linial's distance-2 prologue runs zero rounds when
the label space already fits).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator

from repro.core.clustering import ColoredBFSClustering
from repro.core.lemma14 import (
    lemma14_duration,
    lemma14_protocol,
)
from repro.core.lemma15 import (
    Lemma15Output,
    lemma15_duration,
    lemma15_protocol,
    lemma15_reference,
    singleton_palette,
)
from repro.core.virtual import run_on_virtual_graph, virtual_duration
from repro.errors import ProtocolError
from repro.graphs.graph import StaticGraph
from repro.model.actions import AwakeAt
from repro.model.api import NodeInfo
from repro.model.simulator import SimulationResult, SleepingSimulator
from repro.types import ClusterLabel, NodeId, Payload
from repro.util.mathx import sqrt_log_ceil

Proto = Generator[AwakeAt, dict[NodeId, Payload], Any]


# ---------------------------------------------------------------------------
# Parameters and deterministic timing.
# ---------------------------------------------------------------------------


def default_b(n: int) -> int:
    """The paper's b = 2^{sqrt(log n)} (ceiling in the exponent)."""
    return 1 << sqrt_log_ceil(n)


def num_phases(n: int) -> int:
    """k = 2·sqrt(log n) phases empty the virtual graph: n / b^k < 1."""
    return max(1, 2 * sqrt_log_ceil(n))


def color_palette_bound(n: int, b: int | None = None) -> int:
    """Total colors k·(a·b²) = 2^{O(sqrt(log n))}."""
    b = b if b is not None else default_b(n)
    return num_phases(n) * singleton_palette(b)


def phase_label_space(id_space: int, b: int, phase: int) -> int:
    """Bound on cluster labels entering phase ``phase`` (1-indexed):
    labels grow by the a·b² shift once per completed phase."""
    return id_space + (phase - 1) * singleton_palette(b)


def phase_window(n: int, id_space: int, b: int, phase: int) -> int:
    """Concrete length of one phase: simulated Lemma 15 + Lemma 14."""
    ls = phase_label_space(id_space, b, phase)
    lemma15_virtual = lemma15_duration(n, ls, b)
    return virtual_duration(n, lemma15_virtual) + lemma14_duration(n)


def theorem13_duration(n: int, id_space: int, b: int | None = None) -> int:
    """Total reserved rounds of the whole pipeline (sum of phase windows)."""
    b = b if b is not None else default_b(n)
    return sum(
        phase_window(n, id_space, b, i) for i in range(1, num_phases(n) + 1)
    )


# ---------------------------------------------------------------------------
# The distributed pipeline.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Theorem13Assignment:
    """A node's final pair in the colored BFS-clustering."""

    phase: int  # the i of γ = (i, γ')
    gamma: int  # γ' ∈ [1, a·b²]
    dist: int  # δ

    def canonical_color(self, b: int) -> int:
        """(i, γ') flattened to an integer in [1, k·a·b²]."""
        return (self.phase - 1) * singleton_palette(b) + self.gamma


def theorem13_subprotocol(
    info: NodeInfo, t0: int, b: int | None = None
) -> Proto:
    """The clustering pipeline as a composable sub-protocol.

    Returns a :class:`Theorem13Assignment`; the caller knows the end time
    ``t0 + theorem13_duration(info.n, info.id_space, b)`` (Lemma 8).
    """
    n, id_space = info.n, info.id_space
    b = b if b is not None else default_b(n)
    phases = num_phases(n)
    label: ClusterLabel = info.id
    delta = 0
    clock = t0
    assignment: Theorem13Assignment | None = None

    for i in range(1, phases + 1):
        ls = phase_label_space(id_space, b, i)
        lemma15_virtual = lemma15_duration(n, ls, b)
        window15 = virtual_duration(n, lemma15_virtual)
        if assignment is not None:
            clock += window15 + lemma14_duration(n)
            continue

        outcome = yield from run_on_virtual_graph(
            me=info.id,
            peers=info.neighbors,
            label=label,
            delta=delta,
            n=n,
            t0=clock,
            vprogram=_make_lemma15_vprogram(n, ls, b),
            label_space=ls,
            max_virtual_rounds=lemma15_virtual,
        )
        out15: Lemma15Output = outcome.output
        if out15.singleton:
            # Final color (i, γ'); δ is inherited from the current level.
            assignment = Theorem13Assignment(
                phase=i, gamma=out15.gamma, dist=delta
            )
            clock += window15 + lemma14_duration(n)
            continue

        flattened = yield from lemma14_protocol(
            me=info.id,
            peers=info.neighbors,
            label=label,
            delta=delta,
            label2=out15.gamma,  # the residual cluster's unique label
            dist2=out15.delta,  # δ' of this H-vertex inside its H-cluster
            n=n,
            t0=clock + window15,
            label_space=phase_label_space(id_space, b, i + 1),
        )
        label, delta = flattened.label, flattened.dist
        clock += window15 + lemma14_duration(n)

    if assignment is None:
        raise ProtocolError(
            f"node {info.id}: still unassigned after {phases} phases — "
            f"contradicts |V(H_k)| <= n/b^k < 1"
        )
    return assignment


def _make_lemma15_vprogram(
    n: int, label_space: int, b: int
) -> Callable[[NodeInfo], Proto]:
    def vprogram(vinfo: NodeInfo) -> Proto:
        out = yield from lemma15_protocol(
            me=vinfo.id,
            peers=vinfo.neighbors,
            n=n,
            id_space=label_space,
            b=b,
            t0=1,
        )
        return out

    return vprogram


# ---------------------------------------------------------------------------
# End-to-end wrapper.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ClusteringResult:
    clustering: ColoredBFSClustering
    assignments: dict[NodeId, Theorem13Assignment]
    simulation: SimulationResult | None
    b: int
    palette_bound: int

    @property
    def num_colors_used(self) -> int:
        return self.clustering.num_colors()

    @property
    def awake_complexity(self) -> int:
        if self.simulation is None:
            raise ProtocolError("reference runs carry no awake metrics")
        return self.simulation.awake_complexity

    @property
    def round_complexity(self) -> int:
        if self.simulation is None:
            raise ProtocolError("reference runs carry no awake metrics")
        return self.simulation.round_complexity


def compute_clustering(
    graph: StaticGraph, b: int | None = None, validate: bool = True
) -> ClusteringResult:
    """Theorem 13, distributed: run the pipeline on the Sleeping simulator."""
    chosen_b = b if b is not None else default_b(graph.n)

    def program(info: NodeInfo) -> Proto:
        assignment = yield from theorem13_subprotocol(info, t0=1, b=chosen_b)
        return assignment

    result = SleepingSimulator(graph, program).run()
    return _package(graph, result.outputs, result, chosen_b, validate)


def theorem13_reference(
    graph: StaticGraph, b: int | None = None, validate: bool = True
) -> ClusteringResult:
    """Centralized mirror of the pipeline (same tie-breaking, no simulator):
    the oracle for :func:`compute_clustering` and the fast path for
    large-n statistics."""
    chosen_b = b if b is not None else default_b(graph.n)
    phases = num_phases(graph.n)
    assignments: dict[NodeId, Theorem13Assignment] = {}

    label = {v: v for v in graph.nodes}
    dist = {v: 0 for v in graph.nodes}
    active = set(graph.nodes)

    for i in range(1, phases + 1):
        if not active:
            break
        ls = phase_label_space(graph.id_space, chosen_b, i)
        h_graph = _virtual_graph_of(graph, active, label, ls)
        ref15 = lemma15_reference(h_graph, chosen_b)

        new_active: set[NodeId] = set()
        new_label: dict[NodeId, ClusterLabel] = {}
        for v in active:
            out15 = ref15.outputs[label[v]]
            if out15.singleton:
                assignments[v] = Theorem13Assignment(
                    phase=i, gamma=out15.gamma, dist=dist[v]
                )
            else:
                new_active.add(v)
                new_label[v] = out15.gamma

        # Lemma 14 flattening: new BFS distances inside merged clusters.
        new_dist: dict[NodeId, int] = {}
        for l2 in sorted(set(new_label.values())):
            members = {v for v in new_active if new_label[v] == l2}
            roots = [
                v
                for v in members
                if dist[v] == 0
                and ref15.outputs[label[v]].delta == 0
            ]
            if len(roots) != 1:
                raise ProtocolError(
                    f"phase {i}: merged cluster {l2} has {len(roots)} roots"
                )
            new_dist.update(_induced_bfs(graph, members, roots[0]))

        label, dist, active = new_label, new_dist, new_active

    if active:
        raise ProtocolError(
            f"{len(active)} nodes unassigned after {phases} phases"
        )
    return _package(graph, assignments, None, chosen_b, validate)


def _virtual_graph_of(
    graph: StaticGraph,
    active: set[NodeId],
    label: dict[NodeId, ClusterLabel],
    label_space: int,
) -> StaticGraph:
    edges = set()
    for u, v in graph.edges():
        if u in active and v in active and label[u] != label[v]:
            edges.add((min(label[u], label[v]), max(label[u], label[v])))
    return StaticGraph.from_edges(
        edges, nodes=set(label.values()), id_space=label_space
    )


def _induced_bfs(
    graph: StaticGraph, members: set[NodeId], root: NodeId
) -> dict[NodeId, int]:
    from collections import deque

    dist = {root: 0}
    queue = deque([root])
    while queue:
        v = queue.popleft()
        for u in graph.neighbors(v):
            if u in members and u not in dist:
                dist[u] = dist[v] + 1
                queue.append(u)
    missing = members - set(dist)
    if missing:
        raise ProtocolError(
            f"merged cluster of root {root} is disconnected in G"
        )
    return dist


def _package(
    graph: StaticGraph,
    assignments: dict[NodeId, Any],
    simulation: SimulationResult | None,
    b: int,
    validate: bool,
) -> ClusteringResult:
    clustering = ColoredBFSClustering(
        color={v: a.canonical_color(b) for v, a in assignments.items()},
        dist={v: a.dist for v, a in assignments.items()},
    )
    if validate:
        clustering.validate(graph)
        bound = color_palette_bound(graph.n, b)
        max_color = clustering.max_color()
        if max_color > bound:
            raise ProtocolError(
                f"used color {max_color} exceeds the bound {bound}"
            )
    return ClusteringResult(
        clustering=clustering,
        assignments=dict(assignments),
        simulation=simulation,
        b=b,
        palette_bound=color_palette_bound(graph.n, b),
    )
