"""Vectorized Theorem 9 and Theorem 1 — the clustered pipeline in closed form.

The simulator engine executes Theorem 9 (and the Theorem 13 + Theorem 9
composition of Theorem 1) by dispatching one generator per node per
round.  Both stages are lockstep/cast-shaped: every awake node runs the
*same* small computation at rounds fixed in advance by the durations of
:mod:`repro.core.cast` and :mod:`repro.core.virtual`.  This module
replaces the dispatch with numpy kernels over the
:class:`~repro.graphs.arrays.GraphArrays` CSR mirror:

- **outputs** — the protocol's result equals the sequential greedy under
  the paper's orientation µ_G, priority ``(γ(cluster), -δ, -ID)``
  ascending (see :func:`repro.core.theorem9.theorem9_reference`).  The
  greedy is evaluated as Kahn waves over the rank orientation of the CSR
  (:func:`repro.model.vectorized.decide_by_priority`), each wave decided
  by the problem's array kernel.
- **accounting** — every awake round, message and termination round of
  :func:`repro.core.theorem9.theorem9_protocol` is a closed-form
  function of ``(γ, δ, deg, deg_intra, deg_foreign)``: the t9meta
  exchange, the Lemma 6 rooting cast, and one virtual window per round
  in ``{setup} ∪ r(γ)`` of the Lemma 10 schedule, each window costing 3
  awake rounds for a root and 5 for a non-root.  The formulas are
  evaluated with vectorized scatter/gather, and the results are
  **bit-identical** to the :class:`~repro.model.simulator.SleepingSimulator`
  run — the differential suite in ``tests/test_engine_equivalence.py``
  is the gate.

Per-node work is O(deg) plus O(log c) shared per distinct color, so the
whole solve is O(n + m) array time — the headline pipeline at n = 10⁶.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.core.cast import bfs_cast_duration
from repro.core.clustering import ColoredBFSClustering
from repro.core.mapping import ColorScheduleMapping
from repro.core.theorem9 import Theorem9Result, theorem9_duration
from repro.errors import ProtocolError
from repro.graphs.arrays import require_numpy, segment_sum, sorted_unique
from repro.graphs.graph import StaticGraph
from repro.model.metrics import SimulationMetrics
from repro.model.simulator import SimulationResult
from repro.model.vectorized import decide_by_priority
from repro.obs import counters
from repro.obs.spans import span
from repro.olocal.problem import OLocalProblem
from repro.types import NodeId


def _member_offsets(np: Any, n: int, d: int) -> Any:
    """Awake offsets of a depth-``d`` member inside one virtual window.

    Offsets are relative to the window start (the exchange round): the
    exchange itself, then the gather's convergecast receive/send and
    broadcast receive/send rounds of :func:`repro.core.cast.gather_bfs`
    with depth bound ``n``.  A root (``d == 0``) neither sends up nor
    receives down, so it is awake 3 rounds; any other member 5.

    Args:
        np: the numpy module.
        n: the graph size (= the cast depth bound).
        d: the member's BFS depth δ within its cluster.

    Returns:
        int64 array of distinct in-window offsets.
    """
    if d == 0:
        return np.array([0, n, n + 2], dtype=np.int64)
    return np.array(
        [0, n - d, n - d + 1, n + d + 1, n + d + 2], dtype=np.int64
    )


def _theorem9_closed_form(
    ga: Any, colors: Any, dist: Any, palette: int, t0: int, n: int
) -> tuple[Any, Any, Any, Any]:
    """Exact per-node Theorem 9 accounting, without running any rounds.

    Args:
        ga: the graph's :class:`~repro.graphs.arrays.GraphArrays`.
        colors: int64 per-slot cluster colors γ in ``[1, palette]``.
        dist: int64 per-slot BFS depths δ.
        palette: the common-knowledge palette size c.
        t0: first round of the Theorem 9 window.
        n: the graph size (the protocol's common-knowledge n).

    Returns:
        ``(awake, msgs, termination, active)`` — per-slot awake-round
        counts, per-slot messages sent, per-slot termination rounds, and
        the sorted array of distinct rounds in which any node is awake.
    """
    np = require_numpy()
    mapping = ColorScheduleMapping.for_palette(palette)
    window = 2 * n + 3  # one virtual round simulated (phase_duration)
    vt0 = t0 + 1 + bfs_cast_duration(n)  # first virtual-window round
    sched_len = mapping.schedule_length  # |r(c)|, the same for every c

    # Same-color neighbors are same-cluster neighbors (Definition 4:
    # same-color clusters are never adjacent).
    same = colors[ga.flat] == colors[ga.edge_sources]
    deg_intra = segment_sum(same.astype(np.int64), ga.offsets)
    deg_foreign = ga.degrees - deg_intra
    nonroot = (dist > 0).astype(np.int64)

    # Per distinct color: the Lemma 10 schedule r(c), how many of its
    # rounds are sending rounds (x >= phi(c)), and its last round.
    distinct = sorted_unique(colors)
    r_of = {int(c): mapping.r(int(c)) for c in distinct.tolist()}
    send_of = np.array(
        [
            sum(1 for x in r_of[int(c)] if x >= mapping.phi(int(c)))
            for c in distinct.tolist()
        ],
        dtype=np.int64,
    )
    last_of = np.array(
        [r_of[int(c)][-1] for c in distinct.tolist()], dtype=np.int64
    )
    cidx = np.searchsorted(distinct, colors)

    # awake: t9meta + rooting cast (1 round for a root, 2 otherwise) +
    # one virtual window per round in {setup} ∪ r(γ).
    awake = 1 + (1 + nonroot) + (1 + sched_len) * np.where(dist == 0, 3, 5)

    # messages: t9meta broadcast (deg) + rooting broadcast (deg_intra) +
    # the setup window (vsetup to every neighbor, then the gather's
    # one-up-one-down: 1 to the parent if non-root, deg_intra down) +
    # per calendar window x ∈ r(γ): the exchange out to every foreign
    # neighbor iff x >= phi(γ), plus the same gather cost.
    msgs = (
        ga.degrees
        + deg_intra
        + (ga.degrees + nonroot + deg_intra)
        + send_of[cidx] * deg_foreign
        + sched_len * (nonroot + deg_intra)
    )

    # termination: the gather broadcast-send of the last scheduled
    # window, offset n + δ + 2 into window max(r(γ)).
    termination = vt0 + last_of[cidx] * window + n + dist + 2

    # Active rounds: the rooting stage occupies [t0, t0 + n + 1], every
    # virtual window starts at vt0 = t0 + n + 2 — disjoint, so the
    # global set is the union over present (γ, δ) pairs, deduplicated.
    chunks = [np.array([t0], dtype=np.int64)]
    ddist = sorted_unique(dist)
    chunks.append(t0 + ddist[ddist > 0])  # non-root cast receive rounds
    chunks.append(t0 + 1 + ddist)  # cast send rounds (root: t0 + 1)
    pair_key = colors * np.int64(n + 1) + dist  # δ <= n - 1 < n + 1
    upairs = sorted_unique(pair_key)
    pair_colors = upairs // (n + 1)
    pair_dist = upairs % (n + 1)
    for d in sorted_unique(pair_dist).tolist():
        cs = pair_colors[pair_dist == d].tolist()
        vrs = sorted_unique(
            np.concatenate(
                [np.zeros(1, dtype=np.int64)]
                + [np.asarray(r_of[int(c)], dtype=np.int64) for c in cs]
            )
        )
        offs = _member_offsets(np, n, int(d))
        chunks.append((vt0 + vrs[:, None] * window + offs[None, :]).ravel())
    active = sorted_unique(np.concatenate(chunks))
    return awake, msgs, termination, active


def _run_theorem9_kernel(
    graph: StaticGraph,
    problem: OLocalProblem,
    node_inputs: Mapping[NodeId, Any],
    colors: Mapping[NodeId, int],
    dist: Mapping[NodeId, int],
    palette: int,
    t0: int,
    columns: tuple[Any, Any] | None = None,
) -> SimulationResult:
    """Theorem 9 as array kernels: outputs plus closed-form metrics.

    Args:
        graph: the network.
        problem: the O-LOCAL problem to solve.
        node_inputs: per-node problem inputs.
        colors: canonical cluster colors γ, in ``[1, palette]``.
        dist: per-node BFS depths δ.
        palette: the common-knowledge palette size c.
        t0: first round of the Theorem 9 window.
        columns: optional slot-ordered ``(color, dist)`` int64 columns
            matching ``colors``/``dist`` — skips the per-node dict walk
            when the caller already has the arrays (the Theorem 1 path).

    Returns:
        A :class:`SimulationResult` bit-identical to simulating
        :func:`repro.core.theorem9.theorem9_protocol` from round ``t0``.
    """
    np = require_numpy()
    metrics = SimulationMetrics()
    if graph.n == 0:
        return SimulationResult(outputs={}, metrics=metrics, graph=graph)
    ga = graph.arrays
    ids = ga.ids.tolist()
    if columns is not None:
        col, dlt = columns
    else:
        col = np.array([colors[v] for v in ids], dtype=np.int64)
        dlt = np.array([dist[v] for v in ids], dtype=np.int64)
    if int(col.min()) < 1 or int(col.max()) > palette:
        bad = int(col.min()) if int(col.min()) < 1 else int(col.max())
        raise ProtocolError(f"color {bad} outside palette [1, {palette}]")

    with span("theorem9.decide", n=ga.n):
        # The protocol's outcome is the sequential greedy under the
        # orientation µ_G: priority (γ, -δ, -ID) ascending.  Slot order
        # is ID order, so -arange encodes -ID.
        order = np.lexsort((-np.arange(ga.n), -dlt, col))
        rank = np.empty(ga.n, dtype=np.int64)
        rank[order] = np.arange(ga.n)
        decider = decide_by_priority(graph, problem, node_inputs, rank)

    with span("theorem9.accounting", n=ga.n, palette=palette):
        awake, msgs, termination, active = _theorem9_closed_form(
            ga, col, dlt, palette, t0, graph.n
        )
        metrics.awake_rounds = dict(zip(ids, awake.tolist()))
        metrics.termination_round = dict(zip(ids, termination.tolist()))
        metrics.messages_sent = int(msgs.sum())
        metrics.last_round = int(termination.max())
        metrics.active_rounds = int(active.size)
    return SimulationResult(
        outputs=decider.outputs(), metrics=metrics, graph=graph
    )


def solve_with_clustering_vectorized(
    graph: StaticGraph,
    problem: OLocalProblem,
    clustering: ColoredBFSClustering,
    inputs: Mapping[NodeId, Any] | None = None,
    palette: int | None = None,
    validate: bool = True,
) -> Theorem9Result:
    """Run Theorem 9 end to end on the vectorized engine.

    The drop-in array twin of
    :func:`repro.core.theorem9.solve_with_clustering`: same
    canonicalisation, same windows, bit-identical outputs and metrics.

    Args:
        graph: the network.
        problem: any :class:`OLocalProblem`.
        clustering: a colored BFS-clustering (γ, δ) of the graph.
        inputs: optional per-node inputs (defaults to the problem's own).
        palette: optionally widen the assumed color range c.
        validate: check the solution before returning.

    Returns:
        :class:`Theorem9Result` with outputs, the simulated metrics and
        the palette used.
    """
    canon = clustering.canonical()
    c = palette if palette is not None else canon.max_color()
    node_inputs = (
        dict(inputs) if inputs is not None else problem.make_inputs(graph)
    )
    with span("theorem9.solve", n=graph.n, palette=c) as sp:
        cast_end = 1 + bfs_cast_duration(graph.n)
        sp.event(
            "theorem9.windows",
            cast_rounds=(1, cast_end),
            calendar_rounds=(cast_end + 1, theorem9_duration(graph.n, c)),
        )
        result = _run_theorem9_kernel(
            graph, problem, node_inputs, canon.color, canon.dist, c, t0=1
        )
        counters.add("sim.run")
        counters.add("sim.messages", result.metrics.messages_sent)
        counters.add("sim.rounds", result.metrics.active_rounds)
    with span("theorem9.validate", n=graph.n):
        if validate:
            problem.check(graph, result.outputs, node_inputs)
    return Theorem9Result(
        outputs=result.outputs, simulation=result, palette=c
    )


def solve_vectorized(
    graph: StaticGraph,
    problem: OLocalProblem,
    inputs: Mapping[NodeId, Any] | None = None,
    b: int | None = None,
    validate: bool = True,
) -> "Theorem1Result":
    """Solve an O-LOCAL problem on the vectorized engine (Theorem 1).

    The drop-in array twin of :func:`repro.core.theorem1.solve`: the
    Theorem 13 clustering runs through
    :func:`repro.core.clustering_vectorized.compute_clustering_vectorized`,
    the Theorem 9 stage through the closed-form kernel, and the two
    stages compose by Lemma 8 — per-node awake/message counts add, the
    termination rounds are the solver stage's, and the active-round sets
    of the two reserved windows are disjoint.

    Args:
        graph: the network (connected, unique IDs in [1, id_space]).
        problem: any :class:`OLocalProblem`.
        inputs: optional per-node inputs (defaults to the problem's own).
        b: override the paper's b = 2^{sqrt(log n)} (for ablations).
        validate: check the solution and the clustering before returning.

    Returns:
        :class:`~repro.core.theorem1.Theorem1Result`, bit-identical to
        the simulator engine's.
    """
    from repro.core.clustering_vectorized import _clustering_kernel
    from repro.core.lemma15 import singleton_palette
    from repro.core.theorem1 import Theorem1Result
    from repro.core.theorem13 import (
        color_palette_bound,
        default_b,
        theorem13_duration,
    )

    chosen_b = b if b is not None else default_b(graph.n)
    node_inputs = (
        dict(inputs) if inputs is not None else problem.make_inputs(graph)
    )
    with span("theorem1.vectorized", n=graph.n, b=chosen_b):
        assignments, sim13, columns = _clustering_kernel(graph, chosen_b)
        out_phase, out_gamma, out_dist = columns
        np = require_numpy()
        sp13 = singleton_palette(chosen_b)
        col = (out_phase - 1) * np.int64(sp13) + out_gamma
        ids = graph.arrays.ids.tolist()
        colors = dict(zip(ids, col.tolist()))
        dist = dict(zip(ids, out_dist.tolist()))
        palette = color_palette_bound(graph.n, chosen_b)
        t9_start = 1 + theorem13_duration(
            graph.n, graph.id_space, chosen_b
        )
        sim9 = _run_theorem9_kernel(
            graph, problem, node_inputs, colors, dist, palette,
            t0=t9_start, columns=(col, out_dist),
        )

        metrics = SimulationMetrics()
        metrics.awake_rounds = {
            v: sim13.metrics.awake_rounds[v] + a
            for v, a in sim9.metrics.awake_rounds.items()
        }
        metrics.termination_round = dict(sim9.metrics.termination_round)
        metrics.messages_sent = (
            sim13.metrics.messages_sent + sim9.metrics.messages_sent
        )
        metrics.active_rounds = (
            sim13.metrics.active_rounds + sim9.metrics.active_rounds
        )
        metrics.last_round = sim9.metrics.last_round
        composed = SimulationResult(
            outputs={
                v: (out, assignments[v]) for v, out in sim9.outputs.items()
            },
            metrics=metrics,
            graph=graph,
        )
        counters.add("sim.run")
        counters.add("sim.messages", metrics.messages_sent)
        counters.add("sim.rounds", metrics.active_rounds)

    outputs = dict(sim9.outputs)
    clustering = ColoredBFSClustering(color=colors, dist=dist)
    if validate:
        # Definition 4 on the kernel's own columns — the array twin of
        # clustering.validate(graph), ~BFS cost instead of a per-node
        # Python walk (lazy import: clustering_vectorized imports from
        # this module).
        from repro.core.clustering_vectorized import (
            validate_clustering_arrays,
        )

        validate_clustering_arrays(graph, col, out_dist)
        problem.check(graph, outputs, node_inputs)
    return Theorem1Result(
        outputs=outputs,
        clustering=clustering,
        simulation=composed,
        b=chosen_b,
        palette_bound=color_palette_bound(graph.n, chosen_b),
    )
