"""Theorem 9 — solving any O-LOCAL problem given a colored BFS-clustering.

Given (γ, δ) with colors in [1, c], the algorithm:

1. roots every cluster (one broadcast of the root's ID down the BFS tree,
   Lemma 6) so the colored clustering doubles as a uniquely-labeled one;
2. treats each cluster as a vertex of the virtual graph H (Lemma 7) and
   runs the Lemma 11 wake calendar on H using γ as the proper coloring of
   H — each cluster is awake at the O(log c) rounds of r(γ), *decides* at
   round φ(γ) by sweeping its members in decreasing (δ, ID) order (the
   orientation µ_G of the paper), and forwards the member outputs to
   neighboring clusters afterwards.

Awake complexity O(log c); round complexity O(c·n). The result equals the
sequential greedy under the priority (γ(cluster), -δ, -ID) — the acyclic
orientation constructed in the proof — which is what the tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator, Iterable, Mapping

from repro.core.bm21 import schedule_solve, schedule_solve_duration
from repro.core.cast import bfs_cast_duration, broadcast_bfs
from repro.core.clustering import ColoredBFSClustering
from repro.core.virtual import run_on_virtual_graph, virtual_duration
from repro.errors import ProtocolError
from repro.graphs.graph import StaticGraph
from repro.model.actions import AwakeAt
from repro.model.api import NodeInfo
from repro.model.simulator import SimulationResult, SleepingSimulator
from repro.obs.spans import span
from repro.olocal.problem import NodeView, OLocalProblem
from repro.types import ClusterLabel, NodeId, Payload

Proto = Generator[AwakeAt, dict[NodeId, Payload], Any]


def theorem9_duration(n: int, palette: int) -> int:
    """Window: rooting (1 + n + 1) + simulated Lemma 11 (O(c) virtual)."""
    return 1 + bfs_cast_duration(n) + virtual_duration(
        n, schedule_solve_duration(palette)
    )


def theorem9_protocol(
    me: NodeId,
    peers: Iterable[NodeId],
    color: int,
    delta: int,
    palette: int,
    problem: OLocalProblem,
    t0: int,
    n: int,
    my_input: Any = None,
) -> Proto:
    """Solve ``problem`` at this node given its (γ, δ) pair.

    ``color`` must be an integer in [1, palette]; ``palette`` (the paper's
    c) is common knowledge.
    """
    peers = tuple(peers)
    if not 1 <= color <= palette:
        raise ProtocolError(f"color {color} outside palette [1, {palette}]")

    # -- step 1: root the cluster (learn ℓ = root ID) -----------------------
    inbox = yield AwakeAt(t0, {u: ("t9meta", color, delta) for u in peers})
    same_cluster = {
        u: msg[2]
        for u, msg in sorted(inbox.items())
        if msg[0] == "t9meta" and msg[1] == color
    }
    if delta == 0:
        parent = None
    else:
        candidates = [u for u, d in same_cluster.items() if d == delta - 1]
        if not candidates:
            raise ProtocolError(
                f"node {me}: δ = {delta} but no same-color neighbor at "
                f"δ = {delta - 1}; (γ, δ) is not a colored BFS-clustering"
            )
        parent = min(candidates)
    label = yield from broadcast_bfs(
        me,
        tuple(same_cluster),
        parent,
        delta,
        n,
        t0 + 1,
        me if delta == 0 else None,
    )

    # -- step 2: run Lemma 11 on the virtual graph --------------------------
    def contribution(
        neighbor_setup: Mapping[NodeId, tuple[ClusterLabel, int, Any]]
    ) -> dict[str, Any]:
        return {
            "delta": delta,
            "input": my_input,
            "neighbors": tuple(sorted(neighbor_setup)),
        }

    vprogram = _make_cluster_solver(color, palette, problem)
    outcome = yield from run_on_virtual_graph(
        me=me,
        peers=peers,
        label=label,
        delta=delta,
        n=n,
        t0=t0 + 1 + bfs_cast_duration(n),
        vprogram=vprogram,
        label_space=max(palette, label),
        max_virtual_rounds=schedule_solve_duration(palette),
        contribution_fn=contribution,
    )
    outputs: dict[NodeId, Any] = outcome.output
    if me not in outputs:
        raise ProtocolError(f"node {me}: cluster solver produced no output")
    return outputs[me]


def _make_cluster_solver(
    color: int, palette: int, problem: OLocalProblem
) -> Callable[[NodeInfo], Proto]:
    """The Π' decision rule: a full greedy sweep over the cluster."""

    def vprogram(vinfo: NodeInfo) -> Proto:
        contributions: dict[NodeId, dict] = vinfo.input

        def decide(
            accumulated: dict[ClusterLabel, Payload]
        ) -> tuple[Any, Payload]:
            known_foreign: dict[NodeId, Any] = {}
            for lab in sorted(accumulated):
                known_foreign.update(accumulated[lab])
            outputs: dict[NodeId, Any] = {}
            # µ_G inside the cluster: decreasing (δ, ID) — the node with
            # the largest δ (ties: largest ID) is the deepest descendant.
            order = sorted(
                contributions,
                key=lambda v: (-contributions[v]["delta"], -v),
            )
            for v in order:
                data = contributions[v]
                decided: dict[NodeId, Any] = {}
                for u in data["neighbors"]:
                    if u in outputs:
                        decided[u] = outputs[u]
                    elif u in known_foreign:
                        decided[u] = known_foreign[u]
                view = NodeView(
                    id=v, degree=len(data["neighbors"]), input=data["input"]
                )
                outputs[v] = problem.decide(view, decided)
            return outputs, outputs

        result = yield from schedule_solve(
            me=vinfo.id,
            peers=vinfo.neighbors,
            color=color,
            palette=palette,
            t0=1,
            decide=decide,
        )
        return result

    return vprogram


# ---------------------------------------------------------------------------
# End-to-end wrapper + reference.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Theorem9Result:
    outputs: dict[NodeId, Any]
    simulation: SimulationResult
    palette: int

    @property
    def awake_complexity(self) -> int:
        return self.simulation.awake_complexity

    @property
    def round_complexity(self) -> int:
        return self.simulation.round_complexity


def solve_with_clustering(
    graph: StaticGraph,
    problem: OLocalProblem,
    clustering: ColoredBFSClustering,
    inputs: Mapping[NodeId, Any] | None = None,
    palette: int | None = None,
    validate: bool = True,
    simulator: Any = None,
) -> Theorem9Result:
    """Run Theorem 9 end to end on the Sleeping simulator.

    The clustering is canonicalised to integer colors 1..c first; ``palette``
    may widen the assumed color range (it is common knowledge c).
    ``simulator`` optionally replaces :class:`SleepingSimulator` with a
    ``(graph, program, inputs=...)`` factory (fault injection).
    """
    canon = clustering.canonical()
    c = palette if palette is not None else canon.max_color()
    node_inputs = (
        dict(inputs) if inputs is not None else problem.make_inputs(graph)
    )

    def program(info: NodeInfo) -> Proto:
        out = yield from theorem9_protocol(
            me=info.id,
            peers=info.neighbors,
            color=canon.color[info.id],
            delta=canon.dist[info.id],
            palette=c,
            problem=problem,
            t0=1,
            n=info.n,
            my_input=info.input,
        )
        return out

    make_simulator = simulator if simulator is not None else SleepingSimulator
    with span("theorem9.solve", n=graph.n, palette=c) as sp:
        # The solving stage is one composed simulation; its cast
        # (cluster rooting) and calendar (simulated Lemma 11 over
        # cluster colors) sub-windows are fixed by the protocol, so
        # their round boundaries are recorded as one event rather than
        # per-node spans (which would perturb the hot loop).
        cast_end = 1 + bfs_cast_duration(graph.n)
        sp.event(
            "theorem9.windows",
            cast_rounds=(1, cast_end),
            calendar_rounds=(cast_end + 1, theorem9_duration(graph.n, c)),
        )
        result = make_simulator(graph, program, inputs=node_inputs).run()
    with span("theorem9.validate", n=graph.n):
        if validate:
            problem.check(graph, result.outputs, node_inputs)
    return Theorem9Result(outputs=result.outputs, simulation=result, palette=c)


def theorem9_reference(
    graph: StaticGraph,
    problem: OLocalProblem,
    clustering: ColoredBFSClustering,
    inputs: Mapping[NodeId, Any] | None = None,
) -> dict[NodeId, Any]:
    """The sequential greedy under the paper's orientation µ_G: priority
    (γ(cluster), -δ(v), -ID(v)), increasing. Oracle for the protocol."""
    from repro.olocal.problem import sequential_greedy

    canon = clustering.canonical()
    return sequential_greedy(
        graph,
        problem,
        priority=lambda v: (canon.color[v], -canon.dist[v], -v),
        inputs=inputs,
    )
