"""Exception hierarchy for the repro package.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can catch library failures without
masking genuine programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """The input graph violates a structural requirement (e.g. not connected)."""


class SimulationError(ReproError):
    """The Sleeping-model simulator detected an illegal action at runtime."""


class ProtocolError(ReproError):
    """A distributed protocol violated its own schedule or received
    inconsistent data (e.g. a time-window overrun)."""


class ScheduleOverrunError(ProtocolError):
    """A protocol tried to be awake after the end of its reserved time window."""


class ClusteringError(ReproError):
    """A (claimed) BFS-clustering violates Definition 2 or Definition 4."""


class ValidationError(ReproError):
    """A computed solution fails the problem's correctness validator."""


class MappingError(ReproError):
    """The Lemma 10 mapping was queried outside of its domain."""
