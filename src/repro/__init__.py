"""repro — a reproduction of *"Solving Sequential Greedy Problems
Distributedly with Sub-Logarithmic Energy Cost"* (Balliu, Fraigniaud,
Olivetti, Rabie; PODC 2025).

The package provides:

- a faithful **Sleeping-LOCAL simulator** (:mod:`repro.model`) with exact
  awake/round accounting and time-skipping over globally-asleep intervals;
- the **O-LOCAL problem class** (:mod:`repro.olocal`) with (Δ+1)-coloring,
  MIS, (deg+1)-list-coloring and minimal vertex cover;
- the paper's **algorithms** (:mod:`repro.core`): Lemma 6 casts, Linial's
  color reduction, the BM21 baseline (Lemma 11), virtual-graph execution
  (Lemma 7), clustering phases (Lemmas 14 & 15), the full pipeline
  (Theorem 13), the clustered solver (Theorem 9) and the headline
  :func:`solve` (Theorem 1);
- an **experiment harness** (:mod:`repro.analysis`) regenerating every
  figure and validating every stated bound.

Quickstart::

    from repro import solve, MaximalIndependentSet, gnp

    graph = gnp(64, 0.1, seed=1)
    result = solve(graph, MaximalIndependentSet())
    print(result.awake_complexity, result.round_complexity)
"""

from repro.core.bm21 import solve_with_baseline
from repro.core.clustering import (
    ColoredBFSClustering,
    UniquelyLabeledBFSClustering,
)
from repro.core.mapping import ColorScheduleMapping
from repro.core.theorem1 import Theorem1Result, solve
from repro.core.theorem9 import solve_with_clustering
from repro.core.theorem13 import compute_clustering, theorem13_reference
from repro.graphs import StaticGraph, gnp, path, random_regular
from repro.model import AwakeAt, Broadcast, SleepingSimulator
from repro.olocal import (
    PROBLEMS,
    DegreePlusOneListColoring,
    DeltaPlusOneColoring,
    MaximalIndependentSet,
    MinimalVertexCover,
    OLocalProblem,
    sequential_greedy,
)

__version__ = "1.0.0"

__all__ = [
    "AwakeAt",
    "Broadcast",
    "ColorScheduleMapping",
    "ColoredBFSClustering",
    "DegreePlusOneListColoring",
    "DeltaPlusOneColoring",
    "MaximalIndependentSet",
    "MinimalVertexCover",
    "OLocalProblem",
    "PROBLEMS",
    "SleepingSimulator",
    "StaticGraph",
    "Theorem1Result",
    "UniquelyLabeledBFSClustering",
    "__version__",
    "compute_clustering",
    "gnp",
    "path",
    "random_regular",
    "sequential_greedy",
    "solve",
    "solve_with_baseline",
    "solve_with_clustering",
    "theorem13_reference",
]
