"""repro — a reproduction of *"Solving Sequential Greedy Problems
Distributedly with Sub-Logarithmic Energy Cost"* (Balliu, Fraigniaud,
Olivetti, Rabie; PODC 2025).

The package provides:

- a faithful **Sleeping-LOCAL simulator** (:mod:`repro.model`) with exact
  awake/round accounting and time-skipping over globally-asleep intervals;
- the **O-LOCAL problem class** (:mod:`repro.olocal`) with (Δ+1)-coloring,
  MIS, (deg+1)-list-coloring and minimal vertex cover;
- the paper's **algorithms** (:mod:`repro.core`): Lemma 6 casts, Linial's
  color reduction, the BM21 baseline (Lemma 11), virtual-graph execution
  (Lemma 7), clustering phases (Lemmas 14 & 15), the full pipeline
  (Theorem 13), the clustered solver (Theorem 9) and the headline
  :func:`solve` (Theorem 1);
- a **unified scenario API** (:mod:`repro.api`): three registries —
  :data:`GRAPH_FAMILIES`, :data:`PROBLEMS`, :data:`ALGORITHMS` — plus a
  picklable :class:`Scenario` record with :func:`run_scenario` /
  :func:`run_grid`, consumed by the CLI, the sharded sweep runner, and
  the experiment harness alike; third-party packages extend every axis
  via ``repro.plugins`` entry points;
- an **experiment harness** (:mod:`repro.analysis`) regenerating every
  figure and validating every stated bound.

Quickstart::

    from repro import Scenario, run_scenario

    result = run_scenario(
        Scenario(family="gnp", n=64, seed=1, problem="mis",
                 algorithm="theorem1")
    )
    assert result.ok, result.errors
    print(result.outcome.awake_complexity, result.outcome.round_complexity)

Every registered scenario axis is discoverable::

    from repro import ALGORITHMS, GRAPH_FAMILIES, PROBLEMS

    print(GRAPH_FAMILIES.names(), PROBLEMS.names(), ALGORITHMS.names())
"""

from repro.api import (
    RunResult,
    Scenario,
    run_grid,
    run_scenario,
    scenarios_from_grid,
)
from repro.core.algorithms import ALGORITHMS, AlgorithmAdapter, SolveOutcome
from repro.core.bm21 import solve_with_baseline
from repro.core.clustering import (
    ColoredBFSClustering,
    UniquelyLabeledBFSClustering,
)
from repro.core.mapping import ColorScheduleMapping
from repro.core.theorem1 import Theorem1Result, solve
from repro.core.theorem9 import solve_with_clustering
from repro.core.theorem13 import compute_clustering, theorem13_reference
from repro.graphs import StaticGraph, gnp, path, random_regular
from repro.graphs.families import GRAPH_FAMILIES, build_family_graph
from repro.model import AwakeAt, Broadcast, SleepingSimulator
from repro.olocal import (
    PROBLEMS,
    DegreePlusOneListColoring,
    DeltaPlusOneColoring,
    MaximalIndependentSet,
    MinimalVertexCover,
    OLocalProblem,
    sequential_greedy,
)
from repro.registry import Registry, RegistryError, UnknownNameError, load_plugins

__version__ = "1.1.0"

__all__ = [
    "ALGORITHMS",
    "AlgorithmAdapter",
    "AwakeAt",
    "Broadcast",
    "ColorScheduleMapping",
    "ColoredBFSClustering",
    "DegreePlusOneListColoring",
    "DeltaPlusOneColoring",
    "GRAPH_FAMILIES",
    "MaximalIndependentSet",
    "MinimalVertexCover",
    "OLocalProblem",
    "PROBLEMS",
    "Registry",
    "RegistryError",
    "RunResult",
    "Scenario",
    "SleepingSimulator",
    "SolveOutcome",
    "StaticGraph",
    "Theorem1Result",
    "UniquelyLabeledBFSClustering",
    "UnknownNameError",
    "__version__",
    "build_family_graph",
    "compute_clustering",
    "gnp",
    "load_plugins",
    "path",
    "random_regular",
    "run_grid",
    "run_scenario",
    "scenarios_from_grid",
    "sequential_greedy",
    "solve",
    "solve_with_baseline",
    "solve_with_clustering",
    "theorem13_reference",
]
