"""Command-line interface: run the paper's algorithms from a shell.

Examples::

    python -m repro solve --family gnp --n 48 --problem mis
    python -m repro solve --family complete --n 16 --algorithm baseline \
        --problem coloring --trace
    python -m repro cluster --family grid --n 36 --b 4
    python -m repro report --only E1 E5
    python -m repro sweep --experiments E9 --workers 4
    python -m repro sweep --grid --families path gnp --sizes 16 32 \
        --problems mis coloring --trials 3 --workers 4
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

from repro.graphs import (
    StaticGraph,
    complete_graph,
    cycle,
    gnp,
    grid,
    hypercube,
    path,
    preferential_attachment,
    random_regular,
    random_tree,
    star,
)
from repro.olocal import PROBLEMS
from repro.runner.cache import DEFAULT_CACHE_DIR
from repro.util.idspace import permuted_ids, polynomial_ids
from repro.util.mathx import ceil_sqrt

PROBLEM_ALIASES = {
    "coloring": "delta_plus_one_coloring",
    "mis": "maximal_independent_set",
    "list-coloring": "degree_plus_one_list_coloring",
    "vertex-cover": "minimal_vertex_cover",
}

#: Family name -> builder(n, seed, p, degree, id_assignment). The single
#: source of truth for what build_family_graph (and therefore the sweep
#: runner's grid specs) understands.
_FAMILY_BUILDERS: dict[str, Callable[..., "StaticGraph"]] = {
    "path": lambda n, seed, p, degree, ids: path(n, ids),
    "cycle": lambda n, seed, p, degree, ids: cycle(n, ids),
    "star": lambda n, seed, p, degree, ids: star(n, ids),
    "complete": lambda n, seed, p, degree, ids: complete_graph(n, ids),
    "grid": lambda n, seed, p, degree, ids: grid(
        ceil_sqrt(n), ceil_sqrt(n), None
    ),
    "hypercube": lambda n, seed, p, degree, ids: hypercube(
        max(1, n.bit_length() - 1), None
    ),
    "tree": lambda n, seed, p, degree, ids: random_tree(n, seed=seed, ids=ids),
    "gnp": lambda n, seed, p, degree, ids: gnp(n, p, seed=seed, ids=ids),
    "regular": lambda n, seed, p, degree, ids: random_regular(
        n if (n * degree) % 2 == 0 else n + 1, degree, seed=seed, ids=None,
    ),
    "powerlaw": lambda n, seed, p, degree, ids: preferential_attachment(
        n, max(2, n // 16), seed=seed, ids=ids
    ),
}

#: Families build_family_graph understands (sweep specs validate against
#: this up front, before any trial runs).
GRAPH_FAMILIES = tuple(sorted(_FAMILY_BUILDERS))


def build_family_graph(
    family: str,
    n: int,
    *,
    seed: int = 0,
    p: float = 0.15,
    degree: int = 4,
    ids: str = "identity",
) -> StaticGraph:
    """Instantiate a graph family with an ID scheme (shared by the CLI
    commands and the sweep runner's seeded solve grids)."""
    builder = _FAMILY_BUILDERS.get(family)
    if builder is None:
        raise KeyError(
            f"unknown family {family!r}; choose from "
            f"{sorted(_FAMILY_BUILDERS)}"
        )
    id_assignment = None
    if ids == "permuted":
        id_assignment = permuted_ids(n, seed=seed)
    elif ids.startswith("poly"):
        exponent = int(ids[4:] or 2)
        id_assignment = polynomial_ids(n, exponent=exponent, seed=seed)
    return builder(n, seed, p, degree, id_assignment)


def build_graph(args: argparse.Namespace) -> StaticGraph:
    """Instantiate the requested graph family with the requested ID scheme."""
    try:
        return build_family_graph(
            args.family, args.n, seed=args.seed, p=args.p,
            degree=args.degree, ids=args.ids,
        )
    except KeyError as exc:
        raise SystemExit(exc.args[0]) from exc


def cmd_solve(args: argparse.Namespace) -> int:
    """``repro solve``: run Theorem 1 or the baseline on a generated graph."""
    graph = build_graph(args)
    problem_name = PROBLEM_ALIASES.get(args.problem, args.problem)
    if problem_name not in PROBLEMS:
        raise SystemExit(
            f"unknown problem {args.problem!r}; choose from "
            f"{sorted(PROBLEM_ALIASES)} or {sorted(PROBLEMS)}"
        )
    problem = PROBLEMS[problem_name]
    print(f"graph: {args.family} n={graph.n} edges={graph.num_edges} "
          f"Δ={graph.max_degree} id_space={graph.id_space}")

    if args.algorithm == "theorem1":
        from repro.core.theorem1 import solve

        result = solve(graph, problem, b=args.b)
        metrics = result.simulation.metrics
        print(f"theorem1: awake={result.awake_complexity} "
              f"avg={metrics.average_awake:.1f} "
              f"rounds={result.round_complexity:,} "
              f"messages={metrics.messages_sent:,}")
        print(f"clustering: {result.clustering.num_colors()} colors "
              f"(bound {result.palette_bound})")
    else:
        from repro.core.bm21 import solve_with_baseline

        result = solve_with_baseline(graph, problem)
        metrics = result.simulation.metrics
        print(f"baseline: awake={result.awake_complexity} "
              f"avg={metrics.average_awake:.1f} "
              f"rounds={result.round_complexity:,}")

    if args.show_outputs:
        for v in sorted(result.outputs):
            print(f"  {v}: {result.outputs[v]}")
    if args.trace:
        _print_trace(graph, problem, args)
    return 0


def _print_trace(graph, problem, args) -> None:
    from repro.core.theorem1 import theorem1_program
    from repro.core.bm21 import baseline_program
    from repro.model.trace import traced_simulation

    if args.algorithm == "theorem1":
        program = theorem1_program(problem, args.b)
    else:
        program = baseline_program(problem, max(graph.max_degree, 1))
    _, trace = traced_simulation(graph, program, inputs=problem.make_inputs(graph))
    sample = sorted(graph.nodes)[: args.trace_nodes]
    print()
    print(trace.render_timeline(nodes=sample))
    print()
    print(trace.render_energy_summary())


def cmd_cluster(args: argparse.Namespace) -> int:
    """``repro cluster``: compute and summarize the Theorem 13 clustering."""
    from collections import Counter

    from repro.core.theorem13 import compute_clustering

    graph = build_graph(args)
    result = compute_clustering(graph, b=args.b)
    metrics = result.simulation.metrics
    print(f"graph: {args.family} n={graph.n} Δ={graph.max_degree}")
    print(f"b={result.b} colors={result.clustering.num_colors()} "
          f"(bound {result.palette_bound})")
    print(f"awake={result.awake_complexity} "
          f"avg={metrics.average_awake:.1f} "
          f"rounds={result.round_complexity:,}")
    sizes = Counter(
        len(c.members) for c in result.clustering.clusters(graph)
    )
    print(f"cluster sizes: {dict(sorted(sizes.items()))}")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    """``repro report``: regenerate EXPERIMENTS.md via the sweep runner."""
    from repro.analysis.report import write_report
    from repro.runner import TrialCache

    cache = TrialCache(args.cache_dir) if args.cache else None
    return write_report(
        args.output, selected=args.only, workers=args.workers, cache=cache
    )


def _print_sweep_catalog() -> int:
    """``repro sweep --list``: what can run, without running anything."""
    from repro.runner import plan_catalog
    from repro.runner.trials import QUICK_EXPERIMENTS

    print("E-series experiment plans (--experiments / report --only):")
    for exp_id, title, num_trials in plan_catalog():
        trials = f"{num_trials} trial{'s' if num_trials != 1 else ''}"
        print(f"  {exp_id:<4} {trials:>9}  {title}")
    print(f"quick subset (--quick): {' '.join(QUICK_EXPERIMENTS)}")
    print()
    print("grid axes (--grid):")
    print(f"  families:   {' '.join(GRAPH_FAMILIES)}")
    print(f"  problems:   {' '.join(sorted(PROBLEM_ALIASES))} "
          f"(aliases of {' '.join(sorted(PROBLEMS))})")
    print("  algorithms: theorem1 baseline")
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    """``repro sweep``: run sharded experiment sweeps (see repro.runner)."""
    from repro.runner import (
        SweepError,
        TrialCache,
        run_sweep,
        sweep_from_experiments,
        sweep_from_grid,
        write_sweep_artifact,
    )

    if args.list:
        return _print_sweep_catalog()
    try:
        if args.grid:
            spec = sweep_from_grid(
                families=args.families,
                sizes=args.sizes,
                problems=args.problems,
                algorithms=args.algorithms,
                trials_per_config=args.trials,
                master_seed=args.seed,
                name=args.tag or "grid",
            )
        else:
            spec = sweep_from_experiments(
                experiments=args.experiments,
                quick=args.quick,
                name=args.tag or ("quick" if args.quick else "eseries"),
            )
    except KeyError as exc:
        raise SystemExit(exc.args[0]) from exc
    print(
        f"sweep {spec.name!r}: {len(spec.trials)} trials, "
        f"{args.workers} worker(s)",
        file=sys.stderr,
    )

    def progress(outcome):
        if outcome.cached:
            note = f"cache hit, {outcome.seconds:.2f}s saved"
        else:
            note = f"{outcome.seconds:.2f}s, pid {outcome.worker}"
        print(
            f"  [{outcome.spec.index + 1}/{len(spec.trials)}] "
            f"{outcome.spec.label} ({note})",
            file=sys.stderr,
        )

    cache = TrialCache(args.cache_dir) if args.cache else None
    try:
        result = run_sweep(
            spec, workers=args.workers, progress=progress, cache=cache
        )
    except SweepError as exc:
        print(f"sweep failed: {exc}", file=sys.stderr)
        return 1
    print(result.render())
    busy = sum(o.seconds for o in result.outcomes if not o.cached)
    line = (
        f"\nwall {result.wall_seconds:.2f}s, trial time {busy:.2f}s, "
        f"workers {result.workers}"
    )
    if result.cache_stats is not None:
        line += f"; cache: {result.cache_stats.summary()}"
    print(line, file=sys.stderr)
    if not args.no_artifact:
        artifact = write_sweep_artifact(result, args.output_dir)
        print(f"wrote {artifact}", file=sys.stderr)
    return 0


def make_parser() -> argparse.ArgumentParser:
    """Build the argparse tree for the ``repro`` CLI."""
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_graph_args(p):
        p.add_argument("--family", default="gnp")
        p.add_argument("--n", type=int, default=32)
        p.add_argument("--p", type=float, default=0.15)
        p.add_argument("--degree", type=int, default=4)
        p.add_argument("--seed", type=int, default=0)
        p.add_argument(
            "--ids", default="identity",
            help="identity | permuted | polyK (IDs from [n^K])",
        )
        p.add_argument("--b", type=int, default=None,
                       help="override b = 2^sqrt(log n)")

    solve_p = sub.add_parser("solve", help="run an O-LOCAL solver")
    add_graph_args(solve_p)
    solve_p.add_argument("--problem", default="mis")
    solve_p.add_argument(
        "--algorithm", choices=("theorem1", "baseline"), default="theorem1"
    )
    solve_p.add_argument("--show-outputs", action="store_true")
    solve_p.add_argument("--trace", action="store_true",
                         help="print awake timelines")
    solve_p.add_argument("--trace-nodes", type=int, default=12)
    solve_p.set_defaults(func=cmd_solve)

    cluster_p = sub.add_parser(
        "cluster", help="compute the Theorem 13 clustering"
    )
    add_graph_args(cluster_p)
    cluster_p.set_defaults(func=cmd_cluster)

    def add_cache_args(p):
        p.add_argument(
            "--cache", action=argparse.BooleanOptionalAction, default=True,
            help="reuse trial results from the content-addressed cache "
            "(--no-cache recomputes everything)",
        )
        p.add_argument(
            "--cache-dir", default=DEFAULT_CACHE_DIR,
            help="trial cache directory",
        )

    report_p = sub.add_parser(
        "report",
        help="regenerate EXPERIMENTS.md (sharded over the sweep runner)",
    )
    report_p.add_argument("--output", default="EXPERIMENTS.md")
    report_p.add_argument(
        "--only", nargs="*", default=None,
        help="subset of experiment ids (see `repro sweep --list`)",
    )
    report_p.add_argument(
        "--workers", type=int, default=1,
        help="worker processes; 1 = serial in-process (bit-identical "
        "reference path)",
    )
    add_cache_args(report_p)
    report_p.set_defaults(func=cmd_report)

    sweep_p = sub.add_parser(
        "sweep",
        help="run experiment sweeps, sharded across worker processes",
    )
    sweep_p.add_argument(
        "--experiments", nargs="+", default=None, metavar="EXP",
        help="E-series ids to run (default: all; with --quick: the cheap "
        "CI subset)",
    )
    sweep_p.add_argument(
        "--quick", action="store_true",
        help="cheap experiment subset for CI smoke runs",
    )
    sweep_p.add_argument(
        "--workers", type=int, default=1,
        help="worker processes; 1 = serial in-process (bit-identical "
        "reference path)",
    )
    sweep_p.add_argument(
        "--seed", type=int, default=0,
        help="master seed for grid sweeps (per-trial seeds are derived)",
    )
    sweep_p.add_argument(
        "--tag", default=None,
        help="artifact name: SWEEP_<tag>.json (default: sweep name)",
    )
    sweep_p.add_argument("--output-dir", default=".")
    sweep_p.add_argument(
        "--no-artifact", action="store_true",
        help="print tables only; skip writing SWEEP_*.json",
    )
    sweep_p.add_argument(
        "--grid", action="store_true",
        help="seeded (family, n, problem, algorithm) solve grid instead "
        "of E-series experiments",
    )
    sweep_p.add_argument("--families", nargs="*", default=["path", "gnp"])
    sweep_p.add_argument(
        "--sizes", nargs="*", type=int, default=[16, 32, 64]
    )
    sweep_p.add_argument("--problems", nargs="*", default=["mis"])
    sweep_p.add_argument(
        "--algorithms", nargs="*", default=["theorem1"],
        choices=("theorem1", "baseline"),
    )
    sweep_p.add_argument(
        "--trials", type=int, default=1,
        help="seeded trials per grid cell",
    )
    sweep_p.add_argument(
        "--list", action="store_true",
        help="print available experiment and grid plans (id, title, "
        "trial count) and exit without running anything",
    )
    add_cache_args(sweep_p)
    sweep_p.set_defaults(func=cmd_sweep)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = make_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
